"""Parallel setup engine: executor abstraction for per-subdomain work."""

from .executor import (
    BACKENDS,
    SERIAL,
    ParallelConfig,
    parallel_map,
    resolve_parallel,
    timed_map,
)

__all__ = ["BACKENDS", "SERIAL", "ParallelConfig", "parallel_map",
           "resolve_parallel", "timed_map"]
