"""The parallel setup engine: executors for per-subdomain work.

The paper's setup phases — local factorizations, per-subdomain GenEO
eigensolves, coarse-operator assembly — are embarrassingly parallel:
every subdomain's work reads only its own data.  This module provides
the executor abstraction that drives those loops concurrently:

* ``"serial"``  — a plain ordered loop (the reference semantics);
* ``"threads"`` — :class:`concurrent.futures.ThreadPoolExecutor`.
  SuperLU, LAPACK and BLAS release the GIL inside factorizations and
  solves, so threads deliver real concurrency for exactly the kernels
  that dominate setup.

Determinism contract: an executor only changes *when* each subdomain's
task runs, never *what* it computes — tasks share no mutable state, each
derives its randomness from a per-subdomain seed, and results are
returned in submission order.  Parallel and serial runs are therefore
bitwise identical (asserted in ``tests/test_parallel.py``).

Timing contract: :func:`timed_map` measures each task on its own clock,
so per-subdomain phase times survive under any executor.  The SPMD
wall-clock of a concurrently executed phase (figs. 8/10) is the *max*
over subdomains, not the sum — exactly what
:func:`repro.perfmodel.measure_row` computes from these arrays.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from ..common.errors import ReproError

T = TypeVar("T")
R = TypeVar("R")

#: supported executor backends
BACKENDS = ("serial", "threads")


@dataclass(frozen=True)
class ParallelConfig:
    """How the setup loops are executed.

    Parameters
    ----------
    backend:
        ``"serial"`` (default) or ``"threads"``.
    workers:
        Thread count for the ``"threads"`` backend; ``None`` auto-sizes
        to ``min(8, os.cpu_count())``.  Ignored by ``"serial"``.
    """

    backend: str = "serial"
    workers: int | None = None

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ReproError(f"unknown parallel backend {self.backend!r}; "
                             f"expected one of {BACKENDS}")
        if self.workers is not None and self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")

    @property
    def num_workers(self) -> int:
        """Effective worker count (1 for the serial backend)."""
        if self.backend == "serial":
            return 1
        if self.workers is not None:
            return self.workers
        return min(8, os.cpu_count() or 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelConfig({self.backend!r}, workers={self.num_workers})"


#: the module default used when callers pass ``parallel=None``
SERIAL = ParallelConfig("serial")


def resolve_parallel(parallel) -> ParallelConfig:
    """Normalise a user-facing ``parallel=`` argument.

    Accepts ``None`` (→ serial), a backend name string, or a
    :class:`ParallelConfig` (returned as-is).
    """
    if parallel is None:
        return SERIAL
    if isinstance(parallel, ParallelConfig):
        return parallel
    if isinstance(parallel, str):
        return ParallelConfig(parallel)
    raise ReproError(f"parallel must be None, a backend name, or a "
                     f"ParallelConfig; got {type(parallel).__name__}")


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 parallel: ParallelConfig | str | None = None) -> list[R]:
    """Apply *fn* to every item, returning results in input order.

    The serial backend is a plain loop; the threads backend fans the
    items over a pool.  Either way the result list index matches the
    item index, so downstream code is executor-agnostic.
    """
    cfg = resolve_parallel(parallel)
    items = list(items)
    if cfg.backend == "serial" or cfg.num_workers == 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=cfg.num_workers) as pool:
        return list(pool.map(fn, items))


def timed_map(fn: Callable[[T], R], items: Sequence[T],
              parallel: ParallelConfig | str | None = None,
              *, recorder=None, label: str | None = None,
              ) -> tuple[list[R], list[float]]:
    """:func:`parallel_map` that also times each task on its own clock.

    Returns ``(results, seconds)`` aligned with *items*.  ``seconds[i]``
    is the wall-clock of task *i* alone — the per-subdomain phase times
    of figs. 8/10, valid under any executor (SPMD wall-clock of the
    phase = ``max(seconds)``).

    With a :class:`repro.obs.Recorder` as *recorder*, task *i* is also
    recorded as the span ``{label}[{i}]`` on the worker thread that ran
    it (accumulation into the recorder is thread-safe), so the executor's
    concurrency is visible in exported traces — one track per worker.
    """
    use_rec = recorder is not None and recorder.enabled
    name = label if label is not None else "task"

    def run(ix: tuple[int, T]) -> tuple[R, float]:
        i, x = ix
        t0 = time.perf_counter()
        if use_rec:
            with recorder.span(f"{name}[{i}]"):
                out = fn(x)
        else:
            out = fn(x)
        return out, time.perf_counter() - t0

    pairs = parallel_map(run, list(enumerate(items)), parallel)
    return [p[0] for p in pairs], [p[1] for p in pairs]
