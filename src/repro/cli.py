"""Command-line interface: ``python -m repro.cli``.

Solve the paper's benchmark problems from a shell, without writing a
script::

    python -m repro.cli solve --problem diffusion2d --n 48 \\
        --subdomains 16 --nev 8 --tol 1e-8
    python -m repro.cli solve --problem elasticity2d --levels 1
    python -m repro.cli info --problem diffusion3d --n 6

Subcommands
-----------
``solve``
    Build the problem, run the configured solver, print the report (and
    optionally export the solution as VTK).
``info``
    Print mesh/space/decomposition statistics without solving.
``trace``
    Render a telemetry trace (written by ``solve --telemetry``) as an
    ASCII Gantt chart plus phase/counter/event tables.
``report``
    One-page analysis of a trace: critical path, per-phase/per-rank
    load imbalance, rank-to-rank comm matrix, convergence forensics
    (``repro.obs.analysis``; ASCII or markdown).
``metrics``
    OpenMetrics/Prometheus text exposition (or JSON snapshot) of a
    trace's counters, gauges and span totals (``repro.obs.metrics``).
``regress``
    Gate current bench JSONs against tracked baselines with
    noise-tolerant thresholds (``repro.obs.regress``); ``--selftest``
    verifies the gate flags an injected 2x slowdown.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import ParallelConfig, SchwarzSolver
from .common.asciiplot import semilogy, table
from .common.errors import ReproError
from .fem import channels_and_inclusions, layered_elasticity
from .fem.forms import (
    ConvectionDiffusionForm,
    DiffusionForm,
    ElasticityForm,
    HelmholtzForm,
)
from .mesh import cantilever_2d, unit_cube, unit_square
from .partition import imbalance, partition_mesh

PROBLEMS = ("diffusion2d", "diffusion3d", "elasticity2d", "elasticity3d",
            "convdiff2d", "helmholtz2d")


def build_problem(args):
    """(mesh, form, dirichlet) for the requested benchmark problem."""
    if args.problem == "diffusion2d":
        mesh = unit_square(args.n)
        form = DiffusionForm(degree=args.degree or 2,
                             kappa=channels_and_inclusions(mesh,
                                                           seed=args.seed))
        return mesh, form, None
    if args.problem == "diffusion3d":
        mesh = unit_cube(args.n)
        form = DiffusionForm(degree=args.degree or 2,
                             kappa=channels_and_inclusions(mesh,
                                                           seed=args.seed))
        return mesh, form, None
    if args.problem == "elasticity2d":
        mesh = cantilever_2d(max(2, args.n // 6), length=8.0)
        lam, mu = layered_elasticity(mesh, n_layers=8)
        form = ElasticityForm(degree=args.degree or 2, lam=lam, mu=mu,
                              f=np.array([0.0, -9.81]))
        return mesh, form, (lambda x: x[:, 0] < 1e-9)
    if args.problem == "elasticity3d":
        mesh = unit_cube(args.n)
        lam, mu = layered_elasticity(mesh, n_layers=4, axis=2)
        form = ElasticityForm(degree=args.degree or 1, lam=lam, mu=mu,
                              f=np.array([0.0, 0.0, -9.81]))
        return mesh, form, (lambda x: x[:, 2] < 1e-9)
    if args.problem == "convdiff2d":
        # heterogeneous convection–diffusion; --peclet scales the
        # advection strength relative to the (contrasted) diffusivity
        mesh = unit_square(args.n)
        kappa = channels_and_inclusions(mesh, seed=args.seed)
        peclet = getattr(args, "peclet", 0.0) or 100.0
        beta = peclet * np.array([1.0, 0.35])
        form = ConvectionDiffusionForm(degree=args.degree or 2,
                                       kappa=kappa, beta=beta)
        return mesh, form, None
    if args.problem == "helmholtz2d":
        # Helmholtz with absorption (real shifted formulation);
        # --wavenumber sets k, fixed 20% absorption keeps the shifted
        # operator solvable by the two-level method
        mesh = unit_square(args.n)
        k = getattr(args, "wavenumber", 0.0) or 10.0
        form = HelmholtzForm(degree=args.degree or 2, k=k, epsilon=0.2)
        return mesh, form, None
    raise SystemExit(f"unknown problem {args.problem!r}; "
                     f"choose from {PROBLEMS}")


def cmd_solve(args) -> int:
    mesh, form, clamp = build_problem(args)
    try:
        parallel = ParallelConfig(args.parallel,
                                  workers=args.workers or None)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    recorder = None
    if args.telemetry:
        from .obs import Recorder
        recorder = Recorder(ring=args.flight_recorder or None)
    elif args.flight_recorder:
        from .obs import Recorder
        recorder = Recorder(ring=args.flight_recorder)
    faults = None
    if args.faults:
        from .resilience import FaultPlan
        faults = FaultPlan.load(args.faults)
    try:
        solver = SchwarzSolver(
            mesh, form, num_subdomains=args.subdomains, delta=args.delta,
            nev=args.nev, levels=args.levels, krylov=args.krylov,
            partition_method=args.partitioner, dirichlet=clamp,
            seed=args.seed, parallel=parallel, recorder=recorder,
            faults=faults, recovery=args.recovery,
            kernel_backend=args.backend or None,
            coarse_strategy=args.coarse_strategy or None,
            coarse_space=args.coarse_space or None)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    if args.rhs_batch > 1 or args.recycle:
        return _solve_batched(args, solver, recorder)
    report = solver.solve(tol=args.tol, restart=args.restart,
                          maxiter=args.maxiter)
    rows = [["problem", args.problem],
            ["dofs", solver.problem.space.num_dofs],
            ["subdomains", args.subdomains],
            ["coarse dim", solver.coarse_dim],
            ["coarse strategy", solver.coarse_strategy.name],
            ["coarse space", solver.coarse_space_name],
            ["kernel backend", solver.kernels.name],
            ["iterations", report.iterations],
            ["converged", report.converged],
            ["final residual", f"{report.krylov.final_residual:.3e}"]]
    res = report.resilience
    if res:
        rows.append(["recovery mode", res.get("mode", "off")])
        rows.append(["restarts", res.get("restarts", 0)])
        faults_by_kind = res.get("faults", {})
        rows.append(["faults injected",
                     ", ".join(f"{k}:{v}" for k, v in
                               sorted(faults_by_kind.items())) or "none"])
        if res.get("degraded_subdomains"):
            rows.append(["degraded subdomains",
                         ", ".join(map(str, res["degraded_subdomains"]))])
        if res.get("coarse_fallbacks"):
            rows.append(["coarse fallbacks", res["coarse_fallbacks"]])
        if res.get("eigensolve_fallbacks"):
            rows.append(["eigensolve fallbacks",
                         ", ".join(map(str,
                                       res["eigensolve_fallbacks"]))])
        if res.get("one_level_only"):
            rows.append(["one-level only", True])
        if res.get("flight_recorder"):
            fl = res["flight_recorder"]
            rows.append(["flight recorder",
                         f"last {len(fl['spans'])} spans / "
                         f"{len(fl['events'])} events "
                         f"(ring {fl['ring']}, "
                         f"{fl['spans_total']} spans total)"])
    for phase, secs in solver.timer.as_dict().items():
        rows.append([f"time: {phase}", f"{secs:.2f} s"])
    for phase, secs in report.krylov.profile.items():
        rows.append([f"solve: {phase}", f"{secs:.3f} s"])
    print(table(["quantity", "value"], rows, title="repro solve report"))
    if args.plot:
        print()
        print(semilogy({"residual": report.residuals}))
    if args.vtk:
        from .mesh import write_vtk
        space = solver.problem.space
        if space.ncomp == 1:
            pd = {"u": report.x[:mesh.num_vertices]}
        else:
            pd = {"u": report.x.reshape(-1, space.ncomp)
                  [:mesh.num_vertices]}
        write_vtk(mesh, args.vtk, point_data=pd,
                  cell_data={"partition": solver.decomposition.part
                             .astype(float)})
        print(f"\nsolution written to {args.vtk}")
    if recorder is not None and args.telemetry:
        from .obs import write_trace
        write_trace(recorder, args.telemetry,
                    format=args.telemetry_format)
        print(f"\ntelemetry ({args.telemetry_format}) written to "
              f"{args.telemetry}; view with `repro trace "
              f"{args.telemetry}` or load the chrome format in "
              f"ui.perfetto.dev")
    return 0 if report.converged else 1


def _solve_batched(args, solver, recorder) -> int:
    """The ``--rhs-batch`` / ``--recycle`` paths: one SolveSession."""
    session = solver.session()
    b = solver.problem.rhs()
    k = max(1, args.rhs_batch)
    rng = np.random.default_rng(args.seed)
    if k > 1:
        # the assembled load plus perturbed companions — the shape of a
        # multi-load-case / time-stepping workload
        B = np.column_stack(
            [b] + [b + 0.1 * np.linalg.norm(b)
                   * rng.standard_normal(b.shape[0])
                   for _ in range(k - 1)])
    else:
        B = b[:, None]
    rows = [["problem", args.problem],
            ["dofs", solver.problem.space.num_dofs],
            ["subdomains", args.subdomains],
            ["coarse dim", solver.coarse_dim],
            ["rhs batch", k]]
    if args.recycle:
        # sequential recycled solves: each harvests Ritz vectors that
        # deflate the next (two passes of b when K == 1, to show the
        # recycling effect on a repeated load)
        cols = list(range(B.shape[1])) if k > 1 else [0, 0]
        iters = []
        ok = True
        for j in cols:
            rep = session.solve(B[:, j], tol=args.tol,
                                restart=args.restart,
                                maxiter=args.maxiter)
            iters.append(rep.iterations)
            ok = ok and rep.converged
        rows += [["mode", "recycled sequential"],
                 ["iterations per solve",
                  ", ".join(map(str, iters))],
                 ["recycled coarse dim", session.coarse_dim],
                 ["converged", ok]]
        print(table(["quantity", "value"], rows,
                    title="repro batched solve report"))
        return 0 if ok else 1
    report = session.solve_many(B, tol=args.tol, restart=args.restart,
                                maxiter=args.maxiter)
    rows += [["mode", f"block ({report.driver})"],
             ["block iterations", report.iterations],
             ["column iterations",
              ", ".join(map(str, report.column_iterations))],
             ["converged", report.converged]]
    print(table(["quantity", "value"], rows,
                title="repro batched solve report"))
    if recorder is not None:
        from .obs import write_trace
        write_trace(recorder, args.telemetry, format=args.telemetry_format)
        print(f"\ntelemetry ({args.telemetry_format}) written to "
              f"{args.telemetry}")
    return 0 if report.converged else 1


def cmd_backends(args) -> int:
    from .kernels import ENV_VAR, available_backends
    import os
    selected = os.environ.get(ENV_VAR) or "numpy"
    rows = []
    for name, cap in available_backends().items():
        rows.append([name,
                     "yes" if cap["available"] else "NO",
                     cap.get("precision", "-"),
                     "yes" if cap.get("compiled") else "no",
                     "; ".join(cap.get("notes", [])) or
                     ("default" if name == selected else "")])
    print(table(["backend", "available", "precision", "compiled", "notes"],
                rows, title="repro kernel backends"))
    print(f"\nselection: --backend flag > ${ENV_VAR} "
          f"(currently {os.environ.get(ENV_VAR) or 'unset'}) > numpy")
    from .core.coarse_strategies import (
        ENV_VAR as STRAT_ENV,
        get_strategy,
        strategy_names,
    )
    srows = []
    for name in strategy_names():
        row = get_strategy(name).describe()
        srows.append([name, "yes" if row["exact"] else "no (inner FGMRES)"])
    print()
    print(table(["strategy", "exact"], srows,
                title="repro coarse-solve strategies"))
    print(f"\nselection: --coarse-strategy flag > ${STRAT_ENV} "
          f"(currently {os.environ.get(STRAT_ENV) or 'unset'}) > dense")
    return 0


def cmd_trace(args) -> int:
    from .obs import load_trace, render_trace
    trace = load_trace(args.path)
    try:
        print(render_trace(trace, width=args.width,
                           max_tracks=args.max_tracks))
    except BrokenPipeError:            # piped into head/less and closed
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_report(args) -> int:
    from .obs import analyze, load_trace
    report = analyze(load_trace(args.path))
    try:
        if args.format == "md":
            print(report.to_markdown())
        else:
            print(report.render(width=args.width,
                                max_ranks=args.max_ranks))
    except BrokenPipeError:
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_metrics(args) -> int:
    import json

    from .obs import (load_trace, snapshot, to_openmetrics,
                      validate_openmetrics)
    trace = load_trace(args.path)
    if args.json:
        print(json.dumps(snapshot(trace), indent=2, sort_keys=True))
        return 0
    text = to_openmetrics(trace, prefix=args.prefix)
    if args.check:
        validate_openmetrics(text)
    sys.stdout.write(text)
    return 0


def cmd_regress(args) -> int:
    import json
    from pathlib import Path

    from .obs import Thresholds, compare, compare_dirs, compare_files
    from .obs.regress import inject_slowdown
    thresholds = Thresholds(time_ratio=args.time_ratio,
                            count_ratio=args.count_ratio)
    if args.selftest:
        # the gate must flag a synthetic 2x slowdown of its own input —
        # compare payload-inflated-by-2x against the payload itself
        payload = json.loads(Path(args.selftest).read_text())
        report = compare(payload, inject_slowdown(payload, 2.0),
                         name=f"selftest({Path(args.selftest).name})",
                         thresholds=thresholds)
        flagged = bool(report.regressions)
        print(report.render(verbose=args.verbose))
        print(f"\nselftest: injected 2x slowdown "
              f"{'FLAGGED (gate works)' if flagged else 'MISSED'}")
        if args.report:
            Path(args.report).write_text(report.to_markdown())
        return 0 if flagged else 1
    if args.baseline_dir:
        report = compare_dirs(args.baseline_dir, args.current_dir,
                              thresholds=thresholds)
    elif args.baseline and args.current:
        report = compare_files(args.baseline, args.current,
                               thresholds=thresholds)
    else:
        raise SystemExit("error: pass --baseline-dir/--current-dir, "
                         "--baseline/--current, or --selftest")
    print(report.render(verbose=args.verbose))
    if args.report:
        Path(args.report).write_text(report.to_markdown())
        print(f"\nmarkdown report written to {args.report}")
    return 0 if report.passed else 1


def cmd_chaos(args) -> int:
    import json
    from pathlib import Path

    from .obs import Recorder
    from .resilience.chaos import ChaosConfig, run_campaign

    cfg = ChaosConfig(
        solves=args.solves, nranks=args.ranks, seed=args.seed,
        kill_rate=args.kill_rate, drop_rate=args.drop_rate,
        delay_rate=args.delay_rate, corrupt_rate=args.corrupt_rate,
        storm_rate=args.storm_rate, spares=args.spares,
        checkpoint_every=args.checkpoint_every, timeout=args.timeout,
        mesh_n=args.n, tol=args.tol)
    recorder = Recorder(ring=args.flight_recorder) \
        if args.flight_recorder else None

    def progress(s, record):
        status = "ok" if record["survived"] else "FAILED"
        extras = []
        if record["planned_faults"]:
            kinds = sorted({f["kind"] for f in record["planned_faults"]})
            extras.append("+".join(kinds))
        if record["repairs"]:
            extras.append(f"{record['repairs']} repair(s)")
        if record["error"]:
            extras.append(record["error"][:60])
        print(f"  solve {s:3d}: {status:6s} {' '.join(extras)}")

    print(f"chaos campaign: {cfg.solves} solves x {cfg.nranks} ranks, "
          f"seed {cfg.seed}, {cfg.spares} spare(s), survival floor "
          f"{args.floor:.0%}")
    report = run_campaign(cfg, recorder=recorder,
                          progress=progress if args.verbose else None)
    d = report.to_dict()
    ttr = d["time_to_recover"]
    print(f"survival: {d['survived']}/{d['solves']} "
          f"({d['survival_rate']:.1%}), {d['faulted_solves']} faulted "
          f"solves, {d['repairs']} repairs, faults {d['fault_totals']}")
    if ttr["count"]:
        print(f"time-to-recover: mean {ttr['mean'] * 1e3:.1f} ms, "
              f"max {ttr['max'] * 1e3:.1f} ms over {ttr['count']} "
              f"repair(s)")
    if args.out:
        d["config"] = {
            "solves": cfg.solves, "nranks": cfg.nranks, "seed": cfg.seed,
            "spares": cfg.spares, "checkpoint_every": cfg.checkpoint_every,
            "rates": {"kill": cfg.kill_rate, "drop": cfg.drop_rate,
                      "delay": cfg.delay_rate, "corrupt": cfg.corrupt_rate,
                      "storm": cfg.storm_rate}}
        Path(args.out).write_text(json.dumps(d, indent=2, sort_keys=True)
                                  + "\n")
        print(f"campaign report written to {args.out}")
    if recorder is not None and args.flight_out:
        Path(args.flight_out).write_text(
            json.dumps(recorder.flight_dump(), indent=2) + "\n")
        print(f"flight-recorder dump written to {args.flight_out}")
    if d["survival_rate"] < args.floor:
        print(f"FAIL: survival {d['survival_rate']:.1%} below the "
              f"{args.floor:.0%} floor")
        return 1
    return 0


def cmd_info(args) -> int:
    mesh, form, clamp = build_problem(args)
    space = form.make_space(mesh)
    part = partition_mesh(mesh, args.subdomains,
                          method=args.partitioner, seed=args.seed)
    rows = [["dim", mesh.dim],
            ["cells", mesh.num_cells],
            ["vertices", mesh.num_vertices],
            ["h_max", f"{mesh.h_max():.4f}"],
            ["degree", space.degree],
            ["dofs", space.num_dofs],
            ["subdomains", args.subdomains],
            ["partition imbalance", f"{imbalance(part):.3f}"]]
    print(table(["quantity", "value"], rows, title="repro problem info"))
    if args.decomposition:
        from .dd import Decomposition, Problem, decomposition_report
        problem = Problem(mesh, form, dirichlet=clamp)
        dec = Decomposition(problem, part, delta=args.delta)
        print()
        print(decomposition_report(dec).render())
    return 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="Two-level GenEO-Schwarz solver (SC13 "
                                  "reproduction)")
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--problem", default="diffusion2d",
                        choices=PROBLEMS)
        sp.add_argument("--n", type=int, default=32,
                        help="mesh resolution parameter")
        sp.add_argument("--degree", type=int, default=0,
                        help="FE degree (0 = problem default)")
        sp.add_argument("--subdomains", "-N", type=int, default=8)
        sp.add_argument("--partitioner", default="multilevel",
                        choices=("multilevel", "rcb", "spectral"))
        sp.add_argument("--seed", type=int, default=0)

    ps = sub.add_parser("solve", help="run the two-level solver")
    common(ps)
    ps.add_argument("--delta", type=int, default=1, help="overlap width")
    ps.add_argument("--nev", type=int, default=8,
                    help="GenEO vectors per subdomain (0 = Nicolaides)")
    ps.add_argument("--levels", type=int, default=2, choices=(1, 2))
    ps.add_argument("--krylov", default="gmres",
                    choices=("gmres", "p1-gmres", "cg", "fgmres",
                             "sstep", "deflated-cg"))
    ps.add_argument("--tol", type=float, default=1e-6)
    ps.add_argument("--restart", type=int, default=40)
    ps.add_argument("--maxiter", type=int, default=400)
    ps.add_argument("--parallel", default="serial",
                    choices=("serial", "threads"),
                    help="executor for the per-subdomain setup loops")
    ps.add_argument("--workers", type=int, default=0,
                    help="thread count for --parallel threads "
                         "(0 = auto-size to the machine)")
    ps.add_argument("--plot", action="store_true",
                    help="print the ASCII convergence curve")
    ps.add_argument("--vtk", default="",
                    help="write the solution to this VTK file")
    ps.add_argument("--telemetry", default="",
                    help="record a telemetry trace of the whole run and "
                         "write it to this path")
    ps.add_argument("--telemetry-format", default="chrome",
                    choices=("chrome", "jsonl"),
                    help="trace format: chrome (Perfetto-loadable "
                         "trace-event JSON) or jsonl (one event per "
                         "line)")
    ps.add_argument("--flight-recorder", type=int, default=0,
                    metavar="K",
                    help="bounded black-box telemetry: keep only the "
                         "last K spans/events in ring buffers (cheap "
                         "enough to leave on); on a breakdown the ring "
                         "is dumped into the solve report's resilience "
                         "section (0 = off)")
    ps.add_argument("--faults", default="",
                    help="JSON fault plan to inject during the solve "
                         "(see docs/resilience.md)")
    ps.add_argument("--recovery", default="off",
                    choices=("off", "restart", "degrade"),
                    help="recovery policy for injected/organic failures: "
                         "off = raise typed errors, restart = "
                         "checkpoint/rollback-restart, degrade = restart "
                         "+ structural degradation")
    ps.add_argument("--rhs-batch", type=int, default=1, metavar="K",
                    help="solve K right-hand sides through one "
                         "SolveSession (K > 1: block Krylov, or "
                         "sequential recycled solves with --recycle)")
    ps.add_argument("--recycle", action="store_true",
                    help="recycle harmonic Ritz vectors between "
                         "successive solves (GCRO-DR-style deflation "
                         "augmentation)")
    ps.add_argument("--backend", default="",
                    help="kernel backend for the solve-phase hot loops "
                         "(numpy, fp32, compiled; empty = "
                         "$REPRO_KERNEL_BACKEND or numpy — see "
                         "`repro backends` and docs/performance.md)")
    ps.add_argument("--coarse-strategy", default="",
                    help="how the coarse problem is solved (dense, "
                         "sparse, multilevel; empty = "
                         "$REPRO_COARSE_STRATEGY or dense — "
                         "multilevel pairs with --krylov fgmres; see "
                         "docs/performance.md)")
    ps.add_argument("--coarse-space", default="",
                    help="which coarse space is built (geneo, extended, "
                         "nicolaides; empty = $REPRO_COARSE_SPACE, or "
                         "auto: geneo for SPD operators, extended for "
                         "nonsymmetric/indefinite ones — see docs/api.md)")
    ps.add_argument("--peclet", type=float, default=0.0,
                    help="convdiff2d: advection strength |beta| "
                         "(0 = default 100)")
    ps.add_argument("--wavenumber", type=float, default=0.0,
                    help="helmholtz2d: wavenumber k (0 = default 10)")
    ps.set_defaults(fn=cmd_solve)

    pi = sub.add_parser("info", help="print problem statistics")
    common(pi)
    pi.add_argument("--decomposition", action="store_true",
                    help="also build the decomposition and report "
                         "overlap/neighbour statistics")
    pi.add_argument("--delta", type=int, default=1)
    pi.set_defaults(fn=cmd_info)

    pb = sub.add_parser("backends", help="probe the kernel backends and "
                                         "print the capability table")
    pb.set_defaults(fn=cmd_backends)

    pt = sub.add_parser("trace", help="render a telemetry trace "
                                      "(chrome or jsonl) as ASCII")
    pt.add_argument("path", help="trace file written by "
                                 "`solve --telemetry`")
    pt.add_argument("--width", type=int, default=78,
                    help="gantt chart width in characters")
    pt.add_argument("--max-tracks", type=int, default=16,
                    help="show at most this many tracks")
    pt.set_defaults(fn=cmd_trace)

    pr = sub.add_parser("report", help="one-page run analysis of a "
                                       "telemetry trace (critical path, "
                                       "imbalance, comm matrix, "
                                       "convergence)")
    pr.add_argument("path", help="trace file written by "
                                 "`solve --telemetry`")
    pr.add_argument("--format", default="ascii", choices=("ascii", "md"),
                    help="output format (md = GitHub-flavoured "
                         "markdown)")
    pr.add_argument("--width", type=int, default=78)
    pr.add_argument("--max-ranks", type=int, default=16,
                    help="show at most this many ranks in the comm "
                         "matrix")
    pr.set_defaults(fn=cmd_report)

    pm = sub.add_parser("metrics", help="OpenMetrics exposition of a "
                                        "telemetry trace's counters, "
                                        "gauges and span totals")
    pm.add_argument("path", help="trace file written by "
                                 "`solve --telemetry`")
    pm.add_argument("--json", action="store_true",
                    help="emit the JSON snapshot instead of OpenMetrics "
                         "text")
    pm.add_argument("--prefix", default="repro",
                    help="metric-name prefix (default: repro)")
    pm.add_argument("--check", action="store_true",
                    help="validate the exposition before printing")
    pm.set_defaults(fn=cmd_metrics)

    pg = sub.add_parser("regress", help="gate current bench JSONs "
                                        "against tracked baselines "
                                        "(exit 1 on a clear regression)")
    pg.add_argument("--baseline", default="",
                    help="one baseline BENCH_*.json")
    pg.add_argument("--current", default="",
                    help="the current run's BENCH_*.json")
    pg.add_argument("--baseline-dir", default="",
                    help="directory of tracked baselines (e.g. "
                         "results/)")
    pg.add_argument("--current-dir", default="benchmarks/results",
                    help="directory of fresh bench JSONs")
    pg.add_argument("--time-ratio", type=float, default=1.6,
                    help="a time metric regresses past baseline x this "
                         "(noise-tolerant default: 1.6)")
    pg.add_argument("--count-ratio", type=float, default=1.3,
                    help="a count metric regresses past baseline x "
                         "this + 2")
    pg.add_argument("--report", default="",
                    help="also write the markdown report to this path")
    pg.add_argument("--verbose", action="store_true",
                    help="list every gated metric, not just "
                         "regressions/improvements")
    pg.add_argument("--selftest", default="", metavar="BENCH_JSON",
                    help="verify the gate: inject a synthetic 2x "
                         "slowdown into this payload and require it to "
                         "be flagged")
    pg.set_defaults(fn=cmd_regress)

    pc = sub.add_parser("chaos", help="seeded chaos soak campaign over "
                                      "many fault-tolerant SPMD solves "
                                      "(exit 1 below the survival "
                                      "floor)")
    pc.add_argument("--solves", type=int, default=50,
                    help="number of campaign solves (default: 50)")
    pc.add_argument("--ranks", type=int, default=6,
                    help="SPMD ranks per solve (default: 6)")
    pc.add_argument("--seed", type=int, default=2013,
                    help="campaign seed; the whole fault sequence is a "
                         "pure function of it (default: 2013)")
    pc.add_argument("--kill-rate", type=float, default=0.35,
                    help="per-solve probability of a rank kill")
    pc.add_argument("--drop-rate", type=float, default=0.35,
                    help="per-solve probability of a transient message "
                         "drop")
    pc.add_argument("--delay-rate", type=float, default=0.25,
                    help="per-solve probability of a message delay")
    pc.add_argument("--corrupt-rate", type=float, default=0.10,
                    help="per-solve probability of a payload "
                         "corruption")
    pc.add_argument("--storm-rate", type=float, default=0.05,
                    help="per-solve probability of a retry-budget-"
                         "exceeding drop burst")
    pc.add_argument("--spares", type=int, default=2,
                    help="warm spare ranks per solve (default: 2)")
    pc.add_argument("--checkpoint-every", type=int, default=1,
                    help="replicate an iterate checkpoint every k "
                         "restart cycles; 0 disables checkpointing "
                         "(default: 1)")
    pc.add_argument("--timeout", type=float, default=5.0,
                    help="failure-detection timeout per solve "
                         "(default: 5.0 s)")
    pc.add_argument("--floor", type=float, default=0.95,
                    help="required survival rate (default: 0.95)")
    pc.add_argument("--n", type=int, default=12,
                    help="smoke-problem mesh resolution (default: 12)")
    pc.add_argument("--tol", type=float, default=1e-6,
                    help="solver tolerance (default: 1e-6)")
    pc.add_argument("--out", default="",
                    help="write the campaign report JSON here")
    pc.add_argument("--flight-recorder", type=int, default=0,
                    metavar="RING",
                    help="attach a flight recorder with this ring size")
    pc.add_argument("--flight-out", default="",
                    help="write the flight-recorder dump JSON here "
                         "(requires --flight-recorder)")
    pc.add_argument("--verbose", action="store_true",
                    help="print a line per solve")
    pc.set_defaults(fn=cmd_chaos)
    return p


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
