"""Simulated MPI substrate: thread-per-rank SPMD with metered traffic."""

from .meter import Meter, RankStats, payload_bytes
from .trace import Span, Tracer
from .simmpi import Comm, NeighborComm, Request, run_spmd, waitany

__all__ = [
    "Comm",
    "NeighborComm",
    "Request",
    "run_spmd",
    "waitany",
    "Meter",
    "RankStats",
    "payload_bytes",
    "Tracer",
    "Span",
]
