"""Traffic metering for the simulated MPI layer.

Every point-to-point message and collective is recorded per rank; the
performance model (:mod:`repro.perfmodel`) turns these counts into
modelled times, and the cost-analysis bench (§3.3 of the paper) asserts
the message-count/size formulas directly against them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..obs.recorder import NULL_RECORDER


def payload_bytes(obj) -> int:
    """Approximate wire size of a message payload."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if sp.issparse(obj):
        # sum the index/value arrays of whichever sparse layout this is
        # (CSR/CSC/BSR: data+indices+indptr, COO: data+row+col, DIA:
        # data+offsets) — the coarse-block payloads of §3.3 must count
        # as their wire size, not the 64-byte opaque fallback
        total = 0
        for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
            arr = getattr(obj, attr, None)
            if isinstance(arr, np.ndarray):
                total += arr.nbytes
        return int(total)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, complex, np.integer, np.floating)):
        return 8
    if isinstance(obj, (list, tuple)):
        return sum(payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_bytes(k) + payload_bytes(v) for k, v in obj.items())
    return 64  # opaque python object: flat estimate


@dataclass
class RankStats:
    """Per-rank communication counters."""

    sends: int = 0
    send_bytes: int = 0
    recvs: int = 0
    recv_bytes: int = 0
    collectives: dict[str, int] = field(default_factory=dict)
    collective_bytes: dict[str, int] = field(default_factory=dict)
    #: number of operations that synchronise the whole communicator
    global_syncs: int = 0
    #: injected faults observed on this rank, keyed by fault kind
    faults: dict[str, int] = field(default_factory=dict)
    #: sender-side retry attempts made by this rank (drop absorption)
    retries: int = 0
    #: point-to-point traffic by destination world rank (sends only —
    #: the matching recv is the destination's problem)
    peer_msgs: dict[int, int] = field(default_factory=dict)
    peer_bytes: dict[int, int] = field(default_factory=dict)

    def record_collective(self, kind: str, nbytes: int, *, is_global_sync: bool) -> None:
        self.collectives[kind] = self.collectives.get(kind, 0) + 1
        self.collective_bytes[kind] = (self.collective_bytes.get(kind, 0)
                                       + nbytes)
        if is_global_sync:
            self.global_syncs += 1


class Meter:
    """Thread-safe container of :class:`RankStats`, one per world rank.

    As an adapter over the unified telemetry layer, a meter constructed
    with a :class:`repro.obs.Recorder` additionally feeds the aggregate
    traffic counters ``mpi.sends`` / ``mpi.send_bytes`` / ``mpi.recvs``
    / ``mpi.recv_bytes`` / ``mpi.collective.<kind>`` /
    ``mpi.collective_bytes`` / ``mpi.global_syncs``; per-rank detail
    stays on :class:`RankStats`.
    """

    def __init__(self, world_size: int, *, recorder=None):
        self.world_size = world_size
        self._stats = [RankStats() for _ in range(world_size)]
        self._lock = threading.Lock()
        #: optional :class:`repro.mpi.trace.Tracer` for span recording
        self.tracer = None
        self.recorder = NULL_RECORDER if recorder is None else recorder
        #: fault-tolerance aggregates (whole-run, not per-rank)
        self.rank_deaths = 0
        self.repairs = 0
        self.ranks_replaced = 0
        self.retries_recovered = 0
        self.retries_exhausted = 0

    def stats(self, world_rank: int) -> RankStats:
        return self._stats[world_rank]

    def on_send(self, world_rank: int, nbytes: int,
                dest: int | None = None) -> None:
        s = self._stats[world_rank]
        with self._lock:
            s.sends += 1
            s.send_bytes += nbytes
            if dest is not None:
                s.peer_msgs[dest] = s.peer_msgs.get(dest, 0) + 1
                s.peer_bytes[dest] = s.peer_bytes.get(dest, 0) + nbytes
        rec = self.recorder
        if rec.enabled:
            rec.add("mpi.sends", 1)
            rec.add("mpi.send_bytes", nbytes)
            if dest is not None:
                # pair counters let a trace file alone reconstruct the
                # rank-to-rank matrix (repro.obs.analysis.comm_matrix)
                rec.add(f"mpi.pair_msgs.{world_rank}->{dest}", 1)
                rec.add(f"mpi.pair_bytes.{world_rank}->{dest}", nbytes)

    def on_recv(self, world_rank: int, nbytes: int) -> None:
        s = self._stats[world_rank]
        with self._lock:
            s.recvs += 1
            s.recv_bytes += nbytes
        rec = self.recorder
        if rec.enabled:
            rec.add("mpi.recvs", 1)
            rec.add("mpi.recv_bytes", nbytes)

    def on_collective(self, world_rank: int, kind: str, nbytes: int,
                      *, is_global_sync: bool) -> None:
        with self._lock:
            self._stats[world_rank].record_collective(
                kind, nbytes, is_global_sync=is_global_sync)
        rec = self.recorder
        if rec.enabled:
            rec.add(f"mpi.collective.{kind}", 1)
            rec.add("mpi.collective_bytes", nbytes)
            if is_global_sync:
                rec.add("mpi.global_syncs", 1)

    def on_fault(self, world_rank: int, kind: str, op: str) -> None:
        """An injected fault fired on *world_rank* (see
        :mod:`repro.resilience.faults`)."""
        if not 0 <= world_rank < self.world_size:
            world_rank = 0
        s = self._stats[world_rank]
        with self._lock:
            s.faults[kind] = s.faults.get(kind, 0) + 1
        rec = self.recorder
        if rec.enabled:
            rec.add(f"mpi.fault.{kind}", 1)

    def on_retry(self, world_rank: int) -> None:
        """One sender-side retry attempt after an injected drop."""
        if not 0 <= world_rank < self.world_size:
            world_rank = 0
        with self._lock:
            self._stats[world_rank].retries += 1
        rec = self.recorder
        if rec.enabled:
            rec.add("mpi.retry_attempts", 1)

    def on_retry_outcome(self, world_rank: int, recovered: bool) -> None:
        """The retry loop for one dropped message finished: either a
        later attempt got through (*recovered*) or the budget ran out
        and the message was lost for good."""
        with self._lock:
            if recovered:
                self.retries_recovered += 1
            else:
                self.retries_exhausted += 1
        rec = self.recorder
        if rec.enabled:
            rec.add("mpi.retry_recovered" if recovered
                    else "mpi.retry_exhausted", 1)

    def on_rank_death(self, world_rank: int) -> None:
        """A rank died (injected kill absorbed by the FT registry)."""
        with self._lock:
            self.rank_deaths += 1
        rec = self.recorder
        if rec.enabled:
            rec.add("mpi.rank_deaths", 1)

    def on_repair(self, nreplaced: int) -> None:
        """A communicator repair completed, substituting *nreplaced*
        spares for dead ranks."""
        with self._lock:
            self.repairs += 1
            self.ranks_replaced += nreplaced
        rec = self.recorder
        if rec.enabled:
            rec.add("mpi.repairs", 1)
            if nreplaced:
                rec.add("mpi.ranks_replaced", nreplaced)

    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        return sum(s.sends for s in self._stats)

    def total_bytes(self) -> int:
        return sum(s.send_bytes for s in self._stats)

    def total_collectives(self, kind: str | None = None) -> int:
        if kind is None:
            return sum(sum(s.collectives.values()) for s in self._stats)
        return sum(s.collectives.get(kind, 0) for s in self._stats)

    def max_global_syncs(self) -> int:
        """Max over ranks — the critical-path synchronisation count."""
        return max((s.global_syncs for s in self._stats), default=0)

    def total_faults(self) -> int:
        return sum(sum(s.faults.values()) for s in self._stats)

    def faults_by_kind(self) -> dict[str, int]:
        """Injected-fault counts aggregated over ranks, keyed by kind."""
        out: dict[str, int] = {}
        for s in self._stats:
            for kind, n in s.faults.items():
                out[kind] = out.get(kind, 0) + n
        return out

    def total_retries(self) -> int:
        return sum(s.retries for s in self._stats)

    def comm_matrix(self, weight: str = "bytes") -> np.ndarray:
        """Rank-to-rank point-to-point traffic matrix.

        ``M[i, j]`` is the bytes (``weight="bytes"``) or message count
        (``weight="messages"``) sent from world rank *i* to world rank
        *j*.  Collectives are metered separately (they are rendezvous
        operations, not pairwise messages) and do not appear here.
        """
        if weight not in ("bytes", "messages"):
            raise ValueError(f"unknown weight {weight!r}; expected "
                             f"'bytes' or 'messages'")
        M = np.zeros((self.world_size, self.world_size))
        for i, s in enumerate(self._stats):
            peers = s.peer_bytes if weight == "bytes" else s.peer_msgs
            for j, v in peers.items():
                if 0 <= j < self.world_size:
                    M[i, j] += v
        return M

    def summary(self) -> dict:
        out = {
            "messages": self.total_messages(),
            "bytes": self.total_bytes(),
            "collectives": self.total_collectives(),
            "max_global_syncs": self.max_global_syncs(),
        }
        nf = self.total_faults()
        if nf:
            out["faults"] = nf
        nr = self.total_retries()
        if nr:
            out["retries"] = nr
            out["retries_recovered"] = self.retries_recovered
            out["retries_exhausted"] = self.retries_exhausted
        if self.rank_deaths:
            out["rank_deaths"] = self.rank_deaths
        if self.repairs:
            out["repairs"] = self.repairs
            out["ranks_replaced"] = self.ranks_replaced
        return out
