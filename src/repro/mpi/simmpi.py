"""A simulated MPI: thread-per-rank SPMD execution with real messaging.

The paper's algorithms (the neighbour exchanges of eq. 5, the
master–slave coarse-operator assembly of algorithms 1–2, the fused
pipelined GMRES of §3.5) are written against message passing.  Running
them *literally* — each rank a thread, each message a queue transfer,
each collective a barrier rendezvous — keeps this reproduction honest:
the communication schedule exercised here is the one the paper describes,
and the attached :class:`~repro.mpi.meter.Meter` counts exactly the
traffic the paper's cost analysis (§3.3) predicts.

The API mirrors mpi4py's lowercase, pickle-object methods (see the
mpi4py tutorial): ``send/recv/isend/irecv``, ``bcast``, ``gather(v)``,
``scatter(v)``, ``allgather``, ``allreduce``, ``alltoall``, ``split``,
plus the MPI-3 ``dist_graph_create_adjacent`` + ``ineighbor_alltoall``
used in algorithm 1.

Fault tolerance (ULFM-style)
----------------------------
``run_spmd(..., ft=True)`` (implied by ``spares=K``) arms the
user-level failure-mitigation surface modelled on MPI-ULFM:

* a rank whose function raises its *own* :class:`RankFailure` (an
  injected kill) is marked **dead** in a shared failure registry
  instead of aborting the whole run; every blocking primitive on the
  surviving ranks then raises a typed :class:`RankFailure` naming the
  dead peer;
* :meth:`Comm.agree` is the survivor-only agreement collective (it
  completes even while peers are dying), :meth:`Comm.shrink` builds a
  new communicator over the survivors;
* :meth:`Comm.repair` revokes the world communicator, rendezvouses
  every survivor, substitutes parked **spare** worker threads for the
  dead world ranks, purges all mailboxes/barriers and resumes — the
  substitute's ``fn`` starts with ``comm.repair_plan`` set so it can
  join the application-level recovery protocol
  (:mod:`repro.core.spmd_ft`);
* a :class:`~repro.resilience.faults.RetryPolicy` (``retry=`` or the
  fault plan's ``retry`` entry) absorbs injected ``drop`` faults on
  the sender side with exponential backoff before they can escalate
  to a receive timeout.
"""

from __future__ import annotations

import queue
import threading
import time
from functools import reduce as _functools_reduce

import numpy as np

from ..common.errors import CommunicatorError, RankFailure
from .meter import Meter, payload_bytes

#: barrier/recv timeout (seconds): a blown deadline means a deadlock bug
_TIMEOUT = 300.0
_POLL = 0.0005
#: error-box poll period while blocked in recv — a peer's failure
#: surfaces within this many seconds, not after the blocking deadline
_ERR_POLL = 0.02


# ----------------------------------------------------------------------
# Reduction ops
# ----------------------------------------------------------------------

def _op_sum(a, b):
    return a + b


def _op_max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def _op_min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


_OPS = {"sum": _op_sum, "max": _op_max, "min": _op_min}


def _resolve_op(op):
    if callable(op):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise CommunicatorError(
            f"unknown reduction op {op!r} (expected 'sum', 'max', 'min' "
            "or a callable)") from None


# ----------------------------------------------------------------------
# Error propagation between rank threads
# ----------------------------------------------------------------------

class _ErrorBox:
    """First-failure box shared by all rank threads.

    :meth:`set` doubles as the abort broadcast: every blocking
    primitive (:meth:`Comm._mailbox_get`, :meth:`Comm._barrier_wait`,
    :func:`waitany`) polls :meth:`check` while waiting, so one rank's
    failure surfaces on every surviving rank as a typed
    :class:`~repro.common.errors.RankFailure` instead of a deadlock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.error: tuple[int, BaseException] | None = None

    def set(self, rank: int, exc: BaseException) -> None:
        with self._lock:
            if self.error is None:
                self.error = (rank, exc)

    def check(self) -> None:
        if self.error is not None:
            rank, exc = self.error
            raise RankFailure(
                f"rank {rank} failed: {exc!r}", rank=rank) from exc


# ----------------------------------------------------------------------
# Fault tolerance: failure registry, spare ranks, communicator repair
# ----------------------------------------------------------------------

class _SpareSlot:
    """One parked spare worker waiting to adopt a dead world rank."""

    __slots__ = ("sid", "event", "rank", "plan", "shutdown")

    def __init__(self, sid: int):
        self.sid = sid
        self.event = threading.Event()
        self.rank: int | None = None      # adopted world rank
        self.plan: dict | None = None     # repair plan at adoption time
        self.shutdown = False


class _FtState:
    """Shared fault-tolerance state of one ``run_spmd(ft=True)`` run.

    Tracks the dead set (world rank → exception), the revoked flag, the
    parked spares and every :class:`_Context` of the run (world plus
    splits/shrinks) so :meth:`do_repair` can purge mailboxes and reset
    barriers across the whole communicator tree.  All rendezvous
    (``agree``/``shrink``/``repair``) run through condition-variable
    *gates* keyed per context whose membership is re-evaluated as ranks
    die, so a mid-rendezvous death cannot hang the collective.
    """

    def __init__(self, meter: Meter | None, recorder):
        self.lock = threading.RLock()
        self.cond = threading.Condition(self.lock)
        self.meter = meter
        self.recorder = recorder
        self.dead: dict[int, BaseException] = {}
        self.finished: set[int] = set()
        self.revoked = False
        self.epoch = 0
        self.gates: dict[tuple, dict] = {}
        self.contexts: list["_Context"] = []
        self.spares: list[_SpareSlot] = []
        self.repairs: list[dict] = []
        self._first_death_ts: float | None = None

    def register(self, ctx: "_Context") -> None:
        with self.lock:
            self.contexts.append(ctx)

    def _wake(self) -> None:
        """Abort every barrier of the run so blocked ranks re-check the
        registry (the ULFM revoke/death broadcast)."""
        with self.lock:
            contexts = list(self.contexts)
        for c in contexts:
            c.barrier.abort()

    def live(self, ctx: "_Context") -> set[int]:
        """World ranks of *ctx* currently expected at a rendezvous."""
        return {w for w in ctx.world_ranks
                if w not in self.dead and w not in self.finished}

    def mark_dead(self, world_rank: int, exc: BaseException) -> None:
        with self.cond:
            if world_rank not in self.dead:
                self.dead[world_rank] = exc
                if self._first_death_ts is None:
                    self._first_death_ts = time.monotonic()
                if self.meter is not None:
                    self.meter.on_rank_death(world_rank)
                rec = self.recorder
                if rec is not None and rec.enabled:
                    rec.event("recovery.rank_death", attrs={
                        "rank": int(world_rank),
                        "op": getattr(exc, "op", None) or ""})
            self.cond.notify_all()
        self._wake()

    def mark_finished(self, world_rank: int) -> None:
        with self.cond:
            self.finished.add(world_rank)
            self.cond.notify_all()

    def revoke(self) -> None:
        with self.cond:
            self.revoked = True
            self.cond.notify_all()
        self._wake()

    # -- the repair transaction (runs under self.lock) -----------------
    def do_repair(self) -> dict:
        dead = sorted(self.dead)
        self.epoch += 1
        plan = {"ok": True, "epoch": self.epoch, "dead": dead,
                "replaced": {}, "repair_seconds": 0.0, "reason": ""}
        if self.finished:
            plan["ok"] = False
            plan["reason"] = (f"ranks {sorted(self.finished)} already "
                              "returned; cannot rejoin a repair")
        free = [s for s in self.spares if s.rank is None and not s.shutdown]
        if plan["ok"] and len(free) < len(dead):
            plan["ok"] = False
            plan["reason"] = (f"{len(dead)} dead rank(s) but only "
                              f"{len(free)} spare(s) left")
        if not plan["ok"]:
            # dead/revoked stay set: every survivor's next op fails and
            # the run aborts with the repair failure
            self.repairs.append(plan)
            return plan
        assigned = list(zip(dead, free))
        for r, slot in assigned:
            slot.rank = r
            plan["replaced"][r] = slot.sid
        for c in list(self.contexts):
            c.reset_for_repair()
        self.dead.clear()
        self.revoked = False
        if self._first_death_ts is not None:
            plan["repair_seconds"] = time.monotonic() - self._first_death_ts
        self._first_death_ts = None
        if self.meter is not None:
            self.meter.on_repair(len(dead))
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.event("recovery.comm_repair", attrs={
                "epoch": self.epoch,
                "dead": ",".join(map(str, dead)),
                "spares_used": len(dead),
                "spares_left": len(free) - len(dead)})
        self.repairs.append(plan)
        for r, slot in assigned:
            slot.plan = plan
            slot.event.set()
        return plan


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

class Request:
    """Handle for a non-blocking operation."""

    def wait(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def test(self) -> tuple[bool, object]:  # pragma: no cover - abstract
        raise NotImplementedError


class _DoneRequest(Request):
    """Already-complete request (buffered isend, eager iallreduce)."""

    def __init__(self, value=None):
        self._value = value

    def wait(self):
        return self._value

    def test(self):
        return True, self._value


class _RecvRequest(Request):
    def __init__(self, comm: "Comm", source: int, tag: int,
                 metered: bool = True):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value = None
        self._metered = metered

    def wait(self):
        if not self._done:
            self._value = self._comm._mailbox_get(
                self._source, self._tag, metered=self._metered)
            self._done = True
        return self._value

    def test(self):
        if self._done:
            return True, self._value
        got, value = self._comm._mailbox_poll(
            self._source, self._tag, metered=self._metered)
        if got:
            self._value = value
            self._done = True
        return self._done, self._value


def waitany(requests: list[Request]) -> tuple[int, object]:
    """Block until one of *requests* completes; returns ``(index, value)``.

    Completed requests must be removed/ignored by the caller (mirrors
    ``MPI_Waitany`` with inactive handles): a request already completed by
    an earlier :func:`waitany` is not returned twice if the caller marks
    it — here we simply return the first incomplete-turned-complete or
    already-complete request and leave bookkeeping to the caller, which in
    algorithms 1–2 tracks indices explicitly.
    """
    if not requests:
        raise CommunicatorError("waitany on empty request list")
    timeout = _TIMEOUT
    for rq in requests:
        comm = getattr(rq, "_comm", None)
        if comm is not None:
            timeout = comm._ctx.timeout
            break
    deadline = time.monotonic() + timeout
    while True:
        for i, rq in enumerate(requests):
            done, value = rq.test()
            if done:
                return i, value
        if time.monotonic() > deadline:
            # typed so fault-tolerant drivers can funnel a dropped
            # message (nobody died, the payload is just gone) into a
            # zero-dead communicator repair and re-send after rollback
            raise RankFailure("waitany timed out (dropped message or "
                              "dead peer?)", rank=-1, op="waitany")
        time.sleep(_POLL)


# ----------------------------------------------------------------------
# Communicator internals
# ----------------------------------------------------------------------

class _Context:
    """State shared by every rank of one communicator."""

    def __init__(self, world_ranks: tuple[int, ...], meter: Meter,
                 error_box: _ErrorBox, *, is_world: bool,
                 injector=None, timeout: float = _TIMEOUT,
                 ft: _FtState | None = None, poll: float = _ERR_POLL,
                 retry=None):
        self.world_ranks = world_ranks
        self.size = len(world_ranks)
        self.meter = meter
        self.error_box = error_box
        self.is_world = is_world
        #: optional :class:`repro.resilience.FaultInjector`
        self.injector = injector
        #: blocking-op deadline; tightened when a fault plan is active
        self.timeout = timeout
        #: shared fault-tolerance state (None on non-FT runs)
        self.ft = ft
        #: error-box/failure-registry poll period while blocked
        self.poll = poll
        #: optional :class:`repro.resilience.faults.RetryPolicy` for
        #: sender-side absorption of injected drops
        self.retry = retry
        self.barrier = threading.Barrier(self.size)
        self.slots: list = [None] * self.size
        self.lock = threading.Lock()
        self.mailboxes: dict[tuple[int, int, int], queue.SimpleQueue] = {}
        self.split_cache: dict = {}
        if ft is not None:
            ft.register(self)

    def reset_for_repair(self) -> None:
        """Purge in-flight state after a communicator repair: stale
        messages to/from the dead rank are discarded wholesale (the
        application-level recovery protocol re-sends what matters) and
        the barrier returns to its empty working state."""
        with self.lock:
            for q in self.mailboxes.values():
                while True:
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        break
            self.slots = [None] * self.size
        self.barrier.reset()


class Comm:
    """One rank's handle on a communicator (the SPMD-visible object)."""

    def __init__(self, ctx: _Context, rank: int):
        self._ctx = ctx
        self.rank = rank
        self.size = ctx.size
        self._split_count = 0
        #: set on a substituted spare's world comm: the repair plan it
        #: was adopted under (None on original ranks)
        self.repair_plan: dict | None = None
        #: True when this rank is a spare that adopted a dead world rank
        self.adopted = False

    # -- identity ------------------------------------------------------
    @property
    def world_rank(self) -> int:
        """This rank's id in the world communicator (for metering)."""
        return self._ctx.world_ranks[self.rank]

    @property
    def meter(self) -> Meter:
        return self._ctx.meter

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise CommunicatorError(
                f"{what} {r} out of range for communicator of size {self.size}")

    # -- fault tolerance -------------------------------------------------
    def _require_ft(self, what: str) -> _FtState:
        ft = self._ctx.ft
        if ft is None:
            raise CommunicatorError(
                f"{what} requires a fault-tolerant run "
                "(run_spmd(..., ft=True) or spares > 0)")
        return ft

    def _ft_check(self, *, peer: int | None = None) -> None:
        """Raise the typed failure when the communicator is revoked or a
        peer this operation depends on is dead (FT runs only)."""
        ft = self._ctx.ft
        if ft is None:
            return
        if ft.revoked:
            raise RankFailure(
                "communicator revoked for repair", rank=-1, op="revoked")
        if ft.dead:
            if peer is not None:
                wr = self._ctx.world_ranks[peer]
                if wr in ft.dead:
                    raise RankFailure(
                        f"peer world rank {wr} is dead", rank=wr, op="peer")
            else:
                wr = min(ft.dead)
                raise RankFailure(
                    f"world rank {wr} is dead", rank=wr, op="peer")

    # -- fault injection -------------------------------------------------
    def _fault(self, op: str, payload=None):
        """Fire the attached injector (if any) for one *op* call; may
        raise :class:`~repro.common.errors.RankFailure`, return a
        corrupted payload, or the DROP sentinel."""
        inj = self._ctx.injector
        if inj is None:
            return payload
        return inj.fire(op, self.world_rank, payload)

    def fault_point(self, op: str) -> None:
        """An explicit (payload-free) fault point — SPMD drivers tick
        ``comm.fault_point("iteration")`` once per Krylov iteration so
        *kill rank r at iteration k* plans apply."""
        self._fault(op)

    # -- point-to-point --------------------------------------------------
    def _mailbox(self, src: int, dst: int, tag: int) -> queue.SimpleQueue:
        key = (src, dst, tag)
        ctx = self._ctx
        with ctx.lock:
            q = ctx.mailboxes.get(key)
            if q is None:
                q = ctx.mailboxes[key] = queue.SimpleQueue()
            return q

    def send(self, obj, dest: int, tag: int = 0, *,
             _metered: bool = True) -> None:
        """Blocking (buffered) send.

        With a :class:`~repro.resilience.faults.RetryPolicy` attached
        (``run_spmd(retry=...)`` or the fault plan's ``retry`` entry) an
        injected drop is absorbed on the sender side: the send is
        re-attempted with exponential backoff up to ``max_retries``
        times before the message is finally lost (each attempt passes
        through the injector again, so the retry sequence is as
        deterministic as the fault plan)."""
        self._check_rank(dest, "dest")
        ctx = self._ctx
        self._ft_check(peer=dest)
        if ctx.injector is not None:
            from ..resilience.faults import DROP
            out = self._fault("send", obj)
            if out is DROP:        # injected message loss
                rp = ctx.retry
                if rp is None:
                    return         # never delivered: peer recv times out
                recovered = False
                for attempt in range(rp.max_retries):
                    self.meter.on_retry(self.world_rank)
                    time.sleep(rp.delay(attempt))
                    out = self._fault("send", obj)
                    if out is not DROP:
                        recovered = True
                        break
                self.meter.on_retry_outcome(self.world_rank, recovered)
                if not recovered:
                    return         # retry budget exhausted: message lost
            obj = out
        if _metered:
            self.meter.on_send(self.world_rank, payload_bytes(obj),
                               dest=self._ctx.world_ranks[dest])
        self._mailbox(self.rank, dest, tag).put(obj)

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (buffered: completes immediately)."""
        self.send(obj, dest, tag)
        return _DoneRequest()

    def _mailbox_get(self, source: int, tag: int, *, metered: bool = True):
        q = self._mailbox(source, self.rank, tag)
        deadline = time.monotonic() + self._ctx.timeout
        while True:
            # honor the shared error box (and, on FT runs, the failure
            # registry) on every poll cycle: a peer's failure surfaces
            # within ctx.poll seconds even while this rank is blocked
            # waiting for a message that will never come
            self._ctx.error_box.check()
            self._ft_check(peer=source)
            try:
                obj = q.get(timeout=self._ctx.poll)
            except queue.Empty:
                if time.monotonic() > deadline:
                    # report the peer's WORLD rank: failure handlers
                    # compare against comm.world_rank (own-death check)
                    raise RankFailure(
                        f"recv(source={source}, tag={tag}) timed out on rank "
                        f"{self.rank} after {self._ctx.timeout:.1f}s "
                        f"(dropped message or dead peer?)",
                        rank=self._ctx.world_ranks[source], op="recv") \
                        from None
                continue
            if self._ctx.injector is not None:
                obj = self._fault("recv", obj)
            if metered:
                self.meter.on_recv(self.world_rank, payload_bytes(obj))
            return obj

    def _mailbox_poll(self, source: int, tag: int, *, metered: bool = True):
        self._ctx.error_box.check()
        self._ft_check(peer=source)
        q = self._mailbox(source, self.rank, tag)
        try:
            obj = q.get_nowait()
        except queue.Empty:
            return False, None
        if self._ctx.injector is not None:
            obj = self._fault("recv", obj)
        if metered:
            self.meter.on_recv(self.world_rank, payload_bytes(obj))
        return True, obj

    def recv(self, source: int, tag: int = 0):
        """Blocking receive from *source*."""
        self._check_rank(source, "source")
        return self._mailbox_get(source, tag)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive."""
        self._check_rank(source, "source")
        return _RecvRequest(self, source, tag)

    # -- collectives -----------------------------------------------------
    def _barrier_wait(self) -> None:
        self._ctx.error_box.check()
        self._ft_check()
        try:
            self._ctx.barrier.wait(timeout=self._ctx.timeout)
        except threading.BrokenBarrierError:
            # the abort broadcast: a failed rank aborts the barrier so
            # survivors wake immediately and raise the typed failure
            self._ctx.error_box.check()
            self._ft_check()
            raise RankFailure("barrier broken (a rank died?)") from None

    def _exchange(self, value, op: str = "exchange"):
        """All ranks deposit *value*; returns the full slot list (shared,
        read-only by convention).  Two barriers protect slot reuse."""
        ctx = self._ctx
        if ctx.injector is not None:
            value = self._fault(op, value)
        ctx.slots[self.rank] = value
        self._barrier_wait()
        snapshot = list(ctx.slots)
        self._barrier_wait()
        return snapshot

    def _record(self, kind: str, nbytes: int) -> None:
        self.meter.on_collective(self.world_rank, kind, nbytes,
                                 is_global_sync=self._ctx.is_world)

    def barrier(self) -> None:
        self._record("barrier", 0)
        self._fault("barrier")
        self._barrier_wait()

    def bcast(self, obj, root: int = 0):
        self._check_rank(root, "root")
        self._record("bcast", payload_bytes(obj) if self.rank == root else 0)
        slots = self._exchange(obj if self.rank == root else None, "bcast")
        return slots[root]

    def gather(self, obj, root: int = 0, *, kind: str = "gather"):
        """Gather objects to *root*; returns the list on root, None elsewhere."""
        self._check_rank(root, "root")
        self._record(kind, payload_bytes(obj))
        slots = self._exchange(obj, kind)
        return slots if self.rank == root else None

    def gatherv(self, obj, root: int = 0):
        """Variable-count gather (metered separately: scales as O(N))."""
        return self.gather(obj, root, kind="gatherv")

    def scatter(self, objs, root: int = 0, *, kind: str = "scatter"):
        self._check_rank(root, "root")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError(
                    f"scatter root must pass {self.size} items")
            self._record(kind, payload_bytes(objs))
        else:
            self._record(kind, 0)
        slots = self._exchange(objs if self.rank == root else None, kind)
        return slots[root][self.rank]

    def scatterv(self, objs, root: int = 0):
        return self.scatter(objs, root, kind="scatterv")

    def allgather(self, obj):
        self._record("allgather", payload_bytes(obj))
        return self._exchange(obj, "allgather")

    def allgatherv(self, obj):
        self._record("allgatherv", payload_bytes(obj))
        return self._exchange(obj, "allgatherv")

    def allreduce(self, obj, op="sum"):
        fn = _resolve_op(op)
        self._record("allreduce", payload_bytes(obj))
        slots = self._exchange(obj, "allreduce")
        return _functools_reduce(fn, slots)

    def iallreduce(self, obj, op="sum") -> Request:
        """Non-blocking allreduce.

        Executed eagerly at the rendezvous (all ranks of this communicator
        still reach the call site, as in algorithm §3.5 where every master
        posts it before the coarse solve); the result is delivered through
        the returned request, and the meter records it as overlappable.
        """
        fn = _resolve_op(op)
        self._record("iallreduce", payload_bytes(obj))
        slots = self._exchange(obj, "iallreduce")
        return _DoneRequest(_functools_reduce(fn, slots))

    def reduce(self, obj, root: int = 0, op="sum"):
        fn = _resolve_op(op)
        self._check_rank(root, "root")
        self._record("reduce", payload_bytes(obj))
        slots = self._exchange(obj, "reduce")
        return _functools_reduce(fn, slots) if self.rank == root else None

    def alltoall(self, objs):
        if objs is None or len(objs) != self.size:
            raise CommunicatorError(f"alltoall needs {self.size} items")
        self._record("alltoall", payload_bytes(objs))
        slots = self._exchange(objs, "alltoall")
        return [slots[src][self.rank] for src in range(self.size)]

    # -- communicator management ----------------------------------------
    def split(self, color, key: int | None = None) -> "Comm | None":
        """Split into sub-communicators by *color*; ``None`` color returns
        ``None`` (the MPI_COMM_NULL of the paper's slave-side masterComm).

        The split generation (cache key) is agreed as the max over the
        participants' local counters: after a communicator repair a
        substitute rank starts from generation 0 while survivors have
        advanced, and the max-sync realigns them on the first collective
        re-split (on fault-free runs all counters are equal and this is
        the identity)."""
        self._split_count += 1
        if key is None:
            key = self.rank
        self._record("split", 0)
        infos = self._exchange((color, key, self.rank, self._split_count),
                               "split")
        gen = max(g for _, _, _, g in infos)
        self._split_count = gen
        if color is None:
            return None
        members = sorted((k, r) for c, k, r, _ in infos if c == color)
        ranks = [r for _, r in members]
        new_rank = ranks.index(self.rank)
        ctx = self._ctx
        cache_key = (gen, color)
        with ctx.lock:
            sub = ctx.split_cache.get(cache_key)
            if sub is None:
                sub = _Context(
                    tuple(ctx.world_ranks[r] for r in ranks),
                    ctx.meter, ctx.error_box, is_world=False,
                    injector=ctx.injector, timeout=ctx.timeout,
                    ft=ctx.ft, poll=ctx.poll, retry=ctx.retry)
                ctx.split_cache[cache_key] = sub
        return Comm(sub, new_rank)

    # -- ULFM-style fault-tolerance collectives ---------------------------
    def _ft_gather(self, name: str, value, finalize=None):
        """Survivor-only rendezvous: deposit *value*, wait until every
        live member of this communicator has deposited, return the
        ``{world_rank: value}`` map (or, with *finalize*, the result of
        running ``finalize(values)`` exactly once under the registry
        lock).  Membership is re-evaluated as ranks die, so a
        mid-rendezvous death cannot hang the collective — the ULFM
        ``MPI_Comm_agree`` completion guarantee."""
        ft = self._require_ft(f"{name}()")
        ctx = self._ctx
        wr = self.world_rank
        deadline = time.monotonic() + ctx.timeout
        key = (id(ctx), name)
        with ft.cond:
            gate = ft.gates.setdefault(
                key, {"gen": 0, "vals": {}, "out": None, "result": None})
            mygen = gate["gen"]
            gate["vals"][wr] = value
            ft.cond.notify_all()
            while gate["gen"] == mygen:
                if set(gate["vals"]) >= ft.live(ctx):
                    gate["out"] = dict(gate["vals"])
                    gate["result"] = (None if finalize is None
                                      else finalize(gate["out"]))
                    gate["vals"] = {}
                    gate["gen"] = mygen + 1
                    ft.cond.notify_all()
                    break
                if time.monotonic() > deadline:
                    raise CommunicatorError(
                        f"{name} rendezvous timed out (deadlock?)")
                ft.cond.wait(ctx.poll)
                ctx.error_box.check()
            if finalize is not None:
                return gate["result"]
            return dict(gate["out"])

    def agree(self, value, op: str = "and"):
        """Fault-tolerant agreement over the surviving ranks (ULFM
        ``MPI_Comm_agree``): completes even while peers are dying and
        returns the same reduced value on every survivor.  ``op="and"``
        is the ULFM bitwise/logical AND; ``sum``/``min``/``max`` are
        accepted too.  Contributions of ranks that die mid-call may or
        may not be included (as in ULFM)."""
        if op == "and":
            fn = lambda a, b: a & b                       # noqa: E731
        else:
            fn = _resolve_op(op)
        vals = self._ft_gather("agree", value)
        items = [v for _, v in sorted(vals.items())]
        return _functools_reduce(fn, items)

    def shrink(self) -> "Comm":
        """Build a new communicator over the surviving ranks of this one
        (ULFM ``MPI_Comm_shrink``).  Rank order follows ascending world
        rank; the result is a fully functional communicator excluding
        the dead."""
        ctx = self._ctx

        def finalize(vals):
            members = sorted(vals)
            sub = _Context(tuple(members), ctx.meter, ctx.error_box,
                           is_world=False, injector=ctx.injector,
                           timeout=ctx.timeout, ft=ctx.ft,
                           poll=ctx.poll, retry=ctx.retry)
            return members, sub

        members, sub = self._ft_gather("shrink", self.world_rank,
                                       finalize=finalize)
        return Comm(sub, members.index(self.world_rank))

    def repair(self) -> dict:
        """Revoke, rendezvous every survivor, substitute parked spares
        for the dead world ranks, and reset the communicator tree.

        Returns the repair *plan*: ``{"ok", "epoch", "dead", "replaced"
        (world rank → spare id), "repair_seconds"}``.  Every survivor
        gets the same plan; each substituted spare starts ``fn`` with
        the plan attached as ``comm.repair_plan``.  When the repair
        cannot complete (spares exhausted, a rank already returned) a
        :class:`RankFailure` is raised on every survivor and the run
        aborts with it.  Must be called on the world communicator by
        every live rank (survivors typically funnel here from the typed
        failure their next blocking operation raised)."""
        ft = self._require_ft("repair()")
        if not self._ctx.is_world:
            raise CommunicatorError(
                "repair() must be called on the world communicator")
        ft.revoke()
        plan = self._ft_gather("repair", self.world_rank,
                               finalize=lambda vals: ft.do_repair())
        if not plan["ok"]:
            raise RankFailure(
                f"communicator repair failed: {plan['reason']}",
                rank=-1, op="repair")
        return plan

    def dist_graph_create_adjacent(self, neighbors) -> "NeighborComm":
        """Attach a distributed-graph topology (MPI-3) to this communicator."""
        neighbors = [int(x) for x in neighbors]
        for nb in neighbors:
            self._check_rank(nb, "neighbor")
        return NeighborComm(self, neighbors)


class NeighborComm:
    """Communicator with distributed-graph topology for neighbourhood
    collectives (``MPI_Dist_graph_create_adjacent`` in algorithm 1)."""

    def __init__(self, comm: Comm, neighbors: list[int]):
        self.comm = comm
        self.neighbors = list(neighbors)

    def ineighbor_alltoall(self, values, tag: int = 7001) -> Request:
        """Exchange one value with each neighbour; request yields the list
        of received values in neighbour order."""
        if len(values) != len(self.neighbors):
            raise CommunicatorError(
                f"ineighbor_alltoall needs {len(self.neighbors)} values")
        comm = self.comm
        # one neighbourhood collective, not |O_i| point-to-point
        # messages: internal transfers bypass the p2p meter
        comm._record("ineighbor_alltoall", payload_bytes(values))
        for nb, v in zip(self.neighbors, values):
            comm.send(v, nb, tag, _metered=False)
        reqs = [_RecvRequest(comm, nb, tag, metered=False)
                for nb in self.neighbors]

        class _Agg(Request):
            def __init__(self, reqs):
                self._reqs = reqs

            def wait(self):
                return [r.wait() for r in self._reqs]

            def test(self):
                vals = []
                for r in self._reqs:
                    done, v = r.test()
                    if not done:
                        return False, None
                    vals.append(v)
                return True, vals

        return _Agg(reqs)

    def neighbor_alltoall(self, values, tag: int = 7001):
        return self.ineighbor_alltoall(values, tag).wait()


# ----------------------------------------------------------------------
# SPMD driver
# ----------------------------------------------------------------------

def run_spmd(nranks: int, fn, *args, meter: Meter | None = None,
             recorder=None, faults=None, spares: int = 0,
             ft: bool | None = None, retry=None,
             poll_interval: float | None = None, **kwargs) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on *nranks* simulated ranks.

    Each rank executes in its own thread against a shared world
    communicator.  Returns the list of per-rank return values.  The first
    rank failure is re-raised (other ranks are unblocked through the
    shared error box).

    Passing a :class:`repro.obs.Recorder` as *recorder* instruments the
    run end to end: the (possibly auto-created) meter feeds the ``mpi.*``
    traffic counters, and a per-rank :class:`~repro.mpi.trace.Tracer` is
    attached (unless the caller already set one) so rank spans land on
    the shared timeline as ``rank{r}`` tracks.

    Passing a :class:`repro.resilience.FaultPlan` (or a ready
    :class:`~repro.resilience.FaultInjector`) as *faults* arms
    deterministic fault injection on every communicator operation, and
    tightens the blocking-op deadline to ``plan.timeout`` so injected
    failures surface as typed
    :class:`~repro.common.errors.RankFailure` errors instead of
    deadlocks.

    Fault tolerance: ``spares=K`` parks K warm spare workers that can
    adopt a dead rank's world rank through :meth:`Comm.repair`;
    ``ft=True`` enables the failure registry without spares (shrink-only
    recovery).  ``retry`` (a
    :class:`~repro.resilience.faults.RetryPolicy`, a dict, or an int
    retry budget) arms sender-side retry/backoff absorption of injected
    drops; when omitted, an armed fault plan's own ``retry`` policy is
    used.  ``poll_interval`` overrides the 20 ms error-box poll period
    used while blocked in a communicator call; a fault plan's timeout
    must be at least 4x the poll period so short-timeout plans cannot
    race the poller.

    On a fault-tolerant run, ranks that died without being repaired do
    NOT abort the run once the survivors return: their slot in the
    result list is ``None`` and callers decide whether partial results
    are acceptable.  Errors other than an injected own-death (assertion
    failures, peer-observed failures the caller did not absorb) abort
    the run as before.
    """
    if nranks < 1:
        raise CommunicatorError(f"nranks must be >= 1, got {nranks}")
    if spares < 0:
        raise CommunicatorError(f"spares must be >= 0, got {spares}")
    ft_enabled = bool(spares) if ft is None else bool(ft)
    poll = _ERR_POLL if poll_interval is None else float(poll_interval)
    if poll <= 0:
        raise CommunicatorError(
            f"poll_interval must be > 0, got {poll_interval}")
    if meter is None:
        meter = Meter(nranks, recorder=recorder)
    elif recorder is not None and not meter.recorder.enabled:
        meter.recorder = recorder
    if recorder is not None and recorder.enabled and meter.tracer is None:
        from .trace import Tracer
        meter.tracer = Tracer(nranks, recorder=recorder)
    injector = None
    timeout = _TIMEOUT
    if faults is not None:
        from ..resilience.faults import as_injector
        injector = as_injector(faults, meter=meter, recorder=recorder)
        timeout = injector.timeout
        if timeout < 4 * poll:
            raise CommunicatorError(
                f"fault-plan timeout {timeout}s is below 4x the error "
                f"poll period {poll}s; blocked ranks could time out "
                "before ever polling the failure registry "
                "(raise plan.timeout or lower poll_interval)")
    if retry is None and injector is not None:
        retry = getattr(injector.plan, "retry", None)
    if retry is not None:
        from ..resilience.faults import as_retry
        retry = as_retry(retry)
    error_box = _ErrorBox()
    ftstate = _FtState(meter, recorder) if ft_enabled else None
    ctx = _Context(tuple(range(nranks)), meter, error_box, is_world=True,
                   injector=injector, timeout=timeout,
                   ft=ftstate, poll=poll, retry=retry)
    results: list = [None] * nranks

    def fail(rank: int, exc: BaseException) -> None:
        error_box.set(rank, exc)
        if ftstate is not None:
            ftstate._wake()
        else:
            ctx.barrier.abort()

    def worker(rank: int, slot: _SpareSlot | None = None):
        comm = Comm(ctx, rank)
        if slot is not None:
            comm.repair_plan = slot.plan
            comm.adopted = True
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            if (ftstate is not None and isinstance(exc, RankFailure)
                    and exc.rank == rank):
                # an injected kill of THIS rank: record the death and let
                # the survivors repair/shrink around it.  Peer-observed
                # failures carry the peer's rank (or -1) and fall through
                # to the error box as unrecovered errors.
                ftstate.mark_dead(rank, exc)
            else:
                fail(rank, exc)
        else:
            if ftstate is not None:
                ftstate.mark_finished(rank)

    def spare_worker(slot: _SpareSlot):
        while True:
            slot.event.wait()
            slot.event.clear()
            if slot.shutdown:
                return
            if slot.rank is not None:
                worker(slot.rank, slot)
                return

    threads = [threading.Thread(target=worker, args=(r,), daemon=True,
                                name=f"spmd-rank-{r}")
               for r in range(nranks)]
    spare_threads: list[threading.Thread] = []
    if ftstate is not None:
        for s in range(spares):
            slot = _SpareSlot(s)
            ftstate.spares.append(slot)
            t = threading.Thread(target=spare_worker, args=(slot,),
                                 daemon=True, name=f"spmd-spare-{s}")
            spare_threads.append(t)
    for t in threads:
        t.start()
    for t in spare_threads:
        t.start()
    try:
        for t in threads:
            t.join(timeout=_TIMEOUT)
            if t.is_alive():  # pragma: no cover - deadlock guard
                fail(-1, TimeoutError("rank thread failed to join"))
        if ftstate is not None:
            # adopted spares run the same fn and must finish too
            while True:
                with ftstate.lock:
                    active = [s for s in ftstate.spares
                              if s.rank is not None and not s.shutdown]
                busy = [t for s, t in zip(ftstate.spares, spare_threads)
                        if s.rank is not None and t.is_alive()]
                if not busy:
                    break
                for t in busy:
                    t.join(timeout=_TIMEOUT)
                    if t.is_alive():  # pragma: no cover - deadlock guard
                        fail(-1, TimeoutError(
                            "substituted spare failed to join"))
                        break
                else:
                    continue
                break
            del active
    finally:
        if ftstate is not None:
            with ftstate.lock:
                for s in ftstate.spares:
                    s.shutdown = True
                    s.event.set()
            for t in spare_threads:
                t.join(timeout=5.0)
    if error_box.error is not None:
        rank, exc = error_box.error
        raise exc
    return results
