"""A simulated MPI: thread-per-rank SPMD execution with real messaging.

The paper's algorithms (the neighbour exchanges of eq. 5, the
master–slave coarse-operator assembly of algorithms 1–2, the fused
pipelined GMRES of §3.5) are written against message passing.  Running
them *literally* — each rank a thread, each message a queue transfer,
each collective a barrier rendezvous — keeps this reproduction honest:
the communication schedule exercised here is the one the paper describes,
and the attached :class:`~repro.mpi.meter.Meter` counts exactly the
traffic the paper's cost analysis (§3.3) predicts.

The API mirrors mpi4py's lowercase, pickle-object methods (see the
mpi4py tutorial): ``send/recv/isend/irecv``, ``bcast``, ``gather(v)``,
``scatter(v)``, ``allgather``, ``allreduce``, ``alltoall``, ``split``,
plus the MPI-3 ``dist_graph_create_adjacent`` + ``ineighbor_alltoall``
used in algorithm 1.
"""

from __future__ import annotations

import queue
import threading
import time
from functools import reduce as _functools_reduce

import numpy as np

from ..common.errors import CommunicatorError, RankFailure
from .meter import Meter, payload_bytes

#: barrier/recv timeout (seconds): a blown deadline means a deadlock bug
_TIMEOUT = 300.0
_POLL = 0.0005
#: error-box poll period while blocked in recv — a peer's failure
#: surfaces within this many seconds, not after the blocking deadline
_ERR_POLL = 0.02


# ----------------------------------------------------------------------
# Reduction ops
# ----------------------------------------------------------------------

def _op_sum(a, b):
    return a + b


def _op_max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def _op_min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


_OPS = {"sum": _op_sum, "max": _op_max, "min": _op_min}


def _resolve_op(op):
    if callable(op):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise CommunicatorError(
            f"unknown reduction op {op!r} (expected 'sum', 'max', 'min' "
            "or a callable)") from None


# ----------------------------------------------------------------------
# Error propagation between rank threads
# ----------------------------------------------------------------------

class _ErrorBox:
    """First-failure box shared by all rank threads.

    :meth:`set` doubles as the abort broadcast: every blocking
    primitive (:meth:`Comm._mailbox_get`, :meth:`Comm._barrier_wait`,
    :func:`waitany`) polls :meth:`check` while waiting, so one rank's
    failure surfaces on every surviving rank as a typed
    :class:`~repro.common.errors.RankFailure` instead of a deadlock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.error: tuple[int, BaseException] | None = None

    def set(self, rank: int, exc: BaseException) -> None:
        with self._lock:
            if self.error is None:
                self.error = (rank, exc)

    def check(self) -> None:
        if self.error is not None:
            rank, exc = self.error
            raise RankFailure(
                f"rank {rank} failed: {exc!r}", rank=rank) from exc


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

class Request:
    """Handle for a non-blocking operation."""

    def wait(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def test(self) -> tuple[bool, object]:  # pragma: no cover - abstract
        raise NotImplementedError


class _DoneRequest(Request):
    """Already-complete request (buffered isend, eager iallreduce)."""

    def __init__(self, value=None):
        self._value = value

    def wait(self):
        return self._value

    def test(self):
        return True, self._value


class _RecvRequest(Request):
    def __init__(self, comm: "Comm", source: int, tag: int,
                 metered: bool = True):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value = None
        self._metered = metered

    def wait(self):
        if not self._done:
            self._value = self._comm._mailbox_get(
                self._source, self._tag, metered=self._metered)
            self._done = True
        return self._value

    def test(self):
        if self._done:
            return True, self._value
        got, value = self._comm._mailbox_poll(
            self._source, self._tag, metered=self._metered)
        if got:
            self._value = value
            self._done = True
        return self._done, self._value


def waitany(requests: list[Request]) -> tuple[int, object]:
    """Block until one of *requests* completes; returns ``(index, value)``.

    Completed requests must be removed/ignored by the caller (mirrors
    ``MPI_Waitany`` with inactive handles): a request already completed by
    an earlier :func:`waitany` is not returned twice if the caller marks
    it — here we simply return the first incomplete-turned-complete or
    already-complete request and leave bookkeeping to the caller, which in
    algorithms 1–2 tracks indices explicitly.
    """
    if not requests:
        raise CommunicatorError("waitany on empty request list")
    timeout = _TIMEOUT
    for rq in requests:
        comm = getattr(rq, "_comm", None)
        if comm is not None:
            timeout = comm._ctx.timeout
            break
    deadline = time.monotonic() + timeout
    while True:
        for i, rq in enumerate(requests):
            done, value = rq.test()
            if done:
                return i, value
        if time.monotonic() > deadline:  # pragma: no cover - deadlock guard
            raise CommunicatorError("waitany timed out (deadlock?)")
        time.sleep(_POLL)


# ----------------------------------------------------------------------
# Communicator internals
# ----------------------------------------------------------------------

class _Context:
    """State shared by every rank of one communicator."""

    def __init__(self, world_ranks: tuple[int, ...], meter: Meter,
                 error_box: _ErrorBox, *, is_world: bool,
                 injector=None, timeout: float = _TIMEOUT):
        self.world_ranks = world_ranks
        self.size = len(world_ranks)
        self.meter = meter
        self.error_box = error_box
        self.is_world = is_world
        #: optional :class:`repro.resilience.FaultInjector`
        self.injector = injector
        #: blocking-op deadline; tightened when a fault plan is active
        self.timeout = timeout
        self.barrier = threading.Barrier(self.size)
        self.slots: list = [None] * self.size
        self.lock = threading.Lock()
        self.mailboxes: dict[tuple[int, int, int], queue.SimpleQueue] = {}
        self.split_cache: dict = {}


class Comm:
    """One rank's handle on a communicator (the SPMD-visible object)."""

    def __init__(self, ctx: _Context, rank: int):
        self._ctx = ctx
        self.rank = rank
        self.size = ctx.size
        self._split_count = 0

    # -- identity ------------------------------------------------------
    @property
    def world_rank(self) -> int:
        """This rank's id in the world communicator (for metering)."""
        return self._ctx.world_ranks[self.rank]

    @property
    def meter(self) -> Meter:
        return self._ctx.meter

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise CommunicatorError(
                f"{what} {r} out of range for communicator of size {self.size}")

    # -- fault injection -------------------------------------------------
    def _fault(self, op: str, payload=None):
        """Fire the attached injector (if any) for one *op* call; may
        raise :class:`~repro.common.errors.RankFailure`, return a
        corrupted payload, or the DROP sentinel."""
        inj = self._ctx.injector
        if inj is None:
            return payload
        return inj.fire(op, self.world_rank, payload)

    def fault_point(self, op: str) -> None:
        """An explicit (payload-free) fault point — SPMD drivers tick
        ``comm.fault_point("iteration")`` once per Krylov iteration so
        *kill rank r at iteration k* plans apply."""
        self._fault(op)

    # -- point-to-point --------------------------------------------------
    def _mailbox(self, src: int, dst: int, tag: int) -> queue.SimpleQueue:
        key = (src, dst, tag)
        ctx = self._ctx
        with ctx.lock:
            q = ctx.mailboxes.get(key)
            if q is None:
                q = ctx.mailboxes[key] = queue.SimpleQueue()
            return q

    def send(self, obj, dest: int, tag: int = 0, *,
             _metered: bool = True) -> None:
        """Blocking (buffered) send."""
        self._check_rank(dest, "dest")
        if self._ctx.injector is not None:
            obj = self._fault("send", obj)
            from ..resilience.faults import DROP
            if obj is DROP:        # injected message loss: never delivered
                return
        if _metered:
            self.meter.on_send(self.world_rank, payload_bytes(obj),
                               dest=self._ctx.world_ranks[dest])
        self._mailbox(self.rank, dest, tag).put(obj)

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (buffered: completes immediately)."""
        self.send(obj, dest, tag)
        return _DoneRequest()

    def _mailbox_get(self, source: int, tag: int, *, metered: bool = True):
        q = self._mailbox(source, self.rank, tag)
        deadline = time.monotonic() + self._ctx.timeout
        while True:
            # honor the shared error box on every poll cycle: a peer's
            # failure surfaces within _ERR_POLL seconds even while this
            # rank is blocked waiting for a message that will never come
            self._ctx.error_box.check()
            try:
                obj = q.get(timeout=_ERR_POLL)
            except queue.Empty:
                if time.monotonic() > deadline:
                    raise RankFailure(
                        f"recv(source={source}, tag={tag}) timed out on rank "
                        f"{self.rank} after {self._ctx.timeout:.1f}s "
                        f"(dropped message or dead peer?)",
                        rank=source, op="recv") from None
                continue
            if self._ctx.injector is not None:
                obj = self._fault("recv", obj)
            if metered:
                self.meter.on_recv(self.world_rank, payload_bytes(obj))
            return obj

    def _mailbox_poll(self, source: int, tag: int, *, metered: bool = True):
        self._ctx.error_box.check()
        q = self._mailbox(source, self.rank, tag)
        try:
            obj = q.get_nowait()
        except queue.Empty:
            return False, None
        if self._ctx.injector is not None:
            obj = self._fault("recv", obj)
        if metered:
            self.meter.on_recv(self.world_rank, payload_bytes(obj))
        return True, obj

    def recv(self, source: int, tag: int = 0):
        """Blocking receive from *source*."""
        self._check_rank(source, "source")
        return self._mailbox_get(source, tag)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive."""
        self._check_rank(source, "source")
        return _RecvRequest(self, source, tag)

    # -- collectives -----------------------------------------------------
    def _barrier_wait(self) -> None:
        self._ctx.error_box.check()
        try:
            self._ctx.barrier.wait(timeout=self._ctx.timeout)
        except threading.BrokenBarrierError:
            # the abort broadcast: a failed rank aborts the barrier so
            # survivors wake immediately and raise the typed failure
            self._ctx.error_box.check()
            raise RankFailure("barrier broken (a rank died?)") from None

    def _exchange(self, value, op: str = "exchange"):
        """All ranks deposit *value*; returns the full slot list (shared,
        read-only by convention).  Two barriers protect slot reuse."""
        ctx = self._ctx
        if ctx.injector is not None:
            value = self._fault(op, value)
        ctx.slots[self.rank] = value
        self._barrier_wait()
        snapshot = list(ctx.slots)
        self._barrier_wait()
        return snapshot

    def _record(self, kind: str, nbytes: int) -> None:
        self.meter.on_collective(self.world_rank, kind, nbytes,
                                 is_global_sync=self._ctx.is_world)

    def barrier(self) -> None:
        self._record("barrier", 0)
        self._fault("barrier")
        self._barrier_wait()

    def bcast(self, obj, root: int = 0):
        self._check_rank(root, "root")
        self._record("bcast", payload_bytes(obj) if self.rank == root else 0)
        slots = self._exchange(obj if self.rank == root else None, "bcast")
        return slots[root]

    def gather(self, obj, root: int = 0, *, kind: str = "gather"):
        """Gather objects to *root*; returns the list on root, None elsewhere."""
        self._check_rank(root, "root")
        self._record(kind, payload_bytes(obj))
        slots = self._exchange(obj, kind)
        return slots if self.rank == root else None

    def gatherv(self, obj, root: int = 0):
        """Variable-count gather (metered separately: scales as O(N))."""
        return self.gather(obj, root, kind="gatherv")

    def scatter(self, objs, root: int = 0, *, kind: str = "scatter"):
        self._check_rank(root, "root")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError(
                    f"scatter root must pass {self.size} items")
            self._record(kind, payload_bytes(objs))
        else:
            self._record(kind, 0)
        slots = self._exchange(objs if self.rank == root else None, kind)
        return slots[root][self.rank]

    def scatterv(self, objs, root: int = 0):
        return self.scatter(objs, root, kind="scatterv")

    def allgather(self, obj):
        self._record("allgather", payload_bytes(obj))
        return self._exchange(obj, "allgather")

    def allgatherv(self, obj):
        self._record("allgatherv", payload_bytes(obj))
        return self._exchange(obj, "allgatherv")

    def allreduce(self, obj, op="sum"):
        fn = _resolve_op(op)
        self._record("allreduce", payload_bytes(obj))
        slots = self._exchange(obj, "allreduce")
        return _functools_reduce(fn, slots)

    def iallreduce(self, obj, op="sum") -> Request:
        """Non-blocking allreduce.

        Executed eagerly at the rendezvous (all ranks of this communicator
        still reach the call site, as in algorithm §3.5 where every master
        posts it before the coarse solve); the result is delivered through
        the returned request, and the meter records it as overlappable.
        """
        fn = _resolve_op(op)
        self._record("iallreduce", payload_bytes(obj))
        slots = self._exchange(obj, "iallreduce")
        return _DoneRequest(_functools_reduce(fn, slots))

    def reduce(self, obj, root: int = 0, op="sum"):
        fn = _resolve_op(op)
        self._check_rank(root, "root")
        self._record("reduce", payload_bytes(obj))
        slots = self._exchange(obj, "reduce")
        return _functools_reduce(fn, slots) if self.rank == root else None

    def alltoall(self, objs):
        if objs is None or len(objs) != self.size:
            raise CommunicatorError(f"alltoall needs {self.size} items")
        self._record("alltoall", payload_bytes(objs))
        slots = self._exchange(objs, "alltoall")
        return [slots[src][self.rank] for src in range(self.size)]

    # -- communicator management ----------------------------------------
    def split(self, color, key: int | None = None) -> "Comm | None":
        """Split into sub-communicators by *color*; ``None`` color returns
        ``None`` (the MPI_COMM_NULL of the paper's slave-side masterComm)."""
        self._split_count += 1
        gen = self._split_count
        if key is None:
            key = self.rank
        self._record("split", 0)
        infos = self._exchange((color, key, self.rank), "split")
        if color is None:
            return None
        members = sorted((k, r) for c, k, r in infos if c == color)
        ranks = [r for _, r in members]
        new_rank = ranks.index(self.rank)
        ctx = self._ctx
        cache_key = (gen, color)
        with ctx.lock:
            sub = ctx.split_cache.get(cache_key)
            if sub is None:
                sub = _Context(
                    tuple(ctx.world_ranks[r] for r in ranks),
                    ctx.meter, ctx.error_box, is_world=False,
                    injector=ctx.injector, timeout=ctx.timeout)
                ctx.split_cache[cache_key] = sub
        return Comm(sub, new_rank)

    def dist_graph_create_adjacent(self, neighbors) -> "NeighborComm":
        """Attach a distributed-graph topology (MPI-3) to this communicator."""
        neighbors = [int(x) for x in neighbors]
        for nb in neighbors:
            self._check_rank(nb, "neighbor")
        return NeighborComm(self, neighbors)


class NeighborComm:
    """Communicator with distributed-graph topology for neighbourhood
    collectives (``MPI_Dist_graph_create_adjacent`` in algorithm 1)."""

    def __init__(self, comm: Comm, neighbors: list[int]):
        self.comm = comm
        self.neighbors = list(neighbors)

    def ineighbor_alltoall(self, values, tag: int = 7001) -> Request:
        """Exchange one value with each neighbour; request yields the list
        of received values in neighbour order."""
        if len(values) != len(self.neighbors):
            raise CommunicatorError(
                f"ineighbor_alltoall needs {len(self.neighbors)} values")
        comm = self.comm
        # one neighbourhood collective, not |O_i| point-to-point
        # messages: internal transfers bypass the p2p meter
        comm._record("ineighbor_alltoall", payload_bytes(values))
        for nb, v in zip(self.neighbors, values):
            comm.send(v, nb, tag, _metered=False)
        reqs = [_RecvRequest(comm, nb, tag, metered=False)
                for nb in self.neighbors]

        class _Agg(Request):
            def __init__(self, reqs):
                self._reqs = reqs

            def wait(self):
                return [r.wait() for r in self._reqs]

            def test(self):
                vals = []
                for r in self._reqs:
                    done, v = r.test()
                    if not done:
                        return False, None
                    vals.append(v)
                return True, vals

        return _Agg(reqs)

    def neighbor_alltoall(self, values, tag: int = 7001):
        return self.ineighbor_alltoall(values, tag).wait()


# ----------------------------------------------------------------------
# SPMD driver
# ----------------------------------------------------------------------

def run_spmd(nranks: int, fn, *args, meter: Meter | None = None,
             recorder=None, faults=None, **kwargs) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on *nranks* simulated ranks.

    Each rank executes in its own thread against a shared world
    communicator.  Returns the list of per-rank return values.  The first
    rank failure is re-raised (other ranks are unblocked through the
    shared error box).

    Passing a :class:`repro.obs.Recorder` as *recorder* instruments the
    run end to end: the (possibly auto-created) meter feeds the ``mpi.*``
    traffic counters, and a per-rank :class:`~repro.mpi.trace.Tracer` is
    attached (unless the caller already set one) so rank spans land on
    the shared timeline as ``rank{r}`` tracks.

    Passing a :class:`repro.resilience.FaultPlan` (or a ready
    :class:`~repro.resilience.FaultInjector`) as *faults* arms
    deterministic fault injection on every communicator operation, and
    tightens the blocking-op deadline to ``plan.timeout`` so injected
    failures surface as typed
    :class:`~repro.common.errors.RankFailure` errors instead of
    deadlocks.
    """
    if nranks < 1:
        raise CommunicatorError(f"nranks must be >= 1, got {nranks}")
    if meter is None:
        meter = Meter(nranks, recorder=recorder)
    elif recorder is not None and not meter.recorder.enabled:
        meter.recorder = recorder
    if recorder is not None and recorder.enabled and meter.tracer is None:
        from .trace import Tracer
        meter.tracer = Tracer(nranks, recorder=recorder)
    injector = None
    timeout = _TIMEOUT
    if faults is not None:
        from ..resilience.faults import as_injector
        injector = as_injector(faults, meter=meter, recorder=recorder)
        timeout = injector.timeout
    error_box = _ErrorBox()
    ctx = _Context(tuple(range(nranks)), meter, error_box, is_world=True,
                   injector=injector, timeout=timeout)
    results: list = [None] * nranks

    def worker(rank: int):
        comm = Comm(ctx, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            error_box.set(rank, exc)
            ctx.barrier.abort()

    threads = [threading.Thread(target=worker, args=(r,), daemon=True)
               for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=_TIMEOUT)
        if t.is_alive():  # pragma: no cover - deadlock guard
            error_box.set(-1, TimeoutError("rank thread failed to join"))
            ctx.barrier.abort()
    if error_box.error is not None:
        rank, exc = error_box.error
        raise exc
    return results
