"""Per-rank execution tracing for SPMD runs.

A :class:`Tracer` attached to the :class:`~repro.mpi.meter.Meter`
records labelled time spans per rank (local solves, exchanges, coarse
corrections…), and renders them as an ASCII Gantt chart — the poor
man's Vampir for inspecting what the fused pipeline of §3.5 actually
overlaps.

As an adapter over the unified telemetry layer, a tracer constructed
with a :class:`repro.obs.Recorder` forwards every rank span onto the
shared timeline (track ``rank{r}``, nesting with whatever span is open
on that rank's thread), so SPMD traces export next to setup and solve
spans in one Chrome trace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects labelled spans per world rank.

    ``recorder`` (optional :class:`repro.obs.Recorder`) mirrors every
    span onto the unified timeline under track ``rank{r}``.
    """

    world_size: int
    spans: list[list[Span]] = field(default_factory=list)
    recorder: object | None = None

    def __post_init__(self):
        if not self.spans:
            self.spans = [[] for _ in range(self.world_size)]
        self._t0 = time.perf_counter()

    @contextmanager
    def span(self, rank: int, label: str):
        rec = self.recorder
        handle = rec.span(label, track=f"rank{rank}").__enter__() \
            if rec is not None and rec.enabled else None
        start = time.perf_counter() - self._t0
        try:
            yield
        finally:
            end = time.perf_counter() - self._t0
            if handle is not None:
                handle.__exit__(None, None, None)
            self.spans[rank].append(Span(label, start, end))

    # ------------------------------------------------------------------
    def totals(self, rank: int) -> dict[str, float]:
        """Accumulated seconds per label on one rank."""
        out: dict[str, float] = {}
        for s in self.spans[rank]:
            out[s.label] = out.get(s.label, 0.0) + s.duration
        return out

    def summary(self) -> dict[str, float]:
        """Per-label totals, max over ranks (the critical path view)."""
        out: dict[str, float] = {}
        for r in range(self.world_size):
            for label, secs in self.totals(r).items():
                out[label] = max(out.get(label, 0.0), secs)
        return out

    def gantt(self, *, width: int = 78, max_ranks: int = 16) -> str:
        """ASCII Gantt chart: one row per rank, distinct glyph per label."""
        all_spans = [s for row in self.spans for s in row]
        if not all_spans:
            return "(no spans recorded)"
        t_end = max(s.end for s in all_spans)
        t_begin = min(s.start for s in all_spans)
        horizon = max(t_end - t_begin, 1e-12)
        labels = []
        for row in self.spans:
            for s in row:
                if s.label not in labels:
                    labels.append(s.label)
        glyphs = "#*+o=%@&x~"
        glyph = {lab: glyphs[i % len(glyphs)]
                 for i, lab in enumerate(labels)}
        lines = []
        for r, row in enumerate(self.spans[:max_ranks]):
            chars = [" "] * width
            for s in row:
                c0 = int((s.start - t_begin) / horizon * (width - 1))
                c1 = max(c0, int((s.end - t_begin) / horizon * (width - 1)))
                for c in range(c0, c1 + 1):
                    chars[c] = glyph[s.label]
            lines.append(f"rank {r:3d} |" + "".join(chars) + "|")
        if self.world_size > max_ranks:
            lines.append(f"... ({self.world_size - max_ranks} more ranks)")
        legend = "   ".join(f"[{glyph[lab]}] {lab}" for lab in labels)
        lines.append("          0" + " " * (width - 12) +
                     f"{horizon * 1e3:.1f} ms")
        lines.append("  " + legend)
        return "\n".join(lines)
