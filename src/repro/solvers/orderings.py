"""Fill-reducing orderings for sparse factorizations.

The paper leans on MUMPS/PARDISO/PaStiX, which bring their own orderings;
our band-Cholesky backend uses a from-scratch reverse Cuthill–McKee to
compress the envelope.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def reverse_cuthill_mckee(A: sp.spmatrix) -> np.ndarray:
    """RCM permutation of a symmetric sparsity pattern.

    BFS from a pseudo-peripheral vertex, visiting neighbours in order of
    increasing degree, then reversed.  Returns ``perm`` such that
    ``A[perm][:, perm]`` has a small bandwidth.
    """
    A = A.tocsr()
    n = A.shape[0]
    indptr, indices = A.indptr, A.indices
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    while len(order) < n:
        # start the next component at its minimum-degree unvisited vertex
        remaining = np.flatnonzero(~visited)
        start = remaining[int(np.argmin(degree[remaining]))]
        start = _pseudo_peripheral(indptr, indices, degree, start, visited)
        queue = [int(start)]
        visited[start] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            nbrs = indices[indptr[v]:indptr[v + 1]]
            nbrs = nbrs[~visited[nbrs]]
            nbrs = nbrs[np.argsort(degree[nbrs], kind="stable")]
            for u in nbrs:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
    return np.asarray(order[::-1], dtype=np.int64)


def _pseudo_peripheral(indptr, indices, degree, start, visited_mask):
    """Find a far-away low-degree start vertex within one component."""
    for _ in range(2):
        dist = _bfs(indptr, indices, start, visited_mask)
        far = np.flatnonzero(dist == dist.max())
        start = far[int(np.argmin(degree[far]))]
    return start


def _bfs(indptr, indices, source, visited_mask):
    n = len(indptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue = [int(source)]
    while queue:
        v = queue.pop(0)
        for u in indices[indptr[v]:indptr[v + 1]]:
            if dist[u] == -1 and not visited_mask[u]:
                dist[u] = dist[v] + 1
                queue.append(int(u))
    return np.where(dist < 0, 0, dist)


def bandwidth(A: sp.spmatrix) -> int:
    """Half-bandwidth max |i - j| over nonzeros."""
    coo = A.tocoo()
    if coo.nnz == 0:
        return 0
    return int(np.max(np.abs(coo.row - coo.col)))
