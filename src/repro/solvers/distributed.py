"""Distributed dense Cholesky over the master communicator.

Plays the role of MUMPS/PaStiX/PWSMP on ``masterComm`` in the paper: the
coarse operator E, assembled block-row-distributed over the P masters, is
factorised cooperatively and each coarse solve is a pipelined forward/back
substitution.  The layout is the paper's: master p owns the contiguous
row range of its splitComm slaves.

The algorithm is a fan-out block Cholesky:

* step p: owner factorises its diagonal block, broadcasts the triangle;
* every later master solves for its panel blocks (triangular solve);
* the panel column is allgathered and the trailing submatrix updated.

Masters only *retain* their own row blocks (O(n²/P) memory each); the
allgathered panel is transient.  The substitution phases are pipelined
row-block by row-block.  This reproduces the qualitative behaviour the
paper reports: distributed direct solvers stop scaling beyond ~hundred
ranks because the panel broadcast serialises.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..common.errors import SolverError
from ..mpi.simmpi import Comm


class DistributedCholesky:
    """Block-row distributed Cholesky ``E = L Lᵀ`` on a communicator.

    Parameters
    ----------
    comm:
        The master communicator (each rank one master).
    row_starts:
        ``(P + 1,)`` global row offsets; rank p owns rows
        ``[row_starts[p], row_starts[p+1])``.
    local_rows:
        This rank's dense row block, shape ``(m_p, n)``.
    """

    def __init__(self, comm: Comm, row_starts: np.ndarray,
                 local_rows: np.ndarray):
        self.comm = comm
        self.row_starts = np.asarray(row_starts, dtype=np.int64)
        self.n = int(self.row_starts[-1])
        P = comm.size
        if self.row_starts.shape != (P + 1,):
            raise SolverError(
                f"row_starts must have shape ({P + 1},), got "
                f"{self.row_starts.shape}")
        p = comm.rank
        self.r0 = int(self.row_starts[p])
        self.r1 = int(self.row_starts[p + 1])
        m = self.r1 - self.r0
        local_rows = np.array(local_rows, dtype=np.float64, copy=True)
        if local_rows.shape != (m, self.n):
            raise SolverError(
                f"local_rows must have shape ({m}, {self.n}), got "
                f"{local_rows.shape}")
        #: bytes this rank received through the factorization collectives
        #: (panel triangle broadcasts + panel allgathers)
        self.bytes_factorize = 0
        #: cumulative bytes received across every :meth:`solve` call
        self.bytes_solve = 0
        #: bytes of the most recent :meth:`solve` call
        self.last_solve_bytes = 0
        self._factorize(local_rows)

    # ------------------------------------------------------------------
    def _factorize(self, S: np.ndarray) -> None:
        comm = self.comm
        P = comm.size
        rank = comm.rank
        rs = self.row_starts
        for p in range(P):
            c0, c1 = int(rs[p]), int(rs[p + 1])
            if c1 == c0:
                comm.bcast(None, root=p)     # keep collective schedule aligned
                comm.allgather(None)
                continue
            if rank == p:
                diag = S[c0 - self.r0:c1 - self.r0, c0:c1]
                try:
                    Lpp = sla.cholesky(diag, lower=True)
                except np.linalg.LinAlgError as exc:
                    raise SolverError(
                        f"coarse operator not SPD at panel {p}: {exc}"
                    ) from exc
                S[c0 - self.r0:c1 - self.r0, c0:c1] = Lpp
                # zero strict upper part of the panel rows beyond the block
                S[c0 - self.r0:c1 - self.r0, c1:] = 0.0
                Lpp_b = comm.bcast(Lpp, root=p)
            else:
                Lpp_b = comm.bcast(None, root=p)
            self.bytes_factorize += 8 * Lpp_b.size
            # panel solve on my rows strictly below the diagonal block
            if rank > p and self.r1 > self.r0:
                blk = S[:, c0:c1]
                # L_rp = S_rp Lpp^{-T}
                S[:, c0:c1] = sla.solve_triangular(
                    Lpp_b, blk.T, lower=True).T
            my_panel = (S[:, c0:c1] if rank > p
                        else np.zeros((0, c1 - c0)))
            panels = comm.allgather(my_panel)
            self.bytes_factorize += 8 * sum(
                blk.size for q, blk in enumerate(panels) if q != rank)
            if rank > p:
                # trailing update: S_r,q -= L_r,p L_q,pᵀ for all q > p
                Lrp = S[:, c0:c1]
                for q in range(p + 1, P):
                    q0, q1 = int(rs[q]), int(rs[q + 1])
                    if q1 == q0:
                        continue
                    Lqp = panels[q]
                    S[:, q0:q1] -= Lrp @ Lqp.T
        # retain only my row block of L (lower triangle part of my rows)
        self.L_rows = S
        # zero the strict upper triangle within my rows for cleanliness
        for j in range(self.r0, self.r1):
            self.L_rows[j - self.r0, j + 1:] = 0.0
        self.nnz_factor = int(np.count_nonzero(self.L_rows))

    # ------------------------------------------------------------------
    def solve(self, b_local: np.ndarray) -> np.ndarray:
        """Solve ``E x = b`` with *b* distributed by row blocks; returns
        this rank's block of x.

        *b_local* may be one RHS vector ``(m,)`` or a column block
        ``(m, k)`` — the whole block goes through ONE pipelined
        forward/backward sweep (the triangular solves and panel
        broadcasts amortise over the k columns), which is the multi-RHS
        property the block Krylov drivers rely on.
        """
        comm = self.comm
        P = comm.size
        rank = comm.rank
        rs = self.row_starts
        m = self.r1 - self.r0
        b_local = np.asarray(b_local, dtype=np.float64)
        single = b_local.ndim == 1
        k = 1 if single else int(b_local.shape[1])
        b = np.array(b_local, dtype=np.float64, copy=True).reshape(m, k)
        bytes0 = self.bytes_solve

        # forward: L y = b, pipelined over row blocks
        y_parts = []
        for p in range(P):
            c0, c1 = int(rs[p]), int(rs[p + 1])
            if c1 == c0:
                comm.bcast(None, root=p)
                y_parts.append(np.zeros((0, k)))
                continue
            if rank == p:
                Lpp = self.L_rows[:, c0:c1]
                y_p = sla.solve_triangular(Lpp, b, lower=True)
                y_p = comm.bcast(y_p, root=p)
            else:
                y_p = comm.bcast(None, root=p)
                self.bytes_solve += 8 * y_p.size
            y_parts.append(y_p)
            if rank > p and m:
                b -= self.L_rows[:, c0:c1] @ y_p
        y = y_parts[rank] if m else np.zeros((0, k))

        # backward: Lᵀ x = y; master q sends L_qpᵀ x_q contributions down
        acc = np.zeros((m, k))
        x_local = np.zeros((m, k))
        for q in range(P - 1, -1, -1):
            c0, c1 = int(rs[q]), int(rs[q + 1])
            if rank == q and m:
                Lqq = self.L_rows[:, c0:c1]
                x_local = sla.solve_triangular(Lqq.T, y - acc, lower=False)
                # send my contributions L_q,pᵀ x_q to every earlier master
                for p in range(q):
                    p0, p1 = int(rs[p]), int(rs[p + 1])
                    if p1 == p0:
                        continue
                    contrib = self.L_rows[:, p0:p1].T @ x_local
                    comm.send(contrib, dest=p, tag=40_000 + q)
            elif rank < q and m and int(rs[q + 1]) > int(rs[q]):
                recv = comm.recv(source=q, tag=40_000 + q)
                self.bytes_solve += 8 * recv.size
                acc += recv
        self.last_solve_bytes = self.bytes_solve - bytes0
        return x_local[:, 0] if single else x_local
