"""Up-looking sparse LDLᵀ factorization (CSparse-style), from scratch.

This is the reference implementation of the role MUMPS/PARDISO play in
the paper: factorise each local matrix once, then apply many forward
eliminations / back substitutions.  The symbolic phase computes the
elimination tree; the numeric phase is the classical up-looking row
algorithm, solving one sparse triangular system per row along the
elimination-tree reach.

Being pure Python it is the slow backend — production paths default to
the band or SuperLU backends — but it is exact, handles LDLᵀ without
pivoting (intended for SPD and shifted semi-definite matrices), exposes
inertia and factor fill, and anchors the test suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import SolverError


def elimination_tree(A_upper: sp.csc_matrix) -> np.ndarray:
    """Elimination tree from an upper-triangular pattern (CSC).

    ``parent[j]`` is the parent column of j (or -1 for roots); Liu's
    algorithm with ancestor path compression.
    """
    A = A_upper.tocsc()
    n = A.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = A.indptr, A.indices
    for k in range(n):
        for p in range(indptr[k], indptr[k + 1]):
            i = indices[p]
            while i != -1 and i < k:
                nxt = ancestor[i]
                ancestor[i] = k
                if nxt == -1:
                    parent[i] = k
                i = nxt
    return parent


def _row_reach(row_indices, k, parent, flag):
    """Columns touched when solving for row k: the union of elimination-
    tree paths from the structural entries of A[k, :k], sorted ascending
    (ascending index order is a topological order since parent[j] > j)."""
    out = []
    for i in row_indices:
        j = int(i)
        if j >= k:
            continue
        while j != -1 and j < k and flag[j] != k:
            flag[j] = k
            out.append(j)
            j = parent[j]
    out.sort()
    return out


class SparseLDL:
    """LDLᵀ factorization ``P A Pᵀ = L D Lᵀ`` without pivoting.

    Parameters
    ----------
    A:
        Symmetric matrix (full pattern; only the upper triangle is read).
    perm:
        Optional fill-reducing permutation.
    shift:
        Diagonal shift added before factorising (used to regularise
        semi-definite Neumann matrices).
    """

    def __init__(self, A: sp.spmatrix, perm: np.ndarray | None = None,
                 shift: float = 0.0):
        A = sp.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise SolverError(f"matrix must be square, got {A.shape}")
        n = self.n = A.shape[0]
        if perm is None:
            perm = np.arange(n)
        self.perm = np.asarray(perm, dtype=np.int64)
        Ap = A[self.perm][:, self.perm]
        if shift:
            Ap = Ap + shift * sp.eye(n, format="csr")
        # lower triangle by rows: row k lists A[k, j <= k]
        Alow = sp.tril(Ap, format="csr")
        Aup = sp.triu(Ap, format="csc")
        self.parent = elimination_tree(Aup)
        self._factorize(Alow)
        self._Lcsr = self.L.tocsr()
        self._LTcsr = self.L.T.tocsr()
        #: compiled in-place LDLᵀ solve (see :meth:`enable_compiled_solve`)
        self._compiled = None

    def _factorize(self, Alow: sp.csr_matrix) -> None:
        n = self.n
        parent = self.parent
        indptr, indices, data = Alow.indptr, Alow.indices, Alow.data
        D = np.zeros(n)
        flag = np.full(n, -1, dtype=np.int64)
        x = np.zeros(n)
        # L stored by columns as growing lists (rows appended ascending)
        col_rows: list[list[int]] = [[] for _ in range(n)]
        col_vals: list[list[float]] = [[] for _ in range(n)]

        for k in range(n):
            lo, hi = indptr[k], indptr[k + 1]
            row_idx = indices[lo:hi]
            reach = _row_reach(row_idx, k, parent, flag)
            dk = 0.0
            for p in range(lo, hi):
                j = indices[p]
                if j == k:
                    dk = data[p]
                else:
                    x[j] = data[p]
            # forward substitution L[:k, :k] w = A[k, :k]ᵀ along the reach
            for j in reach:
                wj = x[j]
                x[j] = 0.0
                if wj == 0.0:
                    # still record the structural zero? skip: keeps L sparser
                    continue
                rows_j = col_rows[j]
                vals_j = col_vals[j]
                for t in range(len(rows_j)):
                    r = rows_j[t]
                    if flag[r] == k:      # update confined to the reach
                        x[r] -= vals_j[t] * wj
                Lkj = wj / D[j]
                dk -= Lkj * wj
                rows_j.append(k)
                vals_j.append(Lkj)
            if dk == 0.0:
                raise SolverError(
                    f"zero pivot at column {k}; matrix is singular "
                    "(use a shift for semi-definite Neumann matrices)")
            D[k] = dk
        self.D = D
        nnz_per_col = np.fromiter((len(r) for r in col_rows), dtype=np.int64,
                                  count=n)
        indptr_L = np.concatenate([[0], np.cumsum(nnz_per_col)])
        if indptr_L[-1]:
            rows = np.concatenate([np.asarray(r, dtype=np.int64)
                                   for r in col_rows if r])
            vals = np.concatenate([np.asarray(v) for v in col_vals if v])
        else:
            rows = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0)
        self.L = sp.csc_matrix((vals, rows, indptr_L), shape=(n, n))

    # ------------------------------------------------------------------
    def enable_compiled_solve(self, lib=None) -> bool:
        """Export the factor to the compiled kernel layout and route
        every subsequent :meth:`solve` through it.

        The factor is stored diag-less (unit diagonal implied) with D
        separate; the C kernel (:mod:`repro.kernels.csrc`) wants the
        SuperLU convention — CSC with the diagonal entry first in every
        column plus an inverse-diagonal array — so the hook materialises
        that layout once (explicit unit diagonal spliced in per column,
        ``dinv = 1/D``).  Returns ``False``, leaving the pure-scipy
        solve in place, when no compiled library is available.
        """
        if lib is None:
            from ..kernels.csrc import load_library
            lib = load_library()
        if lib is None:
            return False
        import ctypes as ct
        n = self.n
        L = self.L
        indptr = np.ascontiguousarray(L.indptr + np.arange(n + 1),
                                      dtype=np.int32)
        rowind = np.ascontiguousarray(
            np.insert(L.indices, L.indptr[:-1], np.arange(n)),
            dtype=np.int32)
        lval = np.ascontiguousarray(
            np.insert(L.data, L.indptr[:-1], 1.0), dtype=np.float64)
        dinv = np.ascontiguousarray(1.0 / self.D)

        def p(a):
            return a.ctypes.data_as(ct.POINTER(
                ct.c_int32 if a.dtype == np.int32 else ct.c_double))

        fn = lib.ldl_solve_f64
        args = (p(indptr), p(rowind), p(lval), p(dinv))
        n_ct = ct.c_int32(n)
        arrays = (indptr, rowind, lval, dinv)   # pin array lifetimes

        def run(z: np.ndarray) -> None:
            fn(*args, p(z), n_ct)

        self._compiled = (run, arrays)
        return True

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (b may be a matrix of right-hand sides)."""
        b = np.asarray(b, dtype=np.float64)
        squeeze = b.ndim == 1
        B = b.reshape(self.n, -1)
        if self._compiled is not None:
            run = self._compiled[0]
            out = np.empty_like(B)
            for c in range(B.shape[1]):
                z = np.ascontiguousarray(B[self.perm, c])
                run(z)
                out[self.perm, c] = z
            return out[:, 0] if squeeze else out
        Bp = B[self.perm]
        Y = sp.linalg.spsolve_triangular(self._Lcsr, Bp, lower=True,
                                         unit_diagonal=True)
        Y = Y.reshape(self.n, -1) / self.D[:, None]
        Z = sp.linalg.spsolve_triangular(self._LTcsr, Y, lower=False,
                                         unit_diagonal=True)
        Z = Z.reshape(self.n, -1)
        out = np.empty_like(Z)
        out[self.perm] = Z
        return out[:, 0] if squeeze else out

    @property
    def nnz_factor(self) -> int:
        """nnz(L) + n — the paper's nnz(E⁻¹) metric (fig. 11)."""
        return int(self.L.nnz + self.n)

    def inertia(self) -> tuple[int, int, int]:
        """(#positive, #negative, #zero) pivots of D."""
        return (int(np.sum(self.D > 0)), int(np.sum(self.D < 0)),
                int(np.sum(self.D == 0)))
