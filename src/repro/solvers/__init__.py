"""Direct-solver substrate (the paper's MUMPS/PARDISO/PaStiX/WSMP role)."""

from .distributed import DistributedCholesky
from .ldl import SparseLDL, elimination_tree
from .local import (
    BACKENDS,
    BandCholeskyFactorization,
    DenseFactorization,
    Factorization,
    LDLFactorization,
    SuperLUFactorization,
    factorize,
)
from .orderings import bandwidth, reverse_cuthill_mckee

__all__ = [
    "factorize",
    "Factorization",
    "SuperLUFactorization",
    "BandCholeskyFactorization",
    "LDLFactorization",
    "DenseFactorization",
    "BACKENDS",
    "SparseLDL",
    "elimination_tree",
    "DistributedCholesky",
    "reverse_cuthill_mckee",
    "bandwidth",
]
