"""Uniform factorization interface over the local direct-solver backends.

The paper swaps direct solvers freely (MUMPS, PaStiX, the two PARDISOs,
WSMP) behind one "factorise, then solve many times" contract.  We provide
the same contract with four backends:

* ``"superlu"`` — scipy's SuperLU (the fast production default),
* ``"band"``    — RCM reordering + LAPACK band Cholesky (envelope method),
* ``"ldl"``     — the from-scratch up-looking sparse LDLᵀ,
* ``"dense"``   — LAPACK Cholesky/LU on the densified matrix (tiny systems).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..common.errors import SolverError
from .ldl import SparseLDL
from .orderings import bandwidth, reverse_cuthill_mckee

BACKENDS = ("superlu", "band", "ldl", "dense")


class Factorization:
    """Abstract handle: ``solve(b)`` for vectors or column blocks."""

    n: int
    nnz_factor: int

    def solve(self, b: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class SuperLUFactorization(Factorization):
    def __init__(self, A: sp.spmatrix, shift: float = 0.0):
        A = sp.csc_matrix(A)
        if shift:
            A = (A + shift * sp.eye(A.shape[0], format="csc")).tocsc()
        self.n = A.shape[0]
        try:
            self._lu = spla.splu(A)
        except RuntimeError as exc:
            raise SolverError(f"SuperLU factorization failed: {exc}") from exc
        self.nnz_factor = int(self._lu.L.nnz + self._lu.U.nnz)

    def solve(self, b):
        b = np.asarray(b, dtype=np.float64)
        if b.ndim == 1:
            return self._lu.solve(b)
        return self._lu.solve(np.ascontiguousarray(b))


class BandCholeskyFactorization(Factorization):
    """RCM + LAPACK banded Cholesky — the classic envelope direct solver."""

    def __init__(self, A: sp.spmatrix, shift: float = 0.0):
        A = sp.csr_matrix(A)
        self.n = A.shape[0]
        if shift:
            A = A + shift * sp.eye(self.n, format="csr")
        self.perm = reverse_cuthill_mckee(A)
        Ap = A[self.perm][:, self.perm].tocoo()
        kd = bandwidth(Ap)
        self.kd = kd
        ab = np.zeros((kd + 1, self.n))
        upper = Ap.row <= Ap.col
        r, c, v = Ap.row[upper], Ap.col[upper], Ap.data[upper]
        ab[kd + r - c, c] = v           # LAPACK upper-banded storage
        try:
            self._cb = sla.cholesky_banded(ab, lower=False)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"band Cholesky failed (matrix not SPD?): {exc}") from exc
        self.nnz_factor = int((kd + 1) * self.n)

    def solve(self, b):
        b = np.asarray(b, dtype=np.float64)
        squeeze = b.ndim == 1
        B = b.reshape(self.n, -1)
        X = sla.cho_solve_banded((self._cb, False), B[self.perm])
        out = np.empty_like(X)
        out[self.perm] = X
        return out[:, 0] if squeeze else out


class LDLFactorization(Factorization):
    def __init__(self, A: sp.spmatrix, shift: float = 0.0):
        A = sp.csr_matrix(A)
        self.n = A.shape[0]
        perm = reverse_cuthill_mckee(A)
        self._ldl = SparseLDL(A, perm=perm, shift=shift)
        self.nnz_factor = self._ldl.nnz_factor

    def solve(self, b):
        return self._ldl.solve(b)


class DenseFactorization(Factorization):
    def __init__(self, A, shift: float = 0.0):
        Ad = A.toarray() if sp.issparse(A) else np.asarray(A, dtype=np.float64)
        self.n = Ad.shape[0]
        if shift:
            Ad = Ad + shift * np.eye(self.n)
        try:
            self._c = sla.cho_factor(Ad)
            self._sym = True
        except np.linalg.LinAlgError:
            self._lu = sla.lu_factor(Ad)
            self._sym = False
        self.nnz_factor = self.n * self.n

    def solve(self, b):
        b = np.asarray(b, dtype=np.float64)
        if self._sym:
            return sla.cho_solve(self._c, b)
        return sla.lu_solve(self._lu, b)


_BACKEND_CLASSES = {
    "superlu": SuperLUFactorization,
    "band": BandCholeskyFactorization,
    "ldl": LDLFactorization,
    "dense": DenseFactorization,
}


def factorize(A, method: str = "superlu", shift: float = 0.0) -> Factorization:
    """Factorise *A* with the chosen backend (see module docstring)."""
    try:
        cls = _BACKEND_CLASSES[method]
    except KeyError:
        raise SolverError(f"unknown solver backend {method!r}; "
                          f"expected one of {BACKENDS}") from None
    return cls(A, shift=shift)
