"""The ``compiled`` kernel backend: fp64 compiled hot loops.

Full double precision everywhere — numerically interchangeable with the
reference backend up to factorization ordering — but the RAS local
solves run through the symmetric-mode LDLᵀ factor (4–5× fewer factor
nonzeros than the default COLAMD LU) applied by the compiled C kernels
with fused permutation/gather/scatter, and the coarse solve through the
same compiled path.

This backend is only constructible when the kernel library builds (a C
toolchain on the host); :func:`repro.kernels.get_backend` degrades to
``numpy`` with a logged warning otherwise — the graceful-fallback
pattern of optional native bridges.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import SolverError
from ..common.validation import matrix_is_symmetric
from ..solvers.local import factorize
from .base import KernelBackend
from .csrc import load_library
from .factor import (
    FusedLocalApply,
    PlainLocalApply,
    SymmetricLDLFactorization,
    probe_factorization,
)
from .fp32 import make_ldl_coarse_solve

#: fp64 LDLᵀ of an SPD matrix should be near machine precision; a loose
#: miss means symmetric no-pivot mode was the wrong tool for this matrix
LOCAL_PROBE_TOL = 1e-8


class CompiledBackend(KernelBackend):
    """fp64 backend with compiled LDLᵀ solves and fused RAS apply."""

    name = "compiled"
    precision = "fp64"
    compiled = True

    def __init__(self, recorder=None):
        super().__init__(recorder)
        lib = load_library()
        if lib is None:  # pragma: no cover - guarded by the registry
            from .registry import BackendUnavailable
            raise BackendUnavailable("compiled kernel library unavailable")
        self._lib = lib

    def factorize_local(self, A, method: str = "superlu",
                        shift: float = 0.0):
        if shift:
            A = (sp.csr_matrix(A)
                 + shift * sp.eye(A.shape[0], format="csr"))
        if not matrix_is_symmetric(A):
            # explicit asymmetry gate (see Fp32Backend.factorize_local):
            # symmetric no-pivot mode is structurally wrong for
            # nonsymmetric matrices; use general-mode LU instead
            if self.recorder.enabled:
                self.recorder.add("kernel.compiled_nonsymmetric_locals", 1)
            return factorize(A, method)
        try:
            fact = SymmetricLDLFactorization(A, dtype=np.float64,
                                             lib=self._lib)
            if probe_factorization(fact, A, LOCAL_PROBE_TOL):
                return fact
        except SolverError:
            pass
        if self.recorder.enabled:
            self.recorder.add("kernel.compiled_fallbacks", 1)
        return factorize(A, method)

    def fuse_ras(self, factorizations, subdomains):
        handles = []
        for fact, s in zip(factorizations, subdomains):
            if isinstance(fact, SymmetricLDLFactorization) \
                    and fact._lib is not None:
                handles.append(FusedLocalApply(fact, s.dofs, s.d))
            else:
                handles.append(PlainLocalApply(fact, s.dofs, s.d))
        return handles

    def note_ras_apply(self, total_local_dofs: int,
                       columns: int = 1) -> None:
        if self.recorder.enabled:
            self.recorder.add("kernel.compiled_local_applies", columns)

    def make_coarse_solve(self, coarse):
        return make_ldl_coarse_solve(self, coarse, np.float64,
                                     LOCAL_PROBE_TOL)
