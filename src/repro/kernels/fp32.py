"""The ``fp32`` mixed-precision kernel backend.

Single-precision arithmetic inside a double-precision outer Krylov loop
(the inexact-preconditioning regime FGMRES was built for, and which
plain right-preconditioned GMRES tolerates as benign noise for a *fixed*
reduced-precision M):

* **local solves** — symmetric-mode LDLᵀ factors cast to fp32, applied
  by the compiled kernels when the toolchain is available (fused
  gather-cast → in-place solve → weighted scatter-add), else by an fp32
  scipy factorization;
* **coarse solve** — an fp32 LDLᵀ mirror of E (the fp64 factorization
  remains the fallback and the resilience path);
* **CSR deflation products** — fp32 mirrors of Z, Zᵀ and A·Z cached on
  the matrices themselves;
* **orthogonalisation** — hybrid CGS2: the first projection sweep runs
  in fp32 against a mirrored basis, the correction sweep in fp64, so
  the basis keeps fp64-level orthogonality at roughly half the read
  traffic of a second fp64 sweep.

Every reduced-precision factor is accepted only after a probe solve
(:func:`~repro.kernels.factor.probe_factorization`); rejects fall back
per-object to the fp64 reference path and are counted under
``kernel.fp32_fallbacks``.  Dtype round-trip traffic is surfaced through
``repro.obs`` counters (``kernel.fp32_bytes_down`` / ``_up``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import SolverError
from ..common.validation import matrix_is_symmetric
from ..solvers.local import factorize
from .base import KernelBackend
from .csrc import load_library
from .factor import (
    FusedLocalApply,
    PlainLocalApply,
    SymmetricLDLFactorization,
    probe_factorization,
)

#: accept an fp32 local factor iff one probe solve reaches this relative
#: residual — loose enough for high-contrast subdomain matrices, tight
#: enough to reject a broken (non-SPD / failed no-pivot) factorization
LOCAL_PROBE_TOL = 1e-2
COARSE_PROBE_TOL = 1e-2


def _f32_mirror(A):
    """fp32 copy of a sparse matrix, cached on the matrix object itself
    (the mirrored matrices — Z, Zᵀ, A·Z — are long-lived attributes of
    the deflation space / coarse operator, so the cache lives and dies
    with them)."""
    M = getattr(A, "_repro_f32", None)
    if M is None:
        M = A.astype(np.float32)
        try:
            A._repro_f32 = M
        except AttributeError:  # pragma: no cover - exotic matrix types
            pass
    return M


def make_ldl_coarse_solve(backend, coarse, dtype, probe_tol: float):
    """A reduced-precision LDLᵀ solve routine for a
    :class:`~repro.core.coarse.CoarseOperator`'s E, or ``None`` when E
    is rank-deficient, the coarse strategy is inexact, the factorization
    fails, or the probe rejects it (the caller then keeps its own solve
    path).  Inexact strategies (multilevel) never get a mirror: their
    handle is an inner iteration on E, not a triangular solve that an
    LDLᵀ of E could substitute for."""
    if coarse.rank_deficient:
        return None
    if not getattr(coarse.strategy, "exact", True):
        return None
    if not matrix_is_symmetric(coarse.E):
        # nonsymmetric E must never reach SuperLU symmetric mode — the
        # no-pivot LDLᵀ would be structurally wrong, and a loose probe
        # tolerance is not a correctness guarantee.  The caller keeps
        # its own (general LU) coarse solve path.
        backend.notes.append(
            "coarse operator E is nonsymmetric; LDL mirror skipped, "
            "coarse solve stays on the general-LU fp64 path")
        return None
    lib = load_library()
    try:
        fact = SymmetricLDLFactorization(coarse.E, dtype=dtype, lib=lib)
    except SolverError:
        return None
    if not probe_factorization(fact, coarse.E, probe_tol):
        backend.notes.append(
            f"{np.dtype(dtype).name} coarse probe failed; "
            "coarse solve stays fp64")
        if backend.recorder.enabled:
            backend.recorder.add("kernel.fp32_fallbacks", 1)
        return None
    rec = backend.recorder
    counter = f"kernel.{backend.name}_coarse_solves"
    bytes_per = 4 * coarse.E.shape[0] if np.dtype(dtype) == np.float32 \
        else 0

    def kernel_solve(w):
        if rec.enabled:
            cols = 1 if w.ndim == 1 else w.shape[1]
            rec.add(counter, 1)
            if bytes_per:
                rec.add("kernel.fp32_bytes_down", bytes_per * cols)
                rec.add("kernel.fp32_bytes_up", bytes_per * cols)
        return fact.solve(w)

    return kernel_solve


class Fp32Backend(KernelBackend):
    """Mixed-precision backend (fp32 applies inside fp64 Krylov)."""

    name = "fp32"
    precision = "mixed"

    def __init__(self, recorder=None):
        super().__init__(recorder)
        self._lib = load_library()
        self.compiled = self._lib is not None
        if not self.compiled:
            self.notes.append(
                "compiled kernels unavailable; fp32 solves run through "
                "scipy (reduced bytes, reduced speedup)")
        # single-slot fp32 mirror of the active Arnoldi basis
        self._vkey = None
        self._v32 = None
        self._valid = 0

    # ------------------------------------------------------------------
    # Orthogonalisation: hybrid fp32/fp64 CGS2
    # ------------------------------------------------------------------
    def _basis_mirror(self, V: np.ndarray, j: int) -> np.ndarray:
        key = (id(V), V.shape)
        if self._vkey != key:
            self._vkey = key
            self._v32 = np.empty(V.shape, dtype=np.float32)
            self._valid = 0
        if j == 0:                       # new cycle: column 0 is fresh
            self._valid = 0
        if self._valid < j + 1:
            self._v32[:, self._valid:j + 1] = V[:, self._valid:j + 1]
            self._valid = j + 1
        return self._v32

    def ortho_step(self, V, w, H, j, scratch):
        V32 = self._basis_mirror(V, j)
        w32 = w.astype(np.float32)
        # sweep 1 in fp32: one gemv against the mirrored basis
        c1 = (V32[:, :j + 1].T @ w32).astype(np.float64)
        w -= V[:, :j + 1] @ c1
        # sweep 2 (the CGS2 correction) in fp64 restores orthogonality
        c2 = V[:, :j + 1].T @ w
        w -= V[:, :j + 1] @ c2
        H[:j + 1, j] = c1 + c2
        H[j + 1, j] = float(np.linalg.norm(w))
        if H[j + 1, j] > 0:
            np.divide(w, H[j + 1, j], out=V[:, j + 1])
            self._v32[:, j + 1] = V[:, j + 1]
            self._valid = j + 2
        if self.recorder.enabled:
            self.recorder.add("kernel.fp32_ortho_steps", 1)
            self.recorder.add("kernel.fp32_bytes_down", 4 * w.size)
        return 3                          # c1, c2, norm reductions

    def ortho_block(self, Vb, k, W, qr_block):
        # first CGS sweep in fp32 (the bulk of the read traffic),
        # correction sweep in fp64
        C1 = (Vb[:, :k].astype(np.float32).T
              @ W.astype(np.float32)).astype(np.float64)
        W = W - Vb[:, :k] @ C1
        C2 = Vb[:, :k].T @ W
        W = W - Vb[:, :k] @ C2
        Vnew, Hdiag = qr_block(W)
        if self.recorder.enabled:
            self.recorder.add("kernel.fp32_ortho_steps", 1)
            self.recorder.add("kernel.fp32_bytes_down",
                              4 * (Vb[:, :k].size + W.size))
        return C1 + C2, Vnew, Hdiag

    # ------------------------------------------------------------------
    # Local factorizations + fused RAS apply
    # ------------------------------------------------------------------
    def factorize_local(self, A, method: str = "superlu",
                        shift: float = 0.0):
        if shift:
            A = (sp.csr_matrix(A)
                 + shift * sp.eye(A.shape[0], format="csr"))
        if not matrix_is_symmetric(A):
            # explicit asymmetry gate: a nonsymmetric matrix must never
            # be factorised in SuperLU symmetric mode — the probe's
            # loose tolerance (1e-2) could accept a structurally wrong
            # LDLᵀ.  Documented fallback: general-mode LU (fp64).
            if self.recorder.enabled:
                self.recorder.add("kernel.fp32_nonsymmetric_locals", 1)
            return factorize(A, method)
        try:
            fact = SymmetricLDLFactorization(A, dtype=np.float32,
                                             lib=self._lib)
            if probe_factorization(fact, A, LOCAL_PROBE_TOL):
                return fact
        except SolverError:
            pass
        if self.recorder.enabled:
            self.recorder.add("kernel.fp32_fallbacks", 1)
        return factorize(A, method)

    def fuse_ras(self, factorizations, subdomains):
        handles = []
        for fact, s in zip(factorizations, subdomains):
            if isinstance(fact, SymmetricLDLFactorization) \
                    and fact._lib is not None:
                handles.append(FusedLocalApply(fact, s.dofs, s.d))
            else:
                handles.append(PlainLocalApply(fact, s.dofs, s.d))
        return handles

    def note_ras_apply(self, total_local_dofs: int,
                       columns: int = 1) -> None:
        if self.recorder.enabled:
            self.recorder.add("kernel.fp32_local_applies", columns)
            self.recorder.add("kernel.fp32_bytes_down",
                              4 * total_local_dofs * columns)
            self.recorder.add("kernel.fp32_bytes_up",
                              4 * total_local_dofs * columns)

    # ------------------------------------------------------------------
    # Coarse solve + CSR products
    # ------------------------------------------------------------------
    def make_coarse_solve(self, coarse):
        return make_ldl_coarse_solve(self, coarse, np.float32,
                                     COARSE_PROBE_TOL)

    def spmv(self, A, x):
        if x.dtype != np.float64:
            return A @ x
        M = _f32_mirror(A)
        if self.recorder.enabled:
            self.recorder.add("kernel.fp32_spmv", 1)
            self.recorder.add("kernel.fp32_bytes_down", 4 * x.size)
            self.recorder.add("kernel.fp32_bytes_up", 4 * M.shape[0])
        return (M @ x.astype(np.float32)).astype(np.float64)

    def spmm(self, A, X):
        if X.dtype != np.float64:
            return A @ X
        M = _f32_mirror(A)
        if self.recorder.enabled:
            self.recorder.add("kernel.fp32_spmm", 1)
            self.recorder.add("kernel.fp32_bytes_down", 4 * X.size)
            self.recorder.add("kernel.fp32_bytes_up",
                              4 * M.shape[0] * X.shape[1])
        return (M @ X.astype(np.float32)).astype(np.float64)
