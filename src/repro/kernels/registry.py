"""Kernel-backend registry: named factories with capability probing.

Selection order for :func:`get_backend`:

1. an explicit *name* argument (``SchwarzSolver(kernel_backend=...)``,
   CLI ``--backend``),
2. the ``REPRO_KERNEL_BACKEND`` environment variable,
3. the reference ``"numpy"`` backend.

A backend whose capability probe fails (e.g. ``compiled`` without a C
toolchain) raises :class:`BackendUnavailable` from its factory;
:func:`get_backend` logs a warning and degrades to ``numpy`` instead of
failing the run.  Third parties extend the registry with
:func:`register` — the factory contract is ``factory(recorder) ->
KernelBackend``.
"""

from __future__ import annotations

import os
import warnings

from ..common.errors import ReproError
from .base import KernelBackend

ENV_VAR = "REPRO_KERNEL_BACKEND"


class BackendUnavailable(RuntimeError):
    """A backend's capability probe failed (missing toolchain, …)."""


_FACTORIES: dict[str, object] = {}


def register(name: str, factory=None):
    """Register *factory* under *name* (usable as a decorator).

    The factory takes an optional recorder and returns a
    :class:`~repro.kernels.base.KernelBackend`; it may raise
    :class:`BackendUnavailable` to signal that the backend cannot run
    in this environment.
    """
    if factory is None:
        def deco(f):
            _FACTORIES[name] = f
            return f
        return deco
    _FACTORIES[name] = factory
    return factory


def backend_names() -> list[str]:
    return sorted(_FACTORIES)


def get_backend(name: str | None = None, recorder=None) -> KernelBackend:
    """Resolve a kernel backend by name (argument → ``$REPRO_KERNEL_
    BACKEND`` → ``"numpy"``), degrading to ``numpy`` with a warning when
    the requested backend's capability probe fails.  An already-built
    :class:`~repro.kernels.base.KernelBackend` instance passes through
    unchanged."""
    if isinstance(name, KernelBackend):
        return name
    resolved = name or os.environ.get(ENV_VAR) or "numpy"
    if resolved not in _FACTORIES:
        raise ReproError(
            f"unknown kernel backend {resolved!r}; "
            f"expected one of {backend_names()}")
    try:
        return _FACTORIES[resolved](recorder)
    except BackendUnavailable as exc:
        warnings.warn(
            f"kernel backend {resolved!r} unavailable ({exc}); "
            f"falling back to 'numpy'", RuntimeWarning, stacklevel=2)
        backend = _FACTORIES["numpy"](recorder)
        backend.notes.append(f"fallback from {resolved!r}: {exc}")
        return backend


def available_backends() -> dict[str, dict]:
    """Capability table: ``{name: {"available": bool, ...describe()}}``
    — probes every registered backend without raising."""
    out: dict[str, dict] = {}
    for name in backend_names():
        try:
            backend = _FACTORIES[name](None)
            row = backend.describe()
            row["available"] = True
        except BackendUnavailable as exc:
            row = {"name": name, "available": False, "notes": [str(exc)]}
        out[name] = row
    return out


_default: KernelBackend | None = None


def default_backend() -> KernelBackend:
    """The shared reference backend instance (the implicit kernels of
    every component not given an explicit backend)."""
    global _default
    if _default is None:
        _default = _FACTORIES["numpy"](None)
    return _default
