"""Reduced-precision local factorizations and fused RAS apply handles.

The paper's local solves are "factorise once, apply thousands of times".
The mixed-precision backends exploit two structural facts:

* the local Dirichlet matrices are SPD, so SuperLU's **symmetric mode**
  (minimum-degree on ``AᵀA + A``, no pivoting) produces an LDLᵀ-shaped
  factor with ~4–5× fewer nonzeros than the default COLAMD LU — fewer
  bytes to stream per solve;
* the factor can be exported to raw CSC arrays once and re-applied by a
  tight compiled loop (:mod:`.csrc`) in fp32 or fp64, fusing the
  permutation into precomputed gather/scatter index arrays.

A :class:`SymmetricLDLFactorization` is validated by a probe solve
before it is trusted (:func:`probe_factorization`); callers fall back to
the reference fp64 factorization when the probe fails, so accuracy
regressions degrade to the slow-but-exact path instead of corrupting
the preconditioner.
"""

from __future__ import annotations

import ctypes as ct

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..common.errors import SolverError, SymmetryError
from ..common.validation import matrix_is_symmetric
from ..solvers.local import Factorization

_SYMMETRIC_OPTIONS = dict(
    permc_spec="MMD_AT_PLUS_A",
    diag_pivot_thresh=0.0,
    options=dict(SymmetricMode=True),
)


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ct.POINTER(ctype))


class SymmetricLDLFactorization(Factorization):
    """Symmetric-mode SuperLU factor exported to raw LDLᵀ-solve arrays.

    With ``lib`` (the compiled kernel library) the factor L is stored
    once as CSC arrays — diagonal entry first per column, so the same
    arrays serve the forward sweep and, read as CSR of Lᵀ, the backward
    sweep — and every solve is one compiled in-place pass in *dtype*
    precision.  Without ``lib`` the matrix is refactorised by scipy in
    *dtype* directly (still reduced-precision arithmetic, scipy-driven).

    ``solve`` keeps the public fp64-in/fp64-out contract of every other
    :class:`~repro.solvers.local.Factorization` backend; the fused RAS
    handles below bypass it and work on the raw arrays.
    """

    def __init__(self, A, dtype=np.float32, lib=None):
        A = sp.csc_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise SolverError(f"matrix must be square, got {A.shape}")
        if not matrix_is_symmetric(A):
            # SuperLU symmetric mode (no pivoting, MMD on AᵀA + A) is
            # structurally wrong for nonsymmetric input; fail with a
            # typed error here instead of hoping a probe catches it
            raise SymmetryError(
                "SymmetricLDLFactorization requires a symmetric matrix; "
                "use the general-mode LU (repro.solvers.factorize) for "
                "nonsymmetric operators")
        self.n = A.shape[0]
        self.dtype = np.dtype(dtype)
        self._lib = lib
        if lib is not None:
            # factorise in fp64 (stable), cast the factor to the target
            # precision — more accurate than factorising in fp32
            try:
                lu = spla.splu(A, **_SYMMETRIC_OPTIONS)
            except RuntimeError as exc:
                raise SolverError(
                    f"symmetric-mode factorization failed: {exc}") from exc
            L = lu.L.tocsc()
            L.sort_indices()
            self.piv = np.argsort(lu.perm_r).astype(np.int64)
            self.indptr = np.ascontiguousarray(L.indptr, dtype=np.int32)
            self.rowind = np.ascontiguousarray(L.indices, dtype=np.int32)
            self.lval = np.ascontiguousarray(L.data, dtype=self.dtype)
            self.dinv = np.ascontiguousarray(1.0 / lu.U.diagonal(),
                                             dtype=self.dtype)
            self.nnz_factor = int(L.nnz) + self.n
            self._solve_fn = (lib.ldl_solve_f32
                              if self.dtype == np.float32
                              else lib.ldl_solve_f64)
            value_ct = ct.c_float if self.dtype == np.float32 \
                else ct.c_double
            self._args = (_ptr(self.indptr, ct.c_int32),
                          _ptr(self.rowind, ct.c_int32),
                          _ptr(self.lval, value_ct),
                          _ptr(self.dinv, value_ct))
        else:
            try:
                self._lu = spla.splu(A.astype(self.dtype),
                                     **_SYMMETRIC_OPTIONS)
            except RuntimeError as exc:
                raise SolverError(
                    f"symmetric-mode factorization failed: {exc}") from exc
            self.nnz_factor = int(self._lu.L.nnz + self._lu.U.nnz)

    # -- raw in-place solve on a permuted dtype workspace --------------
    def solve_permuted_inplace(self, z: np.ndarray) -> None:
        """In-place LDLᵀ solve of the already-permuted workspace *z*
        (``z = b[piv]`` on entry, ``x[piv]`` on exit).  Compiled path
        only."""
        self._solve_fn(*self._args, _ptr(z, ct.c_float
                                         if self.dtype == np.float32
                                         else ct.c_double),
                       ct.c_int32(self.n))

    # -- public fp64 contract ------------------------------------------
    def solve(self, b):
        b = np.asarray(b, dtype=np.float64)
        if self._lib is None:
            out = self._lu.solve(np.ascontiguousarray(b, dtype=self.dtype))
            return np.asarray(out, dtype=np.float64)
        if b.ndim == 1:
            z = np.ascontiguousarray(b[self.piv], dtype=self.dtype)
            self.solve_permuted_inplace(z)
            out = np.empty(self.n)
            out[self.piv] = z
            return out
        out = np.empty((self.n, b.shape[1]))
        for c in range(b.shape[1]):
            z = np.ascontiguousarray(b[self.piv, c], dtype=self.dtype)
            self.solve_permuted_inplace(z)
            out[self.piv, c] = z
        return out


def probe_factorization(fact, A, tol: float) -> bool:
    """One deterministic solve against a random right-hand side: accept
    the factorization iff the relative residual is within *tol*.  The
    guard that keeps a reduced-precision (or otherwise approximate)
    factor from silently corrupting the preconditioner."""
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.shape[0])
    try:
        x = fact.solve(b)
    except Exception:  # noqa: BLE001 - any solve failure → reject
        return False
    if not np.all(np.isfinite(x)):
        return False
    resid = float(np.linalg.norm(A @ x - b))
    return resid <= tol * float(np.linalg.norm(b))


# ----------------------------------------------------------------------
# Fused RAS apply handles: gather → local solve → weighted scatter-add
# ----------------------------------------------------------------------

class FusedLocalApply:
    """One subdomain's RAS contribution as a single fused pass.

    Precomputes ``dofs[piv]`` and ``d[piv]`` so the permutation of the
    LDLᵀ solve is folded into the global gather/scatter index arrays:
    ``apply_weighted`` reads the fp64 global residual, casts into the
    dtype workspace, solves in place, and scatter-accumulates
    ``D_i · x_i`` back into the fp64 output — no intermediate local
    vectors, no separate permutation step.
    """

    def __init__(self, fact: SymmetricLDLFactorization,
                 dofs: np.ndarray, d: np.ndarray):
        lib = fact._lib
        self.fact = fact
        self.n = fact.n
        self.dofs_piv = np.ascontiguousarray(
            np.asarray(dofs, dtype=np.int64)[fact.piv])
        self.d_piv = np.ascontiguousarray(
            np.asarray(d, dtype=np.float64)[fact.piv])
        self._z = np.empty(self.n, dtype=fact.dtype)
        if fact.dtype == np.float32:
            self._gather, self._scatter = lib.gather_cast_f32, \
                lib.scatter_add_f32
            self._z_ptr = _ptr(self._z, ct.c_float)
        else:
            self._gather, self._scatter = lib.gather_f64, \
                lib.scatter_add_f64
            self._z_ptr = _ptr(self._z, ct.c_double)
        self._idx_ptr = _ptr(self.dofs_piv, ct.c_int64)
        self._d_ptr = _ptr(self.d_piv, ct.c_double)
        self._n_ct = ct.c_int32(self.n)

    def apply_weighted(self, r: np.ndarray, out: np.ndarray) -> None:
        """out += R_iᵀ D_i A_i⁻¹ R_i r (both global fp64 vectors)."""
        self._gather(_ptr(r, ct.c_double), self._idx_ptr, self._z_ptr,
                     self._n_ct)
        self.fact.solve_permuted_inplace(self._z)
        self._scatter(_ptr(out, ct.c_double), self._idx_ptr, self._d_ptr,
                      self._z_ptr, self._n_ct)


class PlainLocalApply:
    """Fallback handle with the same interface, built on any
    :class:`~repro.solvers.local.Factorization` (used when the fused
    compiled path is unavailable or a probe rejected the reduced-
    precision factor for this subdomain)."""

    def __init__(self, fact, dofs: np.ndarray, d: np.ndarray):
        self.fact = fact
        self.dofs = dofs
        self.d = d

    def apply_weighted(self, r: np.ndarray, out: np.ndarray) -> None:
        out[self.dofs] += self.d * self.fact.solve(r[self.dofs])
