"""Build-time detection and loading of the compiled kernel library.

The compiled kernels are a single small C translation unit (triangular
LDLᵀ solves over CSC factors plus fused gather/scatter) compiled with
the system C compiler at first use and loaded through :mod:`ctypes` —
no Cython, cffi or build-system dependency, mirroring the graceful
shell-out-with-fallback pattern of external native bridges.  When no
toolchain is present (or the compile fails) :func:`load_library` returns
``None`` and the callers degrade to the pure-scipy implementations.

The shared object is cached under ``src/repro/kernels/_build/`` (or
``$REPRO_KERNEL_CACHE``) keyed by a hash of the source + compiler, so
the compile cost is paid once per environment.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

_SOURCE = r"""
#include <stdint.h>

/* LDL^T solve over a CSC lower-triangular factor L (diagonal entry
   first in every column, as SuperLU emits it) and inverse diagonal
   dinv: x <- L^-T D^-1 L^-1 x, in place.  The backward sweep reads the
   same CSC arrays as a CSR view of L^T, so the factor is stored once. */

void ldl_solve_f32(const int32_t *indptr, const int32_t *rowind,
                   const float *lval, const float *dinv,
                   float *x, int32_t n) {
    int32_t j, p;
    for (j = 0; j < n; ++j) {
        const int32_t p0 = indptr[j], p1 = indptr[j + 1];
        const float xj = x[j] / lval[p0];
        x[j] = xj;
        for (p = p0 + 1; p < p1; ++p)
            x[rowind[p]] -= lval[p] * xj;
    }
    for (j = 0; j < n; ++j) x[j] *= dinv[j];
    for (j = n - 1; j >= 0; --j) {
        const int32_t p0 = indptr[j], p1 = indptr[j + 1];
        float acc = x[j];
        for (p = p0 + 1; p < p1; ++p)
            acc -= lval[p] * x[rowind[p]];
        x[j] = acc / lval[p0];
    }
}

void ldl_solve_f64(const int32_t *indptr, const int32_t *rowind,
                   const double *lval, const double *dinv,
                   double *x, int32_t n) {
    int32_t j, p;
    for (j = 0; j < n; ++j) {
        const int32_t p0 = indptr[j], p1 = indptr[j + 1];
        const double xj = x[j] / lval[p0];
        x[j] = xj;
        for (p = p0 + 1; p < p1; ++p)
            x[rowind[p]] -= lval[p] * xj;
    }
    for (j = 0; j < n; ++j) x[j] *= dinv[j];
    for (j = n - 1; j >= 0; --j) {
        const int32_t p0 = indptr[j], p1 = indptr[j + 1];
        double acc = x[j];
        for (p = p0 + 1; p < p1; ++p)
            acc -= lval[p] * x[rowind[p]];
        x[j] = acc / lval[p0];
    }
}

/* dst[k] = (cast) src[idx[k]] — fused permutation gather + downcast */
void gather_cast_f32(const double *src, const int64_t *idx,
                     float *dst, int32_t n) {
    int32_t k;
    for (k = 0; k < n; ++k) dst[k] = (float) src[idx[k]];
}

void gather_f64(const double *src, const int64_t *idx,
                double *dst, int32_t n) {
    int32_t k;
    for (k = 0; k < n; ++k) dst[k] = src[idx[k]];
}

/* out[idx[k]] += d[k] * z[k] — fused weight + scatter-accumulate
   (upcasting back to the fp64 global vector for the f32 variant) */
void scatter_add_f32(double *out, const int64_t *idx, const double *d,
                     const float *z, int32_t n) {
    int32_t k;
    for (k = 0; k < n; ++k) out[idx[k]] += d[k] * (double) z[k];
}

void scatter_add_f64(double *out, const int64_t *idx, const double *d,
                     const double *z, int32_t n) {
    int32_t k;
    for (k = 0; k < n; ++k) out[idx[k]] += d[k] * z[k];
}
"""

_CFLAGS = ["-O3", "-fPIC", "-shared"]

_lib = None
_lib_error: str | None = None
_attempted = False


def cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    return Path(__file__).parent / "_build"


def find_compiler() -> str | None:
    """The system C compiler, or ``None`` when no toolchain exists."""
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _source_tag(compiler: str) -> str:
    h = hashlib.sha256()
    h.update(_SOURCE.encode())
    h.update(compiler.encode())
    return h.hexdigest()[:16]


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    p = ctypes.POINTER
    i32, i64, f32, f64 = (ctypes.c_int32, ctypes.c_int64,
                          ctypes.c_float, ctypes.c_double)
    lib.ldl_solve_f32.argtypes = [p(i32), p(i32), p(f32), p(f32),
                                  p(f32), i32]
    lib.ldl_solve_f64.argtypes = [p(i32), p(i32), p(f64), p(f64),
                                  p(f64), i32]
    lib.gather_cast_f32.argtypes = [p(f64), p(i64), p(f32), i32]
    lib.gather_f64.argtypes = [p(f64), p(i64), p(f64), i32]
    lib.scatter_add_f32.argtypes = [p(f64), p(i64), p(f64), p(f32), i32]
    lib.scatter_add_f64.argtypes = [p(f64), p(i64), p(f64), p(f64), i32]
    for fn in (lib.ldl_solve_f32, lib.ldl_solve_f64, lib.gather_cast_f32,
               lib.gather_f64, lib.scatter_add_f32, lib.scatter_add_f64):
        fn.restype = None
    return lib


def build_library() -> tuple[ctypes.CDLL | None, str | None]:
    """Compile (or reuse) the kernel library.

    Returns ``(lib, None)`` on success or ``(None, reason)`` when the
    toolchain is absent or the build fails — callers treat the second
    form as "capability unavailable" and fall back to scipy.
    """
    compiler = find_compiler()
    if compiler is None:
        return None, "no C compiler found (set $CC or install gcc/clang)"
    tag = _source_tag(compiler)
    out = cache_dir() / f"reprokernels_{tag}.so"
    if not out.exists():
        try:
            out.parent.mkdir(parents=True, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=out.parent) as tmp:
                src = Path(tmp) / "kernels.c"
                src.write_text(_SOURCE)
                tmp_so = Path(tmp) / out.name
                proc = subprocess.run(
                    [compiler, *_CFLAGS, "-o", str(tmp_so), str(src)],
                    capture_output=True, text=True, timeout=120)
                if proc.returncode != 0:
                    return None, (f"{compiler} failed: "
                                  f"{proc.stderr.strip()[:200]}")
                os.replace(tmp_so, out)
        except (OSError, subprocess.SubprocessError) as exc:
            return None, f"kernel build failed: {exc}"
    try:
        return _declare(ctypes.CDLL(str(out))), None
    except OSError as exc:
        return None, f"could not load {out.name}: {exc}"


def load_library():
    """Memoised :func:`build_library` — one build attempt per process."""
    global _lib, _lib_error, _attempted
    if not _attempted:
        _attempted = True
        _lib, _lib_error = build_library()
    return _lib


def library_error() -> str | None:
    load_library()
    return _lib_error
