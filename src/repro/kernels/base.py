"""The reference ``numpy`` kernel backend.

This class owns the hot kernels that used to be inlined across the
stack — Gram–Schmidt orthogonalisation (vector MGS and blocked CGS2),
the RAS local-solve scatter/gather, the CSR deflation products, the
local factorizations and the overlap exchange — and performs **exactly
the operations the inlined code performed, in the same order**, so the
``numpy`` backend is bitwise-identical to the pre-registry
implementation (pinned by the regression tests in
``tests/test_kernels.py``).

Subclasses (:mod:`.fp32`, :mod:`.compiled`) override individual kernels;
anything not overridden inherits the reference semantics, which is what
makes capability-based degradation safe.
"""

from __future__ import annotations

import numpy as np

from ..solvers.local import factorize


class KernelBackend:
    """Reference (fp64 numpy/scipy) implementations of the hot kernels."""

    name = "numpy"
    #: arithmetic of the local/coarse applies and orthogonalisation scratch
    precision = "fp64"
    #: whether this backend uses the compiled kernel library
    compiled = False

    def __init__(self, recorder=None):
        from ..obs.recorder import NULL_RECORDER
        self.recorder = NULL_RECORDER if recorder is None else recorder
        #: human-readable capability notes (shown by ``repro backends``)
        self.notes: list[str] = []

    # ------------------------------------------------------------------
    # Orthogonalisation
    # ------------------------------------------------------------------
    def ortho_step(self, V: np.ndarray, w: np.ndarray, H: np.ndarray,
                   j: int, scratch: np.ndarray) -> int:
        """One Arnoldi orthogonalisation step: project *w* against
        ``V[:, :j+1]`` writing ``H[:j+1, j]``, store the norm in
        ``H[j+1, j]`` and, when nonzero, the normalised vector in
        ``V[:, j+1]``.  Returns the number of global synchronisations.

        Reference: modified Gram–Schmidt through preallocated buffers —
        one batched reduction plus one norm (2 syncs).
        """
        for i in range(j + 1):
            H[i, j] = float(w @ V[:, i])
            np.multiply(V[:, i], H[i, j], out=scratch)
            np.subtract(w, scratch, out=w)
        H[j + 1, j] = float(np.linalg.norm(w))
        if H[j + 1, j] > 0:
            np.divide(w, H[j + 1, j], out=V[:, j + 1])
        return 2

    def ortho_block(self, Vb: np.ndarray, k: int, W: np.ndarray,
                    qr_block) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Blocked CGS2 against the basis columns ``Vb[:, :k]``: returns
        ``(Hcol, Vnew, Hdiag)`` with ``Hcol = C1 + C2`` the accumulated
        projection coefficients and ``(Vnew, Hdiag)`` the thin QR of the
        twice-projected block.  *qr_block* is the caller's (breakdown-
        tolerant) QR."""
        C1 = Vb[:, :k].T @ W
        W = W - Vb[:, :k] @ C1
        C2 = Vb[:, :k].T @ W
        W = W - Vb[:, :k] @ C2
        Vnew, Hdiag = qr_block(W)
        return C1 + C2, Vnew, Hdiag

    # ------------------------------------------------------------------
    # Local factorizations and the RAS apply
    # ------------------------------------------------------------------
    def factorize_local(self, A, method: str = "superlu",
                        shift: float = 0.0):
        """Factorise one local (or coarse) matrix.  Reference: the
        existing :func:`repro.solvers.local.factorize` dispatch."""
        return factorize(A, method, shift=shift)

    def fuse_ras(self, factorizations, subdomains):
        """Fused per-subdomain apply handles for the serial RAS hot
        path, or ``None`` to keep the legacy solve-then-combine path
        (the reference backend always returns ``None`` — the legacy
        path *is* the reference)."""
        return None

    def note_ras_apply(self, total_local_dofs: int,
                       columns: int = 1) -> None:
        """Round-trip accounting hook for the fused RAS path."""

    # ------------------------------------------------------------------
    # Coarse solve and CSR products
    # ------------------------------------------------------------------
    def make_coarse_solve(self, coarse):
        """A reduced-precision coarse solve routine for *coarse* (a
        :class:`~repro.core.coarse.CoarseOperator`), or ``None`` to use
        its fp64 factorization directly.  Implementations must return
        ``None`` when ``coarse.strategy`` is inexact (``exact=False``,
        e.g. the multilevel strategy) — the solve handle is then an
        inner iteration, not a factorization a mirror could replace."""
        return None

    def spmv(self, A, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–vector product (Zᵀu, Zy, AZy, …)."""
        return A @ x

    def spmm(self, A, X: np.ndarray) -> np.ndarray:
        """Sparse matrix × column-block product."""
        return A @ X

    # ------------------------------------------------------------------
    # Overlap exchange
    # ------------------------------------------------------------------
    def exchange_sum(self, subdomains, x_list):
        """y_i = Σ_{j ∈ Ō_i} R_i R_jᵀ x_j — the neighbour exchange of one
        distributed SpMV (peer-to-peer transfers on the overlap)."""
        out = [x.copy() for x in x_list]
        for s in subdomains:
            for j in s.neighbors:
                out[s.index][s.shared[j]] += \
                    x_list[j][subdomains[j].shared[s.index]]
        return out

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Capability row for ``repro backends`` / the docs table."""
        return {"name": self.name, "precision": self.precision,
                "compiled": self.compiled, "notes": list(self.notes)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name} ({self.precision})>"
