"""Pluggable kernel backends for the solve-phase hot loops.

The registry owns the kernels that dominate the apply/matvec spans —
RAS local solves and scatter/gather, Gram–Schmidt orthogonalisation,
the CSR deflation products, the coarse solve and the overlap exchange —
behind one :class:`~repro.kernels.base.KernelBackend` interface with
three built-in implementations:

``numpy``
    The reference: bitwise-identical to the historical inlined code.
``fp32``
    Mixed precision — fp32 local/coarse applies and orthogonalisation
    scratch inside the fp64 outer Krylov loop, with dtype round-trip
    accounting through ``repro.obs`` counters.
``compiled``
    fp64 with compiled (ctypes/C) LDLᵀ solves and fused RAS
    gather/scatter; degrades to ``numpy`` when no C toolchain exists.

Select per solver (``SchwarzSolver(kernel_backend="fp32")``), per
process (``REPRO_KERNEL_BACKEND=fp32``) or per CLI run
(``repro solve --backend fp32``).  See ``docs/performance.md``.
"""

from .base import KernelBackend
from .compiled import CompiledBackend
from .fp32 import Fp32Backend
from .registry import (
    ENV_VAR,
    BackendUnavailable,
    available_backends,
    backend_names,
    default_backend,
    get_backend,
    register,
)

register("numpy", KernelBackend)
register("fp32", Fp32Backend)
register("compiled", CompiledBackend)

__all__ = [
    "KernelBackend",
    "Fp32Backend",
    "CompiledBackend",
    "BackendUnavailable",
    "get_backend",
    "register",
    "backend_names",
    "available_backends",
    "default_backend",
    "ENV_VAR",
]
