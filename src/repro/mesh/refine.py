"""Uniform (red) mesh refinement.

The paper's workflow partitions a coarse global mesh, then *each local
mesh is refined concurrently* (thrice in 2D, twice in 3D for the strong
scaling runs) so the global fine mesh is never stored in one place.  The
same routine serves both the global and the per-subdomain refinement.
"""

from __future__ import annotations

import numpy as np

from .mesh import SimplexMesh


def refine_uniform(mesh: SimplexMesh, times: int = 1) -> SimplexMesh:
    """Red-refine *times* times: triangles split in 4, tets in 8."""
    for _ in range(times):
        mesh = _refine_once(mesh)
    return mesh


def _refine_once(mesh: SimplexMesh) -> SimplexMesh:
    edges = mesh.edges
    midpoints = 0.5 * (mesh.vertices[edges[:, 0]] + mesh.vertices[edges[:, 1]])
    new_vertices = np.concatenate([mesh.vertices, midpoints], axis=0)
    mid = mesh.cell_edges + mesh.num_vertices     # global ids of midpoints
    c = mesh.cells
    if mesh.dim == 2:
        # local edges (01, 02, 12) -> midpoints m01, m02, m12
        m01, m02, m12 = mid[:, 0], mid[:, 1], mid[:, 2]
        v0, v1, v2 = c[:, 0], c[:, 1], c[:, 2]
        new_cells = np.concatenate([
            np.column_stack([v0, m01, m02]),
            np.column_stack([m01, v1, m12]),
            np.column_stack([m02, m12, v2]),
            np.column_stack([m01, m12, m02]),
        ], axis=0)
    else:
        # local edges (01, 02, 03, 12, 13, 23)
        m01, m02, m03, m12, m13, m23 = (mid[:, k] for k in range(6))
        v0, v1, v2, v3 = c[:, 0], c[:, 1], c[:, 2], c[:, 3]
        corner = [
            np.column_stack([v0, m01, m02, m03]),
            np.column_stack([m01, v1, m12, m13]),
            np.column_stack([m02, m12, v2, m23]),
            np.column_stack([m03, m13, m23, v3]),
        ]
        # interior octahedron: split along the SHORTEST of its three
        # diagonals (m01-m23, m02-m13, m03-m12) — the classical rule that
        # keeps shape regularity bounded under repeated refinement
        def diag_len(a, b):
            return np.linalg.norm(new_vertices[a] - new_vertices[b],
                                  axis=1)

        d0 = diag_len(m01, m23)
        d1 = diag_len(m02, m13)
        d2 = diag_len(m03, m12)
        choice = np.argmin(np.column_stack([d0, d1, d2]), axis=1)
        # per-diagonal tet sets: (diag, equatorial edge) x 4
        sets = [
            [(m01, m23, m02, m12), (m01, m23, m12, m13),
             (m01, m23, m13, m03), (m01, m23, m03, m02)],
            [(m02, m13, m01, m12), (m02, m13, m12, m23),
             (m02, m13, m23, m03), (m02, m13, m03, m01)],
            [(m03, m12, m01, m13), (m03, m12, m13, m23),
             (m03, m12, m23, m02), (m03, m12, m02, m01)],
        ]
        octa = []
        for t in range(4):
            variants = [np.column_stack(sets[k][t]) for k in range(3)]
            stacked = np.stack(variants, axis=0)        # (3, nc, 4)
            octa.append(stacked[choice, np.arange(len(choice))])
        new_cells = np.concatenate(corner + octa, axis=0)
    new_cells = _fix_orientation(new_vertices, new_cells)
    return SimplexMesh(new_vertices, new_cells)


def _fix_orientation(vertices: np.ndarray, cells: np.ndarray) -> np.ndarray:
    v = vertices[cells]
    edges = v[:, 1:, :] - v[:, :1, :]
    det = np.linalg.det(edges)
    cells = cells.copy()
    neg = det < 0
    if np.any(neg):
        cells[neg, 0], cells[neg, 1] = cells[neg, 1].copy(), cells[neg, 0].copy()
    return cells
