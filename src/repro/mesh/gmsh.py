"""Gmsh MSH 2.2 ASCII reader/writer.

The paper's geometries are meshed by Gmsh; this module reads the classic
``$MeshFormat 2.2`` ASCII files (triangles in 2D, tetrahedra in 3D) so
externally generated meshes drop straight into the solver, and writes
them back for visual checks in Gmsh itself.

Only what the solver needs is parsed: nodes, simplex elements of the
right dimension (element types 2 = triangle, 4 = tetrahedron) and their
physical tags (returned as a per-cell array for coefficient assignment).
Lower-dimensional and point elements are skipped.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..common.errors import MeshError
from .generators import _orient_positive
from .mesh import SimplexMesh

_TRIANGLE = 2
_TET = 4
_NODES_PER = {_TRIANGLE: 3, _TET: 4}


def read_gmsh(path, *, dim: int | None = None
              ) -> tuple[SimplexMesh, np.ndarray]:
    """Read an MSH 2.2 ASCII file.

    Parameters
    ----------
    dim:
        2 or 3; ``None`` picks the highest-dimensional simplices present.

    Returns
    -------
    ``(mesh, physical_tags)`` with one tag per cell (0 if untagged).
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    sections = _split_sections(lines, path)

    fmt = sections.get("MeshFormat")
    if not fmt:
        raise MeshError(f"{path}: missing $MeshFormat")
    version = fmt[0].split()[0]
    if not version.startswith("2."):
        raise MeshError(f"{path}: unsupported MSH version {version} "
                        "(only 2.x ASCII is handled)")

    nodes_sec = sections.get("Nodes")
    if not nodes_sec:
        raise MeshError(f"{path}: missing $Nodes")
    n_nodes = int(nodes_sec[0])
    ids = np.empty(n_nodes, dtype=np.int64)
    xyz = np.empty((n_nodes, 3))
    for k, line in enumerate(nodes_sec[1:1 + n_nodes]):
        parts = line.split()
        ids[k] = int(parts[0])
        xyz[k] = [float(v) for v in parts[1:4]]
    id2row = {int(i): k for k, i in enumerate(ids)}

    elems_sec = sections.get("Elements")
    if not elems_sec:
        raise MeshError(f"{path}: missing $Elements")
    n_elems = int(elems_sec[0])
    cells_by_type: dict[int, list] = {_TRIANGLE: [], _TET: []}
    tags_by_type: dict[int, list] = {_TRIANGLE: [], _TET: []}
    for line in elems_sec[1:1 + n_elems]:
        parts = [int(v) for v in line.split()]
        etype = parts[1]
        if etype not in _NODES_PER:
            continue
        ntags = parts[2]
        phys = parts[3] if ntags >= 1 else 0
        conn = parts[3 + ntags:]
        if len(conn) != _NODES_PER[etype]:
            raise MeshError(f"{path}: element with wrong node count: "
                            f"{line!r}")
        cells_by_type[etype].append([id2row[c] for c in conn])
        tags_by_type[etype].append(phys)

    if dim is None:
        dim = 3 if cells_by_type[_TET] else 2
    etype = _TET if dim == 3 else _TRIANGLE
    raw = cells_by_type[etype]
    if not raw:
        raise MeshError(f"{path}: no {dim}D simplices found")
    cells = np.asarray(raw, dtype=np.int64)
    tags = np.asarray(tags_by_type[etype], dtype=np.int64)

    vertices = xyz[:, :dim]
    # drop nodes not referenced by any kept cell (boundary-only nodes of
    # a 3D file read as 2D, etc.)
    used = np.unique(cells.ravel())
    renum = np.full(n_nodes, -1, dtype=np.int64)
    renum[used] = np.arange(used.size)
    cells = renum[cells]
    vertices = vertices[used]
    cells = _orient_positive(vertices, cells)
    return SimplexMesh(vertices, cells), tags


def write_gmsh(mesh: SimplexMesh, path, *,
               physical_tags: np.ndarray | None = None) -> None:
    """Write an MSH 2.2 ASCII file (1-based node ids, as Gmsh expects)."""
    path = Path(path)
    nv, nc = mesh.num_vertices, mesh.num_cells
    etype = _TET if mesh.dim == 3 else _TRIANGLE
    if physical_tags is None:
        physical_tags = np.zeros(nc, dtype=np.int64)
    physical_tags = np.asarray(physical_tags, dtype=np.int64)
    if physical_tags.shape != (nc,):
        raise MeshError(f"physical_tags must have shape ({nc},)")
    with path.open("w") as f:
        f.write("$MeshFormat\n2.2 0 8\n$EndMeshFormat\n")
        f.write(f"$Nodes\n{nv}\n")
        for i, v in enumerate(mesh.vertices, start=1):
            coords = list(v) + [0.0] * (3 - mesh.dim)
            f.write(f"{i} {coords[0]:.17g} {coords[1]:.17g} "
                    f"{coords[2]:.17g}\n")
        f.write("$EndNodes\n")
        f.write(f"$Elements\n{nc}\n")
        for e, (cell, tag) in enumerate(zip(mesh.cells, physical_tags),
                                        start=1):
            conn = " ".join(str(c + 1) for c in cell)
            f.write(f"{e} {etype} 2 {tag} {tag} {conn}\n")
        f.write("$EndElements\n")


def _split_sections(lines: list[str], path) -> dict[str, list[str]]:
    sections: dict[str, list[str]] = {}
    name = None
    buf: list[str] = []
    for line in lines:
        s = line.strip()
        if s.startswith("$End"):
            if name is None:
                raise MeshError(f"{path}: stray {s}")
            sections[name] = buf
            name, buf = None, []
        elif s.startswith("$"):
            name = s[1:]
            buf = []
        elif name is not None:
            buf.append(s)
    if name is not None:
        raise MeshError(f"{path}: unterminated ${name} section")
    return sections
