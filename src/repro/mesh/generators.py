"""Mesh generators for the paper's geometries.

The paper meshes a 2D cantilever and a 3D tripod (fig. 6, elasticity
strong scaling) and the unit square/cube (diffusion weak scaling, fig. 9)
with Gmsh.  We generate structured simplicial meshes of the same shapes:
tensor-product grids split into triangles/tetrahedra, plus predicate-based
carving for the non-rectangular tripod.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import MeshError
from .mesh import SimplexMesh


def rectangle(nx: int, ny: int, *, x0: float = 0.0, x1: float = 1.0,
              y0: float = 0.0, y1: float = 1.0) -> SimplexMesh:
    """Structured triangulation of ``[x0,x1] x [y0,y1]``.

    ``nx * ny`` quads, each split into two positively oriented triangles
    (alternating diagonals per quad for isotropy).
    """
    if nx < 1 or ny < 1:
        raise MeshError("rectangle requires nx, ny >= 1")
    xs = np.linspace(x0, x1, nx + 1)
    ys = np.linspace(y0, y1, ny + 1)
    X, Y = np.meshgrid(xs, ys, indexing="ij")
    vertices = np.column_stack([X.ravel(), Y.ravel()])

    def vid(i, j):
        return i * (ny + 1) + j

    I, J = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    I = I.ravel()
    J = J.ravel()
    v00 = vid(I, J)
    v10 = vid(I + 1, J)
    v01 = vid(I, J + 1)
    v11 = vid(I + 1, J + 1)
    # alternate the diagonal in a checkerboard pattern (union-jack style)
    flip = ((I + J) % 2).astype(bool)
    t1 = np.where(flip[:, None], np.column_stack([v00, v10, v11]),
                  np.column_stack([v00, v10, v01]))
    t2 = np.where(flip[:, None], np.column_stack([v00, v11, v01]),
                  np.column_stack([v10, v11, v01]))
    cells = np.concatenate([t1, t2], axis=0)
    return SimplexMesh(vertices, cells)


def unit_square(n: int) -> SimplexMesh:
    """``n x n`` structured triangulation of the unit square (fig. 9 domain)."""
    return rectangle(n, n)


def cantilever_2d(n: int, *, length: float = 10.0, height: float = 1.0) -> SimplexMesh:
    """Long thin beam clamped on the left — the paper's 2D elasticity
    geometry (fig. 6 bottom).  ``n`` controls resolution along the height."""
    aspect = max(1, int(round(length / height)))
    return rectangle(aspect * n, n, x0=0.0, x1=length, y0=0.0, y1=height)


def box(nx: int, ny: int, nz: int, *, x0=0.0, x1=1.0, y0=0.0, y1=1.0,
        z0=0.0, z1=1.0) -> SimplexMesh:
    """Structured tetrahedralisation of a box: each hex cell is split into
    six tetrahedra along the Kuhn (Freudenthal) triangulation, which yields
    a conforming, positively oriented mesh."""
    if min(nx, ny, nz) < 1:
        raise MeshError("box requires nx, ny, nz >= 1")
    xs = np.linspace(x0, x1, nx + 1)
    ys = np.linspace(y0, y1, ny + 1)
    zs = np.linspace(z0, z1, nz + 1)
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")
    vertices = np.column_stack([X.ravel(), Y.ravel(), Z.ravel()])

    def vid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    I, J, K = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz),
                          indexing="ij")
    I, J, K = I.ravel(), J.ravel(), K.ravel()
    c = np.empty((I.shape[0], 8), dtype=np.int64)
    # corner numbering: bit 0 -> +x, bit 1 -> +y, bit 2 -> +z
    for corner in range(8):
        di, dj, dk = corner & 1, (corner >> 1) & 1, (corner >> 2) & 1
        c[:, corner] = vid(I + di, J + dj, K + dk)
    # Kuhn triangulation: six tets, each a path 0 -> 7 through the cube,
    # one per permutation of (x, y, z).  All have positive volume.
    perms = [(1, 2, 4), (1, 4, 2), (2, 1, 4), (2, 4, 1), (4, 1, 2), (4, 2, 1)]
    tets = []
    for p in perms:
        a = 0
        b = a + p[0]
        d = b + p[1]
        e = d + p[2]  # == 7
        tets.append(np.column_stack([c[:, a], c[:, b], c[:, d], c[:, e]]))
    cells = np.concatenate(tets, axis=0)
    # fix orientation (half of the Kuhn path tets come out negative)
    mesh_cells = _orient_positive(vertices, cells)
    return SimplexMesh(vertices, mesh_cells)


def unit_cube(n: int) -> SimplexMesh:
    """``n^3`` structured tetrahedralisation of the unit cube (fig. 9 3D)."""
    return box(n, n, n)


def _orient_positive(vertices: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Swap two vertices of negatively oriented simplices."""
    v = vertices[cells]
    edges = v[:, 1:, :] - v[:, :1, :]
    det = np.linalg.det(edges)
    cells = cells.copy()
    neg = det < 0
    cells[neg, 0], cells[neg, 1] = cells[neg, 1].copy(), cells[neg, 0].copy()
    return cells


def carve(mesh: SimplexMesh, keep, *, prune: bool = True) -> SimplexMesh:
    """Keep only cells whose centroid satisfies the predicate *keep*.

    *keep* receives an ``(nc, dim)`` centroid array and returns a boolean
    mask.  Used to cut non-rectangular geometries (the tripod) out of a
    structured grid, the way the paper's Gmsh geometries define shape.

    With ``prune`` (default), cells that end up facet-disconnected from
    the main body are dropped: stray fragments hanging off a single
    vertex act as zero-energy hinges in elasticity and make the global
    operator numerically singular.
    """
    mask = np.asarray(keep(mesh.cell_centroids()), dtype=bool)
    ids = np.flatnonzero(mask)
    if ids.size == 0:
        raise MeshError("carve predicate removed every cell")
    sub, _, _ = mesh.extract_cells(ids)
    if prune:
        from scipy.sparse.csgraph import connected_components
        ncomp, labels = connected_components(sub.dual_graph,
                                             directed=False)
        if ncomp > 1:
            main = int(np.argmax(np.bincount(labels)))
            sub, _, _ = sub.extract_cells(np.flatnonzero(labels == main))
    return SimplexMesh(sub.vertices, sub.cells)


def tripod_3d(n: int) -> SimplexMesh:
    """A tripod-like 3D solid (fig. 6 top): a vertical column standing on
    three legs spread in the x-y plane.  Carved from a structured box mesh.

    ``n`` controls resolution; the bounding box is [0,3] x [0,3] x [0,3].
    """
    base = box(3 * n, 3 * n, 3 * n, x0=0, x1=3, y0=0, y1=3, z0=0, z1=3)

    def keep(c):
        x, y, z = c[:, 0], c[:, 1], c[:, 2]
        # central column: radius-0.6 square column around (1.5, 1.5), z >= 1
        column = (np.abs(x - 1.5) <= 0.6) & (np.abs(y - 1.5) <= 0.6) & (z >= 1.0)
        # three legs: slabs z < 1 radiating from the column
        leg1 = (z < 1.0) & (np.abs(y - 1.5) <= 0.45) & (x <= 1.6)
        ang = 2 * np.pi / 3
        legs = leg1.copy()
        for k in (1, 2):
            ca, sa = np.cos(k * ang), np.sin(k * ang)
            xr = ca * (x - 1.5) - sa * (y - 1.5)
            yr = sa * (x - 1.5) + ca * (y - 1.5)
            legs |= (z < 1.0) & (np.abs(yr) <= 0.45) & (xr <= 0.1)
        return column | legs

    return carve(base, keep)


def interval_chain(n_cells: int, *, width: int = 1) -> SimplexMesh:
    """A thin strip of ``n_cells x width`` quads split into triangles.

    Handy for building the 1D-like chain decompositions used in the
    paper's figures 3–5 (subdomains in a line, O_1 = {2}, O_2 = {1, 3}...).
    """
    return rectangle(n_cells, width, x1=float(n_cells), y1=float(width))
