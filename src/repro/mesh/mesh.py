"""Simplicial meshes in 2D (triangles) and 3D (tetrahedra).

The paper's geometries come from Gmsh + FreeFem++.  Here meshes are plain
numpy arrays: ``vertices`` of shape ``(nv, dim)`` and ``cells`` of shape
``(nc, dim + 1)``, which is all that the algebraic domain-decomposition
machinery needs.  Everything derived (facets, dual graph, boundary) is
computed lazily and cached.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.sparse as sp

from ..common.errors import MeshError


class SimplexMesh:
    """An unstructured conforming simplicial mesh.

    Parameters
    ----------
    vertices:
        ``(nv, dim)`` float array of vertex coordinates, ``dim`` in {2, 3}.
    cells:
        ``(nc, dim + 1)`` int array of vertex indices per cell.
    validate:
        When true (default), checks index bounds and positive volumes.
    """

    def __init__(self, vertices, cells, *, validate: bool = True):
        self.vertices = np.ascontiguousarray(vertices, dtype=np.float64)
        self.cells = np.ascontiguousarray(cells, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] not in (2, 3):
            raise MeshError(
                f"vertices must be (nv, 2) or (nv, 3), got {self.vertices.shape}")
        self.dim = int(self.vertices.shape[1])
        if self.cells.ndim != 2 or self.cells.shape[1] != self.dim + 1:
            raise MeshError(
                f"cells must be (nc, {self.dim + 1}) for dim={self.dim}, "
                f"got {self.cells.shape}")
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def num_cells(self) -> int:
        return int(self.cells.shape[0])

    def _validate(self) -> None:
        if self.num_cells == 0:
            raise MeshError("mesh has no cells")
        if self.cells.min() < 0 or self.cells.max() >= self.num_vertices:
            raise MeshError("cell vertex index out of range")
        vols = self.cell_volumes()
        if np.any(vols <= 0):
            bad = int(np.argmin(vols))
            raise MeshError(
                f"cell {bad} has non-positive volume {vols[bad]:.3e}; "
                "cells must be positively oriented")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def cell_volumes(self) -> np.ndarray:
        """Signed volumes (areas in 2D) of all cells, vectorised."""
        v = self.vertices[self.cells]          # (nc, dim+1, dim)
        edges = v[:, 1:, :] - v[:, :1, :]      # (nc, dim, dim)
        det = np.linalg.det(edges)
        factor = 2.0 if self.dim == 2 else 6.0
        return det / factor

    def cell_centroids(self) -> np.ndarray:
        """Barycenters of all cells, shape ``(nc, dim)``."""
        return self.vertices[self.cells].mean(axis=1)

    def total_volume(self) -> float:
        return float(self.cell_volumes().sum())

    def cell_diameters(self) -> np.ndarray:
        """Longest edge length per cell (the usual FEM mesh size h)."""
        v = self.vertices[self.cells]  # (nc, dim+1, dim)
        npts = self.dim + 1
        best = np.zeros(self.num_cells)
        for a in range(npts):
            for b in range(a + 1, npts):
                d = np.linalg.norm(v[:, a, :] - v[:, b, :], axis=1)
                np.maximum(best, d, out=best)
        return best

    def h_max(self) -> float:
        return float(self.cell_diameters().max())

    # ------------------------------------------------------------------
    # Topology (cached)
    # ------------------------------------------------------------------
    @cached_property
    def _facet_data(self):
        """Sorted facet -> (facet array, cell-of-facet, count-per-facet).

        A facet is a (dim)-subset of a cell's vertices: an edge in 2D, a
        triangle in 3D.  Interior facets are shared by exactly two cells,
        boundary facets by one.
        """
        d = self.dim
        nloc = d + 1
        # local facet i = all vertices except vertex i
        locals_ = [tuple(j for j in range(nloc) if j != i) for i in range(nloc)]
        all_facets = np.concatenate(
            [self.cells[:, idx] for idx in locals_], axis=0)      # (nc*nloc, d)
        all_facets = np.sort(all_facets, axis=1)
        owner = np.tile(np.arange(self.num_cells), nloc)
        uniq, inverse, counts = np.unique(
            all_facets, axis=0, return_inverse=True, return_counts=True)
        return uniq, inverse, counts, owner

    @cached_property
    def facets(self) -> np.ndarray:
        """Unique facets as sorted vertex tuples, shape ``(nf, dim)``."""
        return self._facet_data[0]

    @cached_property
    def cell_facets(self) -> np.ndarray:
        """Facet ids per cell, shape ``(nc, dim + 1)``; column ``i`` is the
        facet opposite local vertex ``i``."""
        _, inverse, _, _ = self._facet_data
        return inverse.reshape(self.dim + 1, self.num_cells).T.copy()

    @cached_property
    def boundary_facet_ids(self) -> np.ndarray:
        """Indices (into :attr:`facets`) of boundary facets."""
        _, _, counts, _ = self._facet_data
        return np.flatnonzero(counts == 1)

    @cached_property
    def boundary_facets(self) -> np.ndarray:
        """Facets belonging to exactly one cell."""
        uniq, _, counts, _ = self._facet_data
        return uniq[counts == 1]

    @cached_property
    def boundary_vertices(self) -> np.ndarray:
        """Sorted indices of vertices lying on the domain boundary."""
        bf = self.boundary_facets
        return np.unique(bf.ravel())

    @cached_property
    def dual_graph(self) -> sp.csr_matrix:
        """Cell-adjacency graph: symmetric boolean CSR, (i, j) nonzero iff
        cells i and j share a facet.  This is the graph handed to the
        partitioner (as with METIS in the paper)."""
        uniq, inverse, counts, owner = self._facet_data
        order = np.argsort(inverse, kind="stable")
        inv_sorted = inverse[order]
        own_sorted = owner[order]
        # positions where a facet id is shared by two consecutive entries
        shared = np.flatnonzero(
            (inv_sorted[:-1] == inv_sorted[1:]))
        rows = own_sorted[shared]
        cols = own_sorted[shared + 1]
        n = self.num_cells
        data = np.ones(len(rows), dtype=np.int8)
        g = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
        g = (g + g.T).tocsr()
        g.data[:] = 1
        return g

    @cached_property
    def vertex_to_cells(self) -> sp.csr_matrix:
        """Incidence (nv x nc): (v, c) nonzero iff vertex v belongs to cell c."""
        nloc = self.dim + 1
        rows = self.cells.ravel()
        cols = np.repeat(np.arange(self.num_cells), nloc)
        data = np.ones(rows.shape[0], dtype=np.int8)
        m = sp.coo_matrix((data, (rows, cols)),
                          shape=(self.num_vertices, self.num_cells))
        m = m.tocsr()
        m.data[:] = 1
        return m

    @cached_property
    def vertex_adjacency(self) -> sp.csr_matrix:
        """Vertex-connectivity graph via shared cells (includes diagonal)."""
        v2c = self.vertex_to_cells
        g = (v2c @ v2c.T).tocsr()
        g.data[:] = 1
        return g

    # ------------------------------------------------------------------
    # Edges (needed for Pk dof layout and red refinement)
    # ------------------------------------------------------------------
    @cached_property
    def edges(self) -> np.ndarray:
        """Unique mesh edges as sorted vertex pairs, shape ``(ne, 2)``."""
        nloc = self.dim + 1
        pairs = []
        for a in range(nloc):
            for b in range(a + 1, nloc):
                pairs.append(self.cells[:, [a, b]])
        all_edges = np.sort(np.concatenate(pairs, axis=0), axis=1)
        return np.unique(all_edges, axis=0)

    @cached_property
    def cell_edges(self) -> np.ndarray:
        """Edge indices per cell: ``(nc, n_edges_per_cell)``, local edge
        ordering = lexicographic over local vertex pairs (01, 02, 03, 12...)."""
        nloc = self.dim + 1
        pairs = [(a, b) for a in range(nloc) for b in range(a + 1, nloc)]
        edges = self.edges
        # map sorted pair -> edge id using a structured lookup
        key = edges[:, 0].astype(np.int64) * self.num_vertices + edges[:, 1]
        order = np.argsort(key)
        key_sorted = key[order]
        out = np.empty((self.num_cells, len(pairs)), dtype=np.int64)
        for k, (a, b) in enumerate(pairs):
            pa = np.minimum(self.cells[:, a], self.cells[:, b])
            pb = np.maximum(self.cells[:, a], self.cells[:, b])
            q = pa * self.num_vertices + pb
            pos = np.searchsorted(key_sorted, q)
            out[:, k] = order[pos]
        return out

    # ------------------------------------------------------------------
    # Submeshes
    # ------------------------------------------------------------------
    def extract_cells(self, cell_ids) -> tuple["SimplexMesh", np.ndarray, np.ndarray]:
        """Extract the submesh formed by *cell_ids*.

        Returns ``(submesh, vertex_map, cell_map)`` where ``vertex_map[i]``
        is the parent-mesh index of local vertex ``i`` and ``cell_map`` the
        parent cell ids in submesh order.
        """
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        if cell_ids.ndim != 1:
            raise MeshError("cell_ids must be 1-D")
        sub_cells_parent = self.cells[cell_ids]
        vertex_map = np.unique(sub_cells_parent.ravel())
        renum = np.full(self.num_vertices, -1, dtype=np.int64)
        renum[vertex_map] = np.arange(vertex_map.shape[0])
        sub_cells = renum[sub_cells_parent]
        sub = SimplexMesh(self.vertices[vertex_map], sub_cells, validate=False)
        return sub, vertex_map, cell_ids.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SimplexMesh(dim={self.dim}, vertices={self.num_vertices}, "
                f"cells={self.num_cells})")
