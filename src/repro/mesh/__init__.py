"""Simplicial mesh substrate (2D triangles / 3D tetrahedra).

Replaces the paper's Gmsh + FreeFem++ meshing stack with structured
simplicial generators, predicate carving for non-rectangular shapes, and
uniform red refinement.
"""

from .generators import (
    box,
    cantilever_2d,
    carve,
    interval_chain,
    rectangle,
    tripod_3d,
    unit_cube,
    unit_square,
)
from .gmsh import read_gmsh, write_gmsh
from .io import load_mesh, save_mesh, write_vtk
from .mesh import SimplexMesh
from .refine import refine_uniform

__all__ = [
    "SimplexMesh",
    "save_mesh",
    "load_mesh",
    "write_vtk",
    "read_gmsh",
    "write_gmsh",
    "refine_uniform",
    "rectangle",
    "unit_square",
    "cantilever_2d",
    "box",
    "unit_cube",
    "tripod_3d",
    "carve",
    "interval_chain",
]
