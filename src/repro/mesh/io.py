"""Mesh and solution I/O.

Two formats:

* a minimal native text format (``.msh.txt``) for round-tripping meshes
  between runs and tools (header + vertex block + cell block);
* legacy ASCII VTK (``.vtk``) export of meshes with optional point/cell
  data — loadable in ParaView/VisIt for inspecting decompositions,
  coefficient fields and computed solutions.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..common.errors import MeshError
from .mesh import SimplexMesh

_MAGIC = "repro-simplex-mesh 1"


def save_mesh(mesh: SimplexMesh, path) -> None:
    """Write a mesh in the native text format."""
    path = Path(path)
    with path.open("w") as f:
        f.write(f"{_MAGIC}\n")
        f.write(f"{mesh.dim} {mesh.num_vertices} {mesh.num_cells}\n")
        np.savetxt(f, mesh.vertices, fmt="%.17g")
        np.savetxt(f, mesh.cells, fmt="%d")


def load_mesh(path) -> SimplexMesh:
    """Read a mesh written by :func:`save_mesh`."""
    path = Path(path)
    with path.open() as f:
        magic = f.readline().strip()
        if magic != _MAGIC:
            raise MeshError(f"{path} is not a repro mesh file "
                            f"(bad header {magic!r})")
        dims = f.readline().split()
        if len(dims) != 3:
            raise MeshError(f"{path}: malformed size line")
        dim, nv, nc = (int(x) for x in dims)
        vertices = np.loadtxt(f, max_rows=nv).reshape(nv, dim)
        cells = np.loadtxt(f, max_rows=nc, dtype=np.int64).reshape(
            nc, dim + 1)
    return SimplexMesh(vertices, cells)


# ----------------------------------------------------------------------
# Legacy VTK export
# ----------------------------------------------------------------------

_VTK_CELL_TYPE = {2: 5, 3: 10}          # triangle, tetrahedron


def write_vtk(mesh: SimplexMesh, path, *, point_data: dict | None = None,
              cell_data: dict | None = None, title: str = "repro") -> None:
    """Export a mesh (+ named fields) as legacy ASCII VTK.

    ``point_data`` maps names to per-vertex arrays (scalars ``(nv,)`` or
    vectors ``(nv, dim)``); ``cell_data`` to per-cell scalars.
    """
    path = Path(path)
    nv, nc = mesh.num_vertices, mesh.num_cells
    with path.open("w") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write(f"{title}\n")
        f.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")
        f.write(f"POINTS {nv} double\n")
        pts = mesh.vertices
        if mesh.dim == 2:                       # VTK points are 3D
            pts = np.column_stack([pts, np.zeros(nv)])
        np.savetxt(f, pts, fmt="%.17g")
        nloc = mesh.dim + 1
        f.write(f"CELLS {nc} {nc * (nloc + 1)}\n")
        np.savetxt(f, np.column_stack(
            [np.full(nc, nloc, dtype=np.int64), mesh.cells]), fmt="%d")
        f.write(f"CELL_TYPES {nc}\n")
        np.savetxt(f, np.full(nc, _VTK_CELL_TYPE[mesh.dim], dtype=np.int64),
                   fmt="%d")
        if point_data:
            f.write(f"POINT_DATA {nv}\n")
            for name, arr in point_data.items():
                arr = np.asarray(arr, dtype=np.float64)
                if arr.shape == (nv,):
                    f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE "
                            "default\n")
                    np.savetxt(f, arr, fmt="%.17g")
                elif arr.ndim == 2 and arr.shape[0] == nv:
                    vec = arr
                    if vec.shape[1] == 2:
                        vec = np.column_stack([vec, np.zeros(nv)])
                    if vec.shape[1] != 3:
                        raise MeshError(
                            f"point data {name!r} must have 1-3 "
                            f"components, got {arr.shape[1]}")
                    f.write(f"VECTORS {name} double\n")
                    np.savetxt(f, vec, fmt="%.17g")
                else:
                    raise MeshError(
                        f"point data {name!r} has shape {arr.shape}, "
                        f"expected ({nv},) or ({nv}, k)")
        if cell_data:
            f.write(f"CELL_DATA {nc}\n")
            for name, arr in cell_data.items():
                arr = np.asarray(arr, dtype=np.float64)
                if arr.shape != (nc,):
                    raise MeshError(
                        f"cell data {name!r} has shape {arr.shape}, "
                        f"expected ({nc},)")
                f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
                np.savetxt(f, arr, fmt="%.17g")
