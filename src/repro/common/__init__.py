"""Shared utilities: errors, timing, validation."""

from .errors import (
    CommunicatorError,
    ConvergenceError,
    DecompositionError,
    EigenError,
    FEMError,
    KrylovError,
    MeshError,
    PartitionError,
    ReproError,
    SolverError,
)
from .timing import PhaseTimer, Timer
from .validation import as_1d_float, as_csr, check_square, check_symmetric, require

__all__ = [
    "CommunicatorError",
    "ConvergenceError",
    "DecompositionError",
    "EigenError",
    "FEMError",
    "KrylovError",
    "MeshError",
    "PartitionError",
    "ReproError",
    "SolverError",
    "PhaseTimer",
    "Timer",
    "as_1d_float",
    "as_csr",
    "check_square",
    "check_symmetric",
    "require",
]
