"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the public API derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
without masking programming errors (``TypeError`` etc. propagate
unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MeshError(ReproError):
    """Invalid mesh topology or geometry (inverted cells, bad indices)."""


class FEMError(ReproError):
    """Invalid finite-element configuration (unknown degree, bad form)."""


class PartitionError(ReproError):
    """Graph-partitioning failure (infeasible balance, empty part)."""


class DecompositionError(ReproError):
    """Invalid overlapping-decomposition request or inconsistent state."""


class CommunicatorError(ReproError):
    """Misuse of the simulated MPI layer (rank out of range, mismatched
    collective participation, operations on a null communicator)."""


class SolverError(ReproError):
    """Direct-solver failure (singular pivot, non-SPD matrix in Cholesky)."""


class EigenError(ReproError):
    """Eigensolver failure (no convergence, invalid pencil)."""


class KrylovError(ReproError):
    """Krylov-method failure (breakdown, invalid restart parameter)."""


class ConvergenceError(KrylovError):
    """Iterative method exhausted its iteration budget.

    Carries the partially converged iterate and the residual history so
    that callers (and the benchmark harness, which *expects* the
    one-level method to stall) can still inspect the run.
    """

    def __init__(self, message: str, x=None, residuals=None):
        super().__init__(message)
        self.x = x
        self.residuals = residuals if residuals is not None else []
