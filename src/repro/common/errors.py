"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the public API derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
without masking programming errors (``TypeError`` etc. propagate
unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MeshError(ReproError):
    """Invalid mesh topology or geometry (inverted cells, bad indices)."""


class FEMError(ReproError):
    """Invalid finite-element configuration (unknown degree, bad form)."""


class PartitionError(ReproError):
    """Graph-partitioning failure (infeasible balance, empty part)."""


class DecompositionError(ReproError):
    """Invalid overlapping-decomposition request or inconsistent state."""


class CommunicatorError(ReproError):
    """Misuse of the simulated MPI layer (rank out of range, mismatched
    collective participation, operations on a null communicator)."""


class RankFailure(CommunicatorError):
    """A (simulated) MPI rank died or was declared dead.

    Raised on the failing rank by an injected *kill* fault, and on the
    surviving ranks when the shared error box reports a peer failure —
    so a dropped message or a dead rank surfaces as a typed error on
    every rank instead of a deadlock.  In the sequential solver the
    "rank" is the subdomain index whose local solve failed.
    """

    def __init__(self, message: str, *, rank: int = -1, op: str | None = None):
        super().__init__(message)
        self.rank = rank
        self.op = op
        #: flight-recorder black box (set by the raiser when the active
        #: recorder runs in ring mode) — see repro.obs.Recorder(ring=K)
        self.flight: dict | None = None


class SymmetryError(ReproError):
    """A symmetry-requiring code path received a nonsymmetric operator.

    Raised by the cg-family drivers (``cg``, ``deflated-cg``,
    ``block-cg``), :func:`repro.fem.postprocess.energy_norm` and the
    SPD-only kernel fast paths when handed a matrix that fails
    ``check_symmetric`` — instead of silently returning garbage from a
    structurally wrong factorisation or a negative "norm".
    """


class SolverError(ReproError):
    """Direct-solver failure (singular pivot, non-SPD matrix in Cholesky)."""


class CoarseSolveError(SolverError):
    """The coarse solve failed beyond repair: the factorization produced
    non-finite values and the pseudo-inverse fallback did too (or was
    already in use).  Under ``--recovery degrade`` this triggers the
    one-level-only degraded mode."""


class EigenError(ReproError):
    """Eigensolver failure (no convergence, invalid pencil)."""


class KrylovError(ReproError):
    """Krylov-method failure (breakdown, invalid restart parameter)."""


class KrylovBreakdown(KrylovError):
    """Typed Krylov breakdown detected by the numerical health monitor.

    Mirrors :class:`ConvergenceError`'s state-carrying contract: the
    last *healthy* iterate (``x``, possibly a rolled-back checkpoint),
    the residual history up to the failure, the iteration index and the
    profiler summary all ride on the exception so a recovery policy can
    roll back and restart instead of losing the whole solve.
    """

    def __init__(self, message: str, x=None, residuals=None,
                 iteration: int = -1, profile=None):
        super().__init__(message)
        self.x = x
        self.residuals = residuals if residuals is not None else []
        self.iteration = iteration
        self.profile = profile if profile is not None else {}
        #: flight-recorder black box (set by the health monitor when
        #: the active recorder runs in ring mode)
        self.flight: dict | None = None


class NonFiniteError(KrylovBreakdown):
    """NaN/Inf detected in the residual, iterate or Krylov basis."""


class DivergenceError(KrylovBreakdown):
    """The residual grew past the divergence ratio over its best value."""


class StagnationError(KrylovBreakdown):
    """No meaningful residual decrease over the stagnation window."""


class OrthogonalityError(KrylovBreakdown):
    """Loss of basis orthogonality beyond the configured threshold."""


class IndefiniteError(KrylovBreakdown):
    """CG curvature breakdown: ``p·Ap <= 0`` (operator or preconditioner
    not SPD, or a corrupted local solve)."""


class ConvergenceError(KrylovError):
    """Iterative method exhausted its iteration budget.

    Carries the partially converged iterate, the residual history and
    the profiler summary so that callers (and the benchmark harness,
    which *expects* the one-level method to stall) can still inspect
    the run — a budget-exhausted solve must not lose the profiling data
    collected up to the failure.
    """

    def __init__(self, message: str, x=None, residuals=None, profile=None):
        super().__init__(message)
        self.x = x
        self.residuals = residuals if residuals is not None else []
        self.profile = profile if profile is not None else {}
