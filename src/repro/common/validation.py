"""Argument validation helpers used at public API boundaries.

Hot inner loops never call these; they exist so that user-facing entry
points fail fast with actionable messages instead of cryptic numpy
broadcasting errors three stack frames down.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .errors import ReproError


def require(condition: bool, exc_type: type[ReproError], message: str) -> None:
    """Raise ``exc_type(message)`` unless *condition* holds."""
    if not condition:
        raise exc_type(message)


def as_1d_float(x, name: str = "vector") -> np.ndarray:
    """Coerce *x* to a contiguous 1-D float64 array."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ReproError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def as_float64_block(X, name: str = "block",
                     exc_type: type[Exception] = ReproError) -> np.ndarray:
    """Coerce *X* to a 2-D float64 column block.

    The explicit dtype contract of the block plumbing (``matvec_block``,
    ``apply_block``, ``zt_dot_block``): a float32 (or integer) block is
    upcast to float64 before it enters the solve kernels, a complex
    block is rejected, and a float64 block passes through untouched —
    so every block path returns float64 whatever the caller handed in.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise exc_type(f"{name} expects a column block, got ndim={X.ndim}")
    if np.issubdtype(X.dtype, np.complexfloating):
        raise exc_type(f"{name} expects a real block, got dtype {X.dtype}")
    if X.dtype != np.float64:
        X = X.astype(np.float64)
    return X


def as_csr(A, name: str = "matrix") -> sp.csr_matrix:
    """Coerce *A* to CSR, accepting any scipy sparse format or dense."""
    if sp.issparse(A):
        return A.tocsr()
    arr = np.asarray(A)
    if arr.ndim != 2:
        raise ReproError(f"{name} must be 2-D, got shape {arr.shape}")
    return sp.csr_matrix(arr)


def check_square(A, name: str = "matrix") -> None:
    if A.shape[0] != A.shape[1]:
        raise ReproError(f"{name} must be square, got shape {A.shape}")


def matrix_is_symmetric(A, tol: float = 1e-10) -> bool:
    """Non-raising boolean companion to :func:`check_symmetric`.

    Used wherever code *branches* on symmetry (driver dispatch, kernel
    factorisation mode, coarse-solve fallbacks) rather than requiring it.
    """
    A = as_csr(A, "matrix")
    diff = (A - A.T).tocoo()
    if diff.nnz == 0:
        return True
    return bool(np.max(np.abs(diff.data)) <= tol * max(1.0, abs(A).max()))


def check_symmetric(A, name: str = "matrix", tol: float = 1e-10) -> None:
    """Cheap symmetry check for sparse matrices (exact pattern + values)."""
    A = as_csr(A, name)
    diff = (A - A.T).tocoo()
    if diff.nnz and np.max(np.abs(diff.data)) > tol * max(1.0, abs(A).max()):
        raise ReproError(f"{name} is not symmetric (max asymmetry "
                         f"{np.max(np.abs(diff.data)):.3e})")
