"""Phase timers used by the benchmark harness.

The paper reports per-phase wall-clock times (columns *factorization*,
*deflation*, *solution*, *total* of figures 8 and 10).  :class:`PhaseTimer`
accumulates measured seconds per named phase; the scaling harness combines
these measured local-compute times with modelled communication times from
:mod:`repro.perfmodel`.

:class:`PhaseTimer` is also a thin adapter over the unified telemetry
layer: attach a :class:`repro.obs.Recorder` and every phase block is
additionally recorded as a hierarchical span on the shared clock (phases
entered while another phase is open nest inside it).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseTimer:
    """Accumulate wall-clock seconds under named phases.

    Usage::

        timer = PhaseTimer()
        with timer.phase("factorization"):
            factorize(...)
        timer.seconds("factorization")

    ``recorder`` (optional, a :class:`repro.obs.Recorder`) mirrors every
    phase as a telemetry span; the default ``None`` keeps the timer
    standalone with zero added cost.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    recorder: object | None = None

    @contextmanager
    def phase(self, name: str):
        rec = self.recorder
        handle = rec.span(name).__enter__() \
            if rec is not None and rec.enabled else None
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            if handle is not None:
                handle.__exit__(None, None, None)
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Credit *seconds* to phase *name* without running a block."""
        self.totals[name] = self.totals.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Total accumulated seconds for *name* (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.totals.values())

    def merge_max(self, other: "PhaseTimer") -> None:
        """Per-phase maximum with *other*.

        Models SPMD execution: the wall-clock of a phase executed
        concurrently by all ranks is the slowest rank's time.
        """
        for name, secs in other.totals.items():
            self.totals[name] = max(self.totals.get(name, 0.0), secs)
            self.counts[name] = max(self.counts.get(name, 0),
                                    other.counts.get(name, 0))

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)


class Timer:
    """Minimal single-shot timer: ``with Timer() as t: ...; t.elapsed``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
