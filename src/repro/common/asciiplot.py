"""Terminal plotting for the benchmark harness (no matplotlib offline).

Renders the paper's convergence histograms (figs. 1 and 7) and scaling
curves (figs. 8 and 10) as ASCII so every figure is regenerable from a
bare checkout.
"""

from __future__ import annotations

import math

import numpy as np


def semilogy(series: dict[str, list[float]], *, width: int = 70,
             height: int = 20, xlabel: str = "#iterations",
             ylabel: str = "residual") -> str:
    """Plot one or more residual histories on a log-y grid.

    ``series`` maps label -> list of positive values (per iteration).
    Returns a printable multi-line string.
    """
    if not series:
        return "(no data)"
    markers = "*+ox#@%&"
    all_vals = [v for vals in series.values() for v in vals if v > 0]
    if not all_vals:
        return "(no positive data)"
    lo = math.floor(math.log10(min(all_vals)))
    hi = math.ceil(math.log10(max(all_vals)))
    hi = max(hi, lo + 1)
    xmax = max(len(v) for v in series.values())
    grid = [[" "] * width for _ in range(height)]

    def to_col(i):
        return min(width - 1, int(i / max(1, xmax - 1) * (width - 1)))

    def to_row(v):
        t = (math.log10(v) - lo) / (hi - lo)
        return min(height - 1, max(0, int((1 - t) * (height - 1))))

    for k, (label, vals) in enumerate(series.items()):
        mk = markers[k % len(markers)]
        for i, v in enumerate(vals):
            if v > 0:
                grid[to_row(v)][to_col(i)] = mk
    lines = []
    for r, row in enumerate(grid):
        t = 1 - r / (height - 1)
        exp = lo + t * (hi - lo)
        ytick = f"1e{exp:+05.1f} |" if r % 4 == 0 else "        |"
        lines.append(ytick + "".join(row))
    lines.append("        +" + "-" * width)
    lines.append(f"         0{' ' * (width - 12)}{xmax:>6} {xlabel}")
    legend = "   ".join(f"[{markers[k % len(markers)]}] {label}"
                        for k, label in enumerate(series))
    lines.append("  " + legend)
    return "\n".join(lines)


def table(headers: list[str], rows: list[list], *, title: str = "") -> str:
    """Fixed-width table in the style of the paper's figures 8/10/11."""
    cells = [[_fmt(x) for x in row] for row in rows]
    widths = [max(len(h), *(len(r[c]) for r in cells)) if cells else len(h)
              for c, h in enumerate(headers)]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(x.rjust(w) for x, w in zip(r, widths)))
    return "\n".join(out)


def _fmt(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1e5 or abs(x) < 1e-3:
            return f"{x:.2e}"
        return f"{x:.3g}" if abs(x) < 1 else f"{x:.2f}"
    if isinstance(x, (np.floating,)):
        return _fmt(float(x))
    return str(x)


def sparsity(matrix, *, width: int = 60) -> str:
    """ASCII spy plot (figs. 3–4: the block patterns of Z and E)."""
    import scipy.sparse as sp
    M = sp.coo_matrix(matrix)
    n_rows, n_cols = M.shape
    h = max(1, round(width * n_rows / max(n_cols, 1) / 2))
    grid = [[" "] * width for _ in range(h)]
    for r, c in zip(M.row, M.col):
        rr = min(h - 1, int(r / max(1, n_rows) * h))
        cc = min(width - 1, int(c / max(1, n_cols) * width))
        grid[rr][cc] = "#"
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"
