"""repro — Scalable domain decomposition preconditioners for
heterogeneous elliptic problems (reproduction of Jolivet, Hecht, Nataf,
Prud'homme, SC '13).

Public entry point: :class:`repro.SchwarzSolver`; subsystems live in the
subpackages ``mesh``, ``fem``, ``partition``, ``dd``, ``core``,
``krylov``, ``solvers``, ``eigen``, ``mpi``, ``perfmodel``.
"""

from .batch import BatchReport, SolveSession
from .core.solver import SchwarzSolver, SolveReport
from .parallel import ParallelConfig
from .resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HealthMonitor,
    RecoveryPolicy,
)

__version__ = "1.0.0"
__all__ = [
    "SchwarzSolver",
    "SolveReport",
    "SolveSession",
    "BatchReport",
    "ParallelConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HealthMonitor",
    "RecoveryPolicy",
    "__version__",
]
