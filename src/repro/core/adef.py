"""Two-level deflated preconditioners (paper eq. 6–7; Tang et al. 2009).

* ``P⁻¹_A-DEF1 = P⁻¹_RAS (I − A Z E⁻¹ Zᵀ) + Z E⁻¹ Zᵀ`` — the paper's
  choice: **one** coarse solve per application (its result is reused in
  both terms), which matters because the coarse solve is the most
  communication-intensive operation of an iteration (§2.1).
* ``P⁻¹_A-DEF2 = (I − Z E⁻¹ Zᵀ A) P⁻¹_RAS + Z E⁻¹ Zᵀ`` — numerically
  similar but needs **two** coarse solves; kept for the ablation bench.
* BNN (hybrid balancing): ``(I − ZE⁻¹ZᵀA) P⁻¹ (I − AZE⁻¹Zᵀ) + ZE⁻¹Zᵀ``
  — symmetric when P⁻¹ is, pairs with CG.
"""

from __future__ import annotations

import numpy as np

from ..dd.decomposition import Decomposition
from .coarse import CoarseOperator
from .ras import OneLevelRAS


class TwoLevelADEF1:
    """The paper's preconditioner (eq. 6)."""

    def __init__(self, ras: OneLevelRAS, coarse: CoarseOperator):
        self.ras = ras
        self.coarse = coarse
        self.dec: Decomposition = ras.dec
        self.applications = 0

    def apply(self, u: np.ndarray) -> np.ndarray:
        self.applications += 1
        w = self.coarse.correction(u)          # Z E⁻¹ Zᵀ u — 1 coarse solve
        v = u - self.dec.matvec(w)             # (I − A Z E⁻¹ Zᵀ) u
        return self.ras.apply(v) + w

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.apply(u)

    @property
    def coarse_solves_per_application(self) -> int:
        return 1


class TwoLevelADEF2:
    """Eq. (7): same spectrum family, two coarse solves per application."""

    def __init__(self, ras: OneLevelRAS, coarse: CoarseOperator):
        self.ras = ras
        self.coarse = coarse
        self.dec: Decomposition = ras.dec
        self.applications = 0

    def apply(self, u: np.ndarray) -> np.ndarray:
        self.applications += 1
        w = self.coarse.correction(u)          # coarse solve #1
        v = self.ras.apply(u)
        v = v - self.coarse.correction(self.dec.matvec(v))  # coarse solve #2
        return v + w

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.apply(u)

    @property
    def coarse_solves_per_application(self) -> int:
        return 2


class TwoLevelBNN:
    """Hybrid (balancing Neumann–Neumann form): symmetric when the
    one-level part is (use with :class:`~repro.core.ras.OneLevelASM` + CG)."""

    def __init__(self, one_level, coarse: CoarseOperator):
        self.one_level = one_level
        self.coarse = coarse
        self.dec: Decomposition = one_level.dec
        self.applications = 0

    def apply(self, u: np.ndarray) -> np.ndarray:
        self.applications += 1
        w = self.coarse.correction(u)
        v = u - self.dec.matvec(w)             # (I − A Q) u
        z = self.one_level.apply(v)
        z = z - self.coarse.correction(self.dec.matvec(z))  # (I − Q A)
        return z + w

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.apply(u)

    @property
    def coarse_solves_per_application(self) -> int:
        return 2
