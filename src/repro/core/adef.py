"""Two-level deflated preconditioners (paper eq. 6–7; Tang et al. 2009).

* ``P⁻¹_A-DEF1 = P⁻¹_RAS (I − A Z E⁻¹ Zᵀ) + Z E⁻¹ Zᵀ`` — the paper's
  choice: **one** coarse solve per application (its result is reused in
  both terms), which matters because the coarse solve is the most
  communication-intensive operation of an iteration (§2.1).
* ``P⁻¹_A-DEF2 = (I − Z E⁻¹ Zᵀ A) P⁻¹_RAS + Z E⁻¹ Zᵀ`` — numerically
  similar but needs **two** coarse solves; kept for the ablation bench.
* BNN (hybrid balancing): ``(I − ZE⁻¹ZᵀA) P⁻¹ (I − AZE⁻¹Zᵀ) + ZE⁻¹Zᵀ``
  — symmetric when P⁻¹ is, pairs with CG.

Fast apply path: ``Q = Z E⁻¹ Zᵀ`` and ``AQ`` are fixed linear maps once
setup is done, and the E assembly already computed ``T_i = A_i W_i``
(block column i of A·Z).  A-DEF1 therefore evaluates the
``(I − A Z E⁻¹ Zᵀ) u`` term through :meth:`CoarseOperator.az_dot` —
per-setup cached A·Z — instead of recomputing ``A (Z y)`` with a global
SpMV plus an extra overlap exchange every iteration.  The pre-PR path is
kept as :meth:`TwoLevelADEF1.apply_reference` and the equivalence is
asserted (≤ 1e-14 relative) in ``tests/test_solve_apply.py``.
"""

from __future__ import annotations

import numpy as np

from ..dd.decomposition import Decomposition
from .coarse import CoarseOperator
from .ras import OneLevelRAS


class TwoLevelADEF1:
    """The paper's preconditioner (eq. 6)."""

    def __init__(self, ras: OneLevelRAS, coarse: CoarseOperator):
        self.ras = ras
        self.coarse = coarse
        self.dec: Decomposition = ras.dec
        self.applications = 0

    def apply(self, u: np.ndarray) -> np.ndarray:
        """One application: coarse solve once, A·Z from the setup cache —
        zero global SpMVs for the ``A Z E⁻¹ Zᵀ u`` term."""
        self.applications += 1
        coarse = self.coarse
        y = coarse.solve(coarse.space.zt_dot(u))   # E⁻¹ Zᵀ u — 1 coarse solve
        w = coarse.space.z_dot(y)                  # Z y (reused additively)
        v = u - coarse.az_dot(y)                   # (I − A Z E⁻¹ Zᵀ) u
        return self.ras.apply(v) + w

    def apply_block(self, U: np.ndarray) -> np.ndarray:
        """Multi-RHS application — column k of the result is
        ``apply(U[:, k])``, computed with **one** coarse solve for the
        whole block (csrmm transfers + a blocked E solve) and one
        blocked one-level application."""
        self.applications += U.shape[1]
        coarse = self.coarse
        Y = coarse.solve(coarse.space.zt_dot_block(U))
        W = coarse.space.z_dot_block(Y)
        V = U - coarse.kernels.spmm(coarse.AZ, Y)
        return self.ras.apply_block(V) + W

    def apply_reference(self, u: np.ndarray) -> np.ndarray:
        """The pre-cache path: recompute ``A (Z y)`` with a global SpMV
        (one extra overlap exchange) — kept to pin the fast path down."""
        w = self.coarse.correction_blocks(u)
        v = u - self.dec.matvec(w)
        return self.ras.apply(v) + w

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.apply(u)

    @property
    def coarse_solves_per_application(self) -> int:
        return 1


class TwoLevelADEF2:
    """Eq. (7): same spectrum family, two coarse solves per application."""

    def __init__(self, ras: OneLevelRAS, coarse: CoarseOperator):
        self.ras = ras
        self.coarse = coarse
        self.dec: Decomposition = ras.dec
        self.applications = 0

    def apply(self, u: np.ndarray) -> np.ndarray:
        self.applications += 1
        w = self.coarse.correction(u)          # coarse solve #1
        v = self.ras.apply(u)
        v = v - self.coarse.correction(self.dec.matvec(v))  # coarse solve #2
        return v + w

    def apply_block(self, U: np.ndarray) -> np.ndarray:
        """Blocked application — two coarse solves for the whole block."""
        self.applications += U.shape[1]
        W = self.coarse.correction_block(U)
        V = self.ras.apply_block(U)
        V = V - self.coarse.correction_block(self.dec.matvec_block(V))
        return V + W

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.apply(u)

    @property
    def coarse_solves_per_application(self) -> int:
        return 2


class TwoLevelBNN:
    """Hybrid (balancing Neumann–Neumann form): symmetric when the
    one-level part is (use with :class:`~repro.core.ras.OneLevelASM` + CG)."""

    def __init__(self, one_level, coarse: CoarseOperator):
        self.one_level = one_level
        self.coarse = coarse
        self.dec: Decomposition = one_level.dec
        self.applications = 0

    def apply(self, u: np.ndarray) -> np.ndarray:
        self.applications += 1
        coarse = self.coarse
        y = coarse.solve(coarse.space.zt_dot(u))
        w = coarse.space.z_dot(y)
        v = u - coarse.az_dot(y)               # (I − A Q) u, cached A·Z
        z = self.one_level.apply(v)
        z = z - coarse.correction(self.dec.matvec(z))  # (I − Q A)
        return z + w

    def apply_block(self, U: np.ndarray) -> np.ndarray:
        """Blocked application — two coarse solves for the whole block."""
        self.applications += U.shape[1]
        coarse = self.coarse
        Y = coarse.solve(coarse.space.zt_dot_block(U))
        W = coarse.space.z_dot_block(Y)
        V = U - coarse.kernels.spmm(coarse.AZ, Y)
        T = self.one_level.apply_block(V)
        T = T - coarse.correction_block(self.dec.matvec_block(T))
        return T + W

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.apply(u)

    @property
    def coarse_solves_per_application(self) -> int:
        return 2
