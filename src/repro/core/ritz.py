"""A posteriori deflation from Ritz vectors (the paper's conclusion).

The GenEO vectors are computed *a priori* by local eigensolves — the
dominant setup cost of figures 8/10.  The paper's outlook proposes
retrieving deflation vectors *a posteriori* instead, "using for example
approximations of the Ritz vectors" harvested during the convergence of
the one-level method.  This module implements that construction:

1. run k Arnoldi steps of the one-level preconditioned operator
   ``A P⁻¹_RAS`` (a plain GMRES cycle does exactly this);
2. extract the harmonic Ritz pairs of the small Hessenberg matrix and
   keep the ``m`` smallest in magnitude — approximations of the
   slow modes that stall the one-level method;
3. split each global Ritz vector across subdomains through the partition
   of unity: ``W_i = D_i R_i v``.  Since Σ R_iᵀ D_i R_i = I the resulting
   deflation space *contains* the Ritz vectors.

The same :class:`~repro.core.coarse.CoarseOperator` machinery then builds
and applies E — demonstrating that the framework is agnostic to where the
deflation vectors come from (§3's "abstract deflation vectors").
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..common.errors import ReproError
from ..dd.decomposition import Decomposition
from .deflation import DeflationSpace
from .ras import OneLevelRAS


def arnoldi(op, v0: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """k-step Arnoldi: returns (V, H̄) with V of shape (n, k+1) and
    H̄ of shape (k+1, k), op·V[:, :k] = V H̄ (modified Gram–Schmidt)."""
    n = v0.shape[0]
    if k < 1 or k > n:
        raise ReproError(f"arnoldi steps k={k} invalid for n={n}")
    V = np.zeros((n, k + 1))
    H = np.zeros((k + 1, k))
    beta = np.linalg.norm(v0)
    if beta == 0:
        raise ReproError("arnoldi requires a nonzero start vector")
    V[:, 0] = v0 / beta
    for j in range(k):
        w = op(V[:, j])
        for i in range(j + 1):
            H[i, j] = w @ V[:, i]
            w -= H[i, j] * V[:, i]
        H[j + 1, j] = np.linalg.norm(w)
        if H[j + 1, j] < 1e-14:
            return V[:, :j + 2], H[:j + 2, :j + 1]
        V[:, j + 1] = w / H[j + 1, j]
    return V, H


def harmonic_ritz_pairs(H: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Harmonic Ritz values/vectors of the Arnoldi Hessenberg H̄ (k+1, k).

    Harmonic Ritz pairs target the *smallest* eigenvalues of the operator
    (the ones deflation wants), unlike ordinary Ritz pairs which favour
    the largest.  They solve (H_k + h²_{k+1,k} H_k⁻ᴴ e_k e_kᵀ) y = θ y.
    """
    k = H.shape[1]
    Hk = H[:k, :k]
    h2 = H[k, k - 1] ** 2
    ek = np.zeros(k)
    ek[-1] = 1.0
    try:
        f = np.linalg.solve(Hk.T, ek)
    except np.linalg.LinAlgError as exc:
        raise ReproError(f"singular Hessenberg in harmonic Ritz: {exc}") \
            from exc
    Hmod = Hk + h2 * np.outer(f, ek)
    theta, Y = sla.eig(Hmod)
    order = np.argsort(np.abs(theta))
    return theta[order], Y[:, order]


def ritz_deflation(dec: Decomposition, ras: OneLevelRAS, b: np.ndarray, *,
                   n_vectors: int = 10, n_arnoldi: int | None = None,
                   ) -> DeflationSpace:
    """Build a deflation space from harmonic Ritz vectors of ``A P⁻¹``.

    Parameters
    ----------
    dec, ras:
        The decomposition and its one-level preconditioner.
    b:
        Seed vector for the Arnoldi process (typically the right-hand
        side — the vectors come for free from a stalled one-level cycle).
    n_vectors:
        Number of Ritz vectors to deflate (the coarse dim is
        ``n_vectors``, *not* per-subdomain).
    n_arnoldi:
        Arnoldi steps (default ``3 · n_vectors + 10``).
    """
    n = dec.problem.num_free
    if n_arnoldi is None:
        n_arnoldi = min(n, 3 * n_vectors + 10)
    if n_vectors > n_arnoldi:
        raise ReproError(
            f"n_vectors={n_vectors} exceeds arnoldi steps {n_arnoldi}")

    def op(v):
        return dec.matvec(ras.apply(v))

    V, H = arnoldi(op, b, n_arnoldi)
    k = H.shape[1]
    theta, Y = harmonic_ritz_pairs(H)
    m = min(n_vectors, k)
    # combine complex-conjugate pairs into real vectors
    vecs = []
    i = 0
    while len(vecs) < m and i < k:
        y = Y[:, i]
        if np.abs(y.imag).max() > 1e-12:
            vecs.append(np.real(y))
            if len(vecs) < m:
                vecs.append(np.imag(y))
            i += 2
        else:
            vecs.append(np.real(y))
            i += 1
    Yr = np.column_stack(vecs[:m])
    # Ritz vectors of A P⁻¹ live in the Krylov space; apply P⁻¹ so the
    # deflation space targets A itself (right-preconditioned harvest)
    ritz = V[:, :k] @ Yr
    ritz = np.column_stack([ras.apply(ritz[:, j]) for j in range(m)])
    # orthonormalise for conditioning of E
    ritz, _ = np.linalg.qr(ritz)

    W_blocks = [(s.d[:, None] * ritz[s.dofs]) for s in dec.subdomains]
    return DeflationSpace(dec, W_blocks)
