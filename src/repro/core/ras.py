"""One-level Schwarz preconditioners (paper eq. 3).

* RAS (restricted additive Schwarz, Cai & Sarkis 1999):
  ``P⁻¹ = Σ R_iᵀ D_i A_i⁻¹ R_i`` — the paper's one-level building block;
  non-symmetric, the standard choice with GMRES.
* ASM (additive Schwarz): ``Σ R_iᵀ A_i⁻¹ R_i`` — symmetric, pairs with CG.

Each A_i = R_i A R_iᵀ is factorised once (the *factorization* phase of
figures 8/10); every application is N concurrent local solves followed by
the partition-of-unity prolongation.  The factorization loop runs under
the parallel setup engine (:mod:`repro.parallel`) — each subdomain is
timed on its own clock, so the per-subdomain ``factor_times`` used by
the figs. 8/10 SPMD wall-clock (max over ranks) survive any executor.
"""

from __future__ import annotations

import numpy as np

from ..dd.decomposition import Decomposition
from ..parallel import ParallelConfig, timed_map
from ..solvers import factorize


class OneLevelRAS:
    """P⁻¹_RAS = Σ R_iᵀ D_i A_i⁻¹ R_i."""

    weighted = True

    def __init__(self, dec: Decomposition, *, backend: str = "superlu",
                 parallel: ParallelConfig | str | None = None):
        self.dec = dec
        self.backend = backend
        #: per-subdomain factorization seconds — SPMD wall-clock for the
        #: *factorization* phase of figs. 8/10 is the max of these
        self.factorizations, self.factor_times = timed_map(
            lambda s: factorize(s.A_dir, backend),
            dec.subdomains, parallel)
        self.applications = 0

    def apply(self, r: np.ndarray) -> np.ndarray:
        """One preconditioner application on a reduced global vector."""
        self.applications += 1
        dec = self.dec
        sols = [f.solve(r[s.dofs])
                for f, s in zip(self.factorizations, dec.subdomains)]
        return self._combine(sols)

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        """Multi-RHS application: column k of the result is ``apply(R[:, k])``.

        One blocked local solve per subdomain (every
        :class:`~repro.solvers.local.Factorization` backend accepts
        column blocks) instead of ``N × k`` vector solves — the path
        block-Krylov and Ritz-projection drivers should use.
        """
        if R.ndim != 2:
            raise ValueError(f"apply_block expects a column block, "
                             f"got ndim={R.ndim}")
        self.applications += R.shape[1]
        dec = self.dec
        out = np.zeros((dec.problem.num_free, R.shape[1]))
        for f, s in zip(self.factorizations, dec.subdomains):
            sols = f.solve(R[s.dofs, :])
            if self.weighted:
                sols = s.d[:, None] * sols
            np.add.at(out, s.dofs, sols)
        return out

    def _combine(self, sols: list[np.ndarray]) -> np.ndarray:
        dec = self.dec
        if self.weighted:
            return dec.combine(sols)               # Σ Rᵀ D u_i
        return dec.combine_raw(sols)               # Σ Rᵀ u_i

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    def local_factor_nnz(self) -> np.ndarray:
        return np.array([f.nnz_factor for f in self.factorizations])


class OneLevelASM(OneLevelRAS):
    """P⁻¹_ASM = Σ R_iᵀ A_i⁻¹ R_i (symmetric one-level Schwarz)."""

    weighted = False
