"""One-level Schwarz preconditioners (paper eq. 3).

* RAS (restricted additive Schwarz, Cai & Sarkis 1999):
  ``P⁻¹ = Σ R_iᵀ D_i A_i⁻¹ R_i`` — the paper's one-level building block;
  non-symmetric, the standard choice with GMRES.
* ASM (additive Schwarz): ``Σ R_iᵀ A_i⁻¹ R_i`` — symmetric, pairs with CG.

Each A_i = R_i A R_iᵀ is factorised once (the *factorization* phase of
figures 8/10); every application is N concurrent local solves followed by
the partition-of-unity prolongation.
"""

from __future__ import annotations

import time

import numpy as np

from ..dd.decomposition import Decomposition
from ..solvers import factorize


class OneLevelRAS:
    """P⁻¹_RAS = Σ R_iᵀ D_i A_i⁻¹ R_i."""

    weighted = True

    def __init__(self, dec: Decomposition, *, backend: str = "superlu"):
        self.dec = dec
        self.backend = backend
        self.factorizations = []
        #: per-subdomain factorization seconds — SPMD wall-clock for the
        #: *factorization* phase of figs. 8/10 is the max of these
        self.factor_times = []
        for s in dec.subdomains:
            t0 = time.perf_counter()
            self.factorizations.append(factorize(s.A_dir, backend))
            self.factor_times.append(time.perf_counter() - t0)
        self.applications = 0

    def apply(self, r: np.ndarray) -> np.ndarray:
        """One preconditioner application on a reduced global vector."""
        self.applications += 1
        dec = self.dec
        sols = [f.solve(r[s.dofs])
                for f, s in zip(self.factorizations, dec.subdomains)]
        return self._combine(sols)

    def _combine(self, sols: list[np.ndarray]) -> np.ndarray:
        dec = self.dec
        if self.weighted:
            return dec.combine(sols)               # Σ Rᵀ D u_i
        return dec.combine_raw(sols)               # Σ Rᵀ u_i

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    def local_factor_nnz(self) -> np.ndarray:
        return np.array([f.nnz_factor for f in self.factorizations])


class OneLevelASM(OneLevelRAS):
    """P⁻¹_ASM = Σ R_iᵀ A_i⁻¹ R_i (symmetric one-level Schwarz)."""

    weighted = False
