"""One-level Schwarz preconditioners (paper eq. 3).

* RAS (restricted additive Schwarz, Cai & Sarkis 1999):
  ``P⁻¹ = Σ R_iᵀ D_i A_i⁻¹ R_i`` — the paper's one-level building block;
  non-symmetric, the standard choice with GMRES.
* ASM (additive Schwarz): ``Σ R_iᵀ A_i⁻¹ R_i`` — symmetric, pairs with CG.

Each A_i = R_i A R_iᵀ is factorised once (the *factorization* phase of
figures 8/10); every application is N concurrent local solves followed by
the partition-of-unity prolongation.  Both the factorization loop AND
the per-application solve loop run under the parallel setup engine
(:mod:`repro.parallel`) — the local triangular solves release the GIL,
so the solve-phase hot loop gains real concurrency too.  Results are
combined in submission order, so parallel and serial applications are
bitwise identical.
"""

from __future__ import annotations

import numpy as np

from ..common.validation import as_float64_block
from ..dd.decomposition import Decomposition
from ..kernels import default_backend
from ..parallel import ParallelConfig, parallel_map, resolve_parallel, timed_map


class OneLevelRAS:
    """P⁻¹_RAS = Σ R_iᵀ D_i A_i⁻¹ R_i."""

    weighted = True

    def __init__(self, dec: Decomposition, *, backend: str = "superlu",
                 parallel: ParallelConfig | str | None = None,
                 recorder=None, kernels=None):
        self.dec = dec
        self.backend = backend
        self.parallel = resolve_parallel(parallel)
        #: kernel backend owning the local factorizations and the fused
        #: apply path (:mod:`repro.kernels`); the default ``numpy``
        #: backend reproduces the historical behaviour bitwise
        self.kernels = default_backend() if kernels is None else kernels
        #: per-subdomain factorization seconds — SPMD wall-clock for the
        #: *factorization* phase of figs. 8/10 is the max of these
        self.factorizations, self.factor_times = timed_map(
            lambda s: self.kernels.factorize_local(s.A_dir, backend),
            dec.subdomains, self.parallel,
            recorder=recorder, label="factorize")
        self.applications = 0
        #: optional :class:`~repro.resilience.FaultInjector`; fires the
        #: ``local_solve`` op (rank = subdomain index) on every solve
        self.injector = None
        #: subdomain indices whose exact solve is replaced by a Jacobi
        #: surrogate (degraded mode after a killed rank — see
        #: docs/resilience.md)
        self.disabled: set[int] = set()
        self._surrogate: dict[int, np.ndarray] = {}
        #: fused per-subdomain apply handles (gather → solve → weighted
        #: scatter-add) — ``None`` on the reference backend or for the
        #: unweighted ASM variant, which keep the legacy path
        self._fused = self.kernels.fuse_ras(
            self.factorizations, dec.subdomains) if self.weighted else None
        self._nlocal = int(sum(s.size for s in dec.subdomains))

    def disable(self, i: int) -> None:
        """Replace subdomain *i*'s exact local solve by a Jacobi
        (diagonal) surrogate.  Dropping the subdomain entirely would
        make the Schwarz sum singular on its interior dofs (no other
        subdomain covers them), so the degraded preconditioner keeps a
        cheap nonsingular stand-in instead: convergence degrades
        gracefully, the solve still completes."""
        if not 0 <= i < len(self.dec.subdomains):
            raise ValueError(f"no subdomain {i} to disable")
        d = np.asarray(self.dec.subdomains[i].A_dir.diagonal(),
                       dtype=np.float64).copy()
        d[np.abs(d) < 1e-300] = 1.0
        self._surrogate[i] = 1.0 / d
        self.disabled.add(i)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """One preconditioner application on a reduced global vector.

        The N local solves run under the configured executor; the
        partition-of-unity combination walks subdomains in submission
        order, so the result is bitwise independent of the executor.

        With a fused kernel backend (fp32/compiled), a serial executor
        and no resilience machinery armed, the whole application runs
        as N fused gather→solve→scatter passes with no intermediate
        local vectors; any injector, disabled subdomain or parallel
        executor falls back to the legacy solve-then-combine path.
        """
        self.applications += 1
        facts, subs = self.factorizations, self.dec.subdomains
        injector, disabled = self.injector, self.disabled
        if (self._fused is not None and injector is None and not disabled
                and self.parallel.backend == "serial"):
            # the fused gather reads raw fp64 memory — guarantee layout
            r = np.ascontiguousarray(r, dtype=np.float64)
            out = np.zeros(self.dec.problem.num_free)
            for h in self._fused:
                h.apply_weighted(r, out)
            self.kernels.note_ras_apply(self._nlocal)
            return out

        def local_solve(i: int) -> np.ndarray:
            if i in disabled:
                return self._surrogate[i] * r[subs[i].dofs]
            sol = facts[i].solve(r[subs[i].dofs])
            if injector is not None:
                sol = injector.fire("local_solve", i, sol)
            return sol

        sols = parallel_map(local_solve, range(len(subs)), self.parallel)
        return self._combine(sols)

    def apply_block(self, R: np.ndarray) -> np.ndarray:
        """Multi-RHS application: column k of the result is ``apply(R[:, k])``.

        One blocked local solve per subdomain (every
        :class:`~repro.solvers.local.Factorization` backend accepts
        column blocks) instead of ``N × k`` vector solves — the path
        block-Krylov and Ritz-projection drivers should use.  Solves run
        under the configured executor; accumulation is serial in
        submission order.
        """
        R = as_float64_block(R, "apply_block", ValueError)
        self.applications += R.shape[1]
        facts, subs = self.factorizations, self.dec.subdomains
        if (self._fused is not None and self.injector is None
                and not self.disabled
                and self.parallel.backend == "serial"):
            out = np.zeros((self.dec.problem.num_free, R.shape[1]))
            col = np.empty(self.dec.problem.num_free)
            for c in range(R.shape[1]):
                buf = np.ascontiguousarray(R[:, c])
                col[:] = 0.0
                for h in self._fused:
                    h.apply_weighted(buf, col)
                out[:, c] = col
            self.kernels.note_ras_apply(self._nlocal, columns=R.shape[1])
            return out

        def local_solve(i: int) -> np.ndarray:
            if i in self.disabled:
                sols = self._surrogate[i][:, None] * R[subs[i].dofs, :]
            else:
                sols = facts[i].solve(R[subs[i].dofs, :])
            if self.weighted:
                sols = subs[i].d[:, None] * sols
            return sols

        all_sols = parallel_map(local_solve, range(len(subs)), self.parallel)
        out = np.zeros((self.dec.problem.num_free, R.shape[1]))
        for s, sols in zip(subs, all_sols):
            # a subdomain's dofs are unique, so fancy-index accumulation
            # is exact — and much faster than np.add.at's ufunc path
            out[s.dofs] += sols
        return out

    def _combine(self, sols: list[np.ndarray]) -> np.ndarray:
        dec = self.dec
        if self.weighted:
            return dec.combine(sols)               # Σ Rᵀ D u_i
        return dec.combine_raw(sols)               # Σ Rᵀ u_i

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    def local_factor_nnz(self) -> np.ndarray:
        return np.array([f.nnz_factor for f in self.factorizations])


class OneLevelASM(OneLevelRAS):
    """P⁻¹_ASM = Σ R_iᵀ A_i⁻¹ R_i (symmetric one-level Schwarz)."""

    weighted = False
