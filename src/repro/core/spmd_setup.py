"""Fully-distributed setup: every rank builds its subdomain by itself.

The sequential :class:`~repro.dd.decomposition.Decomposition` builds all
subdomains in one process — convenient for testing, but the paper's
point (§2) is stronger: *"The second approach does not require any
additional parallel information or communication: there is no need for a
global ordering"*.  This module realises that claim over the simulated
MPI.  Each rank, given only the global coarse mesh + partition array
(replicated, as FreeFem++ replicates the unrefined coarse mesh) and its
own rank id:

1. grows its own overlap ``T_i^δ`` and extracts local meshes/spaces;
2. assembles its Dirichlet matrix by the trim rule and its Neumann
   matrix — *locally*;
3. finds neighbour candidates from the partition graph, then exchanges
   **global dof keys** with them to align the shared-dof index maps
   (entity keys, not a global dof numbering: vertex ids / edge pairs /
   face triples, which every rank can compute independently);
4. exchanges χ̃ node values with its neighbours to normalise the
   partition of unity — the global sum Σ_j χ̃_j is never formed.

The result per rank is numerically identical to the sequential
decomposition's subdomain (asserted in the tests), which validates the
paper's "communication-free setup + one neighbourhood exchange" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..common.errors import DecompositionError
from ..dd.dofmap import map_vector_dofs
from ..dd.overlap import grow_overlap, vertex_layers
from ..dd.pou import expand_to_vector, pou_diagonal
from ..dd.problem import Problem
from ..mpi.simmpi import Comm

_TAG_KEYS = 21_000
_TAG_CHI = 22_000


@dataclass
class LocalSubdomain:
    """One rank's locally-built subdomain data (mirrors
    :class:`~repro.dd.decomposition.Subdomain`)."""

    index: int
    dofs: np.ndarray                 # global reduced dof ids (local order)
    A_dir: sp.csr_matrix
    A_neu: sp.csr_matrix
    d: np.ndarray
    neighbors: list[int]
    shared: dict[int, np.ndarray]


def _partition_neighbor_candidates(mesh, part: np.ndarray, me: int,
                                   delta: int) -> list[int]:
    """Parts whose δ-regions could intersect mine: computed from the
    replicated coarse partition, no communication.

    Two δ-regions can share a dof only if the owning parts are within
    2(δ+1) vertex-adjacency layers of each other (δ growth each side
    plus one layer of vertex contact), so the owners of my 2(δ+1)-grown
    region are a superset of my true neighbours — the dof-key exchange
    prunes the false positives.
    """
    cells, _ = grow_overlap(mesh, part, me, 2 * (delta + 1))
    owners = np.unique(part[cells])
    return [int(p) for p in owners if p != me]


def build_local_subdomain(comm: Comm, problem: Problem, part: np.ndarray,
                          delta: int) -> LocalSubdomain:
    """SPMD construction of this rank's subdomain (steps 1–4 above)."""
    me = comm.rank
    mesh, form = problem.mesh, problem.form
    gspace = problem.space

    # ---- step 1+2: purely local meshes, spaces and matrices ----------
    cells_dp1, layers_dp1 = grow_overlap(mesh, part, me, delta + 1)
    keep = layers_dp1 <= delta
    cells_d, layers_d = cells_dp1[keep], layers_dp1[keep]

    smesh1, vmap1, cmap1 = mesh.extract_cells(cells_dp1)
    space1 = form.make_space(smesh1)
    A_loc = form.assemble_matrix(space1, cell_map=cmap1)

    smesh0, vmap0, cmap0 = mesh.extract_cells(cells_d)
    space0 = form.make_space(smesh0)

    g_d = map_vector_dofs(space0, gspace, vmap0, cmap0)
    g_dp1 = map_vector_dofs(space1, gspace, vmap1, cmap1)
    inv = np.full(gspace.num_dofs, -1, dtype=np.int64)
    inv[g_dp1] = np.arange(g_dp1.size)
    sel = inv[g_d]
    reduced = problem.free_lookup[g_d]
    keep_mask = reduced >= 0
    dofs = reduced[keep_mask]
    A_dir = A_loc[sel[keep_mask]][:, sel[keep_mask]].tocsr()
    keep_idx = np.flatnonzero(keep_mask)
    A_neu = form.assemble_matrix(space0, cell_map=cmap0)
    A_neu = A_neu[keep_idx][:, keep_idx].tocsr()

    # ---- step 3: neighbour discovery + shared-dof alignment ----------
    candidates = _partition_neighbor_candidates(mesh, part, me, delta)
    # ship my (sorted) global dof keys to every candidate; the keys are
    # the reduced ids, which both sides computed independently from the
    # replicated coarse data — no central structure involved
    for cand in candidates:
        comm.isend(dofs, cand, _TAG_KEYS)
    neighbors: list[int] = []
    shared: dict[int, np.ndarray] = {}
    order = np.argsort(dofs, kind="stable")
    sorted_dofs = dofs[order]
    for cand in candidates:
        theirs = comm.recv(cand, _TAG_KEYS)
        common = np.intersect1d(sorted_dofs, np.sort(theirs))
        if common.size == 0:
            continue
        pos = order[np.searchsorted(sorted_dofs, common)]
        neighbors.append(cand)
        shared[cand] = pos
    neighbors.sort()

    # ---- step 4: partition of unity via neighbour χ̃ exchange --------
    verts, vlayer = vertex_layers(mesh, cells_d, layers_d)
    chi_mine = 1.0 - vlayer.astype(np.float64) / delta
    total = chi_mine.copy()
    for nb in neighbors:
        comm.isend((verts, chi_mine), nb, _TAG_CHI)
    for nb in neighbors:
        vj, cj = comm.recv(nb, _TAG_CHI)
        # accumulate their χ̃ at my vertices
        pos = np.searchsorted(verts, vj)
        ok = (pos < verts.size)
        ok[ok] &= verts[pos[ok]] == vj[ok]
        np.add.at(total, pos[ok], cj[ok])
    d_scal = pou_diagonal(space0, chi_mine, total)
    d = expand_to_vector(d_scal, gspace.ncomp)[keep_mask]

    return LocalSubdomain(index=me, dofs=dofs, A_dir=A_dir, A_neu=A_neu,
                          d=d, neighbors=neighbors, shared=shared)


def spmd_build_decomposition(comm: Comm, problem: Problem,
                             part: np.ndarray, delta: int
                             ) -> LocalSubdomain:
    """Entry point used by the tests/benchmarks: returns this rank's
    locally-built subdomain; apply Jacobi scaling if the problem asks."""
    part = np.asarray(part, dtype=np.int64)
    if delta < 1:
        raise DecompositionError(f"delta must be >= 1, got {delta}")
    sub = build_local_subdomain(comm, problem, part, delta)
    if problem.scaling == "jacobi":
        s = 1.0 / np.sqrt(sub.A_dir.diagonal())
        S = sp.diags(s)
        sub.A_dir = (S @ sub.A_dir @ S).tocsr()
        sub.A_neu = (S @ sub.A_neu @ S).tocsr()
    return sub
