"""Pluggable coarse-solve strategies (registry, mirrors ``repro.kernels``).

"How the coarse problem E y = w is solved" is a strategy chosen per
coarse operator:

``dense``
    The reference exact factorisation (bitwise-identical to the
    historical path); at scale this is the paper's dense distributed
    Cholesky on the masters — the scaling wall.
``sparse``
    One-pass CSR assembly from the neighbour-block structure + sparse
    direct factorisation (connectivity-bounded fill).
``multilevel``
    The method applied to itself: level-2 RAS + Nicolaides/GenEO on
    the subdomain-connectivity graph of E, solved inexactly by a few
    inner FGMRES iterations (three-level in total).

Selection order for :func:`get_strategy`:

1. an explicit argument (``SchwarzSolver(coarse_strategy=...)``, CLI
   ``--coarse-strategy``) — a name or a ready
   :class:`~repro.core.coarse_strategies.base.CoarseSolveStrategy`
   instance (instances carry options, e.g.
   ``MultilevelStrategy(inner_iters=4)``);
2. the ``REPRO_COARSE_STRATEGY`` environment variable;
3. the reference ``"dense"`` strategy.
"""

from __future__ import annotations

import os

from ...common.errors import ReproError
from .base import CoarseSolveStrategy
from .direct import DenseStrategy, SparseStrategy, csr_from_blocks
from .multilevel import MultilevelCoarseSolve, MultilevelStrategy

ENV_VAR = "REPRO_COARSE_STRATEGY"

_STRATEGIES: dict[str, type] = {}


def register_strategy(name: str, factory=None):
    """Register *factory* under *name* (usable as a decorator).  The
    factory takes no arguments and returns a
    :class:`~repro.core.coarse_strategies.base.CoarseSolveStrategy`."""
    if factory is None:
        def deco(f):
            _STRATEGIES[name] = f
            return f
        return deco
    _STRATEGIES[name] = factory
    return factory


def strategy_names() -> list[str]:
    return sorted(_STRATEGIES)


def get_strategy(spec=None) -> CoarseSolveStrategy:
    """Resolve a coarse-solve strategy (argument →
    ``$REPRO_COARSE_STRATEGY`` → ``"dense"``).  A ready
    :class:`~repro.core.coarse_strategies.base.CoarseSolveStrategy`
    instance passes through unchanged."""
    if isinstance(spec, CoarseSolveStrategy):
        return spec
    resolved = spec or os.environ.get(ENV_VAR) or "dense"
    if resolved not in _STRATEGIES:
        raise ReproError(
            f"unknown coarse strategy {resolved!r}; "
            f"expected one of {strategy_names()}")
    return _STRATEGIES[resolved]()


register_strategy("dense", DenseStrategy)
register_strategy("sparse", SparseStrategy)
register_strategy("multilevel", MultilevelStrategy)

__all__ = [
    "CoarseSolveStrategy",
    "DenseStrategy",
    "SparseStrategy",
    "MultilevelStrategy",
    "MultilevelCoarseSolve",
    "csr_from_blocks",
    "register_strategy",
    "strategy_names",
    "get_strategy",
    "ENV_VAR",
]
