"""The :class:`CoarseSolveStrategy` contract.

A strategy answers one question — *how is the coarse problem E y = w
solved?* — decoupled from how E is applied in the correction (which the
:class:`~repro.core.coarse.CoarseOperator` owns).  Three built-ins ship
with the registry (:mod:`repro.core.coarse_strategies`):

``dense``
    The reference: the exact factorisation path the repo has always
    used, kept bitwise-identical (the paper's dense distributed direct
    solve on the masters is its at-scale realisation).
``sparse``
    E assembled straight into CSR from the neighbour-block structure
    and factorised sparsely — the fill of the factors follows the
    subdomain connectivity instead of dim(E)².
``multilevel``
    The method applied to itself: E is partitioned into second-level
    subdomains, preconditioned by a level-2 RAS + Nicolaides/GenEO
    coarse space, and solved *inexactly* by a few inner FGMRES
    iterations (Seelinger, Reinarz & Scheichl, arXiv:1906.10944).

The object a strategy builds is a *factorization-like* handle: it
exposes ``solve(w)`` for vectors or column blocks and ``nnz_factor``.
Inexact handles additionally carry ``exact = False`` so the resilience
degrade chain and the reduced-precision kernel mirrors know to treat
them differently.
"""

from __future__ import annotations


class CoarseSolveStrategy:
    """How a :class:`~repro.core.coarse.CoarseOperator` solves E y = w.

    Subclasses implement :meth:`build`; :meth:`assemble` may be
    overridden to change how the block dictionary becomes the stored E
    (the dense reference keeps the historical COO route bitwise).
    """

    #: registry name
    name = "abstract"
    #: True when ``build`` returns a direct (fixed linear) solve — the
    #: reduced-precision kernel mirrors only apply to exact strategies
    exact = True

    def assemble(self, space, blocks):
        """CSR E from the block dictionary.  Default: the direct
        row-block CSR assembly (no duplicate summing pass)."""
        from .direct import csr_from_blocks
        return csr_from_blocks(space, blocks)

    def build(self, coarse, backend: str, rank_tol: float):
        """Return the solve handle for *coarse* (a built
        :class:`~repro.core.coarse.CoarseOperator` whose ``E`` is
        assembled).  *backend* is the sparse-factorization method name,
        *rank_tol* the pseudo-inverse truncation threshold."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Capability row for ``repro backends`` / the docs table."""
        return {"name": self.name, "exact": self.exact}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CoarseSolveStrategy {self.name}>"
