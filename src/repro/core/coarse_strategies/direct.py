"""Exact (direct-factorisation) coarse solve strategies.

``dense`` is the reference path the repo has always used — the block
dictionary goes through the historical COO assembly and the
factorization is delegated back to
:meth:`~repro.core.coarse.CoarseOperator._robust_factorize`, so it is
bitwise-identical to the pre-strategy implementation.  Its at-scale
realisation is the paper's dense distributed Cholesky on the masters
(:class:`repro.solvers.distributed.DistributedCholesky`) — the O(dim³)
factorization whose panel broadcasts stop scaling past ~hundreds of
ranks.

``sparse`` assembles E straight into CSR row blocks from the
neighbour-block structure (one pass, no duplicate summing) and
factorises it sparsely: the fill of the factors follows the subdomain
connectivity graph — O(nnz(L)) instead of O(dim²) memory — which is the
regime a distributed *sparse* direct solver (MUMPS on masterComm) would
occupy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...solvers import factorize
from .base import CoarseSolveStrategy


# ----------------------------------------------------------------------
# Assembly routes
# ----------------------------------------------------------------------

def coo_from_blocks(space, blocks) -> sp.csr_matrix:
    """The historical COO route: every block entry becomes a triplet,
    duplicates summed by scipy.  Kept verbatim — the ``dense``
    strategy's E must stay bitwise-identical to the reference."""
    off = space.offsets
    rows, cols, vals = [], [], []
    for (i, j), blk in blocks.items():
        r = np.repeat(np.arange(off[i], off[i + 1]), blk.shape[1])
        c = np.tile(np.arange(off[j], off[j + 1]), blk.shape[0])
        rows.append(r)
        cols.append(c)
        vals.append(blk.ravel())
    E = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(space.m, space.m))
    E.sum_duplicates()
    return E


def csr_from_blocks(space, blocks) -> sp.csr_matrix:
    """Direct CSR assembly from the neighbour-block structure.

    Block (i, j) exists iff j ∈ Ō_i, and the block keys are unique, so
    the CSR rows can be written in one pass: row block i holds the
    horizontally-stacked blocks of its sorted neighbour columns.  No
    COO expansion of per-entry coordinates, no duplicate-summing pass —
    the peak memory is the CSR itself.  The stored values are
    identical to :func:`coo_from_blocks` (same floats, same canonical
    ordering); only the construction route differs.
    """
    off = space.offsets
    nu = space.nu
    by_row: dict[int, list[int]] = {}
    for (i, j) in blocks:
        by_row.setdefault(i, []).append(j)
    indptr = np.zeros(space.m + 1, dtype=np.int64)
    indices_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    for i in range(len(nu)):
        js = sorted(by_row.get(i, ()))
        if not js:                   # pragma: no cover - empty subdomain
            indptr[off[i] + 1:off[i + 1] + 1] = indptr[off[i]]
            continue
        cols = np.concatenate(
            [np.arange(off[j], off[j + 1]) for j in js])
        vals = np.hstack([blocks[(i, j)] for j in js])
        row_nnz = cols.size
        for r in range(int(nu[i])):
            indices_parts.append(cols)
            data_parts.append(vals[r])
            indptr[off[i] + r + 1] = indptr[off[i] + r] + row_nnz
    return sp.csr_matrix(
        (np.concatenate(data_parts), np.concatenate(indices_parts),
         indptr), shape=(space.m, space.m))


# ----------------------------------------------------------------------
# Rank-deficiency fallback (shared by every strategy's degrade chain)
# ----------------------------------------------------------------------

class _PseudoInverse:
    """Truncated-decomposition solve for (near-)singular E.

    Symmetric E goes through ``eigh`` (the historical, bitwise-pinned
    route).  Nonsymmetric E — where an eigendecomposition with real
    ascending eigenvalues simply does not exist — is routed through the
    SVD instead: ``E⁺ = V_k diag(1/s_k) U_kᵀ`` over the singular values
    above the rank cut.  For symmetric positive semi-definite E the two
    coincide, so the SVD route is the strict generalisation.
    """

    def __init__(self, E, rank_tol: float):
        import scipy.linalg as sla
        from ...common.validation import matrix_is_symmetric
        self.n = E.shape[0]
        if matrix_is_symmetric(E):
            w, V = sla.eigh(E.toarray())
            cut = rank_tol * max(float(w.max()), 1e-300)
            keep = w > cut
            self.rank = int(keep.sum())
            self._U = self._V = V[:, keep]
            self._winv = 1.0 / w[keep]
        else:
            U, s, Vt = sla.svd(E.toarray())
            cut = rank_tol * max(float(s.max()), 1e-300)
            keep = s > cut
            self.rank = int(keep.sum())
            self._U = U[:, keep]
            self._V = Vt[keep].T
            self._winv = 1.0 / s[keep]
        self.nnz_factor = self.n * self.rank

    def solve(self, b):
        c = self._U.T @ b
        scaled = self._winv[:, None] * c if c.ndim == 2 else self._winv * c
        return self._V @ scaled


def probe_direct(fact, E) -> bool:
    """One-solve health check of a direct factorization of E — a
    factorization of a singular E may silently produce garbage."""
    rng = np.random.default_rng(0)
    w = rng.standard_normal(E.shape[0])
    y = fact.solve(w)
    resid = np.linalg.norm(E @ y - w)
    return bool(np.isfinite(resid)
                and resid <= 1e-6 * np.linalg.norm(w))


def robust_direct(coarse, backend: str, rank_tol: float):
    """Factorise ``coarse.E`` directly, degrading to the truncated
    pseudo-inverse when the factorization fails or fails its probe
    (numerically dependent deflation vectors make E singular)."""
    try:
        fact = factorize(coarse.E, backend)
        if probe_direct(fact, coarse.E):
            return fact
    except Exception:  # noqa: BLE001 - any backend failure → fallback
        pass
    coarse.rank_deficient = True
    return _PseudoInverse(coarse.E, rank_tol)


# ----------------------------------------------------------------------
# The strategies
# ----------------------------------------------------------------------

class DenseStrategy(CoarseSolveStrategy):
    """The reference exact factorisation (bitwise-identical)."""

    name = "dense"
    exact = True

    def assemble(self, space, blocks):
        return coo_from_blocks(space, blocks)

    def build(self, coarse, backend: str, rank_tol: float):
        # delegate to the historical method so the reference path stays
        # bitwise-identical (pinned by tests/test_coarse_strategies.py)
        return coarse._robust_factorize(backend, rank_tol)


class SparseStrategy(CoarseSolveStrategy):
    """Sparse-direct: one-pass CSR assembly + sparse factorisation."""

    name = "sparse"
    exact = True

    def __init__(self, backend: str | None = None):
        #: optional factorization-method override (None → the coarse
        #: operator's ``backend`` argument, superlu by default)
        self.backend = backend

    def build(self, coarse, backend: str, rank_tol: float):
        return robust_direct(coarse, self.backend or backend, rank_tol)
