"""The multilevel coarse strategy: the method applied to itself.

At the paper's N = 256–8192 the coarse dimension N·ν makes any direct
factorisation of E the scaling wall (§3.4's closing concern).  The cure
is the multilevel design of Seelinger, Reinarz & Scheichl
(arXiv:1906.10944): treat E = ZᵀAZ as a *new* sparse assembled problem
whose unknowns are grouped by level-1 subdomain, and precondition its
solve with a second copy of the method —

* **partition** the level-1 subdomain-connectivity graph (the block
  sparsity of E, fig. 4) into P₂ second-level subdomains;
* **overlap** each part by one layer of neighbouring blocks (δ = 1 in
  the block graph) and factorise the local E-blocks → a level-2 RAS;
* **level-2 coarse space**: Nicolaides (the partition-of-unity
  indicator per part) optionally enriched with the lowest local
  eigenvectors (a small GenEO on E), giving E₂ = Z₂ᵀEZ₂ — tiny, dense;
* **solve inexactly**: a few FGMRES iterations on E preconditioned by
  the additive two-level (RAS + coarse) operator.

The outer correction then costs O(inner · nnz(E)) work instead of a
dim(E)³ factorization — the coarse solve scales like one more level of
the same algorithm.  Because the solve is inexact, the *outer* Krylov
method should be flexible (FGMRES); the solver warns otherwise.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...common.errors import CoarseSolveError
from .base import CoarseSolveStrategy
from .direct import robust_direct


class MultilevelCoarseSolve:
    """Inexact E-solve: inner FGMRES + level-2 RAS/Nicolaides.

    Parameters
    ----------
    E:
        The assembled coarse matrix (CSR, block structure given by
        *offsets*).
    offsets:
        ``(N + 1,)`` column offsets of the level-1 subdomain blocks.
    neighbor_lists:
        Per level-1 subdomain, the indices of its overlap neighbours
        (the block sparsity of E).
    num_parts:
        P₂ — number of second-level subdomains (default ``max(2, N//8)``,
        the paper-style ~8× coarsening ratio).
    nev2:
        Extra GenEO-style eigenvectors per level-2 subdomain on top of
        the Nicolaides indicator (0 = pure Nicolaides).
    inner_iters:
        Inner FGMRES iteration budget per coarse solve (the
        inexactness knob).
    inner_tol:
        Inner relative-residual target (whichever of budget/tolerance
        is hit first stops the inner solve).
    kernels:
        Optional :class:`~repro.kernels.KernelBackend` for the inner
        SpMVs (the inner orthogonalisation stays on the reference
        backend so the fp32 basis mirror is not thrashed between the
        outer and inner loops).
    """

    #: the solve is an inner Krylov iteration, not a fixed linear map
    exact = False

    def __init__(self, E: sp.csr_matrix, offsets: np.ndarray,
                 neighbor_lists, *, num_parts: int | None = None,
                 nev2: int = 0, inner_iters: int = 8,
                 inner_tol: float = 1e-8, local_backend: str = "superlu",
                 kernels=None, recorder=None, seed: int = 0):
        from ...kernels import default_backend
        from ...obs.recorder import NULL_RECORDER
        from ...partition import partition_graph
        from ...solvers import factorize
        self.E = E
        self.kernels = default_backend() if kernels is None else kernels
        self.recorder = NULL_RECORDER if recorder is None else recorder
        #: optional :class:`~repro.resilience.FaultInjector`; fires the
        #: ``coarse_level2`` op on every inner solve output (installed
        #: by :class:`~repro.core.coarse.CoarseOperator`)
        self.injector = None
        offsets = np.asarray(offsets, dtype=np.int64)
        N = offsets.size - 1
        m = int(offsets[-1])
        if N < 4:
            raise CoarseSolveError(
                f"multilevel coarse solve needs >= 4 level-1 subdomains, "
                f"got {N}")
        self.num_parts = int(num_parts) if num_parts \
            else max(2, N // 8)
        self.num_parts = max(2, min(self.num_parts, N // 2))
        self.inner_iters = int(inner_iters)
        self.inner_tol = float(inner_tol)
        #: total inner FGMRES iterations across every coarse solve
        self.inner_iterations = 0
        #: inner iteration count of the most recent solve
        self.last_inner = 0

        # -- level-2 partition of the block-connectivity graph ----------
        rows, cols = [], []
        for i, nbrs in enumerate(neighbor_lists):
            for j in nbrs:
                rows.append(i)
                cols.append(j)
        adj = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(N, N))
        adj = ((adj + adj.T) > 0).astype(np.float64).tocsr()
        self.part = partition_graph(adj, self.num_parts, seed=seed)

        # -- overlapping level-2 subdomains (δ = 1 in the block graph) --
        self._dofs: list[np.ndarray] = []       # E-row index sets
        self._weights: list[np.ndarray] = []    # Boolean PoU (owned rows)
        self._factors = []
        z2_cols: list[np.ndarray] = []          # dense columns of Z2
        z2_rows: list[np.ndarray] = []
        for p in range(self.num_parts):
            owned = np.flatnonzero(self.part == p)
            if owned.size == 0:         # pragma: no cover - degenerate part
                continue
            halo = set(owned.tolist())
            for i in owned:
                halo.update(int(j) for j in neighbor_lists[i])
            blocks = np.array(sorted(halo), dtype=np.int64)
            dofs = np.concatenate(
                [np.arange(offsets[i], offsets[i + 1]) for i in blocks])
            d = np.zeros(dofs.size)
            pos = 0
            for i in blocks:
                width = int(offsets[i + 1] - offsets[i])
                if self.part[i] == p:
                    d[pos:pos + width] = 1.0
                pos += width
            Eloc = E[np.ix_(dofs, dofs)].tocsc()
            self._factors.append(factorize(Eloc, local_backend))
            self._dofs.append(dofs)
            self._weights.append(d)
            # Nicolaides: the PoU indicator of this part, plus nev2
            # low-energy local eigenvectors (a small GenEO on E)
            vecs = [d / np.linalg.norm(d)]
            if nev2 > 0:
                import scipy.linalg as sla
                from ...common.validation import matrix_is_symmetric
                k = min(nev2, dofs.size - 1)
                if matrix_is_symmetric(Eloc):
                    w2, V2 = sla.eigh(Eloc.toarray())
                    low = V2[:, :k]
                else:
                    # nonsymmetric local block: eigh's "ascending real
                    # eigenvalues" contract does not exist — enrich with
                    # the smallest right singular vectors instead (the
                    # near-null directions an inexact solve misses)
                    _, s2, Vt2 = sla.svd(Eloc.toarray())
                    low = Vt2[::-1][:k].T
                for v in (low * d[:, None]).T:
                    nrm = np.linalg.norm(v)
                    if nrm > 0:
                        vecs.append(v / nrm)
            for v in vecs:
                z2_rows.append(dofs)
                z2_cols.append(v)

        # -- level-2 coarse operator E2 = Z2ᵀ E Z2 ----------------------
        m2 = len(z2_cols)
        rows = np.concatenate(z2_rows)
        cols = np.concatenate([np.full(r.size, k) for k, r in
                               enumerate(z2_rows)])
        vals = np.concatenate(z2_cols)
        self.Z2 = sp.csr_matrix((vals, (rows, cols)), shape=(m, m2))
        self.dim2 = m2
        E2 = np.asarray((self.Z2.T @ (E @ self.Z2)).todense())
        from ...common.validation import matrix_is_symmetric
        if matrix_is_symmetric(sp.csr_matrix(E2)):
            # symmetrise only actual round-off: for a genuinely
            # nonsymmetric E, E2 inherits the asymmetry and forcing
            # ½(E2 + E2ᵀ) would change the operator, not clean it
            E2 = 0.5 * (E2 + E2.T)
        from ...solvers.local import DenseFactorization
        self._e2 = DenseFactorization(
            E2, shift=1e-12 * max(float(np.abs(np.diag(E2)).max()), 1e-300))
        self.nnz_factor = int(
            sum(f.nnz_factor for f in self._factors) + m2 * m2)
        if self.recorder.enabled:
            self.recorder.gauge("coarse.l2_parts", self.num_parts)
            self.recorder.gauge("coarse.l2_dim", m2)

    # ------------------------------------------------------------------
    def _apply_m2(self, r: np.ndarray) -> np.ndarray:
        """Additive two-level preconditioner on E: level-2 RAS + the
        Nicolaides/GenEO coarse correction."""
        out = self.Z2 @ self._e2.solve(self.Z2.T @ r)
        for dofs, d, fact in zip(self._dofs, self._weights, self._factors):
            out[dofs] += d * fact.solve(r[dofs])
        return out

    def _solve_one(self, w: np.ndarray) -> np.ndarray:
        from ...krylov import fgmres
        E_mul = (lambda x: self.kernels.spmv(self.E, x))
        res = fgmres(E_mul, w, M=self._apply_m2, tol=self.inner_tol,
                     restart=self.inner_iters, maxiter=self.inner_iters)
        self.inner_iterations += res.iterations
        self.last_inner = res.iterations
        if self.recorder.enabled:
            self.recorder.add("coarse.l2_inner_iterations", res.iterations)
        y = res.x
        if self.injector is not None:
            y = self.injector.fire("coarse_level2", 0, y)
        return y

    def solve(self, w: np.ndarray) -> np.ndarray:
        """Inexact E⁻¹w for a vector or a column block (column loop —
        the inner iteration is the cost knob, not the sweep count)."""
        if w.ndim == 1:
            return self._solve_one(w)
        out = np.empty_like(w, dtype=np.float64)
        for k in range(w.shape[1]):
            out[:, k] = self._solve_one(np.ascontiguousarray(w[:, k]))
        return out


class MultilevelStrategy(CoarseSolveStrategy):
    """Level-2 GenEO/RAS-preconditioned inexact coarse solve."""

    name = "multilevel"
    exact = False

    def __init__(self, *, num_parts: int | None = None, nev2: int = 0,
                 inner_iters: int = 8, inner_tol: float = 1e-8,
                 local_backend: str = "superlu", seed: int = 0):
        self.num_parts = num_parts
        self.nev2 = nev2
        self.inner_iters = inner_iters
        self.inner_tol = inner_tol
        self.local_backend = local_backend
        self.seed = seed

    def build(self, coarse, backend: str, rank_tol: float):
        space = coarse.space
        neighbor_lists = [list(s.neighbors)
                          for s in space.dec.subdomains]
        try:
            return MultilevelCoarseSolve(
                coarse.E, space.offsets, neighbor_lists,
                num_parts=self.num_parts, nev2=self.nev2,
                inner_iters=self.inner_iters, inner_tol=self.inner_tol,
                local_backend=self.local_backend, kernels=coarse.kernels,
                recorder=coarse.recorder, seed=self.seed)
        except Exception:  # noqa: BLE001 - tiny/singular E → direct
            # too few subdomains for a second level, or a local block
            # failed to factorise: degrade to the sparse-direct build
            return robust_direct(coarse, backend, rank_tol)

    def describe(self) -> dict:
        row = super().describe()
        row.update({"num_parts": self.num_parts, "nev2": self.nev2,
                    "inner_iters": self.inner_iters})
        return row
