"""SPMD execution of the paper's algorithms over the simulated MPI.

Everything in this module runs with one thread per subdomain against
:mod:`repro.mpi`:

* :func:`build_master_comms` — the communicator layout of §3.1.1
  (splitComm with the master at local rank 0, masterComm across masters,
  ``MPI_COMM_NULL`` on slaves) with uniform or non-uniform election;
* :func:`assemble_coarse_spmd` — **algorithm 1** (neighbourhood exchange
  of the overlap rows of T_i = A_iW_i, Isend/Irecv/Waitany) and
  **algorithm 2** (slaves pack ``[O_i | E_{i,i} | E_{i,j}…]`` into one
  double message to their master; masters compute all indices and
  assemble their distributed row block) followed by the cooperative
  factorization of E on masterComm;
* :class:`SpmdRank.correction` — the §3.2 coarse correction:
  ``Gather(v)`` on splitComm, distributed solve, ``Scatter(v)``,
  then the eq. (12) overlap exchange;
* :func:`spmd_gmres` — classical right-preconditioned GMRES with
  distributed vectors (dots via one ``allreduce`` batch per iteration);
* :func:`spmd_fused_p1_gmres` — **§3.5**: the pipelined p1-GMRES whose
  dot products ride along the coarse-correction Gather/Scatter, with a
  single overlapped ``Iallreduce`` between the masters and *zero*
  additional global synchronisations per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ReproError
from ..dd.decomposition import Decomposition
from ..mpi.meter import Meter
from ..mpi.simmpi import Comm, run_spmd, waitany
from ..solvers import DistributedCholesky, factorize
from .coarse import elect_masters_nonuniform, elect_masters_uniform
from .deflation import DeflationSpace

_TAG_T = 11_000        # algorithm 1 overlap-row exchange
_TAG_Z = 12_000        # eq. (12) correction exchange
_TAG_X = 13_000        # generic vector exchange (matvec / RAS)


# ----------------------------------------------------------------------
# Communicator layout (§3.1.1 / §3.1.2)
# ----------------------------------------------------------------------

@dataclass
class MasterLayout:
    masters: np.ndarray          # world ranks of the P masters
    group: int                   # which splitComm this rank belongs to
    split: Comm                  # my splitComm (master has rank 0)
    master_comm: Comm | None     # masterComm, None on slaves

    @property
    def is_master(self) -> bool:
        return self.master_comm is not None


def build_master_comms(comm: Comm, P: int,
                       nonuniform: bool = False) -> MasterLayout:
    """Create splitComm/masterComm with the chosen master election."""
    N = comm.size
    if nonuniform:
        masters = elect_masters_nonuniform(N, P)
    else:
        masters = elect_masters_uniform(N, P)
    group = int(np.searchsorted(masters, comm.rank, side="right") - 1)
    split = comm.split(group, key=comm.rank)
    is_master = split.rank == 0
    master_comm = comm.split(0 if is_master else None)
    return MasterLayout(masters=masters, group=group, split=split,
                        master_comm=master_comm)


# ----------------------------------------------------------------------
# Per-rank state
# ----------------------------------------------------------------------

@dataclass
class SpmdRank:
    """One rank's handles: local matrices, factorizations, communicators,
    and the distributed coarse solver."""

    comm: Comm
    dec: Decomposition
    index: int
    W: np.ndarray
    layout: MasterLayout
    factor: object                      # factorization of A_dir
    coarse: DistributedCholesky | None = None
    row_starts: np.ndarray | None = None
    nu_all: np.ndarray | None = None
    #: pristine (unfactorized) coarse row block — only retained with
    #: ``assemble_coarse_spmd(..., keep_rows=True)`` so a repaired run
    #: can refactorize E without redoing algorithms 1-2
    rows: np.ndarray | None = None
    _tag_counter: int = field(default=0)

    @property
    def sub(self):
        return self.dec.subdomains[self.index]

    def reset_tags(self) -> None:
        """Re-align the rotating exchange tag counter (used after a
        communicator repair, where a substitute starts from 0)."""
        self._tag_counter = 0

    def _span(self, label: str):
        """Optional tracing span (no-op unless a Tracer is attached to
        the meter)."""
        tracer = getattr(self.comm.meter, "tracer", None)
        if tracer is None:
            from contextlib import nullcontext
            return nullcontext()
        return tracer.span(self.comm.world_rank, label)

    # -- neighbour exchange (the matvec communication pattern) ----------
    def exchange(self, x: np.ndarray, tag_base: int) -> np.ndarray:
        """y = Σ_{j∈Ō_i} R_iR_jᵀ x_j via Isend/Irecv with the neighbours."""
        sub = self.sub
        comm = self.comm
        self._tag_counter = (self._tag_counter + 1) % 997
        tag = tag_base + self._tag_counter
        for j in sub.neighbors:
            comm.isend(x[sub.shared[j]], j, tag)
        out = x.copy()
        pending = {j: comm.irecv(j, tag) for j in sub.neighbors}
        while pending:
            keys = list(pending.keys())
            idx, val = waitany([pending[k] for k in keys])
            j = keys[idx]
            del pending[j]
            out[sub.shared[j]] += val
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """(Ax)_i = Σ_j R_iR_jᵀ A_j D_j x_j (eq. 5)."""
        sub = self.sub
        with self._span("matvec"):
            return self.exchange(sub.A_dir @ (sub.d * x), _TAG_X)

    def ras(self, r: np.ndarray) -> np.ndarray:
        """(P⁻¹_RAS r)_i = Σ_j R_iR_jᵀ D_j A_j⁻¹ r_j."""
        sub = self.sub
        with self._span("local solve"):
            t = sub.d * self.factor.solve(r)
        return self.exchange(t, _TAG_X)

    def dot(self, u: np.ndarray, v: np.ndarray) -> float:
        """Global inner product via the partition of unity + allreduce."""
        local = float((self.sub.d * u) @ v)
        return float(self.comm.allreduce(local))

    def dots(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Batched inner products — ONE allreduce for the whole batch."""
        local = np.array([(self.sub.d * u) @ v for u, v in pairs])
        return np.asarray(self.comm.allreduce(local))

    # -- coarse correction (§3.2) ---------------------------------------
    def correction(self, u: np.ndarray, h_local: np.ndarray | None = None):
        """z_i = (Z E⁻¹ Zᵀ u)_i.

        With *h_local* given, implements the §3.5 fused transfer: the
        local reduction contributions ride the Gather, the masters run a
        single overlapped Iallreduce while solving the coarse system, and
        the reduced values come back with the Scatter.  Returns
        ``(z_i, h_global)`` (``h_global`` is None in the plain mode).
        """
        sub = self.sub
        split = self.layout.split
        w = self.W.T @ u                         # gemv (step 1)
        payload = w if h_local is None else (w, h_local)
        parts = split.gather(payload, root=0, kind="gatherv")
        h_global = None
        if self.layout.is_master:
            mc = self.layout.master_comm
            if h_local is None:
                ws = parts
            else:
                ws = [p[0] for p in parts]
                h_sum = np.sum([p[1] for p in parts], axis=0)
                rq = mc.iallreduce(h_sum)        # overlapped with the solve
            wcat = np.concatenate(ws)
            with self._span("coarse solve"):
                y_block = self.coarse.solve(wcat)   # step 2: E⁻¹, masters
            if h_local is not None:
                h_global = rq.wait()
            # split y back into per-slave chunks
            sizes = [len(p) if h_local is None else len(p[0])
                     for p in parts]
            offs = np.concatenate([[0], np.cumsum(sizes)])
            chunks = [y_block[offs[k]:offs[k + 1]]
                      for k in range(len(parts))]
            if h_local is not None:
                chunks = [(c, h_global) for c in chunks]
            got = split.scatter(chunks, root=0, kind="scatterv")
        else:
            got = split.scatter(None, root=0, kind="scatterv")
        if h_local is None:
            y = got
        else:
            y, h_global = got
        z = self.W @ y                           # step 3 (gemv)
        return self.exchange(z, _TAG_Z), h_global   # eq. (12)

    def adef1(self, u: np.ndarray, h_local: np.ndarray | None = None):
        """(P⁻¹_A-DEF1 u)_i — one coarse solve, reused in both terms."""
        w, h_global = self.correction(u, h_local)
        v = u - self.matvec(w)
        return self.ras(v) + w, h_global


# ----------------------------------------------------------------------
# Algorithms 1 & 2: distributed assembly of E
# ----------------------------------------------------------------------

def assemble_coarse_spmd(comm: Comm, dec: Decomposition,
                         space: DeflationSpace, P: int, *,
                         nonuniform: bool = False,
                         factor_backend: str = "superlu",
                         keep_rows: bool = False) -> SpmdRank:
    """Run algorithms 1 and 2 on this rank; returns the rank state with
    the distributed coarse factorization installed on the masters."""
    i = comm.rank
    sub = dec.subdomains[i]
    W = space.W[i]
    nu_i = W.shape[1]
    neighbors = sub.neighbors
    layout = build_master_comms(comm, P, nonuniform)
    split = layout.split

    # ---- algorithm 1 -------------------------------------------------
    graph = comm.dist_graph_create_adjacent(neighbors)
    rq_nu = graph.ineighbor_alltoall([nu_i] * len(neighbors))  # line 1
    split.gather(np.array([nu_i, len(neighbors)]), root=0)     # line 2
    T = sub.A_dir @ W                                          # line 3
    nu_neigh = rq_nu.wait()
    for j in neighbors:                                        # lines 4-7
        comm.isend(np.ascontiguousarray(T[sub.shared[j]]), j, _TAG_T)
    pending = {j: comm.irecv(j, _TAG_T) for j in neighbors}
    blocks: dict[int, np.ndarray] = {}
    blocks[i] = W.T @ T                                        # line 8
    while pending:                                             # lines 9-12
        keys = list(pending.keys())
        idx, U = waitany([pending[k] for k in keys])
        j = keys[idx]
        del pending[j]
        blocks[j] = np.ascontiguousarray(W[sub.shared[j]]).T @ U

    # ---- algorithm 2 -------------------------------------------------
    rank = SpmdRank(comm=comm, dec=dec, index=i, W=W, layout=layout,
                    factor=factorize(sub.A_dir, factor_backend))
    if layout.is_master:
        mc = layout.master_comm
        # line 15: masters share every rank's ν to build the offsets r_i
        group_meta = _regather_group_meta(split, nu_i, len(neighbors))
        all_meta = mc.allgatherv(group_meta)
        nu_all = np.zeros(comm.size, dtype=np.int64)
        for meta in all_meta:
            for world_rank, nu, _ in meta:
                nu_all[world_rank] = nu
        offsets = np.concatenate([[0], np.cumsum(nu_all)])
        # my row block covers the ranks of my splitComm
        group_ranks = [comm.rank + k for k in range(split.size)]
        r0 = offsets[group_ranks[0]]
        r1 = offsets[group_ranks[-1] + 1]
        mdim = int(offsets[-1])
        rows = np.zeros((r1 - r0, mdim))
        # blocks local to the master (lines 20-23)
        _place_blocks(rows, r0, offsets, i, blocks)
        # messages from the slaves (lines 17-19, 25-31)
        reqs = {}
        for k in range(1, split.size):
            reqs[k] = split.irecv(k, tag=_TAG_T + 500)
        while reqs:
            keys = list(reqs.keys())
            idx, msg = waitany([reqs[k] for k in keys])
            k = keys[idx]
            del reqs[k]
            slave_world = group_ranks[k]
            _unpack_and_place(rows, r0, offsets, slave_world, msg, nu_all)
        # numerical factorization (line 33) — cooperative on masterComm
        master_rows = np.array([offsets[layout.masters[p]]
                                for p in range(mc.size)] + [mdim])
        if keep_rows:
            rank.rows = rows.copy()
        rank.coarse = DistributedCholesky(mc, master_rows, rows)
        rank.row_starts = master_rows
        rank.nu_all = nu_all
    else:
        # lines 35-41: single double-typed message [O_i | E_ii | E_ij ...]
        _regather_group_meta(split, nu_i, len(neighbors))
        msg = np.concatenate(
            [np.asarray(neighbors, dtype=np.float64), blocks[i].ravel()]
            + [blocks[j].ravel() for j in neighbors])
        split.isend(msg, 0, tag=_TAG_T + 500)
    return rank


def _regather_group_meta(split: Comm, nu_i: int, n_neigh: int):
    """Second gather of (world_rank, ν_i, |O_i|) on splitComm so the
    master can pre-allocate and later decode the slave messages."""
    triple = (split.world_rank, int(nu_i), int(n_neigh))
    return split.gather(triple, root=0)


def _place_blocks(rows, r0, offsets, i, blocks):
    ri = offsets[i]
    for j, blk in blocks.items():
        rows[ri - r0:ri - r0 + blk.shape[0],
             offsets[j]:offsets[j] + blk.shape[1]] = blk


def _unpack_and_place(rows, r0, offsets, slave_world, msg, nu_all):
    """Decode a slave message; the master computes all global indices
    (the slaves never allocate a single index — §3.1.1)."""
    nu = int(nu_all[slave_world])
    # the prefix length |O_i| is deduced from the message size:
    # len = |O| + ν² + ν·Σ_{j∈O} ν_j; read neighbours greedily
    # (we know them exactly from the second gather in practice; the
    # greedy scan reproduces the paper's prepend-O_i protocol)
    size = msg.size
    n_neigh = 0
    acc = nu * nu
    while n_neigh + acc < size:
        j = int(msg[n_neigh])
        acc += nu * int(nu_all[j])
        n_neigh += 1
    neighbors = [int(v) for v in msg[:n_neigh]]
    pos = n_neigh
    ri = offsets[slave_world]
    blk = msg[pos:pos + nu * nu].reshape(nu, nu)
    pos += nu * nu
    rows[ri - r0:ri - r0 + nu, ri:ri + nu] = blk
    for j in neighbors:
        nj = int(nu_all[j])
        blk = msg[pos:pos + nu * nj].reshape(nu, nj)
        pos += nu * nj
        rows[ri - r0:ri - r0 + nu, offsets[j]:offsets[j] + nj] = blk
    if pos != size:  # pragma: no cover - protocol corruption guard
        raise ReproError("slave coarse message decoded incorrectly")


# ----------------------------------------------------------------------
# SPMD Krylov drivers
# ----------------------------------------------------------------------

def spmd_gmres(rank: SpmdRank, b: np.ndarray, *, tol: float = 1e-6,
               restart: int = 40, maxiter: int = 200,
               two_level: bool = True):
    """Classical right-preconditioned GMRES on distributed vectors.

    Per iteration: one matvec + preconditioner, one batched dot allreduce
    and one norm allreduce (two blocking global synchronisations).
    Returns ``(x_i, iterations, residuals)`` on every rank.
    """
    precond = (lambda u: rank.adef1(u)[0]) if two_level else rank.ras
    n = b.shape[0]
    x = np.zeros(n)
    bnorm = np.sqrt(rank.dot(b, b))
    if bnorm == 0:
        return x, 0, [0.0]
    target = tol * bnorm
    residuals = []
    total_it = 0
    while True:
        rank.comm.fault_point("iteration")
        r = b - rank.matvec(x)
        beta = np.sqrt(rank.dot(r, r))
        residuals.append(beta / bnorm)
        if beta <= target or total_it >= maxiter:
            break
        m = restart
        V = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        g = np.zeros(m + 1)
        g[0] = beta
        V[:, 0] = r / beta
        cs, sn = np.zeros(m), np.zeros(m)
        j_done = 0
        for j in range(m):
            rank.comm.fault_point("iteration")
            w = rank.matvec(precond(V[:, j]))
            # one batched reduction for all j+1 dots
            hcol = rank.dots([(w, V[:, k]) for k in range(j + 1)])
            H[:j + 1, j] = hcol
            w = w - V[:, :j + 1] @ hcol
            H[j + 1, j] = np.sqrt(rank.dot(w, w))
            if H[j + 1, j] > 0:
                V[:, j + 1] = w / H[j + 1, j]
            for k in range(j):
                t = cs[k] * H[k, j] + sn[k] * H[k + 1, j]
                H[k + 1, j] = -sn[k] * H[k, j] + cs[k] * H[k + 1, j]
                H[k, j] = t
            denom = np.hypot(H[j, j], H[j + 1, j])
            cs[j] = H[j, j] / denom if denom else 1.0
            sn[j] = H[j + 1, j] / denom if denom else 0.0
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_it += 1
            j_done = j + 1
            residuals.append(abs(g[j + 1]) / bnorm)
            if abs(g[j + 1]) <= target or total_it >= maxiter:
                break
        if j_done:
            y = np.zeros(j_done)
            for k in range(j_done - 1, -1, -1):
                y[k] = (g[k] - H[k, k + 1:j_done] @ y[k + 1:j_done]) / H[k, k]
            x = x + precond(V[:, :j_done] @ y)
        rtrue = np.sqrt(rank.dot(b - rank.matvec(x),
                                 b - rank.matvec(x)))
        if rtrue <= target or total_it >= maxiter:
            residuals[-1] = rtrue / bnorm
            break
    return x, total_it, residuals


def spmd_fused_p1_gmres(rank: SpmdRank, b: np.ndarray, *, tol: float = 1e-6,
                        restart: int = 40, maxiter: int = 200):
    """The fused p1-GMRES of §3.5 (two-level, *left*-preconditioned:
    the paper's line 2 becomes ``w ← P⁻¹_A-DEF1 A v_i``).

    The dot-product batch produced at the end of iteration i−1 is NOT
    reduced with a blocking allreduce: its local contributions ride the
    coarse-correction Gather of iteration i, the masters reduce them and
    post one Iallreduce on masterComm overlapped with the coarse solve,
    and the reduced values return with the Scatter — zero additional
    global synchronisations per iteration.

    Residuals are preconditioned residuals (left preconditioning);
    convergence detection lags the basis by two iterations, which is
    intrinsic to the pipeline.
    """
    n = b.shape[0]
    x = np.zeros(n)
    d = rank.sub.d
    pb, _ = rank.adef1(b)                       # P⁻¹ b
    bnorm = np.sqrt(rank.dot(pb, pb))
    if bnorm == 0:
        return x, 0, [0.0]
    target = tol * bnorm
    residuals = []
    total_it = 0
    m = restart
    while True:
        rank.comm.fault_point("iteration")
        r, _ = rank.adef1(b - rank.matvec(x))   # P⁻¹(b − Ax)
        beta = np.sqrt(rank.dot(r, r))
        residuals.append(beta / bnorm)
        if beta <= target or total_it >= maxiter:
            break
        V = np.zeros((n, m + 2))
        Z = np.zeros((n, m + 2))
        H = np.zeros((m + 2, m + 1))
        V[:, 0] = r / beta
        Z[:, 0] = V[:, 0]
        finalized = 0
        batch = np.zeros(1)                     # lagged local contributions
        for i in range(m + 1):
            rank.comm.fault_point("iteration")
            # w = P⁻¹ A z_i; the previous batch reduces inside (fused)
            w, red = rank.adef1(rank.matvec(Z[:, i]), h_local=batch)
            # land the values posted at the end of iteration i−1:
            #   i == 1: red = [⟨z_1, v_0⟩]
            #   i >= 2: red = [‖v_{i-1}‖² , ⟨z_i, v_j⟩ j = 0..i−1]
            if i == 1:
                H[0, 0] = red[0]
            elif i > 1:
                H[i - 1, i - 2] = np.sqrt(max(red[0], 0.0))
                H[:i, i - 1] = red[1:i + 1]
            if i > 1:
                eta = H[i - 1, i - 2]
                if eta == 0.0:
                    break                       # lucky breakdown
                V[:, i - 1] /= eta
                Z[:, i] /= eta
                w /= eta
                H[i - 1, i - 1] /= eta * eta
                H[:i - 1, i - 1] /= eta
            if i > 0:
                Z[:, i + 1] = w - Z[:, 1:i + 1] @ H[:i, i - 1]
                V[:, i] = Z[:, i] - V[:, :i] @ H[:i, i - 1]
                total_it += 1
                finalized = i
            else:
                Z[:, i + 1] = w
            # post the next batch (local, non-reduced):
            #   [‖v_i‖²_loc | ⟨z_{i+1}, v_j⟩_loc j = 0..i] (norm absent at i=0)
            dots = (d[:, None] * V[:, :i + 1]).T @ Z[:, i + 1]
            if i == 0:
                batch = dots
            else:
                batch = np.concatenate([[(d * V[:, i]) @ V[:, i]], dots])
            # residual estimate on the fully-landed H̄ prefix (lag 2)
            if i >= 2:
                res = _spmd_lsq_residual(H, beta, i - 1)
                residuals.append(res / bnorm)
                if res <= target:
                    break
            if total_it >= maxiter:
                break
        # the trailing subdiagonal norm needs one final (blocking) reduction
        red = rank.dots([(V[:, finalized], V[:, finalized])])
        H[finalized, finalized - 1] = np.sqrt(max(float(red[0]), 0.0))
        k = finalized
        if k:
            g = np.zeros(k + 1)
            g[0] = beta
            y, *_ = np.linalg.lstsq(H[:k + 1, :k], g, rcond=None)
            x = x + V[:, :k] @ y                # left preconditioning
        rp, _ = rank.adef1(b - rank.matvec(x))
        rtrue = np.sqrt(rank.dot(rp, rp))
        residuals.append(rtrue / bnorm)
        if rtrue <= target or total_it >= maxiter:
            break
    return x, total_it, residuals


def _spmd_lsq_residual(H, beta, k):
    g = np.zeros(k + 1)
    g[0] = beta
    y, res2, *_ = np.linalg.lstsq(H[:k + 1, :k], g, rcond=None)
    if res2.size:
        return float(np.sqrt(res2[0]))
    return float(np.linalg.norm(g - H[:k + 1, :k] @ y))


# ----------------------------------------------------------------------
# Top-level driver
# ----------------------------------------------------------------------

def solve_spmd(dec: Decomposition, space: DeflationSpace, b: np.ndarray, *,
               num_masters: int = 2, nonuniform: bool = False,
               method: str = "gmres", tol: float = 1e-6, restart: int = 40,
               maxiter: int = 200, two_level: bool = True,
               meter: Meter | None = None, faults=None):
    """Run the full SPMD pipeline: communicator setup, algorithms 1–2,
    distributed factorization, Krylov solve.  Returns
    ``(x_reduced, iterations, residuals, meter)``.

    *faults* (a :class:`repro.resilience.FaultPlan`) arms deterministic
    fault injection on every communicator op and the per-iteration
    ``iteration`` tick of the SPMD Krylov drivers; injected failures
    surface as typed :class:`~repro.common.errors.RankFailure` on every
    surviving rank (never a deadlock).
    """
    N = dec.num_subdomains
    if meter is None:
        meter = Meter(N)
    b_list = dec.restrict(b)

    def rank_main(comm: Comm):
        rank = assemble_coarse_spmd(comm, dec, space, num_masters,
                                    nonuniform=nonuniform)
        bi = b_list[comm.rank]
        if method == "gmres":
            return spmd_gmres(rank, bi, tol=tol, restart=restart,
                              maxiter=maxiter, two_level=two_level)
        if method == "fused-p1":
            return spmd_fused_p1_gmres(rank, bi, tol=tol, restart=restart,
                                       maxiter=maxiter)
        raise ReproError(f"unknown SPMD method {method!r}")

    results = run_spmd(N, rank_main, meter=meter, faults=faults)
    x = dec.combine([res[0] for res in results])
    iterations = results[0][1]
    residuals = results[0][2]
    return x, iterations, residuals, meter
