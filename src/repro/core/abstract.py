"""Abstract deflation: the framework decoupled from domain decomposition.

§3 of the paper stresses that the coarse-operator machinery "is not
directly linked to domain decomposition methods" — the same assembly and
correction apply to *any* deflation vectors, e.g. the two-level
preconditioner for cosmic microwave background map-making of Grigori,
Stompor & Szydlarski (SC '12) that the paper cites.  This module provides
that decoupled interface:

* :class:`AbstractDeflation` — E = ZᵀAZ and the A-DEF1 combination for an
  arbitrary operator and an arbitrary (tall, dense or sparse) Z;
* :func:`nonoverlapping_pattern` — the denser block-sparsity pattern of E
  for non-overlapping (substructuring) methods, where block (i, j) is
  nonzero also when i and j share a common neighbour k (distance-2
  connectivity, §3.1).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import ReproError
from ..solvers import factorize


class AbstractDeflation:
    """Deflated preconditioner ``P⁻¹(I − AZE⁻¹Zᵀ) + ZE⁻¹Zᵀ`` for any
    operator / smoother / deflation basis.

    Parameters
    ----------
    A:
        Operator: sparse matrix or callable.
    Z:
        Deflation basis: ``(n, m)`` dense or sparse, full column rank.
    M:
        One-level preconditioner (callable or matrix); identity if None.
    """

    def __init__(self, A, Z, M=None, *, backend: str = "superlu"):
        self._matmul = (A if callable(A) else (lambda x, _A=A: _A @ x))
        self.Z = Z
        n, m = Z.shape
        if m == 0:
            raise ReproError("deflation basis Z has no columns")
        if m > n:
            raise ReproError(f"Z must be tall, got shape {Z.shape}")
        if M is None:
            self._precond = lambda x: x
        elif callable(M):
            self._precond = M
        else:
            self._precond = lambda x, _M=M: _M @ x
        AZ = self._apply_to_columns(Z)
        E = Z.T @ AZ
        E = sp.csr_matrix(E) if not sp.issparse(E) else E.tocsr()
        self.E = E
        self.factorization = factorize(E, backend)
        self._AZ = AZ

    def _apply_to_columns(self, Z):
        if sp.issparse(Z):
            Zd = Z.toarray()
        else:
            Zd = np.asarray(Z)
        return np.column_stack([self._matmul(Zd[:, j])
                                for j in range(Zd.shape[1])])

    # ------------------------------------------------------------------
    def coarse_solve(self, w: np.ndarray) -> np.ndarray:
        return self.factorization.solve(w)

    def correction(self, u: np.ndarray) -> np.ndarray:
        """Q u = Z E⁻¹ Zᵀ u."""
        return self.Z @ self.coarse_solve(self.Z.T @ u)

    def apply(self, u: np.ndarray) -> np.ndarray:
        """One A-DEF1 application (single coarse solve)."""
        w = self.correction(u)
        return self._precond(u - self._matmul(w)) + w

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.apply(u)

    def projected_operator(self, u: np.ndarray) -> np.ndarray:
        """(I − A Z E⁻¹ Zᵀ) A u — the deflated operator P A of
        Nicolaides/Frank–Vuik deflation (for deflated CG)."""
        Au = self._matmul(u)
        return Au - self._AZ @ self.coarse_solve(self.Z.T @ Au)


def nonoverlapping_pattern(neighbors: list[list[int]]) -> set[tuple[int, int]]:
    """Block-sparsity pattern of E for non-overlapping methods.

    Overlapping Schwarz: block (i, j) ≠ 0 iff j ∈ Ō_i.  Substructuring
    (§3.1): additionally (i, j) ≠ 0 when ∃k with k ∈ O_i and j ∈ O_k —
    subdomains sharing only an interface vertex still couple through the
    coarse space.  Returns the set of (i, j) block indices.
    """
    N = len(neighbors)
    pattern: set[tuple[int, int]] = set()
    for i in range(N):
        pattern.add((i, i))
        for j in neighbors[i]:
            pattern.add((i, j))
            for k in neighbors[j]:
                pattern.add((i, k))
    return pattern
