"""High-level user API: the two-level Schwarz solver.

Wires the full paper pipeline — partition, overlap, local matrices,
GenEO deflation, coarse operator, A-DEF1 — behind one object, with the
per-phase timers (*factorization*, *deflation*, *solution*) that
figures 8 and 10 report.

Example
-------
>>> from repro import SchwarzSolver
>>> from repro.mesh import unit_square
>>> from repro.fem.forms import DiffusionForm
>>> from repro.fem import channels_and_inclusions
>>> mesh = unit_square(32)
>>> form = DiffusionForm(degree=2, kappa=channels_and_inclusions(mesh))
>>> solver = SchwarzSolver(mesh, form, num_subdomains=8, nev=8)
>>> result = solver.solve(tol=1e-6)
>>> result.converged
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ReproError
from ..common.timing import PhaseTimer
from ..dd.decomposition import Decomposition
from ..dd.problem import Problem
from ..fem.forms import Form
from ..krylov import KrylovResult, SolveProfiler, cg, gmres, p1_gmres
from ..mesh import SimplexMesh
from ..parallel import ParallelConfig, resolve_parallel, timed_map
from ..partition import partition_mesh
from .adef import TwoLevelADEF1, TwoLevelADEF2, TwoLevelBNN
from .coarse import CoarseOperator
from .deflation import DeflationSpace
from .geneo import compute_deflation, nicolaides_deflation
from .ras import OneLevelASM, OneLevelRAS

_KRYLOV = {"gmres": gmres, "p1-gmres": p1_gmres, "cg": cg}


@dataclass
class SolveReport:
    """Solution + the paper's reporting columns."""

    x: np.ndarray                 # full-dof solution (Dirichlet rows zero)
    krylov: KrylovResult
    timer: PhaseTimer
    num_subdomains: int
    coarse_dim: int
    nu: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    @property
    def iterations(self) -> int:
        return self.krylov.iterations

    @property
    def converged(self) -> bool:
        return self.krylov.converged

    @property
    def residuals(self) -> list[float]:
        return self.krylov.residuals


class SchwarzSolver:
    """Two-level overlapping Schwarz solver with a GenEO coarse space.

    Parameters
    ----------
    mesh, form:
        Geometry + variational form (see :mod:`repro.fem.forms`).
    num_subdomains:
        N — one simulated MPI process per subdomain, as in the paper.
    delta:
        Overlap width (paper: minimal overlap 1 for elasticity).
    nev:
        Deflation vectors per subdomain ν (uniform, as in §3.3); the
        effective ν is ``allreduce-max`` consistent by construction.
    tau:
        Optional GenEO threshold (overrides pure-count selection).
    levels:
        1 → one-level RAS only; 2 → A-DEF1 two-level (default).
    preconditioner:
        "adef1" (paper), "adef2", "bnn", or "ras"/"asm" (one-level).
    krylov:
        "gmres" (paper), "p1-gmres" (§3.5), or "cg".
    dirichlet:
        Passed to :class:`~repro.dd.problem.Problem`.
    parallel:
        Executor for the per-subdomain setup loops — subdomain
        extraction, local factorizations, GenEO eigensolves, coarse
        assembly (:class:`~repro.parallel.ParallelConfig`, a backend
        name like ``"threads"``, or ``None`` for serial).  Results are
        bitwise identical across executors; per-subdomain seeds and
        phase times are preserved.
    recorder:
        Optional :class:`repro.obs.Recorder`.  When given, every setup
        phase and per-subdomain task becomes a hierarchical span, the
        Krylov loop emits per-iteration convergence events, and the
        whole run can be exported with :func:`repro.obs.write_trace`.
        ``None`` (default) uses the no-op recorder — un-instrumented
        runs pay essentially nothing.
    """

    def __init__(self, mesh: SimplexMesh, form: Form, *,
                 num_subdomains: int, delta: int = 1, nev: int = 10,
                 tau: float | None = None, levels: int = 2,
                 preconditioner: str | None = None,
                 krylov: str = "gmres", backend: str = "superlu",
                 coarse_backend: str = "superlu",
                 partition_method: str = "multilevel",
                 eigensolver: str = "lanczos",
                 dirichlet=None, part: np.ndarray | None = None,
                 scaling: str | None = "jacobi",
                 seed: int = 0,
                 parallel: ParallelConfig | str | None = None,
                 recorder=None):
        from ..obs.recorder import NULL_RECORDER
        if levels not in (1, 2):
            raise ReproError(f"levels must be 1 or 2, got {levels}")
        if preconditioner is None:
            preconditioner = "adef1" if levels == 2 else "ras"
        self.krylov_name = krylov
        if krylov not in _KRYLOV:
            raise ReproError(f"unknown krylov method {krylov!r}; "
                             f"expected one of {sorted(_KRYLOV)}")
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.timer = PhaseTimer(recorder=self.recorder)
        self.parallel = resolve_parallel(parallel)

        with self.recorder.span("setup"):
            self._setup(mesh, form, num_subdomains, delta, nev, tau,
                        preconditioner, backend, coarse_backend,
                        partition_method, eigensolver, dirichlet, part,
                        scaling, seed)
        self.preconditioner_name = preconditioner
        if self.recorder.enabled:
            self.recorder.gauge("num_subdomains",
                                self.decomposition.num_subdomains)
            self.recorder.gauge("coarse_dim", self.coarse_dim)

    def _setup(self, mesh, form, num_subdomains, delta, nev, tau,
               preconditioner, backend, coarse_backend, partition_method,
               eigensolver, dirichlet, part, scaling, seed) -> None:
        self.problem = Problem(mesh, form, dirichlet=dirichlet,
                               scaling=scaling)
        if part is None:
            part = partition_mesh(mesh, num_subdomains,
                                  method=partition_method, seed=seed)
        with self.timer.phase("decomposition"):
            self.decomposition = Decomposition(self.problem, part,
                                               delta=delta,
                                               parallel=self.parallel,
                                               recorder=self.recorder)

        with self.timer.phase("factorization"):
            one_level_cls = OneLevelASM if preconditioner in ("asm", "bnn") \
                else OneLevelRAS
            self.one_level = one_level_cls(self.decomposition,
                                           backend=backend,
                                           parallel=self.parallel,
                                           recorder=self.recorder)

        self.deflation: DeflationSpace | None = None
        self.coarse: CoarseOperator | None = None
        if preconditioner in ("adef1", "adef2", "bnn"):
            with self.timer.phase("deflation"):
                ncomp = self.problem.space.ncomp

                def deflate(s):
                    if nev == 0:
                        return nicolaides_deflation(s, ncomp=ncomp)
                    return compute_deflation(s, nev=nev, tau=tau,
                                             method=eigensolver,
                                             seed=seed + s.index)

                # per-subdomain GenEO eigensolves under the executor;
                # timed_map records each subdomain on its own clock
                # (figs. 8/10 SPMD wall-clock = max over subdomains)
                results, self.deflation_times = timed_map(
                    deflate, self.decomposition.subdomains, self.parallel,
                    recorder=self.recorder, label="geneo")
                self.geneo_results = results
                self.deflation = DeflationSpace(
                    self.decomposition, [r.W for r in results])
            with self.timer.phase("coarse"):
                self.coarse = CoarseOperator(self.deflation,
                                             backend=coarse_backend,
                                             parallel=self.parallel,
                                             recorder=self.recorder)
            if preconditioner == "adef1":
                self.preconditioner = TwoLevelADEF1(self.one_level,
                                                    self.coarse)
            elif preconditioner == "adef2":
                self.preconditioner = TwoLevelADEF2(self.one_level,
                                                    self.coarse)
            else:
                self.preconditioner = TwoLevelBNN(self.one_level,
                                                  self.coarse)
        elif preconditioner in ("ras", "asm"):
            self.preconditioner = self.one_level
        else:
            raise ReproError(f"unknown preconditioner {preconditioner!r}")

    # ------------------------------------------------------------------
    @property
    def coarse_dim(self) -> int:
        return self.coarse.dim if self.coarse is not None else 0

    @property
    def nu(self) -> np.ndarray:
        if self.deflation is None:
            return np.zeros(0, dtype=np.int64)
        return self.deflation.nu

    def operator(self, x: np.ndarray) -> np.ndarray:
        """The reduced global operator, applied distributedly (eq. 5)."""
        return self.decomposition.matvec(x)

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray | None = None, *, tol: float = 1e-6,
              restart: int = 40, maxiter: int = 1000,
              callback=None) -> SolveReport:
        """Solve the (reduced) system with the configured Krylov method.

        *b* is a reduced right-hand side; ``None`` assembles the form's
        natural load vector.
        """
        if b is None:
            b = self.problem.rhs()
        method = _KRYLOV[self.krylov_name]
        # one profiler shared between the Krylov loop (matvec / apply /
        # orthogonalization) and the coarse operator (coarse_solve, a
        # sub-interval of apply) — surfaced on KrylovResult.profile
        profiler = SolveProfiler(recorder=self.recorder)
        if self.coarse is not None:
            self.coarse.profiler = profiler
        kwargs = dict(M=self.preconditioner.apply, tol=tol, maxiter=maxiter,
                      callback=callback, profiler=profiler)
        if self.krylov_name in ("gmres", "p1-gmres"):
            kwargs["restart"] = restart
        with self.timer.phase("solution"):
            res = method(self.operator, b, **kwargs)
        if self.recorder.enabled:
            self.recorder.gauge("iterations", res.iterations)
        return SolveReport(
            x=self.problem.extend(res.x), krylov=res, timer=self.timer,
            num_subdomains=self.decomposition.num_subdomains,
            coarse_dim=self.coarse_dim, nu=self.nu)
