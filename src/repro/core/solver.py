"""High-level user API: the two-level Schwarz solver.

Wires the full paper pipeline — partition, overlap, local matrices,
GenEO deflation, coarse operator, A-DEF1 — behind one object, with the
per-phase timers (*factorization*, *deflation*, *solution*) that
figures 8 and 10 report.

Example
-------
>>> from repro import SchwarzSolver
>>> from repro.mesh import unit_square
>>> from repro.fem.forms import DiffusionForm
>>> from repro.fem import channels_and_inclusions
>>> mesh = unit_square(32)
>>> form = DiffusionForm(degree=2, kappa=channels_and_inclusions(mesh))
>>> solver = SchwarzSolver(mesh, form, num_subdomains=8, nev=8)
>>> result = solver.solve(tol=1e-6)
>>> result.converged
True
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import (
    CoarseSolveError,
    KrylovBreakdown,
    RankFailure,
    ReproError,
    SymmetryError,
)
from ..common.timing import PhaseTimer
from ..dd.decomposition import Decomposition
from ..dd.problem import Problem
from ..fem.forms import Form
from ..kernels import get_backend
from ..krylov import (
    KrylovResult,
    SolveProfiler,
    cg,
    deflated_cg,
    fgmres,
    gmres,
    p1_gmres,
    s_step_gmres,
)
from ..mesh import SimplexMesh
from ..parallel import ParallelConfig, resolve_parallel, timed_map
from ..partition import partition_mesh
from ..resilience import HealthMonitor, as_injector, resolve_recovery
from .adef import TwoLevelADEF1, TwoLevelADEF2, TwoLevelBNN
from .coarse import CoarseOperator
from .coarse_strategies import get_strategy as get_coarse_strategy
from .deflation import DeflationSpace
from .geneo import (
    get_coarse_space,
    nicolaides_deflation,
    resilient_deflation,
)
from .ras import OneLevelASM, OneLevelRAS

_KRYLOV = {
    "gmres": gmres,
    "p1-gmres": p1_gmres,
    "cg": cg,
    "fgmres": fgmres,
    "sstep": s_step_gmres,
    "deflated-cg": deflated_cg,
}
#: drivers that take a ``restart`` cycle length directly
_RESTARTED = ("gmres", "p1-gmres", "fgmres")


@dataclass
class SolveReport:
    """Solution + the paper's reporting columns."""

    x: np.ndarray                 # full-dof solution (Dirichlet rows zero)
    krylov: KrylovResult
    timer: PhaseTimer
    num_subdomains: int
    coarse_dim: int
    nu: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))
    #: recovery bookkeeping of the solve (mode, restarts taken, faults
    #: injected by kind, degraded subdomains, coarse/eigensolve
    #: fallbacks) — empty when no fault plan / recovery policy was active
    resilience: dict = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        return self.krylov.iterations

    @property
    def converged(self) -> bool:
        return self.krylov.converged

    @property
    def residuals(self) -> list[float]:
        return self.krylov.residuals


class SchwarzSolver:
    """Two-level overlapping Schwarz solver with a GenEO coarse space.

    Parameters
    ----------
    mesh, form:
        Geometry + variational form (see :mod:`repro.fem.forms`).
    num_subdomains:
        N — one simulated MPI process per subdomain, as in the paper.
    delta:
        Overlap width (paper: minimal overlap 1 for elasticity).
    nev:
        Deflation vectors per subdomain ν (uniform, as in §3.3); the
        effective ν is ``allreduce-max`` consistent by construction.
    tau:
        Optional GenEO threshold (overrides pure-count selection).
    levels:
        1 → one-level RAS only; 2 → A-DEF1 two-level (default).
    preconditioner:
        "adef1" (paper), "adef2", "bnn", or "ras"/"asm" (one-level).
    krylov:
        "gmres" (paper), "p1-gmres" (§3.5), "cg", "fgmres", "sstep"
        (communication-avoiding s-step GMRES), or "deflated-cg"
        (explicit GenEO deflation; needs a two-level preconditioner).
    dirichlet:
        Passed to :class:`~repro.dd.problem.Problem`.
    parallel:
        Executor for the per-subdomain setup loops — subdomain
        extraction, local factorizations, GenEO eigensolves, coarse
        assembly (:class:`~repro.parallel.ParallelConfig`, a backend
        name like ``"threads"``, or ``None`` for serial).  Results are
        bitwise identical across executors; per-subdomain seeds and
        phase times are preserved.
    recorder:
        Optional :class:`repro.obs.Recorder`.  When given, every setup
        phase and per-subdomain task becomes a hierarchical span, the
        Krylov loop emits per-iteration convergence events, and the
        whole run can be exported with :func:`repro.obs.write_trace`.
        ``None`` (default) uses the no-op recorder — un-instrumented
        runs pay essentially nothing.
    faults:
        Optional :class:`repro.resilience.FaultPlan` (or a ready
        injector, or a JSON plan path).  Arms deterministic fault
        injection on the setup eigensolves (``eigensolve``), the
        one-level local solves (``local_solve``), the coarse solves
        (``coarse_solve``) and the per-iteration Krylov tick
        (``iteration``).
    recovery:
        Default :class:`repro.resilience.RecoveryPolicy` (or a mode
        string ``"off"``/``"restart"``/``"degrade"``) used by
        :meth:`solve`; see ``docs/resilience.md``.
    kernel_backend:
        Kernel backend name (``"numpy"``, ``"fp32"``, ``"compiled"``) or
        a ready :class:`~repro.kernels.KernelBackend` instance.  ``None``
        resolves ``REPRO_KERNEL_BACKEND`` and falls back to the bitwise
        reference ``numpy`` backend.  Owns the hot kernels of the solve
        phase: local/coarse triangular solves, the fused RAS apply, the
        CSR deflation products and the Krylov orthogonalisation — see
        ``docs/performance.md``.  (This is distinct from *backend* /
        *coarse_backend*, which pick the sparse factorization method.)
    coarse_strategy:
        How the coarse problem E y = w is solved — a registry name
        (``"dense"``, ``"sparse"``, ``"multilevel"``) or a ready
        :class:`~repro.core.coarse_strategies.CoarseSolveStrategy`
        instance.  ``None`` resolves ``$REPRO_COARSE_STRATEGY`` and
        falls back to the bitwise-reference ``dense`` strategy.  The
        ``multilevel`` strategy is *inexact* — pair it with
        ``krylov="fgmres"`` (a warning is raised otherwise).
    coarse_space:
        Which per-subdomain coarse-space builder fills the deflation
        space — a registry name (``"geneo"``, ``"extended"``,
        ``"nicolaides"``; see
        :func:`repro.core.geneo.register_coarse_space`).  ``None``
        resolves ``$REPRO_COARSE_SPACE`` and then auto-selects:
        ``"geneo"`` (the paper's construction) for SPD operators,
        ``"extended"`` (Nataf–Parolin extended pencil on the SPD
        surrogate, non-Hermitian-safe orthonormalisation) for
        nonsymmetric/indefinite ones.  ``nev=0`` still forces the
        Nicolaides space, as before.
    """

    def __init__(self, mesh: SimplexMesh, form: Form, *,
                 num_subdomains: int, delta: int = 1, nev: int = 10,
                 tau: float | None = None, levels: int = 2,
                 preconditioner: str | None = None,
                 krylov: str = "gmres", backend: str = "superlu",
                 coarse_backend: str = "superlu",
                 coarse_strategy=None,
                 coarse_space: str | None = None,
                 partition_method: str = "multilevel",
                 eigensolver: str = "lanczos",
                 dirichlet=None, part: np.ndarray | None = None,
                 scaling: str | None = "jacobi",
                 seed: int = 0,
                 parallel: ParallelConfig | str | None = None,
                 recorder=None, faults=None, recovery=None,
                 kernel_backend: str | None = None):
        from ..obs.recorder import NULL_RECORDER
        if levels not in (1, 2):
            raise ReproError(f"levels must be 1 or 2, got {levels}")
        if preconditioner is None:
            preconditioner = "adef1" if levels == 2 else "ras"
        self.krylov_name = krylov
        if krylov not in _KRYLOV:
            raise ReproError(f"unknown krylov method {krylov!r}; "
                             f"expected one of {sorted(_KRYLOV)}")
        if krylov == "deflated-cg" and preconditioner not in (
                "adef1", "adef2", "bnn"):
            raise ReproError(
                "krylov='deflated-cg' needs the GenEO deflation basis — "
                "use a two-level preconditioner (adef1/adef2/bnn), "
                f"got {preconditioner!r}")
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.timer = PhaseTimer(recorder=self.recorder)
        self.parallel = resolve_parallel(parallel)
        #: kernel backend shared by every component of the solve phase
        self.kernels = get_backend(kernel_backend, recorder=self.recorder)
        #: default recovery policy for :meth:`solve` (overridable per call)
        self.recovery = resolve_recovery(recovery)
        #: shared fault injector (a FaultPlan / plan path / injector)
        self.injector = as_injector(faults, recorder=self.recorder)
        #: subdomains whose GenEO eigensolve degraded to Nicolaides
        self.eigensolve_fallbacks: list[int] = []

        #: resolved coarse-solve strategy, shared with components that
        #: rebuild the coarse operator later (e.g. recycling sessions)
        self.coarse_strategy = get_coarse_strategy(coarse_strategy)
        if not self.coarse_strategy.exact and krylov != "fgmres":
            warnings.warn(
                f"coarse strategy {self.coarse_strategy.name!r} solves "
                f"the coarse problem inexactly; the outer Krylov method "
                f"should be flexible (krylov='fgmres', got {krylov!r})",
                RuntimeWarning, stacklevel=2)
        with self.recorder.span("setup"):
            self._setup(mesh, form, num_subdomains, delta, nev, tau,
                        preconditioner, backend, coarse_backend,
                        partition_method, eigensolver, dirichlet, part,
                        scaling, seed, coarse_space)
        self.preconditioner_name = preconditioner
        if self.recorder.enabled:
            self.recorder.gauge("num_subdomains",
                                self.decomposition.num_subdomains)
            self.recorder.gauge("coarse_dim", self.coarse_dim)

    def _setup(self, mesh, form, num_subdomains, delta, nev, tau,
               preconditioner, backend, coarse_backend, partition_method,
               eigensolver, dirichlet, part, scaling, seed,
               coarse_space) -> None:
        self.problem = Problem(mesh, form, dirichlet=dirichlet,
                               scaling=scaling)
        #: kept for components that re-factorize a coarse operator later
        #: (e.g. the recycling session augmenting the deflation space)
        self.coarse_backend = coarse_backend
        if part is None:
            part = partition_mesh(mesh, num_subdomains,
                                  method=partition_method, seed=seed)
        with self.timer.phase("decomposition"):
            self.decomposition = Decomposition(self.problem, part,
                                               delta=delta,
                                               parallel=self.parallel,
                                               recorder=self.recorder,
                                               kernels=self.kernels)

        #: operator symmetry, detected once on the decomposition and
        #: consumed by driver dispatch, solve_many's auto-pick and the
        #: kernel backends (the "real flag instead of assuming SPD")
        self.is_symmetric = self.decomposition.is_symmetric
        self.is_spd = self.decomposition.is_spd
        if self.krylov_name in ("cg", "deflated-cg") and not self.is_spd:
            kind = ("nonsymmetric" if not self.is_symmetric
                    else "symmetric indefinite")
            raise SymmetryError(
                f"krylov={self.krylov_name!r} requires an SPD operator, "
                f"but {type(form).__name__} assembles a {kind} one — "
                f"use gmres/fgmres/sstep instead")
        self.coarse_space_name, self._coarse_space_builder = \
            get_coarse_space(coarse_space, operator_is_spd=self.is_spd)

        with self.timer.phase("factorization"):
            one_level_cls = OneLevelASM if preconditioner in ("asm", "bnn") \
                else OneLevelRAS
            self.one_level = one_level_cls(self.decomposition,
                                           backend=backend,
                                           parallel=self.parallel,
                                           recorder=self.recorder,
                                           kernels=self.kernels)

        self.deflation: DeflationSpace | None = None
        self.coarse: CoarseOperator | None = None
        if preconditioner in ("adef1", "adef2", "bnn"):
            with self.timer.phase("deflation"):
                ncomp = self.problem.space.ncomp
                cs_builder = self._coarse_space_builder

                def build(s, **kw):
                    return cs_builder(s, ncomp=ncomp, **kw)

                def deflate(s):
                    if nev == 0:
                        return nicolaides_deflation(s, ncomp=ncomp)
                    if self.recovery.active:
                        return resilient_deflation(
                            s, nev=nev, tau=tau, method=eigensolver,
                            seed=seed + s.index, injector=self.injector,
                            recorder=self.recorder,
                            on_fallback=self.eigensolve_fallbacks.append,
                            builder=build)
                    if self.injector is not None:
                        # faults still fire with recovery off — they must
                        # surface as typed errors, never be masked
                        self.injector.fire("eigensolve", s.index)
                    return build(s, nev=nev, tau=tau,
                                 method=eigensolver,
                                 seed=seed + s.index)

                # per-subdomain GenEO eigensolves under the executor;
                # timed_map records each subdomain on its own clock
                # (figs. 8/10 SPMD wall-clock = max over subdomains)
                results, self.deflation_times = timed_map(
                    deflate, self.decomposition.subdomains, self.parallel,
                    recorder=self.recorder, label="geneo")
                self.geneo_results = results
                self.deflation = DeflationSpace(
                    self.decomposition, [r.W for r in results],
                    kernels=self.kernels)
            with self.timer.phase("coarse"):
                self.coarse = CoarseOperator(self.deflation,
                                             backend=coarse_backend,
                                             parallel=self.parallel,
                                             recorder=self.recorder,
                                             kernels=self.kernels,
                                             strategy=self.coarse_strategy)
            if preconditioner == "adef1":
                self.preconditioner = TwoLevelADEF1(self.one_level,
                                                    self.coarse)
            elif preconditioner == "adef2":
                self.preconditioner = TwoLevelADEF2(self.one_level,
                                                    self.coarse)
            else:
                self.preconditioner = TwoLevelBNN(self.one_level,
                                                  self.coarse)
        elif preconditioner in ("ras", "asm"):
            self.preconditioner = self.one_level
        else:
            raise ReproError(f"unknown preconditioner {preconditioner!r}")

    # ------------------------------------------------------------------
    @property
    def coarse_dim(self) -> int:
        return self.coarse.dim if self.coarse is not None else 0

    @property
    def nu(self) -> np.ndarray:
        if self.deflation is None:
            return np.zeros(0, dtype=np.int64)
        return self.deflation.nu

    def operator(self, x: np.ndarray) -> np.ndarray:
        """The reduced global operator, applied distributedly (eq. 5)."""
        return self.decomposition.matvec(x)

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray | None = None, *, tol: float = 1e-6,
              restart: int = 40, maxiter: int = 1000,
              x0: np.ndarray | None = None,
              callback=None, recovery=None,
              degrade_sticky: bool = False) -> SolveReport:
        """Solve the (reduced) system with the configured Krylov method.

        *b* is a reduced right-hand side; ``None`` assembles the form's
        natural load vector.  *x0* warm-starts the Krylov iteration (all
        six drivers accept it; an exact-solution guess converges in zero
        iterations).  *recovery* (a mode string or
        :class:`~repro.resilience.RecoveryPolicy`) overrides the
        constructor's policy for this solve; with faults armed and
        recovery ``off``, failures surface as typed exceptions — with
        ``restart``/``degrade`` the solve rolls back to the last healthy
        checkpoint (and, degrading, disables the failed structure) and
        retries, up to ``max_restarts`` times.  Recovery actions land in
        :attr:`SolveReport.resilience` and as ``recovery.*`` trace
        events.

        Degrade-mode measures (a disabled subdomain, the one-level-only
        preconditioner after a coarse failure) are scoped to *this*
        solve: the preconditioner configuration is snapshotted on entry
        and restored on exit, so a later healthy solve runs at full
        strength again.  Pass ``degrade_sticky=True`` to keep the
        degraded configuration for subsequent solves (the long-lived
        lost-rank scenario of ``docs/resilience.md``).
        """
        if b is None:
            b = self.problem.rhs()
        policy = self.recovery if recovery is None \
            else resolve_recovery(recovery)
        injector = self.injector
        method = _KRYLOV[self.krylov_name]
        # one profiler shared between the Krylov loop (matvec / apply /
        # orthogonalization) and the coarse operator (coarse_solve, a
        # sub-interval of apply) — surfaced on KrylovResult.profile
        profiler = SolveProfiler(recorder=self.recorder)
        if self.coarse is not None:
            self.coarse.profiler = profiler
            self.coarse.injector = injector
            self.coarse.resilient = policy.degrading
        self.one_level.injector = injector
        kwargs = dict(tol=tol, maxiter=maxiter,
                      callback=callback, profiler=profiler)
        if self.krylov_name in ("gmres", "fgmres"):
            kwargs["kernels"] = self.kernels
        if self.krylov_name in _RESTARTED:
            kwargs["restart"] = restart
        elif self.krylov_name == "sstep":
            # s-step GMRES builds s monomial-basis directions per global
            # sync; cap s for conditioning, scaled off the cycle length
            kwargs["s"] = max(1, min(restart, 12))

        def make_health():
            if injector is None and not policy.active:
                return None
            return HealthMonitor(
                recorder=self.recorder, injector=injector,
                divergence_ratio=policy.divergence_ratio,
                stagnation_window=policy.stagnation_window,
                checkpoint_every=policy.checkpoint_every)

        resilience: dict = {}
        if injector is not None or policy.active:
            resilience = {
                "mode": policy.mode, "restarts": 0,
                "degraded_subdomains": [],
                "eigensolve_fallbacks": list(self.eigensolve_fallbacks),
                "coarse_fallbacks": 0, "one_level_only": False,
                "faults": {}, "breakdowns": [],
            }
        health = make_health()
        guess = None if x0 is None else np.asarray(x0, dtype=np.float64)
        # degrade-mode recovery mutates the preconditioner configuration
        # (disabled subdomains, one-level-only fallback); snapshot it so
        # the degradation stays scoped to this solve unless the caller
        # keeps it with degrade_sticky=True
        saved_pre = self.preconditioner
        saved_disabled = set(self.one_level.disabled)
        try:
            with self.timer.phase("solution"):
                while True:
                    try:
                        if self.krylov_name == "deflated-cg":
                            # the deflation basis carries the coarse
                            # space explicitly; pair with the one-level
                            # preconditioner only (a two-level M would
                            # apply the coarse correction twice)
                            res = method(self.operator, b,
                                         self.deflation.Z,
                                         M=self.one_level.apply,
                                         x0=guess, health=health, **kwargs)
                        else:
                            res = method(self.operator, b, x0=guess,
                                         M=self.preconditioner.apply,
                                         health=health, **kwargs)
                        break
                    except (KrylovBreakdown, RankFailure,
                            CoarseSolveError) as exc:
                        if health is not None:
                            resilience["breakdowns"] = \
                                list(health.breakdowns)
                        if self.recorder.ring is not None:
                            # flight-recorder mode: keep the black box
                            # of the *first* failure (closest to the
                            # fault, before recovery rewrites history)
                            resilience.setdefault(
                                "flight_recorder",
                                getattr(exc, "flight", None)
                                or self.recorder.flight_dump())
                        if (not policy.active
                                or resilience["restarts"]
                                >= policy.max_restarts):
                            if policy.active:
                                # restart budget exhausted: distinguish
                                # "never recovered" from "recovery off"
                                resilience["giveup"] = \
                                    resilience.get("giveup", 0) + 1
                                if self.recorder.enabled:
                                    self.recorder.event(
                                        "recovery.giveup", attrs={
                                            "reason": type(exc).__name__,
                                            "restarts":
                                                resilience["restarts"]})
                                exc.resilience = resilience
                            if self.recorder.ring is not None \
                                    and getattr(exc, "flight",
                                                None) is None:
                                exc.flight = \
                                    resilience["flight_recorder"]
                            raise
                        resilience["restarts"] += 1
                        guess = self._recover(exc, policy, health,
                                              resilience)
                        health = make_health()
        finally:
            if not degrade_sticky:
                self.preconditioner = saved_pre
                self.one_level.disabled = saved_disabled
        if resilience:
            if self.coarse is not None:
                resilience["coarse_fallbacks"] = self.coarse.fallbacks
            if injector is not None:
                resilience["faults"] = injector.summary()
            if health is not None and health.breakdowns:
                resilience["breakdowns"] = list(health.breakdowns)
        if self.recorder.enabled:
            self.recorder.gauge("iterations", res.iterations)
        return SolveReport(
            x=self.problem.extend(res.x), krylov=res, timer=self.timer,
            num_subdomains=self.decomposition.num_subdomains,
            coarse_dim=self.coarse_dim, nu=self.nu,
            resilience=resilience)

    # ------------------------------------------------------------------
    def session(self, **kwargs):
        """Open a :class:`repro.batch.SolveSession` over this solver's
        expensive state (decomposition, local factorizations, GenEO
        deflation space, coarse factorization, recorder).

        The session amortizes setup across many right-hand sides: block
        Krylov solves via :meth:`~repro.batch.SolveSession.solve_many`
        and Ritz-recycled sequential solves via
        :meth:`~repro.batch.SolveSession.solve`.  Keyword arguments are
        forwarded to the :class:`~repro.batch.SolveSession` constructor.
        """
        from ..batch import SolveSession
        return SolveSession(self, **kwargs)

    def _recover(self, exc, policy, health, resilience):
        """One recovery step: log the event, apply the structural
        degradation matched to *exc* (degrade mode), and return the
        rollback iterate for the restarted Krylov solve."""
        reason = type(exc).__name__
        warnings.warn(
            f"solve interrupted by {reason} ({exc}); "
            f"recovery={policy.mode}, restart "
            f"{resilience['restarts']}/{policy.max_restarts}",
            RuntimeWarning, stacklevel=3)
        if self.recorder.enabled:
            self.recorder.event("recovery.restart", attrs={
                "reason": reason, "restart": resilience["restarts"],
                "mode": policy.mode})
        if policy.degrading:
            if (isinstance(exc, RankFailure) and exc.rank >= 0
                    and exc.op == "local_solve"
                    and exc.rank not in self.one_level.disabled):
                self.one_level.disable(exc.rank)
                resilience["degraded_subdomains"].append(exc.rank)
                warnings.warn(
                    f"disabling failed subdomain {exc.rank} in the "
                    f"one-level preconditioner (degraded mode)",
                    RuntimeWarning, stacklevel=3)
                if self.recorder.enabled:
                    self.recorder.event("recovery.disable_subdomain",
                                        attrs={"subdomain": exc.rank})
            if isinstance(exc, CoarseSolveError) and self.coarse is not None:
                self.preconditioner = self.one_level
                resilience["one_level_only"] = True
                warnings.warn(
                    "coarse level unusable; continuing one-level only "
                    "(expect degraded convergence)",
                    RuntimeWarning, stacklevel=3)
                if self.recorder.enabled:
                    self.recorder.event("recovery.one_level_only", attrs={})
        # rollback-restart: resume from the exception's last healthy
        # iterate, else from the monitor's checkpoint, else from scratch
        x0 = getattr(exc, "x", None)
        if x0 is None and health is not None \
                and health.checkpoint is not None:
            x0 = health.checkpoint[1].copy()
        if x0 is not None and not np.all(np.isfinite(x0)):
            x0 = None
        return x0
