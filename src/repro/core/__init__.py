"""The paper's contribution: GenEO coarse spaces, the coarse operator
machinery of §3, and the one-/two-level Schwarz preconditioners."""

from .abstract import AbstractDeflation, nonoverlapping_pattern
from .adef import TwoLevelADEF1, TwoLevelADEF2, TwoLevelBNN
from .coarse import (
    CoarseOperator,
    assemble_az,
    assemble_coarse_matrix,
    coarse_blocks,
    coarse_blocks_with_T,
    elect_masters_nonuniform,
    elect_masters_uniform,
    split_ranges,
)
from .coarse_strategies import (
    CoarseSolveStrategy,
    DenseStrategy,
    MultilevelCoarseSolve,
    MultilevelStrategy,
    SparseStrategy,
    get_strategy,
    register_strategy,
    strategy_names,
)
from .deflation import DeflationSpace
from .geneo import (
    GeneoResult,
    available_coarse_spaces,
    compute_deflation,
    extended_deflation,
    extended_pencil,
    geneo_pencil,
    get_coarse_space,
    nicolaides_deflation,
    register_coarse_space,
)
from .ras import OneLevelASM, OneLevelRAS
from .ritz import arnoldi, harmonic_ritz_pairs, ritz_deflation
from .solver import SchwarzSolver, SolveReport
from .spmd_ft import SpmdFtReport, solve_spmd_ft

__all__ = [
    "AbstractDeflation",
    "nonoverlapping_pattern",
    "ritz_deflation",
    "arnoldi",
    "harmonic_ritz_pairs",
    "SchwarzSolver",
    "SolveReport",
    "OneLevelRAS",
    "OneLevelASM",
    "TwoLevelADEF1",
    "TwoLevelADEF2",
    "TwoLevelBNN",
    "CoarseOperator",
    "DeflationSpace",
    "coarse_blocks",
    "coarse_blocks_with_T",
    "assemble_coarse_matrix",
    "assemble_az",
    "elect_masters_uniform",
    "elect_masters_nonuniform",
    "split_ranges",
    "CoarseSolveStrategy",
    "DenseStrategy",
    "SparseStrategy",
    "MultilevelStrategy",
    "MultilevelCoarseSolve",
    "get_strategy",
    "register_strategy",
    "strategy_names",
    "compute_deflation",
    "extended_deflation",
    "nicolaides_deflation",
    "geneo_pencil",
    "extended_pencil",
    "get_coarse_space",
    "register_coarse_space",
    "available_coarse_spaces",
    "GeneoResult",
    "SpmdFtReport",
    "solve_spmd_ft",
]
