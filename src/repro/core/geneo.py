"""GenEO deflation vectors (paper §2.1, eq. 8–9; Spillane et al. 2011).

Per subdomain, solve the local generalized eigenproblem

    A_i^δ Λ = λ  D_i R_{i,0}ᵀ (R_{i,0} A_i^δ R_{i,0}ᵀ) R_{i,0} D_i Λ

where A_i^δ is the *Neumann* (unassembled) matrix and the right-hand
operator is the Neumann matrix restricted to the overlap, sandwiched by
the partition of unity.  The ν eigenvectors with the smallest eigenvalues
— exactly the modes that make one-level Schwarz stall (floating-subdomain
kernels, high-contrast channels) — are kept and scaled by D_i:
``W_i = [D_iΛ_{i1} … D_iΛ_{iν}]``.

Numerically the pencil is inverted: we seek the *largest* μ = 1/λ of
``B v = μ (A + σI) v`` with a tiny regularising shift σ (both A and B are
positive semi-definite; kernel modes of A appear as huge μ and are found
first, as they must be).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..common.errors import EigenError, RankFailure, ReproError
from ..common.validation import matrix_is_symmetric
from ..dd.decomposition import Subdomain
from ..eigen import lanczos_generalized, subspace_iteration
from ..solvers import factorize

#: relative diagonal shift regularising the (possibly singular) Neumann matrix
DEFAULT_SHIFT_REL = 1e-10


@dataclass
class GeneoResult:
    """Deflation data of one subdomain."""

    W: np.ndarray           # (n_i, nu_i): D_i-scaled eigenvectors
    eigenvalues: np.ndarray  # λ of the GenEO pencil, ascending
    nu: int


def geneo_pencil(sub: Subdomain) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """The (A, B) pencil of eq. (9) for one subdomain.

    A = A_i^δ (Neumann);  B = D Π A_i^δ Π D with Π = R_{i,0}ᵀR_{i,0}
    the 0/1 projector on the overlap dofs.

    The classical pencil is only defined for symmetric A_i^δ — a
    nonsymmetric Neumann matrix is symmetrised (½(A + Aᵀ)) with a
    warning so the symmetric-GenEO *baseline* stays runnable on the
    nonsymmetric workloads (the bench compares it against the extended
    space, :func:`extended_pencil`, which is the correct construction).
    """
    import warnings

    A = sub.A_neu
    if not matrix_is_symmetric(A):
        warnings.warn(
            f"subdomain {sub.index}: Neumann matrix is nonsymmetric; "
            f"symmetrising for the classical GenEO pencil — prefer "
            f"coarse_space='extended' for nonsymmetric operators",
            RuntimeWarning, stacklevel=2)
        A = (0.5 * (A + A.T)).tocsr()
    mask = sub.overlap_mask.astype(np.float64)
    d_pi = sub.d * mask
    Dp = sp.diags(d_pi)
    B = (Dp @ A @ Dp).tocsr()
    return A, B


def extended_pencil(sub: Subdomain) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """The extended (SPD-surrogate) pencil of Nataf–Parolin
    (arXiv:2404.02758) for nonsymmetric/indefinite operators.

    The eigensolve runs on ``A_spd`` — the form's symmetric positive
    (semi-)definite principal part (``Subdomain.A_geneo``: diffusion +
    SUPG streamline term for convection–diffusion, the stiffness part
    for Helmholtz à la Δ-GenEO) — with the same overlap-projected
    right-hand operator as eq. (9).  When the form supplies no
    surrogate, the symmetric part ``½(A_i^δ + (A_i^δ)ᵀ)`` is used.
    """
    A = sub.A_geneo
    if A is None:
        A = sub.A_neu
        if not matrix_is_symmetric(A):
            A = (0.5 * (A + A.T)).tocsr()
    mask = sub.overlap_mask.astype(np.float64)
    d_pi = sub.d * mask
    Dp = sp.diags(d_pi)
    B = (Dp @ A @ Dp).tocsr()
    return A, B


def compute_deflation(sub: Subdomain, *, nev: int = 10,
                      tau: float | None = None,
                      shift_rel: float = DEFAULT_SHIFT_REL,
                      method: str = "lanczos",
                      seed: int = 0) -> GeneoResult:
    """Solve the GenEO eigenproblem of one subdomain and build W_i.

    Parameters
    ----------
    nev:
        Number of deflation vectors requested (the paper's uniform ν).
    tau:
        Optional threshold: keep only eigenpairs with λ < τ (at most
        *nev*).  ``None`` keeps exactly *nev*.
    method:
        ``"lanczos"`` (the from-scratch ARPACK substitute),
        ``"subspace"`` (blocked subspace iteration) or ``"scipy"``
        (cross-check via ``scipy.sparse.linalg.eigsh``).
    """
    A, B = geneo_pencil(sub)
    lam, vecs = _solve_pencil(A, B, nev=nev, tau=tau, shift_rel=shift_rel,
                              method=method, seed=seed)
    W = sub.d[:, None] * vecs                     # eq. (8)
    # normalise the columns: the Lanczos vectors are (A + σI)-orthonormal,
    # so kernel modes carry 2-norms of O(1/√σ) that would destroy the
    # conditioning of E; rescaling does not change span(Z)
    norms = np.linalg.norm(W, axis=0)
    norms[norms < 1e-300] = 1.0
    W = W / norms
    return GeneoResult(W=W, eigenvalues=lam, nu=W.shape[1])


def _solve_pencil(A: sp.csr_matrix, B: sp.csr_matrix, *, nev: int,
                  tau: float | None, shift_rel: float, method: str,
                  seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Solve the inverted pencil ``B v = μ (A + σI) v`` for the *nev*
    smallest-λ eigenpairs (μ = 1/λ); shared by the classical and
    extended GenEO builders.  *A* must be symmetric positive
    semi-definite."""
    n = A.shape[0]
    if nev < 1:
        raise EigenError(f"nev must be >= 1, got {nev}")
    nev = min(nev, n)
    diag = A.diagonal()
    sigma = shift_rel * float(np.mean(np.abs(diag)) + 1e-300)
    M = (A + sigma * sp.eye(n, format="csr")).tocsr()
    Mf = factorize(M, "superlu")

    if method == "lanczos":
        # sparse matrices, not per-vector lambdas: the eigensolver's
        # blocked kernels then run csrmm / multi-RHS solves directly
        res = lanczos_generalized(B, Mf, M, n, nev, seed=seed)
        mu = res.values
        vecs = res.vectors
    elif method == "subspace":
        res = subspace_iteration(B, Mf, M, n, nev, seed=seed)
        mu = res.values
        vecs = res.vectors
    elif method == "scipy":
        import scipy.sparse.linalg as spla
        k = min(nev, n - 1)
        mu, vecs = spla.eigsh(B, k=k, M=M,
                              Minv=spla.LinearOperator((n, n), Mf.solve),
                              which="LM")
        order = np.argsort(-mu)
        mu, vecs = mu[order], vecs[:, order]
    else:
        raise EigenError(f"unknown GenEO eigensolver {method!r}")

    # μ = 1/λ, largest μ ↔ smallest λ.  μ <= 0 (up to roundoff) means the
    # vector is B-null: λ = ∞, never deflated.
    mu = np.asarray(mu)
    keep = mu > 1e-14 * max(float(np.max(np.abs(mu))), 1e-300)
    mu, vecs = mu[keep], vecs[:, keep]
    lam = 1.0 / mu
    order = np.argsort(lam)
    lam, vecs = lam[order], vecs[:, order]
    if tau is not None:
        sel = lam < tau
        lam, vecs = lam[sel], vecs[:, sel]
    lam, vecs = lam[:nev], vecs[:, :nev]
    if lam.size == 0:
        # degenerate but legal: contribute the D-weighted constant instead
        vecs = np.ones((n, 1))
        lam = np.array([np.inf])
    return lam, vecs


def extended_deflation(sub: Subdomain, *, nev: int = 10,
                       tau: float | None = None,
                       shift_rel: float = DEFAULT_SHIFT_REL,
                       method: str = "lanczos",
                       seed: int = 0) -> GeneoResult:
    """Extended-GenEO deflation for nonsymmetric/indefinite operators
    (Nataf & Parolin, arXiv:2404.02758).

    Same selection as :func:`compute_deflation` but the pencil runs on
    the SPD surrogate (:func:`extended_pencil`), and the D-scaled
    vectors are orthonormalised by a *Euclidean* rank-revealing QR —
    A-orthogonality arguments do not survive a non-Hermitian operator,
    and a well-conditioned Euclidean basis keeps E = ZᵀAZ invertible
    regardless of the operator's symmetry.
    """
    A, B = extended_pencil(sub)
    lam, vecs = _solve_pencil(A, B, nev=nev, tau=tau, shift_rel=shift_rel,
                              method=method, seed=seed)
    W = sub.d[:, None] * vecs                     # eq. (8)
    # non-Hermitian-safe orthonormalisation: reduced QR with tiny-pivot
    # column dropping (span(W) is preserved; near-dependent columns —
    # e.g. duplicated kernel modes after D-scaling — are discarded)
    Q, R = np.linalg.qr(W, mode="reduced")
    rdiag = np.abs(np.diag(R))
    keep = rdiag > 1e-12 * max(float(rdiag.max()), 1e-300)
    if not np.all(keep):
        Q, lam = Q[:, keep], lam[keep]
    if Q.shape[1] == 0:  # pragma: no cover - degenerate but legal
        Q = np.ones((W.shape[0], 1)) / np.sqrt(W.shape[0])
        lam = np.array([np.inf])
    return GeneoResult(W=Q, eigenvalues=lam, nu=Q.shape[1])


def resilient_deflation(sub: Subdomain, *, nev: int = 10,
                        tau: float | None = None,
                        shift_rel: float = DEFAULT_SHIFT_REL,
                        method: str = "lanczos", seed: int = 0,
                        injector=None, recorder=None,
                        on_fallback=None, builder=None) -> GeneoResult:
    """:func:`compute_deflation` with the recovery ladder of
    ``docs/resilience.md``: an eigensolve failure (genuine, or injected
    through *injector*'s ``eigensolve`` op) is retried once with a
    perturbed seed; a second failure falls back to the
    :func:`nicolaides_deflation` coarse vectors for this subdomain, with
    a logged warning and a ``recovery.eigensolve_fallback`` trace event.
    The solve stays two-level — only this subdomain's block of the
    coarse space is degraded.  *builder* selects the eigensolve-based
    coarse-space builder (:func:`compute_deflation` by default,
    :func:`extended_deflation` for nonsymmetric operators).
    """
    import warnings

    if builder is None:
        builder = compute_deflation
    last_exc: Exception | None = None
    for attempt in range(2):
        try:
            if injector is not None:
                injector.fire("eigensolve", sub.index)
            return builder(sub, nev=nev, tau=tau,
                           shift_rel=shift_rel, method=method,
                           seed=seed + 104729 * attempt)
        except (EigenError, RankFailure, FloatingPointError,
                np.linalg.LinAlgError) as exc:
            last_exc = exc
    warnings.warn(
        f"GenEO eigensolve failed twice on subdomain {sub.index} "
        f"({last_exc!r}); falling back to Nicolaides vectors for this "
        f"subdomain", RuntimeWarning, stacklevel=2)
    if recorder is not None and recorder.enabled:
        recorder.event("recovery.eigensolve_fallback",
                       attrs={"subdomain": int(sub.index),
                              "error": repr(last_exc)})
    if on_fallback is not None:
        on_fallback(sub.index)
    return nicolaides_deflation(sub)


def nicolaides_deflation(sub: Subdomain, ncomp: int = 1) -> GeneoResult:
    """The classical coarse space (Nicolaides 1987): piecewise-constant
    per component, D-weighted.  The ablation baseline for GenEO —
    sufficient for mild coefficients, not for high contrast."""
    n = sub.size
    W = np.zeros((n, ncomp))
    for c in range(ncomp):
        e = np.zeros(n)
        e[c::ncomp] = 1.0
        W[:, c] = sub.d * e
    return GeneoResult(W=W, eigenvalues=np.zeros(ncomp), nu=ncomp)


# ----------------------------------------------------------------------
# Coarse-space registry (mirrors the kernel-backend / coarse-strategy
# registries: names resolvable from code or $REPRO_COARSE_SPACE)
# ----------------------------------------------------------------------

def _nicolaides_builder(sub: Subdomain, *, ncomp: int = 1,
                        **_ignored) -> GeneoResult:
    """Registry adapter: Nicolaides takes no eigensolve parameters."""
    return nicolaides_deflation(sub, ncomp=ncomp)


#: name -> per-subdomain coarse-space builder
#: ``builder(sub, *, nev, tau, shift_rel, method, seed, ncomp) -> GeneoResult``
_COARSE_SPACES: dict[str, object] = {}


def register_coarse_space(name: str, builder) -> None:
    """Register a per-subdomain coarse-space builder under *name*."""
    _COARSE_SPACES[name] = builder


def available_coarse_spaces() -> list[str]:
    return sorted(_COARSE_SPACES)


def get_coarse_space(name: str | None = None, *,
                     operator_is_spd: bool = True):
    """Resolve a coarse-space builder by registry name.

    ``None`` resolves ``$REPRO_COARSE_SPACE`` and then auto-selects:
    ``"geneo"`` for SPD operators (the paper's construction),
    ``"extended"`` (Nataf–Parolin) for nonsymmetric/indefinite ones.
    Returns ``(name, builder)``.
    """
    if name is None:
        name = os.environ.get("REPRO_COARSE_SPACE") or None
    if name is None:
        name = "geneo" if operator_is_spd else "extended"
    if name not in _COARSE_SPACES:
        raise ReproError(
            f"unknown coarse space {name!r}; expected one of "
            f"{available_coarse_spaces()}")
    return name, _COARSE_SPACES[name]


def _geneo_builder(sub, *, ncomp: int = 1, **kwargs) -> GeneoResult:
    return compute_deflation(sub, **kwargs)


def _extended_builder(sub, *, ncomp: int = 1, **kwargs) -> GeneoResult:
    return extended_deflation(sub, **kwargs)


register_coarse_space("geneo", _geneo_builder)
register_coarse_space("extended", _extended_builder)
register_coarse_space("nicolaides", _nicolaides_builder)
