"""The deflation matrix Z (paper fig. 3) — block-sparse, assembled once.

Z = [R₁ᵀW₁ R₂ᵀW₂ … R_NᵀW_N] is block-sparse: one dense ``n_i × ν_i``
block per subdomain, rows overlapping where dofs are duplicated.  The
sequential driver assembles Z (and its transpose) as CSR **once** so
every ``Zᵀu`` / ``Zy`` of the solve phase is a single spmv instead of an
N-element Python loop of gemvs; the per-block forms (``zt_dot_blocks``,
``z_dot_blocks``, ``z_dot_local``) remain the distributed semantics used
by the SPMD/simmpi driver and the reference-path tests (§3.2 steps 1
and 3 literally).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import DecompositionError
from ..common.validation import as_float64_block
from ..dd.decomposition import Decomposition


class DeflationSpace:
    """Per-subdomain deflation blocks W_i and the implicit Z operations.

    The assembled-CSR products (``zt_dot``/``z_dot`` and their block
    forms) route through a :class:`~repro.kernels.KernelBackend` —
    the reference ``numpy`` backend performs the identical spmv; the
    ``fp32`` backend substitutes cached single-precision mirrors.
    """

    def __init__(self, dec: Decomposition, W_blocks: list[np.ndarray],
                 *, kernels=None):
        from ..kernels import default_backend
        self.kernels = default_backend() if kernels is None else kernels
        if len(W_blocks) != dec.num_subdomains:
            raise DecompositionError(
                f"expected {dec.num_subdomains} W blocks, got {len(W_blocks)}")
        for s, W in zip(dec.subdomains, W_blocks):
            if W.shape[0] != s.size:
                raise DecompositionError(
                    f"W block of subdomain {s.index} has {W.shape[0]} rows, "
                    f"expected {s.size}")
        self.dec = dec
        self.W = [np.ascontiguousarray(W, dtype=np.float64)
                  for W in W_blocks]
        #: ν_i per subdomain
        self.nu = np.array([W.shape[1] for W in self.W], dtype=np.int64)
        #: global column offsets r_i = Σ_{j<i} ν_j
        self.offsets = np.concatenate([[0], np.cumsum(self.nu)])
        self.m = int(self.offsets[-1])
        self._Z: sp.csr_matrix | None = None
        self._Zt: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    # Assembled sparse Z (sequential fast path)
    # ------------------------------------------------------------------
    @property
    def Z(self) -> sp.csr_matrix:
        """Sparse Z (n_free × m), assembled lazily and cached."""
        if self._Z is None:
            self._Z = self._assemble_z()
        return self._Z

    @property
    def Zt(self) -> sp.csr_matrix:
        """Cached CSR transpose of Z (row-major spmv for Zᵀu)."""
        if self._Zt is None:
            self._Zt = self.Z.T.tocsr()
        return self._Zt

    def _assemble_z(self) -> sp.csr_matrix:
        dec = self.dec
        rows, cols, vals = [], [], []
        for i, (W, s) in enumerate(zip(self.W, dec.subdomains)):
            r = np.repeat(s.dofs, W.shape[1])
            c = np.tile(np.arange(self.offsets[i], self.offsets[i + 1]),
                        s.size)
            rows.append(r)
            cols.append(c)
            vals.append(W.ravel())
        return sp.csr_matrix(
            (np.concatenate(vals),
             (np.concatenate(rows), np.concatenate(cols))),
            shape=(dec.problem.num_free, self.m))

    # ------------------------------------------------------------------
    def zt_dot(self, u: np.ndarray) -> np.ndarray:
        """w = Zᵀu (§3.2 step 1) — one spmv with the cached Zᵀ."""
        return self.kernels.spmv(self.Zt, u)

    def z_dot(self, y: np.ndarray) -> np.ndarray:
        """z = Zy (§3.2 step 3) — one spmv with the cached Z."""
        if y.shape != (self.m,):
            raise DecompositionError(
                f"coarse vector must have shape ({self.m},), got {y.shape}")
        return self.kernels.spmv(self.Z, y)

    # ------------------------------------------------------------------
    # Multi-RHS (column-block) forms — one csrmm instead of k csrmvs
    # ------------------------------------------------------------------
    def zt_dot_block(self, U: np.ndarray) -> np.ndarray:
        """W = Zᵀ U for a column block ``U (n_free, k)`` — one csrmm."""
        U = as_float64_block(U, "zt_dot_block", DecompositionError)
        return self.kernels.spmm(self.Zt, U)

    def z_dot_block(self, Y: np.ndarray) -> np.ndarray:
        """Z Y for a coarse column block ``Y (m, k)`` — one csrmm."""
        Y = np.asarray(Y)
        if Y.ndim != 2 or Y.shape[0] != self.m:
            raise DecompositionError(
                f"coarse block must have shape ({self.m}, k), "
                f"got {Y.shape}")
        Y = as_float64_block(Y, "z_dot_block", DecompositionError)
        return self.kernels.spmm(self.Z, Y)

    # ------------------------------------------------------------------
    # Per-block (distributed) forms — the SPMD semantics and the
    # reference path of the solve-phase perf tests
    # ------------------------------------------------------------------
    def zt_dot_blocks(self, u: np.ndarray) -> np.ndarray:
        """Per-block Zᵀu: each subdomain computes W_iᵀ u_i (gemv); the
        concatenation is the coarse right-hand side."""
        dec = self.dec
        parts = [W.T @ u[s.dofs]
                 for W, s in zip(self.W, dec.subdomains)]
        return np.concatenate(parts)

    def z_dot_blocks(self, y: np.ndarray) -> np.ndarray:
        """Per-block Zy: z_i = W_i y_i locally, then the overlap sum
        Σ_j R_iR_jᵀ z_j — same communication as one matvec (eq. 12)."""
        if y.shape != (self.m,):
            raise DecompositionError(
                f"coarse vector must have shape ({self.m},), got {y.shape}")
        dec = self.dec
        z_list = [W @ y[self.offsets[i]:self.offsets[i + 1]]
                  for i, W in enumerate(self.W)]
        summed = dec.exchange_sum(z_list)
        # read off the global vector: every subdomain now holds R_i(Zy);
        # stitch through the partition of unity (values agree on overlaps)
        return dec.combine(summed)

    def z_dot_local(self, y: np.ndarray) -> list[np.ndarray]:
        """Distributed form of :meth:`z_dot`: returns R_i(Zy) per rank."""
        dec = self.dec
        z_list = [W @ y[self.offsets[i]:self.offsets[i + 1]]
                  for i, W in enumerate(self.W)]
        return dec.exchange_sum(z_list)

    # ------------------------------------------------------------------
    def explicit_z(self) -> sp.csr_matrix:
        """Assembled sparse Z — alias of :attr:`Z` (figure 3, tests)."""
        return self.Z
