"""The coarse operator E = ZᵀAZ (paper §3.1) and its correction (§3.2).

E is assembled block-wise without ever forming A or Z:

* **step 1** (local):  T_i = A_i W_i  (csrmm)  and  E_{i,i} = W_iᵀ T_i (gemm);
* **step 2** (p2p):    exchange S_j = R_jR_iᵀ T_i with every neighbour —
  the cost of one global sparse matrix–vector product;
* **step 3** (local):  E_{i,j} = W_iᵀ U_j (gemm).

The block (i, j) is nonzero iff V_i^δ ∩ V_j^δ ≠ ∅, so the sparsity of E
mirrors the subdomain connectivity (fig. 4: blue diagonal blocks need no
communication, red off-diagonal blocks one neighbour transfer).

This module is the sequential driver (used by the high-level solver and
the tests); :mod:`repro.core.coarse_spmd` runs algorithms 1–2 literally
over the simulated MPI with the master–slave distribution.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from ..common.errors import CoarseSolveError, DecompositionError
from ..dd.decomposition import Decomposition
from ..parallel import ParallelConfig, parallel_map
from ..solvers import factorize
from .coarse_strategies import get_strategy
from .coarse_strategies.direct import _PseudoInverse, coo_from_blocks
from .deflation import DeflationSpace


def coarse_blocks_with_T(space: DeflationSpace,
                         parallel: ParallelConfig | str | None = None,
                         ) -> tuple[dict[tuple[int, int], np.ndarray],
                                    list[np.ndarray]]:
    """All blocks E_{i,j} (i row, j ∈ Ō_i) via the three-step algorithm,
    plus the intermediate ``T_i = A_i W_i`` blocks.

    Steps 1 and 3 are per-subdomain local gemms and run under the
    parallel setup engine; step 2 (the neighbour exchange) is index
    plumbing on the already-computed T blocks.  The T blocks are the
    columns of A·Z restricted to each subdomain — returning them lets
    :class:`CoarseOperator` cache A·Z for the solve-phase fast path
    instead of recomputing it with a global SpMV every iteration.
    """
    dec = space.dec
    subs = dec.subdomains
    # step 1: T_i = A_i W_i (csrmm), diagonal block E_{i,i} = W_iᵀ T_i

    def local_products(i: int) -> tuple[np.ndarray, np.ndarray]:
        Ti = subs[i].A_dir @ space.W[i]
        return Ti, space.W[i].T @ Ti

    step1 = parallel_map(local_products, range(len(subs)), parallel)
    T = [t for t, _ in step1]
    blocks: dict[tuple[int, int], np.ndarray] = {}
    for s, (_, Eii) in zip(subs, step1):
        blocks[(s.index, s.index)] = Eii
    # steps 2+3: neighbour exchange of the overlap rows of T, then gemm.
    # E_{i,j} = W_iᵀ R_iR_jᵀ T_j = W_i[shared_ij]ᵀ T_j[shared_ji]

    def off_diag(s) -> list[tuple[tuple[int, int], np.ndarray]]:
        i = s.index
        out = []
        for j in s.neighbors:
            Wi_rows = space.W[i][s.shared[j]]
            Tj_rows = T[j][subs[j].shared[i]]
            out.append(((i, j), Wi_rows.T @ Tj_rows))
        return out

    for part in parallel_map(off_diag, subs, parallel):
        blocks.update(part)
    return blocks, T


def coarse_blocks(space: DeflationSpace,
                  parallel: ParallelConfig | str | None = None,
                  ) -> dict[tuple[int, int], np.ndarray]:
    """The E_{i,j} block dictionary (see :func:`coarse_blocks_with_T`)."""
    return coarse_blocks_with_T(space, parallel)[0]


#: historical COO assembly route, kept under its old private name (the
#: ``dense`` strategy's bitwise-reference path lives in
#: :mod:`repro.core.coarse_strategies.direct`)
_matrix_from_blocks = coo_from_blocks


def assemble_coarse_matrix(space: DeflationSpace,
                           parallel: ParallelConfig | str | None = None,
                           ) -> sp.csr_matrix:
    """Sparse E from the block dictionary (global CSR, the masters'
    distributed format in §3.1.1 — here sequential)."""
    return _matrix_from_blocks(space, coarse_blocks(space, parallel))


def assemble_az(space: DeflationSpace,
                T: list[np.ndarray]) -> sp.csr_matrix:
    """Sparse A·Z (n_free × m) from the cached T_i = A_i W_i blocks.

    Each W_i vanishes on the outermost layer of V_i^δ (the GenEO vectors
    carry the partition of unity), so A R_iᵀ W_i is supported inside
    V_i^δ and A Z = Σ_i R_iᵀ T_i exactly — block column i of A·Z is T_i
    scattered to subdomain i's rows.  Same sparsity as Z itself (fig. 3).
    """
    dec = space.dec
    rows, cols, vals = [], [], []
    for i, (Ti, s) in enumerate(zip(T, dec.subdomains)):
        r = np.repeat(s.dofs, Ti.shape[1])
        c = np.tile(np.arange(space.offsets[i], space.offsets[i + 1]),
                    s.size)
        rows.append(r)
        cols.append(c)
        vals.append(Ti.ravel())
    return sp.csr_matrix(
        (np.concatenate(vals),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(dec.problem.num_free, space.m))


# ----------------------------------------------------------------------
# Master election (§3.1.2, fig. 5)
# ----------------------------------------------------------------------

def elect_masters_uniform(N: int, P: int) -> np.ndarray:
    """Uniform contiguous distribution: masters at ranks i·N/P."""
    if not (1 <= P <= N):
        raise DecompositionError(f"need 1 <= P <= N, got P={P}, N={N}")
    return (np.arange(P) * N) // P


def elect_masters_nonuniform(N: int, P: int) -> np.ndarray:
    """The paper's non-uniform election for symmetric coarse operators:

    p₀ = 0,  p_i = ⌊N − sqrt((p_{i−1} − N)² − N²/P) + 0.5⌋

    chosen so each master's quadrilateral of upper-triangle values holds
    roughly the same count (fig. 5 right).
    """
    if not (1 <= P <= N):
        raise DecompositionError(f"need 1 <= P <= N, got P={P}, N={N}")
    p = np.zeros(P, dtype=np.int64)
    for i in range(1, P):
        val = (p[i - 1] - N) ** 2 - N * N / P
        if val < 0:
            val = 0.0
        p[i] = int(np.floor(N - np.sqrt(val) + 0.5))
        if p[i] <= p[i - 1]:          # guard against degenerate rounding
            p[i] = p[i - 1] + 1
    if p[-1] >= N:  # pragma: no cover - only for tiny N/P combinations
        p = np.minimum(p, np.arange(N - P, N))
    return p


def split_ranges(masters: np.ndarray, N: int) -> list[np.ndarray]:
    """Ranks of each splitComm: master p owns [masters[p], masters[p+1])."""
    bounds = np.concatenate([masters, [N]])
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(len(masters))]


# ----------------------------------------------------------------------
# Coarse operator driver
# ----------------------------------------------------------------------

class CoarseOperator:
    """Assembled + factorised coarse operator with the §3.2 correction.

    Setup also caches the ``T_i = A_i W_i`` blocks already computed for
    the E assembly, both per subdomain (:attr:`T`) and as the assembled
    sparse :attr:`AZ` — so the solve phase computes ``A Z y`` with one
    spmv (or per-subdomain gemvs + overlap exchange in the distributed
    form, :meth:`az_dot_blocks`) instead of a global SpMV every
    iteration.

    Parameters
    ----------
    space:
        The deflation space (defines Z and the block structure of E).
    backend:
        Local factorization backend for E.
    parallel:
        Executor for the per-subdomain assembly gemms.
    recorder:
        Optional :class:`repro.obs.Recorder` — records the assembly
        steps as spans (``assemble_E``, ``assemble_AZ``,
        ``factorize_E``) and counts every coarse solve under the
        ``coarse_solves`` counter.
    kernels:
        Optional :class:`~repro.kernels.KernelBackend`.  The coarse
        solve and the cached A·Z product route through it — the
        ``fp32`` backend substitutes a probed single-precision LDLᵀ
        mirror of E (the fp64 factorization stays as the fallback and
        the resilience path).  When given, the deflation space's CSR
        products are routed through the same backend.
    strategy:
        How E y = w is solved — a registry name (``"dense"``,
        ``"sparse"``, ``"multilevel"``) or a ready
        :class:`~repro.core.coarse_strategies.CoarseSolveStrategy`
        instance.  ``None`` resolves ``$REPRO_COARSE_STRATEGY`` and
        falls back to the bitwise-reference ``dense`` strategy.  See
        :mod:`repro.core.coarse_strategies`.
    """

    def __init__(self, space: DeflationSpace, *, backend: str = "superlu",
                 rank_tol: float = 1e-10,
                 parallel: ParallelConfig | str | None = None,
                 recorder=None, kernels=None, strategy=None):
        from ..kernels import default_backend
        from ..obs.recorder import NULL_RECORDER
        self.space = space
        self.kernels = default_backend() if kernels is None else kernels
        if kernels is not None:
            space.kernels = self.kernels
        self.recorder = NULL_RECORDER if recorder is None else recorder
        #: the :class:`~repro.core.coarse_strategies.CoarseSolveStrategy`
        self.strategy = get_strategy(strategy)
        self._backend = backend
        with self.recorder.span("assemble_E"):
            blocks, T = coarse_blocks_with_T(space, parallel)
            self.E = self.strategy.assemble(space, blocks)
        #: cached T_i = A_i W_i blocks (block column i of A·Z)
        self.T = T
        with self.recorder.span("assemble_AZ"):
            #: assembled sparse A·Z — fixed once the deflation space is
            #: built
            self.AZ = assemble_az(space, T)
        self.rank_deficient = False
        self._rank_tol = rank_tol
        with self.recorder.span("factorize_E"):
            self.factorization = self.strategy.build(self, backend,
                                                     rank_tol)
        #: optional reduced-precision solve routine from the kernel
        #: backend (``None`` → use :attr:`factorization` directly;
        #: inexact strategies never get a mirror)
        self._kernel_solve = self.kernels.make_coarse_solve(self)
        self.solves = 0
        if self.recorder.enabled:
            self.recorder.gauge("coarse.dim", self.E.shape[0])
            self.recorder.gauge("coarse.nnz", self.E.nnz)
            self.recorder.gauge("coarse.nnz_factor", self.nnz_factor())
            self.recorder.event("coarse.strategy", attrs={
                "name": self.strategy.name,
                "exact": bool(getattr(self.factorization, "exact", True))})
        #: optional :class:`~repro.krylov.SolveProfiler` — when attached,
        #: every coarse solve is timed under its ``coarse_solve`` phase
        self.profiler = None
        #: optional :class:`~repro.resilience.FaultInjector`; fires the
        #: ``coarse_solve`` op on every solve output
        self.injector = None
        #: when True, a non-finite coarse solve triggers the fallback
        #: chain (rebuild as pseudo-inverse, re-solve) instead of raising
        #: :class:`~repro.common.errors.CoarseSolveError` immediately
        self.resilient = False
        #: number of times the pseudo-inverse fallback was taken
        self.fallbacks = 0

    def _robust_factorize(self, backend: str, rank_tol: float):
        """Factorise E, falling back to a rank-revealing pseudo-inverse.

        Deflation vectors can be (numerically) linearly dependent — e.g.
        near-kernel clusters living inside an overlap are found by both
        neighbouring subdomains — which makes E singular.  The theory
        only needs E⁻¹ on range(Zᵀ·), so a truncated eigendecomposition
        is the correct and stable generalisation (what MUMPS' null-pivot
        detection provides the paper)."""
        try:
            fact = factorize(self.E, backend)
            # quick health check: a factorization of a singular E may
            # silently produce garbage — verify one solve
            rng = np.random.default_rng(0)
            w = rng.standard_normal(self.E.shape[0])
            y = fact.solve(w)
            resid = np.linalg.norm(self.E @ y - w)
            if np.isfinite(resid) and resid <= 1e-6 * np.linalg.norm(w):
                return fact
        except Exception:  # noqa: BLE001 - any backend failure → fallback
            pass
        self.rank_deficient = True
        return _PseudoInverse(self.E, rank_tol)

    @property
    def dim(self) -> int:
        return int(self.E.shape[0])

    def solve(self, w: np.ndarray) -> np.ndarray:
        """y = E⁻¹ w (forward elimination + back substitution, §3.2 step 2).

        *w* may be a vector or a column block ``(m, k)``: every
        factorization backend (and the pseudo-inverse fallback) solves
        the whole block through one forward/backward sweep, which is the
        "one coarse solve per iteration for the entire block" property
        the block Krylov drivers rely on — counted as a single solve.
        """
        self.solves += 1
        if self.recorder.enabled:
            self.recorder.add("coarse_solves", 1)
        if self.profiler is not None:
            with self.profiler.phase("coarse_solve"):
                return self._checked_solve(w)
        return self._checked_solve(w)

    def _checked_solve(self, w: np.ndarray) -> np.ndarray:
        if self.injector is not None and hasattr(self.factorization,
                                                 "injector"):
            # inexact handles run an inner iteration of their own — give
            # them the injector so level-2 faults land inside the solve
            self.factorization.injector = self.injector
        y = self.factorization.solve(w) if self._kernel_solve is None \
            else self._kernel_solve(w)
        if self.injector is not None:
            y = self.injector.fire("coarse_solve", 0, y)
        if np.all(np.isfinite(y)):
            return y
        # a non-finite coarse solve: a (numerically) singular E, a
        # garbage factorization, or an injected fault
        if not self.resilient:
            raise CoarseSolveError(
                "coarse solve produced non-finite values "
                "(singular E or corrupted factorization)")
        return self._fallback_solve(w)

    def _fallback_solve(self, w: np.ndarray) -> np.ndarray:
        """§resilience fallback chain, strategy-aware: drop the
        reduced-precision kernel mirror (if one produced the garbage)
        and retry the fp64 factorization; replace an inexact (multilevel)
        solve with a sparse-direct rebuild; then rebuild E's solve as a
        truncated pseudo-inverse; a still-broken solve raises
        :class:`~repro.common.errors.CoarseSolveError` so the solver can
        degrade to one-level-only mode."""
        if self._kernel_solve is not None:
            self.fallbacks += 1
            self._kernel_solve = None
            warnings.warn(
                "reduced-precision coarse solve produced non-finite "
                "values; dropping the kernel mirror and retrying fp64",
                RuntimeWarning, stacklevel=3)
            if self.recorder.enabled:
                self.recorder.event("recovery.coarse_fallback",
                                    attrs={"to": "fp64"})
            y = self.factorization.solve(w)
            if self.injector is not None:
                y = self.injector.fire("coarse_solve", 0, y)
            if np.all(np.isfinite(y)):
                return y
        if not getattr(self.factorization, "exact", True):
            # an inexact (multilevel) solve went bad — a killed level-2
            # rank or an unlucky inner breakdown; rebuild the coarse
            # solve as an exact sparse-direct factorization of the same E
            self.fallbacks += 1
            warnings.warn(
                "multilevel coarse solve produced non-finite values; "
                "rebuilding as a sparse-direct factorization",
                RuntimeWarning, stacklevel=3)
            if self.recorder.enabled:
                self.recorder.event("recovery.coarse_fallback",
                                    attrs={"to": "sparse_direct"})
            self.factorization = get_strategy("sparse").build(
                self, self._backend, self._rank_tol)
            y = self.factorization.solve(w)
            if self.injector is not None:
                y = self.injector.fire("coarse_solve", 0, y)
            if np.all(np.isfinite(y)):
                return y
        if not isinstance(self.factorization, _PseudoInverse):
            self.fallbacks += 1
            self.rank_deficient = True
            warnings.warn(
                "coarse solve produced non-finite values; rebuilding E's "
                "factorization as a truncated pseudo-inverse",
                RuntimeWarning, stacklevel=3)
            if self.recorder.enabled:
                self.recorder.event("recovery.coarse_fallback",
                                    attrs={"to": "pseudo_inverse"})
            self.factorization = _PseudoInverse(self.E, self._rank_tol)
            y = self.factorization.solve(w)
            if np.all(np.isfinite(y)):
                return y
        raise CoarseSolveError(
            "coarse solve non-finite even after the pseudo-inverse "
            "fallback; the coarse level is unusable")

    def correction(self, u: np.ndarray) -> np.ndarray:
        """Z E⁻¹ Zᵀ u — the coarse correction, one coarse solve."""
        w = self.space.zt_dot(u)
        y = self.solve(w)
        return self.space.z_dot(y)

    def correction_blocks(self, u: np.ndarray) -> np.ndarray:
        """Per-block (pre-assembly) form of :meth:`correction` — the
        distributed/SPMD semantics, kept as the reference path."""
        w = self.space.zt_dot_blocks(u)
        y = self.solve(w)
        return self.space.z_dot_blocks(y)

    def correction_block(self, U: np.ndarray) -> np.ndarray:
        """Z E⁻¹ Zᵀ U for a column block — still one coarse solve."""
        W = self.space.zt_dot_block(U)
        Y = self.solve(W)
        return self.space.z_dot_block(Y)

    def az_dot(self, y: np.ndarray) -> np.ndarray:
        """A Z y via the cached :attr:`AZ` — one spmv, zero global SpMVs
        and zero overlap exchanges (the A-DEF1 fast path)."""
        return self.kernels.spmv(self.AZ, y)

    def az_dot_blocks(self, y: np.ndarray) -> np.ndarray:
        """Distributed form of :meth:`az_dot`: per-subdomain gemvs
        ``T_i y_i`` followed by the overlap sum Σ_i R_iᵀ(T_i y_i) — the
        communication of one neighbour exchange, still no global SpMV."""
        off = self.space.offsets
        t_list = [Ti @ y[off[i]:off[i + 1]] for i, Ti in enumerate(self.T)]
        return self.space.dec.combine_raw(t_list)

    def nnz_factor(self) -> int:
        """Fill of the factors — the paper's nnz(E⁻¹) column (fig. 11)."""
        return int(self.factorization.nnz_factor)
