"""Fault-tolerant SPMD solve driver: survive rank death mid-solve.

:func:`solve_spmd_ft` is the resilient sibling of
:func:`repro.core.spmd.solve_spmd`.  It runs the same two-level
GenEO-Schwarz GMRES, but wires the three fault-tolerance mechanisms of
this layer together so an injected rank kill (or an unabsorbed drop
storm) heals in place instead of aborting:

1. **ULFM-style communicator repair** (:meth:`repro.mpi.simmpi.Comm.
   repair`): every survivor funnels the typed peer failure into one
   collective repair; a warm spare adopts the dead world rank.
2. **Diskless neighbor checkpointing**
   (:mod:`repro.resilience.checkpoint`): the substitute restores the
   dead rank's GenEO/coarse setup payload and its last cycle-boundary
   Krylov iterate from the dead rank's replication partner.
3. **Partition-of-unity reconstruction**: when the iterate replica is
   missing or stale, the substitute rebuilds a consistent local iterate
   from the overlap neighbors' PoU-weighted copies (interior dofs
   restart from zero); a missing setup replica degrades the local solve
   to the Jacobi surrogate, and a master that lost its coarse rows
   degrades the whole run to one-level RAS (agreed via
   :meth:`~repro.mpi.simmpi.Comm.agree`).

The recovery protocol is cycle-synchronous: checkpoints are taken at
GMRES restart-cycle boundaries, the convergence test is a global
reduction (so every rank takes the same boundary decisions), and cycle
skew between ranks is at most one — survivors that already passed the
recovery cycle roll back one boundary snapshot, never more.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import RankFailure, ReproError
from ..dd.decomposition import Decomposition
from ..mpi.meter import Meter
from ..mpi.simmpi import Comm, run_spmd
from ..resilience.checkpoint import (CheckpointStore, IterateCheckpoint,
                                     jacobi_surrogate, partner_map,
                                     pou_reconstruct, pou_send_contribution,
                                     setup_payload, TAG_RESTORE_ITER)
from ..solvers import DistributedCholesky, factorize
from .deflation import DeflationSpace
from .spmd import SpmdRank, assemble_coarse_spmd, build_master_comms


@dataclass
class _FtEnv:
    """Immutable per-run configuration shared by every rank thread."""

    dec: Decomposition
    space: DeflationSpace
    b_list: list
    partners: list[int]
    num_masters: int
    nonuniform: bool
    two_level: bool
    tol: float
    restart: int
    maxiter: int
    checkpoint_every: int
    factor_backend: str
    max_repairs: int


@dataclass
class _RankState:
    """One rank's mutable solve state (everything recovery touches)."""

    rank: SpmdRank
    store: CheckpointStore
    blob: dict
    two_level: bool
    x: np.ndarray
    k: int = 0
    residuals: list = field(default_factory=list)
    cycle: int = 0
    boundary: IterateCheckpoint | None = None
    prev_boundary: IterateCheckpoint | None = None


@dataclass
class SpmdFtReport:
    """Result of a fault-tolerant SPMD solve."""

    x: np.ndarray
    iterations: int
    residuals: list
    meter: Meter
    converged: bool
    #: one entry per communicator repair, merged across ranks
    recoveries: list
    #: was the run still two-level at the end?
    two_level: bool
    #: iterate-checkpoint rounds taken (max over ranks)
    checkpoint_ticks: int


# ----------------------------------------------------------------------
# Setup
# ----------------------------------------------------------------------

def _ft_setup(comm: Comm, env: _FtEnv) -> _RankState:
    """Collective setup: algorithms 1-2 with the pristine coarse rows
    retained, then the initial setup-payload replication round."""
    rank = assemble_coarse_spmd(comm, env.dec, env.space, env.num_masters,
                                nonuniform=env.nonuniform,
                                factor_backend=env.factor_backend,
                                keep_rows=True)
    store = CheckpointStore(comm, env.partners,
                            checkpoint_every=env.checkpoint_every)
    blob = setup_payload(rank)
    if env.checkpoint_every > 0:
        store.replicate_setup(blob)
    n = len(env.dec.subdomains[comm.rank].dofs)
    return _RankState(rank=rank, store=store, blob=blob,
                      two_level=env.two_level, x=np.zeros(n))


# ----------------------------------------------------------------------
# Cycle-synchronous restartable GMRES
# ----------------------------------------------------------------------

def _ft_gmres_cycles(st: _RankState, b: np.ndarray, env: _FtEnv):
    """Right-preconditioned restarted GMRES that snapshots (and, when
    due, replicates) its state at every restart-cycle boundary and can
    resume from ``st`` after a recovery rollback."""
    rank = st.rank
    n = b.shape[0]
    bnorm = np.sqrt(rank.dot(b, b))
    if bnorm == 0:
        return st.x, st.k, st.residuals or [0.0]
    target = env.tol * bnorm
    while True:
        precond = ((lambda u: rank.adef1(u)[0]) if st.two_level
                   else rank.ras)
        rank.comm.fault_point("iteration")
        r = b - rank.matvec(st.x)
        beta = np.sqrt(rank.dot(r, r))
        # boundary snapshot BEFORE appending this cycle's residual so a
        # rollback re-enters the loop and deterministically re-appends
        st.prev_boundary = st.boundary
        st.boundary = IterateCheckpoint(st.cycle, st.k, st.x.copy(),
                                        list(st.residuals))
        st.residuals.append(beta / bnorm)
        if beta <= target or st.k >= env.maxiter:
            break
        if st.store.due(st.cycle):
            st.store.tick(st.boundary)
        m = env.restart
        V = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        g = np.zeros(m + 1)
        g[0] = beta
        V[:, 0] = r / beta
        cs, sn = np.zeros(m), np.zeros(m)
        j_done = 0
        for j in range(m):
            rank.comm.fault_point("iteration")
            w = rank.matvec(precond(V[:, j]))
            hcol = rank.dots([(w, V[:, k]) for k in range(j + 1)])
            H[:j + 1, j] = hcol
            w = w - V[:, :j + 1] @ hcol
            H[j + 1, j] = np.sqrt(rank.dot(w, w))
            if H[j + 1, j] > 0:
                V[:, j + 1] = w / H[j + 1, j]
            for k in range(j):
                t = cs[k] * H[k, j] + sn[k] * H[k + 1, j]
                H[k + 1, j] = -sn[k] * H[k, j] + cs[k] * H[k + 1, j]
                H[k, j] = t
            denom = np.hypot(H[j, j], H[j + 1, j])
            cs[j] = H[j, j] / denom if denom else 1.0
            sn[j] = H[j + 1, j] / denom if denom else 0.0
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            st.k += 1
            j_done = j + 1
            st.residuals.append(abs(g[j + 1]) / bnorm)
            if abs(g[j + 1]) <= target or st.k >= env.maxiter:
                break
        if j_done:
            y = np.zeros(j_done)
            for k in range(j_done - 1, -1, -1):
                y[k] = (g[k] - H[k, k + 1:j_done] @ y[k + 1:j_done]) / H[k, k]
            st.x = st.x + precond(V[:, :j_done] @ y)
        st.cycle += 1
    return st.x, st.k, st.residuals


# ----------------------------------------------------------------------
# Recovery protocol (runs on every rank after a communicator repair)
# ----------------------------------------------------------------------

def _ft_recover(comm: Comm, plan: dict, st: _RankState | None,
                env: _FtEnv):
    """Collective post-repair recovery: status exchange, survivor
    rollback, substitute restore (partner replica → PoU reconstruction
    → Jacobi surrogate), coarse refactorization, re-replication.

    Returns ``(st, recovery_info)``.  ``st=None`` in the result means a
    full collective setup redo is needed (a rank died during setup)."""
    t0 = time.monotonic()
    dec, partners = env.dec, env.partners
    comm.barrier()
    # ---- round A: everyone's recovery-relevant status ----------------
    if st is None:
        phase = "sub" if comm.adopted else "setup"
        status = {"rank": comm.rank, "phase": phase, "cycle": -1,
                  "held_setup": [], "held_iter": {}, "two_level": True}
    else:
        bcycle = st.boundary.cycle if st.boundary is not None else -1
        status = {"rank": comm.rank, "phase": "solve", "cycle": bcycle,
                  "held_setup": sorted(st.store.held_setup),
                  "held_iter": {c: ck.cycle
                                for c, ck in st.store.held_iter.items()},
                  "two_level": st.two_level}
    statuses = comm.allgather(status)
    rec = {"epoch": plan.get("epoch"), "dead": list(plan.get("dead", [])),
           "replaced": dict(plan.get("replaced", {})),
           "repair_seconds": float(plan.get("repair_seconds", 0.0)),
           "redo_setup": False, "two_level": None,
           "restored_from_ckpt": [], "restored_from_pou": [],
           "degraded_local": [], "restore_seconds": 0.0}
    if any(s["phase"] == "setup" for s in statuses):
        # a rank died inside the collective setup: the cheapest correct
        # recovery is a full collective redo (no iterates exist yet)
        rec["redo_setup"] = True
        rec["restore_seconds"] = time.monotonic() - t0
        return None, rec

    solve_cycles = [s["cycle"] for s in statuses if s["phase"] == "solve"]
    c_min = min(solve_cycles) if solve_cycles else -1
    R = sorted(s["rank"] for s in statuses if s["phase"] == "sub")
    Rset = set(R)
    by_rank = {s["rank"]: s for s in statuses}

    # ---- survivor rollback to the common boundary cycle --------------
    if st is not None:
        if c_min < 0:
            snap = IterateCheckpoint(0, 0, np.zeros_like(st.x), [])
        elif st.boundary.cycle == c_min:
            snap = st.boundary
        elif (st.prev_boundary is not None
              and st.prev_boundary.cycle == c_min):
            snap = st.prev_boundary
        else:  # pragma: no cover - cycle skew > 1 is a protocol bug
            raise ReproError(
                f"rank {comm.rank}: no boundary snapshot at cycle "
                f"{c_min} (have {st.boundary.cycle})")
        st.x = snap.x.copy()
        st.k = snap.k
        st.residuals = list(snap.residuals)
        st.cycle = snap.cycle
        st.boundary = None
        st.prev_boundary = None

    # ---- setup restore for the substitutes ---------------------------
    setup_ok = {}
    for i in R:
        p = partners[i]
        setup_ok[i] = (p not in Rset
                       and i in by_rank[p]["held_setup"])
    blob = None
    for i in R:
        if not setup_ok[i]:
            continue
        p = partners[i]
        if comm.rank == p:
            st.store.serve_setup(i)
        elif comm.rank == i:
            blob = CheckpointStore(comm, partners).fetch_setup()

    # ---- layout rebuild + coarse refactorization (collective) --------
    layout = build_master_comms(comm, env.num_masters, env.nonuniform)
    masters = {int(m) for m in layout.masters}
    survivor_flags = [s["two_level"] for s in statuses
                      if s["phase"] == "solve"]
    local_flag = (all(survivor_flags) if survivor_flags else env.two_level)
    # a master substitute without its coarse-row replica cannot rebuild
    # its block of E: agree() the two-level flag across survivors
    for i in R:
        if i in masters and not setup_ok[i]:
            local_flag = False
    if comm.rank in Rset and comm.rank in masters and blob is not None \
            and "rows" not in blob:
        local_flag = False
    two_level_next = bool(comm.agree(int(bool(local_flag))))
    rec["two_level"] = two_level_next

    if comm.rank in Rset:
        # build the substitute's rank state
        sub = dec.subdomains[comm.rank]
        if blob is not None:
            W = blob["W"]
            factor = factorize(sub.A_dir, env.factor_backend)
            rec["restored_from_ckpt"].append(comm.rank)
        else:
            # no replica: Jacobi-surrogate local solve, basis re-read
            # from the in-process deflation space (models re-loading it
            # from its source so the coarse operator stays consistent)
            W = env.space.W[comm.rank]
            factor = jacobi_surrogate(sub)
            blob = {"index": comm.rank, "W": np.asarray(W).copy(),
                    "is_master": comm.rank in masters}
            rec["degraded_local"].append(comm.rank)
        rank = SpmdRank(comm=comm, dec=dec, index=comm.rank,
                        W=np.asarray(W), layout=layout, factor=factor)
        if "rows" in blob:
            rank.rows = blob["rows"].copy()
            rank.row_starts = blob["row_starts"]
            rank.nu_all = blob["nu_all"]
        store = CheckpointStore(comm, partners,
                                checkpoint_every=env.checkpoint_every)
        n = len(sub.dofs)
        st = _RankState(rank=rank, store=store, blob=blob,
                        two_level=two_level_next, x=np.zeros(n))
    else:
        st.rank.layout = layout
        st.two_level = two_level_next
    st.rank.reset_tags()
    if two_level_next and layout.is_master:
        if st.rank.rows is None:  # pragma: no cover - agree() excludes it
            raise ReproError("master without coarse rows after agree()")
        st.rank.coarse = DistributedCholesky(
            layout.master_comm, st.rank.row_starts, st.rank.rows.copy())
    elif not two_level_next:
        st.rank.coarse = None

    # ---- iterate restore ---------------------------------------------
    donors = [s["rank"] for s in statuses if s["phase"] == "solve"]
    donor = min(donors) if donors else -1
    if c_min >= 0:
        for i in R:
            p = partners[i]
            iter_ok = (p not in Rset
                       and by_rank[p]["held_iter"].get(i) == c_min)
            if iter_ok:
                if comm.rank == p:
                    st.store.serve_iter(i)
                elif comm.rank == i:
                    ck = st.store.fetch_iter()
                    st.x, st.k = ck.x.copy(), ck.k
                    st.residuals = list(ck.residuals)
                    st.cycle = ck.cycle
                    rec["restored_from_ckpt"].append(comm.rank)
            else:
                # PoU reconstruction from the live overlap neighbors;
                # Krylov bookkeeping (global, identical on every rank)
                # comes from the lowest-rank survivor
                neigh = [j for j in dec.subdomains[i].neighbors
                         if j not in Rset]
                if comm.rank == donor:
                    comm.isend({"k": st.k, "residuals": list(st.residuals),
                                "cycle": st.cycle}, i, TAG_RESTORE_ITER)
                if comm.rank in neigh:
                    pou_send_contribution(comm, st.rank.sub, st.x, i)
                if comm.rank == i:
                    meta = comm.recv(donor, TAG_RESTORE_ITER)
                    st.x = pou_reconstruct(comm, st.rank.sub, neigh)
                    st.k = meta["k"]
                    st.residuals = list(meta["residuals"])
                    st.cycle = meta["cycle"]
                    rec["restored_from_pou"].append(comm.rank)

    # ---- re-replication + full iterate tick --------------------------
    if env.checkpoint_every > 0:
        st.store.replicate_setup(st.blob, affected=Rset)
        if c_min >= 0:
            st.store.tick(IterateCheckpoint(st.cycle, st.k, st.x.copy(),
                                            list(st.residuals)))
    rec["restore_seconds"] = time.monotonic() - t0
    return st, rec


# ----------------------------------------------------------------------
# Per-rank driver
# ----------------------------------------------------------------------

def _ft_rank_main(comm: Comm, env: _FtEnv):
    recoveries: list[dict] = []
    repairs = 0
    st: _RankState | None = None
    plan = comm.repair_plan          # non-None only on substituted spares
    while True:
        try:
            if plan is not None:
                st, rec = _ft_recover(comm, plan, st, env)
                recoveries.append(rec)
                plan = None
            if st is None:
                st = _ft_setup(comm, env)
            x, k, residuals = _ft_gmres_cycles(
                st, env.b_list[comm.rank], env)
            # kills can only fire at instrumented call sites: once this
            # barrier completes no rank makes another call, so no repair
            # can be needed after the first rank returns
            comm.barrier()
            return {"x": x, "iterations": k, "residuals": residuals,
                    "recoveries": recoveries, "two_level": st.two_level,
                    "ticks": st.store.ticks, "adopted": comm.adopted}
        except RankFailure as exc:
            if exc.rank == comm.world_rank or exc.op == "repair":
                raise            # own injected death / failed repair
            repairs += 1
            if repairs > env.max_repairs:
                rec = comm.meter.recorder
                if rec.enabled:
                    rec.event("recovery.giveup", attrs={
                        "scope": "spmd", "rank": comm.rank,
                        "repairs": repairs - 1})
                raise
            plan = comm.repair()


# ----------------------------------------------------------------------
# Top-level driver
# ----------------------------------------------------------------------

def solve_spmd_ft(dec: Decomposition, space: DeflationSpace,
                  b: np.ndarray, *, num_masters: int = 2,
                  nonuniform: bool = False, tol: float = 1e-6,
                  restart: int = 40, maxiter: int = 200,
                  two_level: bool = True, spares: int = 1,
                  checkpoint_every: int = 1, retry=None, faults=None,
                  meter: Meter | None = None, recorder=None,
                  poll_interval: float | None = None,
                  max_repairs: int | None = None,
                  factor_backend: str = "superlu") -> SpmdFtReport:
    """Fault-tolerant SPMD solve: ``solve_spmd`` + warm spares +
    diskless neighbor checkpointing + communicator repair.

    Runs with ``spares`` parked spare workers; each injected rank kill
    triggers one collective repair and a substitute restore, bounded by
    ``max_repairs`` (default ``spares + 2``) per rank.
    ``checkpoint_every`` counts GMRES restart cycles between iterate
    replications (0 disables checkpointing — recovery then always goes
    through PoU reconstruction).  Raises
    :class:`~repro.common.errors.RankFailure` when the run cannot heal
    (spares exhausted, repair budget exhausted, death after a rank
    returned).
    """
    N = dec.num_subdomains
    if meter is None:
        meter = Meter(N, recorder=recorder)
    env = _FtEnv(dec=dec, space=space, b_list=dec.restrict(b),
                 partners=partner_map(dec), num_masters=num_masters,
                 nonuniform=nonuniform, two_level=two_level, tol=tol,
                 restart=restart, maxiter=maxiter,
                 checkpoint_every=checkpoint_every,
                 factor_backend=factor_backend,
                 max_repairs=(spares + 2 if max_repairs is None
                              else max_repairs))
    results = run_spmd(N, _ft_rank_main, env, meter=meter,
                       recorder=recorder, faults=faults, spares=spares,
                       ft=True, retry=retry, poll_interval=poll_interval)
    lost = [i for i, r in enumerate(results) if r is None]
    if lost:  # pragma: no cover - every loss path raises earlier
        raise RankFailure(f"ranks {lost} lost without repair",
                          rank=lost[0], op="lost")
    x = dec.combine([r["x"] for r in results])
    r0 = results[0]
    # merge per-rank recovery records by repair epoch (repair timing is
    # global; restore timing is the slowest rank's)
    merged: dict[int, dict] = {}
    for r in results:
        for rec in r["recoveries"]:
            m = merged.setdefault(rec["epoch"], dict(rec))
            m["restore_seconds"] = max(m["restore_seconds"],
                                       rec["restore_seconds"])
            for key in ("restored_from_ckpt", "restored_from_pou",
                        "degraded_local"):
                m[key] = sorted(set(m[key]) | set(rec[key]))
    recoveries = [merged[e] for e in sorted(merged)]
    residuals = r0["residuals"]
    converged = bool(residuals and residuals[-1] <= tol)
    return SpmdFtReport(
        x=x, iterations=r0["iterations"], residuals=residuals,
        meter=meter, converged=converged, recoveries=recoveries,
        two_level=all(r["two_level"] for r in results),
        checkpoint_ticks=max(r["ticks"] for r in results))
