"""Vectorised finite element assembly.

Assembles the bilinear forms of the paper:

* heterogeneous diffusion  ``a(u, v) = ∫ κ ∇u·∇v``  (weak-scaling problem),
* linear elasticity        ``a(u, v) = ∫ λ (∇·u)(∇·v) + 2 μ ε(u):ε(v)``
  (strong-scaling problem),
* mass matrices and load vectors.

All element matrices for all cells are computed in one batched einsum per
quadrature-independent factor and scattered into a COO triplet list — no
per-cell Python loop (see the project's HPC-Python guide on vectorising).
Coefficients may be per-cell arrays (piecewise constant, how the paper's
high-contrast fields are defined) or callables evaluated at quadrature
points.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import FEMError
from .quadrature import simplex_quadrature
from .space import FunctionSpace


# ----------------------------------------------------------------------
# Geometry batches
# ----------------------------------------------------------------------

def _cell_geometry(space: FunctionSpace):
    """Jacobians, inverse Jacobians and |det J| for all cells.

    Memoised on the space: stiffness, mass and load assembly all need the
    same batch, and reassembling paths (elasticity's two forms, Picard's
    per-iteration reassembly) would otherwise recompute every cell
    Jacobian/inverse/determinant each time.  Meshes are never mutated in
    place (refinement returns new meshes, hence new spaces), so the cache
    cannot go stale.
    """
    cached = getattr(space, "_cell_geometry_cache", None)
    if cached is not None:
        return cached
    mesh = space.mesh
    v = mesh.vertices[mesh.cells]                 # (nc, dim+1, dim)
    J = np.swapaxes(v[:, 1:, :] - v[:, :1, :], 1, 2)   # (nc, dim, dim); col j = edge j
    detJ = np.linalg.det(J)
    if np.any(detJ <= 0):
        raise FEMError("mesh contains non-positively oriented cells")
    Jinv = np.linalg.inv(J)                       # (nc, dim, dim)
    space._cell_geometry_cache = (J, Jinv, detJ)
    return space._cell_geometry_cache


def _coefficient_at_quadrature(coeff, space: FunctionSpace, qpts: np.ndarray,
                               name: str) -> np.ndarray:
    """Evaluate *coeff* as a ``(nc, nq)`` array.

    Accepts: None (=> 1), a scalar, a per-cell array of length ``nc``, or a
    callable mapping ``(n, dim)`` physical points to values.
    """
    mesh = space.mesh
    nc, nq = mesh.num_cells, qpts.shape[0]
    if coeff is None:
        return np.ones((nc, nq))
    if callable(coeff):
        v = mesh.vertices[mesh.cells]
        origin = v[:, 0, :]
        edges = v[:, 1:, :] - v[:, :1, :]
        phys = origin[:, None, :] + np.einsum("qd,cde->cqe", qpts, edges)
        vals = np.asarray(coeff(phys.reshape(-1, mesh.dim)), dtype=np.float64)
        if vals.shape != (nc * nq,):
            raise FEMError(f"{name} callable returned shape {vals.shape}, "
                           f"expected ({nc * nq},)")
        return vals.reshape(nc, nq)
    arr = np.asarray(coeff, dtype=np.float64)
    if arr.ndim == 0:
        return np.full((nc, nq), float(arr))
    if arr.shape == (nc,):
        return np.repeat(arr[:, None], nq, axis=1)
    raise FEMError(f"{name} must be None, scalar, per-cell array of length "
                   f"{nc}, or callable; got array of shape {arr.shape}")


def _vector_coefficient_at_quadrature(coeff, space: FunctionSpace,
                                      qpts: np.ndarray,
                                      name: str) -> np.ndarray:
    """Evaluate a vector-valued *coeff* as a ``(nc, nq, dim)`` array.

    Accepts: a constant vector of length ``dim``, a per-cell ``(nc, dim)``
    array, or a callable mapping ``(n, dim)`` physical points to
    ``(n, dim)`` vectors.
    """
    mesh = space.mesh
    nc, nq, dim = mesh.num_cells, qpts.shape[0], mesh.dim
    if callable(coeff):
        v = mesh.vertices[mesh.cells]
        origin = v[:, 0, :]
        edges = v[:, 1:, :] - v[:, :1, :]
        phys = origin[:, None, :] + np.einsum("qd,cde->cqe", qpts, edges)
        vals = np.asarray(coeff(phys.reshape(-1, dim)), dtype=np.float64)
        if vals.shape != (nc * nq, dim):
            raise FEMError(f"{name} callable returned shape {vals.shape}, "
                           f"expected ({nc * nq}, {dim})")
        return vals.reshape(nc, nq, dim)
    arr = np.asarray(coeff, dtype=np.float64)
    if arr.shape == (dim,):
        return np.broadcast_to(arr, (nc, nq, dim)).copy()
    if arr.shape == (nc, dim):
        return np.repeat(arr[:, None, :], nq, axis=1)
    raise FEMError(f"{name} must be a length-{dim} vector, a per-cell "
                   f"({nc}, {dim}) array, or a callable; got shape "
                   f"{arr.shape}")


def _physical_gradients(space: FunctionSpace, qpts: np.ndarray):
    """Per-cell physical basis gradients ``(nc, nq, n_loc, dim)`` and the
    quadrature scaling ``w_q |det J|`` of shape ``(nc, nq)``."""
    _, Jinv, detJ = _cell_geometry(space)
    gref = space.ref.eval_basis_grads(qpts)       # (nq, n_loc, dim)
    # physical grad = J^{-T} @ ref grad  =>  g_phys[d] = sum_e Jinv[e, d] gref[e]
    gphys = np.einsum("ced,qie->cqid", Jinv, gref)
    return gphys, detJ


def _scatter(space: FunctionSpace, Ke: np.ndarray, *, vector: bool) -> sp.csr_matrix:
    """Scatter batched element matrices ``(nc, nd, nd)`` to global CSR."""
    dofs = space.cell_dofs if vector else space.cell_scalar_dofs
    nc, nd = dofs.shape
    rows = np.repeat(dofs, nd, axis=1).ravel()
    cols = np.tile(dofs, (1, nd)).ravel()
    n = space.num_dofs if vector else space.num_scalar_dofs
    A = sp.coo_matrix((Ke.ravel(), (rows, cols)), shape=(n, n))
    return A.tocsr()


# ----------------------------------------------------------------------
# Bilinear forms
# ----------------------------------------------------------------------

def assemble_stiffness(space: FunctionSpace, kappa=None,
                       quad_degree: int | None = None) -> sp.csr_matrix:
    """Heterogeneous diffusion stiffness matrix ``∫ κ ∇u·∇v``.

    *space* must be scalar (ncomp == 1).  ``κ`` as per
    :func:`_coefficient_at_quadrature`.
    """
    if space.ncomp != 1:
        raise FEMError("assemble_stiffness requires a scalar space; "
                       "use assemble_elasticity for vector problems")
    k = space.degree
    qd = quad_degree if quad_degree is not None else max(0, 2 * (k - 1))
    qpts, qw = simplex_quadrature(space.mesh.dim, qd)
    gphys, detJ = _physical_gradients(space, qpts)
    kap = _coefficient_at_quadrature(kappa, space, qpts, "kappa")
    scale = kap * (qw[None, :] * detJ[:, None])   # (nc, nq)
    Ke = np.einsum("cq,cqid,cqjd->cij", scale, gphys, gphys, optimize=True)
    return _scatter(space, Ke, vector=False)


def assemble_mass(space: FunctionSpace, rho=None,
                  quad_degree: int | None = None) -> sp.csr_matrix:
    """Mass matrix ``∫ ρ u v`` (scalar or vector; vector mass is block
    diagonal per component)."""
    k = space.degree
    qd = quad_degree if quad_degree is not None else 2 * k
    qpts, qw = simplex_quadrature(space.mesh.dim, qd)
    _, _, detJ = _cell_geometry(space)
    phi = space.ref.eval_basis(qpts)              # (nq, n_loc)
    rho_q = _coefficient_at_quadrature(rho, space, qpts, "rho")
    scale = rho_q * (qw[None, :] * detJ[:, None])
    Me_scalar = np.einsum("cq,qi,qj->cij", scale, phi, phi, optimize=True)
    if space.ncomp == 1:
        return _scatter(space, Me_scalar, vector=False)
    # expand to interleaved vector layout: M[i*nc+a, j*nc+b] = delta_ab * m_ij
    nc_cells, n_loc, _ = Me_scalar.shape
    ncmp = space.ncomp
    nd = n_loc * ncmp
    Me = np.zeros((nc_cells, nd, nd))
    for a in range(ncmp):
        Me[:, a::ncmp, a::ncmp] = Me_scalar
    return _scatter(space, Me, vector=True)


def assemble_elasticity(space: FunctionSpace, lam, mu,
                        quad_degree: int | None = None) -> sp.csr_matrix:
    """Linear elasticity stiffness ``∫ λ (∇·u)(∇·v) + 2 μ ε(u):ε(v)``.

    *space* must have ``ncomp == mesh.dim``.  ``lam``/``mu`` are the Lamé
    coefficient fields (scalar, per-cell array or callable).

    For basis functions ``u = φ_i e_α``, ``v = φ_j e_β``::

        2 ε(u):ε(v) = ∂_β φ_i ∂_α φ_j + δ_αβ ∇φ_i·∇φ_j
        (∇·u)(∇·v) = ∂_α φ_i ∂_β φ_j
    """
    dim = space.mesh.dim
    if space.ncomp != dim:
        raise FEMError(f"elasticity requires ncomp == dim == {dim}, "
                       f"got ncomp={space.ncomp}")
    k = space.degree
    qd = quad_degree if quad_degree is not None else max(0, 2 * (k - 1))
    qpts, qw = simplex_quadrature(dim, qd)
    gphys, detJ = _physical_gradients(space, qpts)
    lam_q = _coefficient_at_quadrature(lam, space, qpts, "lam")
    mu_q = _coefficient_at_quadrature(mu, space, qpts, "mu")
    wdet = qw[None, :] * detJ[:, None]
    lam_s = lam_q * wdet
    mu_s = mu_q * wdet

    # λ (∇·u)(∇·v):  K[iα, jβ] += λ G_iα G_jβ
    K_lam = np.einsum("cq,cqia,cqjb->ciajb", lam_s, gphys, gphys,
                      optimize=True)
    # 2 μ ε:ε, part 1: μ ∂_β φ_i ∂_α φ_j
    K_mu1 = np.einsum("cq,cqib,cqja->ciajb", mu_s, gphys, gphys,
                      optimize=True)
    # part 2: μ δ_αβ ∇φ_i·∇φ_j
    gdot = np.einsum("cq,cqid,cqjd->cij", mu_s, gphys, gphys, optimize=True)
    eye = np.eye(dim)
    K_mu2 = np.einsum("cij,ab->ciajb", gdot, eye, optimize=True)

    Ke = K_lam + K_mu1 + K_mu2
    nc_cells, n_loc = Ke.shape[0], Ke.shape[1]
    nd = n_loc * dim
    return _scatter(space, Ke.reshape(nc_cells, nd, nd), vector=True)


def assemble_advection(space: FunctionSpace, beta,
                       quad_degree: int | None = None) -> sp.csr_matrix:
    """Advection matrix ``∫ (β·∇u) v`` — the nonsymmetric half of the
    convection–diffusion operator.

    *space* must be scalar.  ``β`` as per
    :func:`_vector_coefficient_at_quadrature`.  For constant ``β`` and
    homogeneous Dirichlet conditions on the whole boundary, the
    restriction of this matrix to the free dofs is exactly
    skew-symmetric (integration by parts with ∇·β = 0).
    """
    if space.ncomp != 1:
        raise FEMError("assemble_advection requires a scalar space")
    k = space.degree
    qd = quad_degree if quad_degree is not None else max(0, 2 * k - 1)
    qpts, qw = simplex_quadrature(space.mesh.dim, qd)
    gphys, detJ = _physical_gradients(space, qpts)
    phi = space.ref.eval_basis(qpts)              # (nq, n_loc)
    beta_q = _vector_coefficient_at_quadrature(beta, space, qpts, "beta")
    wdet = qw[None, :] * detJ[:, None]            # (nc, nq)
    # rows i = test function v, cols j = trial function u
    bgrad = np.einsum("cqd,cqjd->cqj", beta_q, gphys, optimize=True)
    Ke = np.einsum("cq,qi,cqj->cij", wdet, phi, bgrad, optimize=True)
    return _scatter(space, Ke, vector=False)


def assemble_streamline_diffusion(space: FunctionSpace, beta, tau,
                                  quad_degree: int | None = None
                                  ) -> sp.csr_matrix:
    """SUPG stabilisation matrix ``∫ τ (β·∇u)(β·∇v)`` with a per-cell
    stabilisation parameter ``τ`` (symmetric positive semi-definite)."""
    if space.ncomp != 1:
        raise FEMError("assemble_streamline_diffusion requires a "
                       "scalar space")
    k = space.degree
    qd = quad_degree if quad_degree is not None else max(0, 2 * k - 1)
    qpts, qw = simplex_quadrature(space.mesh.dim, qd)
    gphys, detJ = _physical_gradients(space, qpts)
    beta_q = _vector_coefficient_at_quadrature(beta, space, qpts, "beta")
    tau_c = np.asarray(tau, dtype=np.float64)
    if tau_c.ndim == 0:
        tau_c = np.full(space.mesh.num_cells, float(tau_c))
    if tau_c.shape != (space.mesh.num_cells,):
        raise FEMError(f"tau must be scalar or per-cell array of length "
                       f"{space.mesh.num_cells}, got shape {tau_c.shape}")
    wdet = qw[None, :] * detJ[:, None]
    bgrad = np.einsum("cqd,cqid->cqi", beta_q, gphys, optimize=True)
    scale = tau_c[:, None] * wdet                 # (nc, nq)
    Ke = np.einsum("cq,cqi,cqj->cij", scale, bgrad, bgrad, optimize=True)
    return _scatter(space, Ke, vector=False)


def assemble_streamline_load(space: FunctionSpace, beta, tau, f,
                             quad_degree: int | None = None) -> np.ndarray:
    """SUPG right-hand-side correction ``∫ τ f (β·∇v)`` — keeps the
    stabilised discretisation consistent for the exact solution."""
    if space.ncomp != 1:
        raise FEMError("assemble_streamline_load requires a scalar space")
    k = space.degree
    qd = quad_degree if quad_degree is not None else max(0, 2 * k - 1)
    qpts, qw = simplex_quadrature(space.mesh.dim, qd)
    gphys, detJ = _physical_gradients(space, qpts)
    beta_q = _vector_coefficient_at_quadrature(beta, space, qpts, "beta")
    fq = _coefficient_at_quadrature(f, space, qpts, "f")
    tau_c = np.asarray(tau, dtype=np.float64)
    if tau_c.ndim == 0:
        tau_c = np.full(space.mesh.num_cells, float(tau_c))
    wdet = qw[None, :] * detJ[:, None]
    bgrad = np.einsum("cqd,cqid->cqi", beta_q, gphys, optimize=True)
    be = np.einsum("c,cq,cq,cqi->ci", tau_c, wdet, fq, bgrad, optimize=True)
    b = np.zeros(space.num_dofs)
    np.add.at(b, space.cell_scalar_dofs.ravel(), be.ravel())
    return b


# ----------------------------------------------------------------------
# Linear forms
# ----------------------------------------------------------------------

def assemble_load(space: FunctionSpace, f, quad_degree: int | None = None) -> np.ndarray:
    """Load vector ``(f, v)``.

    *f* is a callable mapping ``(n, dim)`` points to values (scalar spaces)
    or to ``(n, ncomp)`` vectors, a constant scalar, or a constant vector of
    length ``ncomp``.
    """
    mesh = space.mesh
    k = space.degree
    qd = quad_degree if quad_degree is not None else 2 * k
    qpts, qw = simplex_quadrature(mesh.dim, qd)
    _, _, detJ = _cell_geometry(space)
    phi = space.ref.eval_basis(qpts)              # (nq, n_loc)
    nc, nq = mesh.num_cells, qpts.shape[0]

    if callable(f):
        v = mesh.vertices[mesh.cells]
        origin = v[:, 0, :]
        edges = v[:, 1:, :] - v[:, :1, :]
        phys = origin[:, None, :] + np.einsum("qd,cde->cqe", qpts, edges)
        vals = np.asarray(f(phys.reshape(-1, mesh.dim)), dtype=np.float64)
        expect = (nc * nq,) if space.ncomp == 1 else (nc * nq, space.ncomp)
        if vals.shape != expect:
            raise FEMError(f"load callable returned {vals.shape}, "
                           f"expected {expect}")
        fq = vals.reshape((nc, nq) if space.ncomp == 1 else (nc, nq, space.ncomp))
    else:
        arr = np.asarray(f, dtype=np.float64)
        if space.ncomp == 1:
            fq = np.full((nc, nq), float(arr))
        else:
            if arr.shape != (space.ncomp,):
                raise FEMError(f"constant vector load must have shape "
                               f"({space.ncomp},), got {arr.shape}")
            fq = np.broadcast_to(arr, (nc, nq, space.ncomp)).copy()

    wdet = qw[None, :] * detJ[:, None]            # (nc, nq)
    b = np.zeros(space.num_dofs)
    if space.ncomp == 1:
        be = np.einsum("cq,cq,qi->ci", wdet, fq, phi, optimize=True)
        np.add.at(b, space.cell_scalar_dofs.ravel(), be.ravel())
    else:
        be = np.einsum("cq,cqa,qi->cia", wdet, fq, phi, optimize=True)
        nd = be.shape[1] * be.shape[2]
        np.add.at(b, space.cell_dofs.ravel(), be.reshape(nc, nd).ravel())
    return b


# ----------------------------------------------------------------------
# Dirichlet boundary conditions
# ----------------------------------------------------------------------

def apply_dirichlet(A: sp.csr_matrix, b: np.ndarray, dofs, values=0.0):
    """Symmetric elimination of Dirichlet dofs.

    Returns ``(A_bc, b_bc)`` where constrained rows/columns are zeroed, the
    diagonal is set to 1 and the right-hand side carries the boundary
    values (columns are lifted into *b* first, preserving symmetry).
    """
    dofs = np.asarray(dofs, dtype=np.int64)
    n = A.shape[0]
    vals = np.zeros(n)
    vals[dofs] = values
    A = A.tocsr()
    b = b - A @ vals
    mask = np.zeros(n, dtype=bool)
    mask[dofs] = True
    keep = ~mask
    # zero rows and columns via diagonal projector, then restore unit diag
    P = sp.diags(keep.astype(np.float64))
    A_bc = (P @ A @ P).tolil()
    A_bc[dofs, dofs] = 1.0
    b = b.copy()
    b[dofs] = vals[dofs]
    return A_bc.tocsr(), b


def restrict_to_free(A: sp.csr_matrix, b: np.ndarray, dofs):
    """Reduce the system to the free (non-Dirichlet, homogeneous) dofs.

    Returns ``(A_ff, b_f, free)`` — the paper's solvers all operate on the
    reduced SPD system.
    """
    dofs = np.asarray(dofs, dtype=np.int64)
    n = A.shape[0]
    mask = np.ones(n, dtype=bool)
    mask[dofs] = False
    free = np.flatnonzero(mask)
    A_ff = A.tocsr()[free][:, free].tocsr()
    return A_ff, b[free], free
