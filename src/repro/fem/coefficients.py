"""Heterogeneous coefficient fields from the paper's test problems.

* Figure 9: diffusivity κ on the unit square/cube with *channels and
  inclusions*, varying from 1 to 3·10⁶.
* Figure 6: two-phase elastic moduli, (E₁, ν₁) = (2·10¹¹, 0.25) and
  (E₂, ν₂) = (10⁷, 0.45), laid out in stripes across the geometry.

Fields are returned per cell (piecewise constant), which is how strong
heterogeneity enters real reservoir/composite models and what makes the
one-level method stall.
"""

from __future__ import annotations

import numpy as np

from ..mesh import SimplexMesh

#: the paper's elastic phases
HARD_PHASE = (2.0e11, 0.25)   # (E, nu): steel-like
SOFT_PHASE = (1.0e7, 0.45)    # rubber-like

#: the paper's diffusivity contrast
KAPPA_MIN = 1.0
KAPPA_MAX = 3.0e6


def channels_and_inclusions(mesh: SimplexMesh, *, n_channels: int = 4,
                            n_inclusions: int = 8,
                            kappa_min: float = KAPPA_MIN,
                            kappa_max: float = KAPPA_MAX,
                            seed: int = 0) -> np.ndarray:
    """Per-cell diffusivity reproducing the structure of figure 9.

    Horizontal high-diffusivity channels crossing the whole domain plus
    randomly placed spherical inclusions, against a κ = *kappa_min*
    background.  Deterministic for a given *seed*.
    """
    c = mesh.cell_centroids()
    lo = mesh.vertices.min(axis=0)
    hi = mesh.vertices.max(axis=0)
    span = hi - lo
    y = (c[:, 1] - lo[1]) / span[1]
    kappa = np.full(mesh.num_cells, kappa_min)

    # channels: thin horizontal bands at fixed heights
    width = 0.45 / max(1, n_channels) / 2
    for i in range(n_channels):
        yc = (i + 0.5) / n_channels
        band = np.abs(y - yc) < width
        kappa[band] = kappa_max * (0.5 + 0.5 * (i + 1) / n_channels)

    # inclusions: balls of intermediate diffusivity
    rng = np.random.default_rng(seed)
    radius = 0.06 * float(span.max())
    for _ in range(n_inclusions):
        center = lo + rng.random(mesh.dim) * span
        d = np.linalg.norm(c - center, axis=1)
        level = kappa_max * 10.0 ** (-float(rng.integers(0, 3)))
        kappa[d < radius] = level
    return kappa


def layered_elasticity(mesh: SimplexMesh, *, n_layers: int = 6,
                       axis: int = 0,
                       hard=HARD_PHASE,
                       soft=SOFT_PHASE) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell Lamé fields (λ, μ) for the striped two-phase solid of
    figure 6: alternating hard/soft layers along *axis*."""
    c = mesh.cell_centroids()
    lo = mesh.vertices.min(axis=0)[axis]
    hi = mesh.vertices.max(axis=0)[axis]
    t = (c[:, axis] - lo) / max(hi - lo, 1e-300)
    layer = np.minimum((t * n_layers).astype(np.int64), n_layers - 1)
    is_hard = layer % 2 == 0
    E = np.where(is_hard, hard[0], soft[0])
    nu = np.where(is_hard, hard[1], soft[1])
    return lame_parameters(E, nu)


def lame_parameters(E, nu) -> tuple[np.ndarray, np.ndarray]:
    """Convert Young's modulus / Poisson's ratio to Lamé (λ, μ).

    μ = E / (2 (1 + ν)),  λ = E ν / ((1 + ν)(1 − 2ν))  — the paper's
    definitions.
    """
    E = np.asarray(E, dtype=np.float64)
    nu = np.asarray(nu, dtype=np.float64)
    mu = E / (2.0 * (1.0 + nu))
    lam = E * nu / ((1.0 + nu) * (1.0 - 2.0 * nu))
    return lam, mu


def constant_field(mesh: SimplexMesh, value: float) -> np.ndarray:
    """Per-cell constant coefficient (homogeneous baseline)."""
    return np.full(mesh.num_cells, float(value))
