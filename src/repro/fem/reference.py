"""Lagrange reference elements on simplices.

Pk elements are built from the equispaced lattice of barycentric nodes on
the reference simplex, with basis coefficients obtained by inverting the
monomial Vandermonde matrix at those nodes.  This covers every element the
paper uses: P2/P3/P4 triangles and P2 tetrahedra (we support up to P4 in
2D and P3 in 3D).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product

import numpy as np

from ..common.errors import FEMError

#: highest supported polynomial degree per dimension
MAX_DEGREE = {2: 4, 3: 3}


def lattice_barycentric(dim: int, degree: int) -> np.ndarray:
    """Integer barycentric lattice coordinates of the Pk nodes.

    Returns an ``(n_loc, dim + 1)`` int array, each row summing to
    *degree*; node coordinates are ``row / degree`` in barycentric form.
    The ordering is deterministic: vertices first, then increasing
    lexicographic order of the remaining lattice points.
    """
    pts = []
    # exponents over the dim "free" coordinates; bary[0] = degree - sum
    for rest in product(range(degree + 1), repeat=dim):
        if sum(rest) <= degree:
            pts.append((degree - sum(rest),) + rest)
    pts = np.array(pts, dtype=np.int64)
    # vertices = rows with a single nonzero equal to degree; list them first
    is_vertex = (pts == degree).any(axis=1)
    vertex_rows = []
    for v in range(dim + 1):
        target = np.zeros(dim + 1, dtype=np.int64)
        target[v] = degree
        vertex_rows.append(np.flatnonzero((pts == target).all(axis=1))[0])
    others = [i for i in range(len(pts)) if not is_vertex[i]]
    order = vertex_rows + others
    return pts[order]


def _monomial_exponents(dim: int, degree: int) -> np.ndarray:
    """Exponent multi-indices of the monomial basis of P_degree in R^dim."""
    exps = [e for e in product(range(degree + 1), repeat=dim)
            if sum(e) <= degree]
    exps.sort(key=lambda e: (sum(e), e))
    return np.array(exps, dtype=np.int64)


def _eval_monomials(exps: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Evaluate monomials x^e at points: returns (n_pts, n_monomials)."""
    n_pts = pts.shape[0]
    out = np.ones((n_pts, exps.shape[0]))
    for j, e in enumerate(exps):
        for d, p in enumerate(e):
            if p:
                out[:, j] *= pts[:, d] ** p
    return out


def _eval_monomial_grads(exps: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Gradients of monomials: returns (n_pts, n_monomials, dim)."""
    n_pts, dim = pts.shape
    out = np.zeros((n_pts, exps.shape[0], dim))
    for j, e in enumerate(exps):
        for k in range(dim):
            if e[k] == 0:
                continue
            term = np.full(n_pts, float(e[k]))
            for d, p in enumerate(e):
                pw = p - 1 if d == k else p
                if pw:
                    term *= pts[:, d] ** pw
            out[:, j, k] = term
    return out


class ReferenceSimplex:
    """Pk Lagrange element on the unit reference simplex.

    Attributes
    ----------
    nodes:
        ``(n_loc, dim)`` reference coordinates of the Lagrange nodes.
    nodes_bary:
        ``(n_loc, dim + 1)`` integer lattice barycentric coordinates.
    """

    def __init__(self, dim: int, degree: int):
        if dim not in (2, 3):
            raise FEMError(f"dim must be 2 or 3, got {dim}")
        if not (1 <= degree <= MAX_DEGREE[dim]):
            raise FEMError(
                f"degree {degree} unsupported in {dim}D "
                f"(1..{MAX_DEGREE[dim]})")
        self.dim = dim
        self.degree = degree
        self.nodes_bary = lattice_barycentric(dim, degree)
        # reference coordinates: drop the 0th barycentric coordinate
        self.nodes = self.nodes_bary[:, 1:].astype(np.float64) / degree
        self._exps = _monomial_exponents(dim, degree)
        vander = _eval_monomials(self._exps, self.nodes)
        self._coeffs = np.linalg.inv(vander)  # column j = coeffs of phi_j
        resid = np.abs(vander @ self._coeffs - np.eye(vander.shape[0])).max()
        if resid > 1e-8:
            raise FEMError(  # pragma: no cover - guards future degrees
                f"ill-conditioned Lagrange node set (residual {resid:.2e})")

    @property
    def n_nodes(self) -> int:
        return int(self.nodes.shape[0])

    def eval_basis(self, pts: np.ndarray) -> np.ndarray:
        """Basis values: ``(n_pts, n_loc)``, entry (q, i) = phi_i(pts[q])."""
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        return _eval_monomials(self._exps, pts) @ self._coeffs

    def eval_basis_grads(self, pts: np.ndarray) -> np.ndarray:
        """Reference gradients: ``(n_pts, n_loc, dim)``."""
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        mono_grads = _eval_monomial_grads(self._exps, pts)
        return np.einsum("qmd,mi->qid", mono_grads, self._coeffs)


@lru_cache(maxsize=None)
def reference_simplex(dim: int, degree: int) -> ReferenceSimplex:
    """Cached accessor: reference elements are immutable and reusable."""
    return ReferenceSimplex(dim, degree)
