"""Method-of-manufactured-solutions convergence studies.

A release-quality FEM layer ships a way to *prove* its discretisation
orders.  :func:`convergence_study` runs a refinement sweep against a
manufactured solution, measures L² errors and fits the observed rate —
the tool behind the assembly tests and a user-facing sanity check for
custom forms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from ..common.asciiplot import table
from ..common.errors import FEMError
from .assembly import assemble_load, assemble_stiffness, restrict_to_free
from .postprocess import l2_norm
from .space import FunctionSpace


@dataclass
class ConvergenceStudy:
    """Result of a refinement sweep."""

    hs: np.ndarray
    errors: np.ndarray
    rate: float
    degree: int

    @property
    def expected_rate(self) -> float:
        return float(self.degree + 1)       # L² rate of Pk Lagrange

    def is_optimal(self, slack: float = 0.4) -> bool:
        return self.rate >= self.expected_rate - slack

    def render(self) -> str:
        rows = [[f"{h:.4f}", f"{e:.3e}"]
                for h, e in zip(self.hs, self.errors)]
        txt = table(["h", "L2 error"], rows,
                    title=f"P{self.degree} convergence study")
        return (f"{txt}\nfitted rate {self.rate:.2f} "
                f"(optimal {self.expected_rate:.0f})")


def convergence_study(meshes, degree: int, exact, rhs,
                      *, kappa=None) -> ConvergenceStudy:
    """Solve −∇·(κ∇u) = rhs with u = exact on ∂Ω over a mesh sequence.

    Parameters
    ----------
    meshes:
        Increasingly fine meshes (e.g. successive
        :func:`~repro.mesh.refine_uniform` levels).
    exact, rhs:
        Callables on ``(n, dim)`` coordinate arrays: the manufactured
        solution and the matching right-hand side.
    """
    meshes = list(meshes)
    if len(meshes) < 2:
        raise FEMError("convergence_study needs at least two meshes")
    hs, errors = [], []
    for mesh in meshes:
        V = FunctionSpace(mesh, degree)
        A = assemble_stiffness(V, kappa)
        b = assemble_load(V, rhs)
        g = V.interpolate(exact)
        bd = V.boundary_dofs()
        # lift the (generally nonzero) boundary values of the exact sol.
        b = b - A @ _boundary_lift(V, g, bd)
        Aff, bf, free = restrict_to_free(A, b, bd)
        u = np.zeros(V.num_dofs)
        u[free] = spla.spsolve(Aff.tocsc(), bf)
        u[bd] = g[bd]
        errors.append(l2_norm(V, u - g))
        hs.append(mesh.h_max())
    hs = np.asarray(hs)
    errors = np.maximum(np.asarray(errors), 1e-300)
    rate = float(np.polyfit(np.log(hs), np.log(errors), 1)[0])
    return ConvergenceStudy(hs=hs, errors=errors, rate=rate, degree=degree)


def _boundary_lift(V: FunctionSpace, g: np.ndarray,
                   bd: np.ndarray) -> np.ndarray:
    lift = np.zeros(V.num_dofs)
    lift[bd] = g[bd]
    return lift
