"""Problem forms: restartable assembly recipes for global and local meshes.

Domain decomposition assembles the *same* bilinear form on many meshes —
the global mesh (only in tests/baselines), each T_i^{δ+1} (Dirichlet
matrices via trimming) and each T_i^δ (Neumann matrices for GenEO).  A
:class:`Form` captures the variational formulation plus its per-cell
coefficient fields, and knows how to restrict the coefficients when
assembling on a submesh (via the submesh's parent ``cell_map``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..common.errors import FEMError
from ..mesh import SimplexMesh
from .assembly import assemble_elasticity, assemble_load, assemble_stiffness
from .space import FunctionSpace


def _restrict(coeff, cell_map):
    """Restrict a coefficient to submesh cells (per-cell arrays only)."""
    if coeff is None or np.isscalar(coeff) or callable(coeff):
        return coeff
    arr = np.asarray(coeff)
    if cell_map is None:
        return arr
    return arr[cell_map]


class Form:
    """Abstract variational form; see :class:`DiffusionForm` and
    :class:`ElasticityForm`."""

    degree: int
    ncomp: int

    def make_space(self, mesh: SimplexMesh) -> FunctionSpace:
        return FunctionSpace(mesh, self.degree, self.ncomp)

    def assemble_matrix(self, space: FunctionSpace,
                        cell_map=None) -> sp.csr_matrix:  # pragma: no cover
        raise NotImplementedError

    def assemble_rhs(self, space: FunctionSpace,
                     cell_map=None) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


@dataclass
class DiffusionForm(Form):
    """``a(u, v) = ∫ κ ∇u·∇v``, ``l(v) = ∫ f v`` — the paper's weak-scaling
    problem (Darcy / porous-media flow, fig. 9).

    ``kappa`` may be a scalar, per-cell array on the *parent* mesh, or a
    callable; ``f`` a scalar or callable.
    """

    degree: int
    kappa: object = None
    f: object = 1.0

    ncomp: int = 1

    def assemble_matrix(self, space, cell_map=None):
        if space.ncomp != 1:
            raise FEMError("DiffusionForm requires a scalar space")
        return assemble_stiffness(space, _restrict(self.kappa, cell_map))

    def assemble_rhs(self, space, cell_map=None):
        return assemble_load(space, self.f)


@dataclass
class ElasticityForm(Form):
    """``a(u, v) = ∫ λ (∇·u)(∇·v) + 2 μ ε(u):ε(v)`` with body force *f* —
    the paper's strong-scaling problem (heterogeneous linear elasticity,
    fig. 6).

    ``lam``/``mu`` are the Lamé fields; *f* defaults to gravity along the
    last coordinate axis.
    """

    degree: int
    lam: object = None
    mu: object = None
    f: object = None

    def __post_init__(self):
        self.ncomp = None  # resolved per mesh in make_space

    def make_space(self, mesh: SimplexMesh) -> FunctionSpace:
        return FunctionSpace(mesh, self.degree, mesh.dim)

    def assemble_matrix(self, space, cell_map=None):
        if space.ncomp != space.mesh.dim:
            raise FEMError("ElasticityForm requires ncomp == dim")
        return assemble_elasticity(space, _restrict(self.lam, cell_map),
                                   _restrict(self.mu, cell_map))

    def assemble_rhs(self, space, cell_map=None):
        f = self.f
        if f is None:
            f = np.zeros(space.mesh.dim)
            f[-1] = -9.81  # gravity, the paper's body force
        return assemble_load(space, f)
