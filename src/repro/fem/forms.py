"""Problem forms: restartable assembly recipes for global and local meshes.

Domain decomposition assembles the *same* bilinear form on many meshes —
the global mesh (only in tests/baselines), each T_i^{δ+1} (Dirichlet
matrices via trimming) and each T_i^δ (Neumann matrices for GenEO).  A
:class:`Form` captures the variational formulation plus its per-cell
coefficient fields, and knows how to restrict the coefficients when
assembling on a submesh (via the submesh's parent ``cell_map``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..common.errors import FEMError
from ..mesh import SimplexMesh
from .assembly import (
    assemble_advection,
    assemble_elasticity,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
    assemble_streamline_diffusion,
    assemble_streamline_load,
)
from .space import FunctionSpace


def _restrict(coeff, cell_map):
    """Restrict a coefficient to submesh cells (per-cell arrays only)."""
    if coeff is None or np.isscalar(coeff) or callable(coeff):
        return coeff
    arr = np.asarray(coeff)
    if cell_map is None:
        return arr
    return arr[cell_map]


def _restrict_vector(coeff, cell_map):
    """Restrict a vector coefficient: only per-cell ``(nc, dim)`` arrays
    are indexed — constant vectors and callables pass through."""
    if coeff is None or callable(coeff) or cell_map is None:
        return coeff
    arr = np.asarray(coeff)
    if arr.ndim == 2:
        return arr[cell_map]
    return arr


class Form:
    """Abstract variational form; see :class:`DiffusionForm`,
    :class:`ElasticityForm`, :class:`ConvectionDiffusionForm` and
    :class:`HelmholtzForm`."""

    degree: int
    ncomp: int
    #: ``a(u, v) == a(v, u)`` — drives symmetry-aware dispatch downstream
    symmetric: bool = True
    #: restricted free-dof operator is symmetric positive definite —
    #: gates the cg family, deflated-cg and the LDL kernel fast paths
    spd: bool = True

    def make_space(self, mesh: SimplexMesh) -> FunctionSpace:
        return FunctionSpace(mesh, self.degree, self.ncomp)

    def assemble_matrix(self, space: FunctionSpace,
                        cell_map=None) -> sp.csr_matrix:  # pragma: no cover
        raise NotImplementedError

    def assemble_rhs(self, space: FunctionSpace,
                     cell_map=None) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def assemble_geneo_matrix(self, space: FunctionSpace,
                              cell_map=None) -> sp.csr_matrix | None:
        """SPD surrogate for the extended-GenEO pencil (Nataf–Parolin).

        Nonsymmetric/indefinite forms override this with the symmetric
        positive (semi-)definite part of their operator — the principal
        elliptic term — so the coarse eigensolve runs on a well-posed
        symmetric pencil.  ``None`` (the default, correct for SPD forms)
        means "use the operator itself".
        """
        return None


@dataclass
class DiffusionForm(Form):
    """``a(u, v) = ∫ κ ∇u·∇v``, ``l(v) = ∫ f v`` — the paper's weak-scaling
    problem (Darcy / porous-media flow, fig. 9).

    ``kappa`` may be a scalar, per-cell array on the *parent* mesh, or a
    callable; ``f`` a scalar or callable.
    """

    degree: int
    kappa: object = None
    f: object = 1.0

    ncomp: int = 1

    def assemble_matrix(self, space, cell_map=None):
        if space.ncomp != 1:
            raise FEMError("DiffusionForm requires a scalar space")
        return assemble_stiffness(space, _restrict(self.kappa, cell_map))

    def assemble_rhs(self, space, cell_map=None):
        return assemble_load(space, self.f)


@dataclass
class ElasticityForm(Form):
    """``a(u, v) = ∫ λ (∇·u)(∇·v) + 2 μ ε(u):ε(v)`` with body force *f* —
    the paper's strong-scaling problem (heterogeneous linear elasticity,
    fig. 6).

    ``lam``/``mu`` are the Lamé fields; *f* defaults to gravity along the
    last coordinate axis.
    """

    degree: int
    lam: object = None
    mu: object = None
    f: object = None

    def __post_init__(self):
        self.ncomp = None  # resolved per mesh in make_space

    def make_space(self, mesh: SimplexMesh) -> FunctionSpace:
        return FunctionSpace(mesh, self.degree, mesh.dim)

    def assemble_matrix(self, space, cell_map=None):
        if space.ncomp != space.mesh.dim:
            raise FEMError("ElasticityForm requires ncomp == dim")
        return assemble_elasticity(space, _restrict(self.lam, cell_map),
                                   _restrict(self.mu, cell_map))

    def assemble_rhs(self, space, cell_map=None):
        f = self.f
        if f is None:
            f = np.zeros(space.mesh.dim)
            f[-1] = -9.81  # gravity, the paper's body force
        return assemble_load(space, f)


def _cell_values(coeff, mesh, name: str, default: float = 1.0) -> np.ndarray:
    """Per-cell scalar values of *coeff* (centroid samples for callables)."""
    if coeff is None:
        return np.full(mesh.num_cells, default)
    if callable(coeff):
        return np.asarray(coeff(mesh.cell_centroids()), dtype=np.float64)
    arr = np.asarray(coeff, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(mesh.num_cells, float(arr))
    if arr.shape == (mesh.num_cells,):
        return arr
    raise FEMError(f"{name} must be None, scalar, per-cell array or "
                   f"callable; got shape {arr.shape}")


def _cell_vectors(coeff, mesh, name: str) -> np.ndarray:
    """Per-cell vector values of *coeff*, shape ``(nc, dim)``."""
    if callable(coeff):
        return np.asarray(coeff(mesh.cell_centroids()), dtype=np.float64)
    arr = np.asarray(coeff, dtype=np.float64)
    if arr.shape == (mesh.dim,):
        return np.broadcast_to(arr, (mesh.num_cells, mesh.dim)).copy()
    if arr.shape == (mesh.num_cells, mesh.dim):
        return arr
    raise FEMError(f"{name} must be a length-{mesh.dim} vector, per-cell "
                   f"({mesh.num_cells}, {mesh.dim}) array or callable; "
                   f"got shape {arr.shape}")


def supg_tau(mesh, beta, kappa) -> np.ndarray:
    """Per-cell SUPG stabilisation parameter.

    ``τ_c = h_c/(2|β_c|) · (coth(Pe_c) − 1/Pe_c)`` with the cell Péclet
    number ``Pe_c = |β_c| h_c / (2 κ_c)`` — the classical optimal choice
    for linear elements (Brooks & Hughes).  Vanishing advection gives
    ``τ = 0`` (the diffusive limit of the formula).
    """
    h = mesh.cell_diameters()
    bmag = np.linalg.norm(_cell_vectors(beta, mesh, "beta"), axis=1)
    kap = _cell_values(kappa, mesh, "kappa")
    with np.errstate(divide="ignore", invalid="ignore"):
        pe = bmag * h / (2.0 * kap)
        # coth(Pe) - 1/Pe, series Pe/3 below the cancellation threshold
        xi = np.where(pe > 1e-6, 1.0 / np.tanh(np.maximum(pe, 1e-300))
                      - 1.0 / np.maximum(pe, 1e-300), pe / 3.0)
        tau = np.where(bmag > 0.0, h / (2.0 * np.maximum(bmag, 1e-300)) * xi,
                       0.0)
    return tau


@dataclass
class ConvectionDiffusionForm(Form):
    """``a(u, v) = ∫ κ ∇u·∇v + (β·∇u) v [+ τ (β·∇u)(β·∇v)]`` — steady
    convection–diffusion with SUPG (streamline-upwind Petrov–Galerkin)
    stabilisation; the nonsymmetric workload of ROADMAP item 2.

    ``kappa`` (diffusivity) as in :class:`DiffusionForm` — heterogeneous
    per-cell fields supported; ``beta`` is the advecting velocity
    (constant vector, per-cell ``(nc, dim)`` array, or callable);
    ``stabilization`` is ``"supg"`` (default) or ``"none"``.  The cell
    Péclet number ``|β| h / (2κ)`` controls how nonsymmetric the
    operator is.
    """

    degree: int
    kappa: object = None
    beta: object = None
    f: object = 1.0
    stabilization: str = "supg"

    ncomp: int = 1
    symmetric: bool = False
    spd: bool = False

    def __post_init__(self):
        if self.stabilization not in ("supg", "none"):
            raise FEMError(f"unknown stabilization "
                           f"{self.stabilization!r}; use 'supg' or 'none'")
        if self.beta is None:
            raise FEMError("ConvectionDiffusionForm requires a velocity "
                           "field beta")

    def _tau(self, mesh, beta, kappa):
        if self.stabilization != "supg":
            return None
        return supg_tau(mesh, beta, kappa)

    def assemble_matrix(self, space, cell_map=None):
        if space.ncomp != 1:
            raise FEMError("ConvectionDiffusionForm requires a scalar space")
        kappa = _restrict(self.kappa, cell_map)
        beta = _restrict_vector(self.beta, cell_map)
        A = assemble_stiffness(space, kappa)
        A = A + assemble_advection(space, beta)
        tau = self._tau(space.mesh, beta, kappa)
        if tau is not None:
            A = A + assemble_streamline_diffusion(space, beta, tau)
        return A.tocsr()

    def assemble_rhs(self, space, cell_map=None):
        kappa = _restrict(self.kappa, cell_map)
        beta = _restrict_vector(self.beta, cell_map)
        b = assemble_load(space, self.f)
        tau = self._tau(space.mesh, beta, kappa)
        if tau is not None:
            b = b + assemble_streamline_load(space, beta, tau, self.f)
        return b

    def assemble_geneo_matrix(self, space, cell_map=None):
        # symmetric positive (semi-)definite part: diffusion + the SUPG
        # streamline term — the extended pencil of Nataf–Parolin
        kappa = _restrict(self.kappa, cell_map)
        beta = _restrict_vector(self.beta, cell_map)
        A = assemble_stiffness(space, kappa)
        tau = self._tau(space.mesh, beta, kappa)
        if tau is not None:
            A = A + assemble_streamline_diffusion(space, beta, tau)
        return A.tocsr()


@dataclass
class HelmholtzForm(Form):
    """``a(u, v) = ∫ κ ∇u·∇v − (1−ε) k² u v`` — Helmholtz with absorption
    in the real shifted formulation (symmetric **indefinite**).

    ``k`` is the wavenumber (scalar, per-cell array or callable — a
    heterogeneous ``k`` models contrast in the wave speed); ``epsilon``
    the absorption fraction shifting the operator off the real spectrum
    (``ε = 0`` is pure Helmholtz).  The operator stays symmetric but
    loses definiteness once ``k h`` resolves a resonance, so the cg
    family is rejected and the Δ-GenEO-style surrogate (stiffness only,
    Bootland et al.) drives the extended coarse space.
    """

    degree: int
    kappa: object = None
    k: object = 5.0
    epsilon: float = 0.0
    f: object = 1.0

    ncomp: int = 1
    symmetric: bool = True
    spd: bool = False

    def _mass_coefficient(self, cell_map):
        scale = 1.0 - self.epsilon
        k = self.k
        if callable(k):
            return lambda x: scale * np.asarray(k(x), dtype=np.float64) ** 2
        arr = np.asarray(_restrict(k, cell_map), dtype=np.float64)
        return scale * arr ** 2

    def assemble_matrix(self, space, cell_map=None):
        if space.ncomp != 1:
            raise FEMError("HelmholtzForm requires a scalar space")
        K = assemble_stiffness(space, _restrict(self.kappa, cell_map))
        M = assemble_mass(space, self._mass_coefficient(cell_map))
        return (K - M).tocsr()

    def assemble_rhs(self, space, cell_map=None):
        return assemble_load(space, self.f)

    def assemble_geneo_matrix(self, space, cell_map=None):
        # Δ-GenEO surrogate (Bootland et al.): the definite stiffness
        # part only — the indefinite mass shift is excluded from the
        # pencil so the eigensolve stays SPD
        return assemble_stiffness(space, _restrict(self.kappa, cell_map))
