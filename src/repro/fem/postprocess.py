"""Post-processing: point evaluation, norms, errors.

The benchmark harness and the examples validate discrete solutions in
the norms the FEM literature reports: L², H¹-seminorm and the energy
norm of the problem's bilinear form.  Point evaluation locates query
points with a uniform-bucket grid over cell bounding boxes (robust for
the structured and carved meshes this package generates).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import FEMError
from .assembly import _cell_geometry
from .quadrature import simplex_quadrature
from .space import FunctionSpace


class PointLocator:
    """Locate points in a simplicial mesh via a uniform bucket grid."""

    def __init__(self, mesh, *, resolution: int | None = None):
        self.mesh = mesh
        lo = mesh.vertices.min(axis=0)
        hi = mesh.vertices.max(axis=0)
        span = np.maximum(hi - lo, 1e-300)
        if resolution is None:
            resolution = max(1, int(mesh.num_cells ** (1.0 / mesh.dim)))
        self.lo, self.span, self.res = lo, span, resolution
        self._buckets: dict[tuple, list[int]] = {}
        verts = mesh.vertices[mesh.cells]            # (nc, d+1, d)
        cmin = verts.min(axis=1)
        cmax = verts.max(axis=1)
        imin = self._index(cmin)
        imax = self._index(cmax)
        for c in range(mesh.num_cells):
            ranges = [range(imin[c, d], imax[c, d] + 1)
                      for d in range(mesh.dim)]
            import itertools
            for key in itertools.product(*ranges):
                self._buckets.setdefault(key, []).append(c)

    def _index(self, pts):
        idx = ((pts - self.lo) / self.span * self.res).astype(np.int64)
        return np.clip(idx, 0, self.res - 1)

    def locate(self, points, *, tol: float = 1e-10) -> tuple[np.ndarray, np.ndarray]:
        """Containing cell + barycentric coordinates for each point.

        Returns ``(cells, bary)``; ``cells[i] = -1`` for points outside
        the mesh.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        mesh = self.mesh
        n = points.shape[0]
        out_cell = np.full(n, -1, dtype=np.int64)
        out_bary = np.zeros((n, mesh.dim + 1))
        keys = self._index(points)
        verts = mesh.vertices
        for i in range(n):
            for c in self._buckets.get(tuple(keys[i]), ()):
                v = verts[mesh.cells[c]]
                T = (v[1:] - v[0]).T
                try:
                    lam = np.linalg.solve(T, points[i] - v[0])
                except np.linalg.LinAlgError:  # pragma: no cover
                    continue
                bary = np.concatenate([[1.0 - lam.sum()], lam])
                if np.all(bary >= -tol):
                    out_cell[i] = c
                    out_bary[i] = np.clip(bary, 0.0, 1.0)
                    break
        return out_cell, out_bary


def evaluate(space: FunctionSpace, u: np.ndarray, points,
             locator: PointLocator | None = None) -> np.ndarray:
    """Evaluate the FE function *u* at physical *points*.

    Returns ``(n,)`` for scalar spaces, ``(n, ncomp)`` for vector spaces.
    Raises for points outside the mesh.
    """
    u = np.asarray(u, dtype=np.float64)
    if u.shape != (space.num_dofs,):
        raise FEMError(f"u must have shape ({space.num_dofs},), "
                       f"got {u.shape}")
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if locator is None:
        locator = PointLocator(space.mesh)
    cells, bary = locator.locate(points)
    if np.any(cells < 0):
        bad = points[cells < 0][0]
        raise FEMError(f"point {bad} lies outside the mesh")
    ref_coords = bary[:, 1:]
    out = np.zeros((points.shape[0], space.ncomp))
    for i, (c, x) in enumerate(zip(cells, ref_coords)):
        phi = space.ref.eval_basis(x[None, :])[0]      # (n_loc,)
        dofs = space.cell_scalar_dofs[c]
        for a in range(space.ncomp):
            out[i, a] = phi @ u[dofs * space.ncomp + a] \
                if space.ncomp > 1 else phi @ u[dofs]
    return out[:, 0] if space.ncomp == 1 else out


# ----------------------------------------------------------------------
# Norms
# ----------------------------------------------------------------------

def l2_norm(space: FunctionSpace, u: np.ndarray) -> float:
    """‖u‖_L² via quadrature (no mass matrix needed)."""
    return np.sqrt(max(_quadrature_form(space, u, grad=False), 0.0))


def h1_seminorm(space: FunctionSpace, u: np.ndarray) -> float:
    """|u|_H¹ = ‖∇u‖_L²."""
    return np.sqrt(max(_quadrature_form(space, u, grad=True), 0.0))


def energy_norm(A, u: np.ndarray) -> float:
    """√(uᵀAu) for an SPD operator/matrix.

    Raises :class:`~repro.common.errors.SymmetryError` when *A* is a
    nonsymmetric matrix or the quadratic form comes out significantly
    negative (indefinite operator) — √(uᵀAu) is only a norm for SPD
    *A*, and silently clamping a structurally negative value would turn
    a wrong answer into a plausible-looking one.  Tiny negative
    round-off is still clamped to zero.
    """
    from ..common.errors import SymmetryError
    from ..common.validation import matrix_is_symmetric

    if not callable(A) and not matrix_is_symmetric(A):
        raise SymmetryError(
            "energy_norm requires a symmetric operator; got a "
            "nonsymmetric matrix — use a residual norm instead")
    Au = A(u) if callable(A) else A @ u
    quad = float(u @ Au)
    scale = float(np.linalg.norm(u) * np.linalg.norm(Au))
    if quad < -1e-10 * max(1.0, scale):
        raise SymmetryError(
            f"energy_norm got a negative quadratic form (u·Au = "
            f"{quad:.3e}): the operator is not positive definite")
    return float(np.sqrt(max(quad, 0.0)))


def l2_error(space: FunctionSpace, u: np.ndarray, exact) -> float:
    """‖u − Π exact‖_L² against the nodal interpolant of *exact*."""
    return l2_norm(space, u - space.interpolate(exact))


def _quadrature_form(space: FunctionSpace, u: np.ndarray,
                     *, grad: bool) -> float:
    u = np.asarray(u, dtype=np.float64)
    if u.shape != (space.num_dofs,):
        raise FEMError(f"u must have shape ({space.num_dofs},), "
                       f"got {u.shape}")
    k = space.degree
    qpts, qw = simplex_quadrature(space.mesh.dim, 2 * k)
    _, Jinv, detJ = _cell_geometry(space)
    nc = space.mesh.num_cells
    ncmp = space.ncomp
    dofs = space.cell_scalar_dofs
    total = 0.0
    if grad:
        gref = space.ref.eval_basis_grads(qpts)        # (nq, n_loc, d)
        gphys = np.einsum("ced,qie->cqid", Jinv, gref)
        for a in range(ncmp):
            ua = u[dofs * ncmp + a] if ncmp > 1 else u[dofs]   # (nc, n_loc)
            gu = np.einsum("cqid,ci->cqd", gphys, ua)
            total += float(np.einsum("q,c,cqd,cqd->", qw, detJ, gu, gu))
    else:
        phi = space.ref.eval_basis(qpts)               # (nq, n_loc)
        for a in range(ncmp):
            ua = u[dofs * ncmp + a] if ncmp > 1 else u[dofs]
            vu = np.einsum("qi,ci->cq", phi, ua)
            total += float(np.einsum("q,c,cq,cq->", qw, detJ, vu, vu))
    return total
