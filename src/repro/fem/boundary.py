"""Boundary-facet integration: surface loads ``∫_∂Ω g·v``.

The paper's elasticity form includes a surface traction (a vertical
loading imposed on part of the geometry, fig. 6).  This module assembles
that boundary term with Grundmann–Möller quadrature on the (d−1)-simplex
facets, mapped into the owning cell's reference coordinates.
"""

from __future__ import annotations

from math import factorial

import numpy as np

from ..common.errors import FEMError
from .quadrature import simplex_quadrature
from .space import FunctionSpace


def _facet_area(vertices: np.ndarray) -> np.ndarray:
    """Measures of facets given ``(nf, d, dim)`` vertex coordinates
    (length of segments in 2D, area of triangles in 3D)."""
    if vertices.shape[1] == 2:          # segments
        return np.linalg.norm(vertices[:, 1] - vertices[:, 0], axis=1)
    e1 = vertices[:, 1] - vertices[:, 0]
    e2 = vertices[:, 2] - vertices[:, 0]
    return 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)


def assemble_boundary_load(space: FunctionSpace, g, where=None) -> np.ndarray:
    """Surface load vector ``(g, v)_{∂Ω}``.

    Parameters
    ----------
    g:
        Traction: a constant (scalar spaces), a constant vector of length
        ``ncomp``, or a callable mapping ``(n, dim)`` points to values /
        ``(n, ncomp)`` vectors.
    where:
        Optional facet filter: predicate on the ``(nf, dim)`` facet
        midpoints (e.g. ``lambda x: x[:, 1] > 1 - 1e-9`` for a top load).
    """
    mesh = space.mesh
    dim = mesh.dim
    uniq, inverse, counts, owner = mesh._facet_data
    # owning cell of each boundary facet: position in the tiled facet list
    order = np.argsort(inverse, kind="stable")
    first_pos = np.zeros(uniq.shape[0], dtype=np.int64)
    first_pos[inverse[order]] = order        # any position; unique for bnd
    bnd_ids = np.flatnonzero(counts == 1)
    facets = uniq[bnd_ids]                   # (nf, d) vertex ids
    cells_of = owner[first_pos[bnd_ids]]

    if where is not None:
        mid = mesh.vertices[facets].mean(axis=1)
        mask = np.asarray(where(mid), dtype=bool)
        facets = facets[mask]
        cells_of = cells_of[mask]
    if facets.shape[0] == 0:
        return np.zeros(space.num_dofs)

    k = space.degree
    qpts, qw = simplex_quadrature(dim - 1, 2 * k)
    # facet reference barycentric coordinates of the quadrature points
    lam = np.column_stack([1 - qpts.sum(axis=1), qpts])   # (nq, d)

    b = np.zeros(space.num_dofs)
    ref = space.ref
    ncmp = space.ncomp
    areas = _facet_area(mesh.vertices[facets])
    # GM weights sum to 1/(d-1)!: convert to physical measure
    w_scale = qw * factorial(dim - 1)

    # positions of the facet's vertices within the owner cell (nf, d)
    cell_verts = mesh.cells[cells_of]                      # (nf, dim+1)
    local_pos = np.empty((facets.shape[0], dim), dtype=np.int64)
    for j in range(dim):
        eq = cell_verts == facets[:, j][:, None]
        local_pos[:, j] = np.argmax(eq, axis=1)

    # cell barycentric coordinates of all quadrature points: (nf, nq, dim+1)
    nf, nq = facets.shape[0], lam.shape[0]
    bary = np.zeros((nf, nq, dim + 1))
    for j in range(dim):
        bary[np.arange(nf)[:, None], np.arange(nq)[None, :],
             local_pos[:, j][:, None]] = lam[None, :, j]
    xref = bary[:, :, 1:]                                  # drop bary 0
    # correction: reference coordinates are the barycentrics 1..dim
    phys = np.einsum("fqd,fdk->fqk", bary,
                     mesh.vertices[cell_verts])            # (nf, nq, dim)

    if callable(g):
        vals = np.asarray(g(phys.reshape(-1, dim)), dtype=np.float64)
        expect = (nf * nq,) if ncmp == 1 else (nf * nq, ncmp)
        if vals.shape != expect:
            raise FEMError(f"boundary load callable returned {vals.shape}, "
                           f"expected {expect}")
        gq = vals.reshape((nf, nq) if ncmp == 1 else (nf, nq, ncmp))
    else:
        arr = np.asarray(g, dtype=np.float64)
        if ncmp == 1:
            gq = np.full((nf, nq), float(arr))
        else:
            if arr.shape != (ncmp,):
                raise FEMError(f"constant traction must have shape "
                               f"({ncmp},), got {arr.shape}")
            gq = np.broadcast_to(arr, (nf, nq, ncmp)).copy()

    # evaluate basis functions facet by facet (xref differs per facet)
    dofs = space.cell_scalar_dofs
    for f in range(nf):
        phi = ref.eval_basis(xref[f])                      # (nq, n_loc)
        wq = w_scale * areas[f]
        cd = dofs[cells_of[f]]
        if ncmp == 1:
            contrib = (wq[:, None] * gq[f][:, None] * phi).sum(axis=0)
            np.add.at(b, cd, contrib)
        else:
            contrib = np.einsum("q,qa,qi->ia", wq, gq[f], phi)
            for a in range(ncmp):
                np.add.at(b, cd * ncmp + a, contrib[:, a])
    return b
