"""Finite element function spaces and global dof numbering.

A :class:`FunctionSpace` couples a :class:`~repro.mesh.SimplexMesh` with a
Lagrange Pk reference element and, for vector problems (elasticity), a
number of components.  Dofs are numbered entity-wise — vertices, then edge
interiors, then (3D) face interiors, then cell interiors — with shared
entities oriented canonically by global vertex ids so that neighbouring
cells agree on shared dofs.  Vector dofs are interleaved:
``global = scalar_dof * ncomp + component``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..common.errors import FEMError
from ..mesh import SimplexMesh
from .reference import reference_simplex


class FunctionSpace:
    """Pk Lagrange space on a simplicial mesh.

    Parameters
    ----------
    mesh:
        The underlying mesh.
    degree:
        Polynomial degree (1..4 in 2D, 1..3 in 3D).
    ncomp:
        Number of vector components (1 = scalar, ``mesh.dim`` = elasticity).
    """

    def __init__(self, mesh: SimplexMesh, degree: int, ncomp: int = 1):
        if ncomp < 1:
            raise FEMError(f"ncomp must be >= 1, got {ncomp}")
        self.mesh = mesh
        self.degree = int(degree)
        self.ncomp = int(ncomp)
        self.ref = reference_simplex(mesh.dim, self.degree)
        self._build_layout()

    # ------------------------------------------------------------------
    def _build_layout(self) -> None:
        mesh, k = self.mesh, self.degree
        dim = mesh.dim
        self.n_vertex_dofs = mesh.num_vertices
        self.dofs_per_edge = k - 1
        self.n_edge_dofs = mesh.edges.shape[0] * self.dofs_per_edge if k > 1 else 0
        if dim == 3 and k >= 3:
            # interior nodes per triangular face: C(k-1, 2)
            self.dofs_per_face = (k - 1) * (k - 2) // 2
            self.n_face_dofs = mesh.facets.shape[0] * self.dofs_per_face
        else:
            self.dofs_per_face = 0
            self.n_face_dofs = 0
        if dim == 2:
            self.dofs_per_cell_interior = (k - 1) * (k - 2) // 2
        else:
            self.dofs_per_cell_interior = (k - 1) * (k - 2) * (k - 3) // 6
        self.n_cell_dofs = mesh.num_cells * self.dofs_per_cell_interior
        self.num_scalar_dofs = (self.n_vertex_dofs + self.n_edge_dofs +
                                self.n_face_dofs + self.n_cell_dofs)
        self._edge_offset = self.n_vertex_dofs
        self._face_offset = self._edge_offset + self.n_edge_dofs
        self._cell_offset = self._face_offset + self.n_face_dofs

    @property
    def num_dofs(self) -> int:
        """Total number of (vector) degrees of freedom."""
        return self.num_scalar_dofs * self.ncomp

    # ------------------------------------------------------------------
    @cached_property
    def cell_scalar_dofs(self) -> np.ndarray:
        """Global scalar dof ids per cell, ``(nc, n_loc)``, in the
        reference element's node order."""
        mesh, k = self.mesh, self.degree
        dim = mesh.dim
        nc = mesh.num_cells
        bary = self.ref.nodes_bary            # (n_loc, dim+1) ints
        n_loc = bary.shape[0]
        out = np.empty((nc, n_loc), dtype=np.int64)
        cells = mesh.cells
        cell_edges = mesh.cell_edges if k > 1 else None
        nloc_v = dim + 1
        edge_pairs = [(a, b) for a in range(nloc_v) for b in range(a + 1, nloc_v)]
        edge_pair_index = {p: i for i, p in enumerate(edge_pairs)}
        if dim == 3 and k >= 3:
            cell_facets = mesh.cell_facets
        interior_counter = 0
        face_local_counter: dict[tuple, int] = {}
        for ln in range(n_loc):
            nz = np.flatnonzero(bary[ln])
            if len(nz) == 1:
                out[:, ln] = cells[:, nz[0]]
            elif len(nz) == 2:
                a, b = int(nz[0]), int(nz[1])
                eidx = edge_pair_index[(a, b)]
                m = int(bary[ln, b])           # steps toward local vertex b
                ga, gb = cells[:, a], cells[:, b]
                fwd = ga < gb                  # canonical direction a -> b
                pos = np.where(fwd, m - 1, k - m - 1)
                out[:, ln] = (self._edge_offset +
                              cell_edges[:, eidx] * self.dofs_per_edge + pos)
            elif len(nz) == 3 and dim == 3:
                # face-interior node; with k <= 3 there is at most one per
                # face so no orientation bookkeeping is required
                if self.dofs_per_face != 1:  # pragma: no cover
                    raise FEMError("3D face dofs with >1 node per face "
                                   "require oriented face numbering")
                a, b, c = (int(v) for v in nz)
                opposite = ({0, 1, 2, 3} - {a, b, c}).pop()
                fid = cell_facets[:, opposite]
                out[:, ln] = self._face_offset + fid * self.dofs_per_face
            else:
                # cell-interior node (2D: len(nz)==3; 3D: len(nz)==4)
                out[:, ln] = (self._cell_offset +
                              np.arange(nc) * self.dofs_per_cell_interior +
                              interior_counter)
                interior_counter += 1
        return out

    @cached_property
    def cell_dofs(self) -> np.ndarray:
        """Global (vector) dof ids per cell, ``(nc, n_loc * ncomp)``,
        ordered node-major then component (interleaved layout)."""
        sd = self.cell_scalar_dofs
        if self.ncomp == 1:
            return sd
        nc, n_loc = sd.shape
        out = (sd[:, :, None] * self.ncomp +
               np.arange(self.ncomp)[None, None, :])
        return out.reshape(nc, n_loc * self.ncomp)

    # ------------------------------------------------------------------
    @cached_property
    def scalar_dof_coordinates(self) -> np.ndarray:
        """Coordinates of every scalar dof, ``(num_scalar_dofs, dim)``."""
        mesh = self.mesh
        pts = self.ref.nodes                      # (n_loc, dim) reference
        v = mesh.vertices[mesh.cells]             # (nc, dim+1, dim)
        origin = v[:, 0, :]                       # (nc, dim)
        edges = v[:, 1:, :] - v[:, :1, :]         # (nc, dim, dim)
        # physical = origin + pts @ edges
        phys = origin[:, None, :] + np.einsum("qd,cde->cqe", pts, edges)
        coords = np.empty((self.num_scalar_dofs, mesh.dim))
        coords[self.cell_scalar_dofs.ravel()] = phys.reshape(-1, mesh.dim)
        return coords

    @cached_property
    def dof_coordinates(self) -> np.ndarray:
        """Coordinates of every (vector) dof, ``(num_dofs, dim)``."""
        if self.ncomp == 1:
            return self.scalar_dof_coordinates
        return np.repeat(self.scalar_dof_coordinates, self.ncomp, axis=0)

    # ------------------------------------------------------------------
    @cached_property
    def boundary_scalar_dofs(self) -> np.ndarray:
        """Sorted scalar dofs lying on the domain boundary (entity-based)."""
        mesh, k = self.mesh, self.degree
        dofs = [mesh.boundary_vertices]
        if k > 1:
            bedges = self._boundary_edge_ids()
            if bedges.size:
                base = self._edge_offset + bedges * self.dofs_per_edge
                dofs.append((base[:, None] +
                             np.arange(self.dofs_per_edge)).ravel())
        if mesh.dim == 3 and self.dofs_per_face:
            bf = mesh.boundary_facet_ids
            base = self._face_offset + bf * self.dofs_per_face
            dofs.append((base[:, None] +
                         np.arange(self.dofs_per_face)).ravel())
        return np.unique(np.concatenate(dofs))

    def _boundary_edge_ids(self) -> np.ndarray:
        mesh = self.mesh
        edges = mesh.edges
        if mesh.dim == 2:
            bset = mesh.boundary_facets            # edges are facets in 2D
        else:
            bf = mesh.boundary_facets              # (nbf, 3) faces
            pairs = np.concatenate([bf[:, [0, 1]], bf[:, [0, 2]],
                                    bf[:, [1, 2]]], axis=0)
            bset = np.unique(np.sort(pairs, axis=1), axis=0)
        key = edges[:, 0] * mesh.num_vertices + edges[:, 1]
        bkey = bset[:, 0] * mesh.num_vertices + bset[:, 1]
        return np.flatnonzero(np.isin(key, bkey))

    def boundary_dofs(self, where=None) -> np.ndarray:
        """Vector dofs on the boundary; optionally filtered by *where*,
        a predicate receiving an ``(n, dim)`` coordinate array."""
        sd = self.boundary_scalar_dofs
        if where is not None:
            mask = np.asarray(where(self.scalar_dof_coordinates[sd]),
                              dtype=bool)
            sd = sd[mask]
        if self.ncomp == 1:
            return sd
        return ((sd[:, None] * self.ncomp +
                 np.arange(self.ncomp)[None, :]).ravel())

    # ------------------------------------------------------------------
    def interpolate(self, fn) -> np.ndarray:
        """Nodal interpolation of a callable.

        For scalar spaces *fn* maps ``(n, dim)`` coordinates to ``(n,)``
        values; for vector spaces to ``(n, ncomp)``.
        """
        coords = self.scalar_dof_coordinates
        vals = np.asarray(fn(coords), dtype=np.float64)
        if self.ncomp == 1:
            if vals.shape != (self.num_scalar_dofs,):
                raise FEMError(f"interpolant returned shape {vals.shape}, "
                               f"expected ({self.num_scalar_dofs},)")
            return vals
        if vals.shape != (self.num_scalar_dofs, self.ncomp):
            raise FEMError(f"interpolant returned shape {vals.shape}, "
                           f"expected ({self.num_scalar_dofs}, {self.ncomp})")
        return vals.reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FunctionSpace(P{self.degree}, dim={self.mesh.dim}, "
                f"ncomp={self.ncomp}, ndofs={self.num_dofs})")
