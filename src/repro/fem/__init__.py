"""Finite element substrate (the paper's FreeFem++ role).

Lagrange Pk spaces on simplicial meshes, vectorised assembly of the
paper's heterogeneous diffusion and linear-elasticity forms, Dirichlet
boundary handling, and the high-contrast coefficient fields of figures 6
and 9.
"""

from .assembly import (
    apply_dirichlet,
    assemble_advection,
    assemble_elasticity,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
    assemble_streamline_diffusion,
    assemble_streamline_load,
    restrict_to_free,
)
from .forms import (
    ConvectionDiffusionForm,
    DiffusionForm,
    ElasticityForm,
    Form,
    HelmholtzForm,
    supg_tau,
)
from .boundary import assemble_boundary_load
from .convergence import ConvergenceStudy, convergence_study
from .postprocess import (
    PointLocator,
    energy_norm,
    evaluate,
    h1_seminorm,
    l2_error,
    l2_norm,
)
from .coefficients import (
    HARD_PHASE,
    KAPPA_MAX,
    KAPPA_MIN,
    SOFT_PHASE,
    channels_and_inclusions,
    constant_field,
    lame_parameters,
    layered_elasticity,
)
from .quadrature import grundmann_moeller, simplex_quadrature
from .reference import ReferenceSimplex, reference_simplex
from .space import FunctionSpace

__all__ = [
    "FunctionSpace",
    "assemble_boundary_load",
    "convergence_study",
    "ConvergenceStudy",
    "PointLocator",
    "evaluate",
    "l2_norm",
    "l2_error",
    "h1_seminorm",
    "energy_norm",
    "ReferenceSimplex",
    "reference_simplex",
    "simplex_quadrature",
    "grundmann_moeller",
    "assemble_stiffness",
    "assemble_advection",
    "assemble_elasticity",
    "assemble_mass",
    "assemble_load",
    "assemble_streamline_diffusion",
    "assemble_streamline_load",
    "apply_dirichlet",
    "restrict_to_free",
    "Form",
    "DiffusionForm",
    "ElasticityForm",
    "ConvectionDiffusionForm",
    "HelmholtzForm",
    "supg_tau",
    "channels_and_inclusions",
    "layered_elasticity",
    "lame_parameters",
    "constant_field",
    "HARD_PHASE",
    "SOFT_PHASE",
    "KAPPA_MIN",
    "KAPPA_MAX",
]
