"""Simplex quadrature via the Grundmann–Möller construction.

Grundmann & Möller (1978) give, for any space dimension ``d`` and any
``s = 2m + 1``, a rule exact for polynomials of degree ``s`` on the unit
simplex.  One construction covers triangles, tetrahedra and the (d-1)-
dimensional boundary facets, which keeps the assembly code generic across
the paper's P2/P3/P4 discretisations.
"""

from __future__ import annotations

from functools import lru_cache
from math import factorial

import numpy as np

from ..common.errors import FEMError


def _compositions(total: int, parts: int):
    """All tuples of *parts* non-negative ints summing to *total*."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail


@lru_cache(maxsize=None)
def grundmann_moeller(dim: int, index: int) -> tuple[np.ndarray, np.ndarray]:
    """GM rule of *index* ``m`` on the unit d-simplex.

    Exact for polynomials of degree ``2 m + 1``.  Returns
    ``(points, weights)`` with points of shape ``(n, dim)`` in reference
    coordinates and weights summing to the simplex volume ``1/d!``.
    """
    if dim < 1:
        raise FEMError(f"dim must be >= 1, got {dim}")
    if index < 0:
        raise FEMError(f"GM index must be >= 0, got {index}")
    m = index
    d = dim
    s = 2 * m + 1
    pts = []
    wts = []
    vol = 1.0 / factorial(d)
    for i in range(m + 1):
        # weight factor for level i (Grundmann-Möller formula)
        w = ((-1) ** i / (2 ** (2 * m)) *
             (s + d - 2 * i) ** s /
             (factorial(i) * factorial(s + d - i)))
        denom = s + d - 2 * i
        for beta in _compositions(m - i, d + 1):
            # barycentric point (2*beta + 1) / denom
            bary = (2 * np.asarray(beta, dtype=np.float64) + 1.0) / denom
            pts.append(bary[1:])  # drop 0th barycentric coordinate
            wts.append(w)
    points = np.asarray(pts)
    weights = np.asarray(wts)
    # GM weights as defined sum to 1/d! * d! = need normalisation: the
    # classical formula integrates with the measure of the unit simplex
    # scaled so that sum(weights) = 1/d! exactly; normalise defensively.
    weights *= vol / weights.sum()
    return points, weights


@lru_cache(maxsize=None)
def simplex_quadrature(dim: int, degree: int) -> tuple[np.ndarray, np.ndarray]:
    """Rule on the unit d-simplex exact for polynomials of *degree*.

    Chooses the smallest Grundmann–Möller index with ``2 m + 1 >= degree``.
    """
    if degree < 0:
        raise FEMError(f"quadrature degree must be >= 0, got {degree}")
    m = max(0, (degree - 1 + 1) // 2)  # smallest m with 2m+1 >= degree
    if 2 * m + 1 < degree:
        m += 1  # pragma: no cover - arithmetic guard
    return grundmann_moeller(dim, m)
