"""Batched multi-RHS solving and subspace recycling (serving-scale path).

* :class:`SolveSession` — owns nothing, borrows a set-up
  :class:`~repro.core.solver.SchwarzSolver` and amortizes its expensive
  state over many right-hand sides.
* :func:`block_gmres` / :func:`block_cg` — true block Krylov drivers
  (one coarse solve + one block matvec per iteration for the whole
  batch, converged columns deflated).
* :mod:`.recycle` — harmonic-Ritz harvest + deflation-space
  augmentation between successive solves (GCRO-DR style).
"""

from .block_cg import block_cg
from .block_gmres import BlockKrylovResult, block_gmres
from .recycle import harvest_ritz_vectors, recycled_deflation
from .session import BatchReport, SolveSession

__all__ = ["SolveSession", "BatchReport", "BlockKrylovResult",
           "block_gmres", "block_cg", "harvest_ritz_vectors",
           "recycled_deflation"]
