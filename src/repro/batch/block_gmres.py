"""Right-preconditioned block GMRES with blocked CGS2 orthogonalization.

Block Krylov methods amortize the per-iteration communication over all
right-hand sides at once: one block matvec (``Decomposition.
matvec_block``), one block preconditioner application
(``apply_block`` — a single coarse solve for the whole block) and one
blocked orthogonalization (two gemms of classical Gram–Schmidt,
reorthogonalized — CGS2) per block iteration, independent of the block
width.  That is the §2.1 communication argument applied across the
batch dimension: a width-p block costs the *reductions* of a single
vector iteration.

Converged columns are deflated at restart boundaries (and before the
first cycle): the active block shrinks, so late stragglers don't pay
the full-width gemms.  Per-column convergence is read off the block
least-squares problem each step and reported through
:meth:`~repro.krylov.SolveProfiler.column_converged`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import KrylovError
from ..krylov.profile import SolveProfiler


@dataclass
class BlockKrylovResult:
    """Outcome of a block Krylov solve (one column per right-hand side)."""

    X: np.ndarray                 # (n, p) solutions
    iterations: int               # block iterations performed
    #: block iteration at which each column converged (-1: never)
    column_iterations: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: final relative residual per column
    final_residuals: np.ndarray = field(
        default_factory=lambda: np.zeros(0))
    #: per-block-iteration max relative residual over active columns
    residuals: list[float] = field(default_factory=list)
    converged: bool = True
    profile: dict[str, float] = field(default_factory=dict)


def _qr_block(W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Thin QR; a (numerically) rank-deficient block is tolerated —
    dependent directions get ~zero diagonal and contribute nothing."""
    return np.linalg.qr(W)


def block_gmres(A_block, B: np.ndarray, *, M_block=None,
                X0: np.ndarray | None = None, tol: float = 1e-6,
                restart: int = 20, maxiter: int = 1000,
                profiler: SolveProfiler | None = None,
                callback=None, kernels=None) -> BlockKrylovResult:
    """Solve ``A X = B`` column-wise with block GMRES(m).

    Parameters
    ----------
    A_block, M_block:
        Callables mapping a column block ``(n, k)`` to a column block —
        the distributed block matvec and the blocked (right)
        preconditioner.
    B:
        Right-hand sides, one per column ``(n, p)``.
    restart:
        Block steps per cycle (each step grows the space by the active
        width, so the per-column Krylov dimension equals ``restart``).
    maxiter:
        Budget of *block* iterations across cycles.
    callback:
        Optional ``callback(k, max_rel_residual)`` per block iteration.
    kernels:
        Optional :class:`~repro.kernels.KernelBackend` owning the
        blocked CGS2 kernel; ``None`` is the bitwise-reference ``numpy``
        backend.
    """
    from ..kernels import default_backend
    kern = default_backend() if kernels is None else kernels
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise KrylovError(f"B must be a column block, got ndim={B.ndim}")
    n, p = B.shape
    if restart < 1:
        raise KrylovError(f"restart must be >= 1, got {restart}")
    prof = profiler if profiler is not None else SolveProfiler()
    M = (lambda X: X) if M_block is None else M_block

    X = np.zeros((n, p)) if X0 is None \
        else np.array(X0, dtype=np.float64, copy=True)
    bnorms = np.linalg.norm(B, axis=0)
    # zero columns have the exact solution 0 (same semantics as
    # finish_zero_rhs: discard the guess, converged at iteration 0)
    zero_cols = bnorms == 0.0
    X[:, zero_cols] = 0.0
    targets = tol * np.where(zero_cols, 1.0, bnorms)
    scale = np.where(zero_cols, 1.0, bnorms)

    col_iters = np.full(p, -1, dtype=np.int64)
    final_res = np.zeros(p)
    it = 0
    history: list[float] = []

    def resnorms(cols: np.ndarray) -> np.ndarray:
        with prof.phase("matvec"):
            R = B[:, cols] - A_block(X[:, cols])
        return np.linalg.norm(R, axis=0)

    active = np.flatnonzero(~zero_cols)
    for c in np.flatnonzero(zero_cols):
        col_iters[c] = 0
        prof.column_converged(0, int(c), 0.0)
    # initial deflation: columns whose guess already meets the target
    if active.size:
        rn = resnorms(active)
        done = rn <= targets[active]
        for c, r in zip(active[done], rn[done]):
            col_iters[c] = 0
            final_res[c] = r / scale[c]
            prof.column_converged(0, int(c), float(r / scale[c]))
        active = active[~done]

    cycle = 0
    while active.size and it < maxiter:
        if cycle > 0:
            prof.restart(cycle, it)
        cycle += 1
        pa = active.size
        with prof.phase("matvec"):
            R = B[:, active] - A_block(X[:, active])
        V0, S0 = _qr_block(R)
        m = restart
        # basis blocks live side by side: Vb[:, :k*pa] after k steps
        Vb = np.empty((n, (m + 1) * pa))
        Vb[:, :pa] = V0
        Hbar = np.zeros(((m + 1) * pa, m * pa))
        G = np.zeros(((m + 1) * pa, pa))
        G[:pa, :] = S0
        j_done = 0
        Y = None
        for j in range(m):
            with prof.phase("apply"):
                Pj = M(Vb[:, j * pa:(j + 1) * pa])
            with prof.phase("matvec"):
                W = A_block(Pj)
            k = (j + 1) * pa
            with prof.phase("orthogonalization"):
                # blocked CGS2 through the kernel backend: two projection
                # sweeps, each a pair of gemms — the block analogue of
                # one batched reduction
                Hcol, Vnew, Hdiag = kern.ortho_block(Vb, k, W, _qr_block)
            Hbar[:k, j * pa:k] = Hcol
            Hbar[k:k + pa, j * pa:k] = Hdiag
            Vb[:, k:k + pa] = Vnew
            # small block least squares: min ‖G − H̄ Y‖ per column
            Y, _, _, _ = np.linalg.lstsq(
                Hbar[:k + pa, :k], G[:k + pa], rcond=None)
            res_cols = np.linalg.norm(
                G[:k + pa] - Hbar[:k + pa, :k] @ Y, axis=0)
            it += 1
            j_done = j + 1
            rel = res_cols / scale[active]
            worst = float(rel.max())
            history.append(worst)
            prof.iteration(it, worst)
            if callback is not None:
                callback(it, worst)
            if np.all(res_cols <= targets[active]) or it >= maxiter:
                break
        if j_done and Y is not None:
            with prof.phase("apply"):
                X[:, active] += M(Vb[:, :j_done * pa] @ Y)
        # true residuals decide deflation (the LS estimate drifts)
        rn = resnorms(active)
        done = rn <= targets[active]
        for c, r in zip(active[done], rn[done]):
            col_iters[c] = it
            final_res[c] = r / scale[c]
            prof.column_converged(it, int(c), float(r / scale[c]))
        final_res[active] = rn / scale[active]
        active = active[~done]

    return BlockKrylovResult(
        X=X, iterations=it, column_iterations=col_iters,
        final_residuals=final_res, residuals=history,
        converged=bool(active.size == 0), profile=prof.as_dict())
