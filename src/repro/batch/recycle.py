"""Subspace recycling between successive solves (GCRO-DR style).

Sequential right-hand sides (time steps, nonlinear iterations, porous-
media load cases) see the *same* preconditioned operator, so the slow
modes that dominated one solve dominate the next.  GCRO-DR (Parks et
al., see PAPERS.md) harvests approximations of those modes — harmonic
Ritz vectors of the final Arnoldi cycle — and deflates them from the
next solve.  Here the harvest feeds the repo's native deflation
machinery instead of an augmented-Krylov driver: the Ritz vectors are
split across subdomains through the partition of unity
(``W_i = D_i R_i v``, the a-posteriori construction of
:mod:`repro.core.ritz`) and the resulting :class:`DeflationSpace` /
:class:`CoarseOperator` pair drops into any of the two-level
preconditioners.  Since ``Σ R_iᵀ D_i R_i = I`` the deflation space
*contains* the harvested vectors exactly.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ReproError
from ..core.deflation import DeflationSpace
from ..core.ritz import harmonic_ritz_pairs
from ..dd.decomposition import Decomposition


def harvest_ritz_vectors(basis: tuple, M_apply, m: int) -> np.ndarray | None:
    """Harmonic Ritz vectors of ``A M`` from a GMRES cycle's Arnoldi data.

    Parameters
    ----------
    basis:
        ``(V, H̄)`` as attached to :attr:`KrylovResult.basis` by a
        driver called with ``keep_basis=True`` — V of shape (n, k+1),
        the untransformed Hessenberg of shape (k+1, k).
    M_apply:
        The right preconditioner of the solve that produced the basis.
        The Ritz vectors live in the preconditioned variable ``y``
        (``x = M y``); applying M maps them back to solution space so
        the deflation targets A itself.
    m:
        Number of vectors to keep (the smallest harmonic Ritz values —
        the stalling modes).

    Returns ``None`` when the cycle is too short (k < 2) or the small
    eigenproblem fails — recycling is an optimization, never an error.
    """
    if basis is None:
        return None
    V, Hbar = basis
    k = Hbar.shape[1]
    if k < 2 or m < 1:
        return None
    try:
        theta, Y = harmonic_ritz_pairs(Hbar)
    except ReproError:
        return None
    m = min(m, k)
    # combine complex-conjugate pairs into real vectors
    vecs: list[np.ndarray] = []
    i = 0
    while len(vecs) < m and i < k:
        y = Y[:, i]
        if np.abs(y.imag).max() > 1e-12:
            vecs.append(np.real(y))
            if len(vecs) < m:
                vecs.append(np.imag(y))
            i += 2
        else:
            vecs.append(np.real(y))
            i += 1
    Yr = np.column_stack(vecs[:m])
    ritz = V[:, :k] @ Yr
    ritz = np.column_stack([M_apply(ritz[:, j])
                            for j in range(ritz.shape[1])])
    if not np.all(np.isfinite(ritz)):
        return None
    # orthonormalise for the conditioning of the augmented E
    Q, R = np.linalg.qr(ritz)
    # drop numerically dependent directions
    keep = np.abs(np.diag(R)) > 1e-12 * max(np.abs(np.diag(R)).max(), 1e-300)
    Q = Q[:, keep]
    return Q if Q.shape[1] else None


def recycled_deflation(dec: Decomposition, U: np.ndarray,
                       base: DeflationSpace | None = None) -> DeflationSpace:
    """Deflation space containing the recycle block *U* (n, r).

    Each global vector is split with the partition of unity
    (``W_i = D_i R_i u``) and appended to *base*'s per-subdomain blocks
    when given — the GenEO space augmented by the harvested modes.  The
    coarse operator built on top handles any (near-)linear dependence
    between GenEO and Ritz directions through its rank-revealing
    pseudo-inverse fallback.
    """
    W_recycle = [s.d[:, None] * U[s.dofs] for s in dec.subdomains]
    if base is None:
        return DeflationSpace(dec, W_recycle)
    blocks = [np.hstack([Wb, Wr]) for Wb, Wr in zip(base.W, W_recycle)]
    return DeflationSpace(dec, blocks)
