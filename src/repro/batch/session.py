"""The multi-RHS solve session: amortize setup across many solves.

The GenEO setup — subdomain extraction, local factorizations, the
eigensolves, the coarse factorization — is the dominant cost the paper
parallelizes (figs. 8/10), and the repo's PR 1–2 made it fast.  A
:class:`SolveSession` makes it *reusable*: it borrows a fully set-up
:class:`~repro.core.solver.SchwarzSolver` (never rebuilding any of its
state) and exposes the two serving-scale access patterns:

* :meth:`solve_many` — simultaneous right-hand sides through true block
  Krylov drivers (:mod:`.block_cg`, :mod:`.block_gmres`): one coarse
  solve and one block matvec per iteration for the whole batch.
* :meth:`solve` — sequential right-hand sides with subspace recycling
  (:mod:`.recycle`): each solve harvests harmonic Ritz vectors from its
  final Krylov cycle and deflates them from the next solve, GCRO-DR
  style, by augmenting the GenEO deflation space.

Open a session with ``SchwarzSolver.session()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ReproError, SymmetryError
from ..core.adef import TwoLevelADEF1, TwoLevelADEF2, TwoLevelBNN
from ..core.coarse import CoarseOperator
from ..core.solver import SolveReport
from ..krylov import SolveProfiler, gmres
from .block_cg import block_cg
from .block_gmres import BlockKrylovResult, block_gmres
from .recycle import harvest_ritz_vectors, recycled_deflation


@dataclass
class BatchReport:
    """Outcome of one :meth:`SolveSession.solve_many` call."""

    #: full-dof solutions (Dirichlet rows zero), one column per RHS
    X: np.ndarray
    #: the underlying block Krylov result (reduced-space iterates)
    block: BlockKrylovResult
    driver: str
    num_subdomains: int
    coarse_dim: int

    @property
    def iterations(self) -> int:
        return self.block.iterations

    @property
    def column_iterations(self) -> np.ndarray:
        return self.block.column_iterations

    @property
    def converged(self) -> bool:
        return self.block.converged


class SolveSession:
    """Batched / recycled solves over a set-up Schwarz solver.

    Parameters
    ----------
    solver:
        A constructed :class:`~repro.core.solver.SchwarzSolver`; the
        session shares (never copies) its decomposition, one-level
        factorizations, GenEO deflation space, coarse factorization and
        recorder.
    recycle_dim:
        Harmonic Ritz vectors harvested per recycled solve (the
        augmentation of the deflation space; replaced — not
        accumulated — on every harvest, so the coarse dim stays
        bounded by ``coarse_dim + recycle_dim``).
    """

    def __init__(self, solver, *, recycle_dim: int = 8):
        if recycle_dim < 0:
            raise ReproError(
                f"recycle_dim must be >= 0, got {recycle_dim}")
        self.solver = solver
        self.recorder = solver.recorder
        self.recycle_dim = int(recycle_dim)
        #: the preconditioner in use (swapped when recycling augments it)
        self._preconditioner = solver.preconditioner
        self._coarse: CoarseOperator | None = None
        self._recycle_U: np.ndarray | None = None
        self.solves = 0
        self.batches = 0

    # ------------------------------------------------------------------
    @property
    def decomposition(self):
        return self.solver.decomposition

    @property
    def coarse_dim(self) -> int:
        """Active coarse dimension (GenEO + the recycle augmentation)."""
        if self._coarse is not None:
            return self._coarse.dim
        return self.solver.coarse_dim

    @property
    def recycle_active(self) -> bool:
        return self._recycle_U is not None

    # ------------------------------------------------------------------
    def solve_many(self, B: np.ndarray, *, tol: float = 1e-6,
                   driver: str = "auto", restart: int = 20,
                   maxiter: int = 1000,
                   X0: np.ndarray | None = None) -> BatchReport:
        """Solve one reduced system for every column of ``B (n, p)``.

        *driver* is ``"block-gmres"``, ``"block-cg"`` or ``"auto"``
        (block CG when the solver was configured for a CG-family
        method AND the operator is actually SPD — the asymmetry flag
        detected on the decomposition, not the driver name, is what
        gates the CG family; block GMRES otherwise).  Requesting
        ``"block-cg"`` explicitly on a nonsymmetric/indefinite operator
        raises :class:`~repro.common.errors.SymmetryError`.  Converged
        columns are deflated from the block as they finish; per-column
        convergence lands in the trace as ``batch.column_converged``
        events and on :attr:`BatchReport.column_iterations`.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2:
            raise ReproError(
                f"solve_many expects a column block, got ndim={B.ndim}")
        operator_spd = getattr(self.decomposition, "is_spd", True)
        if driver == "auto":
            driver = "block-cg" \
                if (self.solver.krylov_name in ("cg", "deflated-cg")
                    and operator_spd) \
                else "block-gmres"
        if driver not in ("block-gmres", "block-cg"):
            raise ReproError(f"unknown block driver {driver!r}")
        if driver == "block-cg" and not operator_spd:
            kind = ("nonsymmetric"
                    if not getattr(self.decomposition, "is_symmetric", True)
                    else "symmetric indefinite")
            raise SymmetryError(
                f"driver='block-cg' requires an SPD operator, but this "
                f"one is {kind} — use driver='block-gmres' (or 'auto')")
        profiler = self._make_profiler()
        pre = self._preconditioner
        if self.recorder.enabled:
            self.recorder.add("batch.batches", 1)
            self.recorder.add("batch.columns", B.shape[1])
        with self.recorder.span("batch_solve",
                                attrs={"driver": driver,
                                       "columns": B.shape[1]}):
            if driver == "block-cg":
                res = block_cg(
                    self.decomposition.matvec_block, B,
                    M_block=pre.apply_block, X0=X0, tol=tol,
                    maxiter=maxiter, profiler=profiler)
            else:
                res = block_gmres(
                    self.decomposition.matvec_block, B,
                    M_block=pre.apply_block, X0=X0, tol=tol,
                    restart=restart, maxiter=maxiter, profiler=profiler,
                    kernels=self.solver.kernels)
        self.batches += 1
        if self.recorder.enabled:
            self.recorder.add("batch.block_iterations", res.iterations)
        X = np.column_stack([self.solver.problem.extend(res.X[:, j])
                             for j in range(res.X.shape[1])])
        return BatchReport(
            X=X, block=res, driver=driver,
            num_subdomains=self.decomposition.num_subdomains,
            coarse_dim=self.coarse_dim)

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray | None = None, *, tol: float = 1e-6,
              restart: int = 40, maxiter: int = 1000,
              x0: np.ndarray | None = None,
              recycle: bool = True) -> SolveReport:
        """One recycled sequential solve (GMRES; right-preconditioned).

        With ``recycle=True`` the solve (a) runs against the deflation
        space augmented by the previous solve's harvest and (b) harvests
        this solve's final Arnoldi cycle for the next one.  The first
        call has nothing to recycle yet — it behaves like a plain solve
        plus a cheap harvest.
        """
        if b is None:
            b = self.solver.problem.rhs()
        profiler = self._make_profiler()
        pre = self._preconditioner
        res = gmres(self.decomposition.matvec, b, M=pre.apply, x0=x0,
                    tol=tol, restart=restart, maxiter=maxiter,
                    profiler=profiler, keep_basis=recycle,
                    kernels=self.solver.kernels)
        self.solves += 1
        if recycle and self.recycle_dim > 0:
            U = harvest_ritz_vectors(res.basis, pre.apply,
                                     self.recycle_dim)
            if U is not None:
                self._recycle_U = U
                self._rebuild_preconditioner()
                if self.recorder.enabled:
                    self.recorder.event(
                        "batch.recycle",
                        attrs={"vectors": int(U.shape[1]),
                               "coarse_dim": self.coarse_dim})
        return SolveReport(
            x=self.solver.problem.extend(res.x), krylov=res,
            timer=self.solver.timer,
            num_subdomains=self.decomposition.num_subdomains,
            coarse_dim=self.coarse_dim, nu=self.solver.nu)

    def reset_recycling(self) -> None:
        """Drop the harvested subspace and return to the base
        preconditioner."""
        self._recycle_U = None
        self._coarse = None
        self._preconditioner = self.solver.preconditioner

    # ------------------------------------------------------------------
    def _make_profiler(self) -> SolveProfiler:
        profiler = SolveProfiler(recorder=self.recorder)
        coarse = self._coarse if self._coarse is not None \
            else self.solver.coarse
        if coarse is not None:
            coarse.profiler = profiler
        return profiler

    def _rebuild_preconditioner(self) -> None:
        """Swap in a preconditioner whose coarse space is the GenEO
        deflation augmented by the current recycle block.

        Only the coarse operator is rebuilt (a dense-ish ``m × m``
        assembly and factorization, m = coarse_dim + recycle_dim); the
        expensive per-subdomain state is reused untouched.  The harvest
        *replaces* the previous one, so repeated recycling does not grow
        the coarse problem without bound.
        """
        solver = self.solver
        space = recycled_deflation(self.decomposition, self._recycle_U,
                                   base=solver.deflation)
        with self.recorder.span("recycle_coarse"):
            coarse = CoarseOperator(space,
                                    backend=solver.coarse_backend,
                                    parallel=solver.parallel,
                                    recorder=self.recorder,
                                    kernels=solver.kernels,
                                    strategy=getattr(solver,
                                                     "coarse_strategy",
                                                     None))
        base = solver.preconditioner
        if isinstance(base, (TwoLevelADEF1, TwoLevelADEF2, TwoLevelBNN)):
            cls = type(base)
            one_level = base.ras if hasattr(base, "ras") else base.one_level
        else:
            # a one-level solver gains a coarse level made purely of
            # recycled Ritz vectors — the a-posteriori construction of
            # the paper's outlook (core/ritz.py), fed by real solves
            cls = TwoLevelADEF1
            one_level = solver.one_level
        self._coarse = coarse
        self._preconditioner = cls(one_level, coarse)
