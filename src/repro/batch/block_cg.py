"""Preconditioned block conjugate gradients (O'Leary 1980).

The SPD companion of :mod:`.block_gmres`: every block iteration costs
one block matvec, one block preconditioner application (a single coarse
solve for the whole block with the two-level methods) and two small
``p × p`` linear solves — the block generalisations of CG's α and β
scalars.  All right-hand sides share the Krylov information, which is
what makes block CG converge in fewer iterations than p independent CG
runs on clustered spectra.

Converged columns are deflated by restart: when a column reaches its
target the iteration records it, drops it from the block and restarts
on the survivors (their current iterates are the warm start, so no
progress is lost — only the active Krylov space is rebuilt).  A width-1
block reduces to ordinary PCG.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import KrylovError
from ..krylov.profile import SolveProfiler
from .block_gmres import BlockKrylovResult


def _block_solve(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve the small p×p system, falling back to least squares when a
    deflating block makes it (numerically) singular."""
    try:
        return np.linalg.solve(A, B)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(A, B, rcond=None)[0]


def block_cg(A_block, B: np.ndarray, *, M_block=None,
             X0: np.ndarray | None = None, tol: float = 1e-6,
             maxiter: int = 1000,
             profiler: SolveProfiler | None = None,
             callback=None) -> BlockKrylovResult:
    """Solve the SPD system ``A X = B`` column-wise with block PCG.

    Parameters mirror :func:`~repro.batch.block_gmres.block_gmres`
    (there is no ``restart`` — CG needs no basis storage).  ``M_block``
    must be a symmetric positive definite preconditioner for the
    convergence theory to hold (ASM / BNN, not RAS).
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise KrylovError(f"B must be a column block, got ndim={B.ndim}")
    n, p = B.shape
    prof = profiler if profiler is not None else SolveProfiler()
    M = (lambda X: X) if M_block is None else M_block

    X = np.zeros((n, p)) if X0 is None \
        else np.array(X0, dtype=np.float64, copy=True)
    bnorms = np.linalg.norm(B, axis=0)
    zero_cols = bnorms == 0.0
    X[:, zero_cols] = 0.0
    targets = tol * np.where(zero_cols, 1.0, bnorms)
    scale = np.where(zero_cols, 1.0, bnorms)

    col_iters = np.full(p, -1, dtype=np.int64)
    final_res = np.zeros(p)
    history: list[float] = []
    it = 0
    for c in np.flatnonzero(zero_cols):
        col_iters[c] = 0
        prof.column_converged(0, int(c), 0.0)
    active = np.flatnonzero(~zero_cols)

    while active.size and it < maxiter:
        with prof.phase("matvec"):
            R = B[:, active] - A_block(X[:, active])
        rn = np.linalg.norm(R, axis=0)
        done = rn <= targets[active]
        if done.any():
            for c, r in zip(active[done], rn[done]):
                col_iters[c] = it
                final_res[c] = r / scale[c]
                prof.column_converged(it, int(c), float(r / scale[c]))
            active = active[~done]
            R = R[:, ~done]
            if not active.size:
                break
        with prof.phase("apply"):
            Z = M(R)
        P = Z.copy()
        RZ = R.T @ Z
        deflate = False
        while it < maxiter and not deflate:
            with prof.phase("matvec"):
                Q = A_block(P)
            with prof.phase("orthogonalization"):
                alpha = _block_solve(P.T @ Q, RZ)
            X[:, active] += P @ alpha
            R -= Q @ alpha
            it += 1
            rn = np.linalg.norm(R, axis=0)
            rel = rn / scale[active]
            worst = float(rel.max())
            history.append(worst)
            prof.iteration(it, worst)
            if callback is not None:
                callback(it, worst)
            final_res[active] = rel
            if np.any(rn <= targets[active]):
                # a column converged: deflate it through the outer
                # restart (survivors warm-start from their iterates)
                deflate = True
                break
            with prof.phase("apply"):
                Z = M(R)
            with prof.phase("orthogonalization"):
                RZ_new = R.T @ Z
                beta = _block_solve(RZ, RZ_new)
            P = Z + P @ beta
            RZ = RZ_new

    # record any columns that converged exactly at the budget edge
    if active.size:
        with prof.phase("matvec"):
            R = B[:, active] - A_block(X[:, active])
        rn = np.linalg.norm(R, axis=0)
        done = rn <= targets[active]
        for c, r in zip(active[done], rn[done]):
            col_iters[c] = it
            final_res[c] = r / scale[c]
            prof.column_converged(it, int(c), float(r / scale[c]))
        final_res[active] = rn / scale[active]
        active = active[~done]

    return BlockKrylovResult(
        X=X, iterations=it, column_iterations=col_iters,
        final_residuals=final_res, residuals=history,
        converged=bool(active.size == 0), profile=prof.as_dict())
