"""k-way partitioning by recursive bisection, plus coordinate bisection.

Recursive bisection with proportional targets handles any number of parts
(not only powers of two), matching how METIS's recursive mode is used for
the paper's decompositions.  Recursive coordinate bisection (RCB) is the
geometric fallback: cheaper, deterministic, and useful in tests because
its subdomains are guaranteed box-like.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import PartitionError
from .multilevel import multilevel_bisect


def enforce_connected(adj: sp.csr_matrix, part: np.ndarray) -> np.ndarray:
    """Reassign stray components so every part induces a connected graph.

    Recursive bisection can leave a part split into several components;
    a disconnected subdomain has a larger Neumann kernel (one set of
    rigid modes *per component*), which silently degrades GenEO with a
    fixed ν.  Every component except each part's largest is merged into
    the neighbouring part it touches most.
    """
    from scipy.sparse.csgraph import connected_components

    adj = adj.tocsr()
    part = np.asarray(part, dtype=np.int64).copy()
    nparts = int(part.max()) + 1
    for _ in range(nparts):                     # fixpoint; usually 1 pass
        changed = False
        for p in range(nparts):
            ids = np.flatnonzero(part == p)
            if ids.size == 0:
                continue
            sub = adj[ids][:, ids]
            ncomp, labels = connected_components(sub, directed=False)
            if ncomp <= 1:
                continue
            sizes = np.bincount(labels)
            keep = int(np.argmax(sizes))
            for c in range(ncomp):
                if c == keep:
                    continue
                stray = ids[labels == c]
                # most-touched neighbouring part
                votes: dict[int, float] = {}
                for v in stray:
                    for k in range(adj.indptr[v], adj.indptr[v + 1]):
                        q = part[adj.indices[k]]
                        if q != p:
                            votes[q] = votes.get(q, 0.0) + adj.data[k]
                if votes:
                    part[stray] = max(votes, key=votes.get)
                    changed = True
        if not changed:
            break
    return part


def partition_graph(adj: sp.csr_matrix, nparts: int, *,
                    vwgt: np.ndarray | None = None,
                    seed: int = 0) -> np.ndarray:
    """Partition a graph into *nparts* balanced parts (recursive bisection).

    Parameters
    ----------
    adj:
        Symmetric adjacency (CSR); edge weights are respected.
    nparts:
        Number of parts, >= 1.
    vwgt:
        Optional vertex weights (default: unit).

    Returns
    -------
    ``(n,)`` int array of part ids in ``[0, nparts)``.
    """
    n = adj.shape[0]
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    if nparts > n:
        raise PartitionError(f"nparts={nparts} exceeds graph size {n}")
    if vwgt is None:
        vwgt = np.ones(n)
    part = np.zeros(n, dtype=np.int64)
    _recurse(adj.tocsr(), np.asarray(vwgt, dtype=np.float64),
             np.arange(n), nparts, 0, part, seed)
    part = enforce_connected(adj, part)
    # merging strays can empty a part; re-seed any empty part greedily
    for p in range(nparts):
        if not np.any(part == p):
            big = int(np.argmax(np.bincount(part, minlength=nparts)))
            ids = np.flatnonzero(part == big)
            part[ids[:max(1, ids.size // 2)]] = p
    return part


def _recurse(adj, vwgt, ids, nparts, offset, out, seed):
    if nparts == 1:
        out[ids] = offset
        return
    k0 = nparts // 2
    frac0 = k0 / nparts
    sub_adj = adj[ids][:, ids].tocsr()
    side = multilevel_bisect(sub_adj, vwgt[ids], frac0, seed=seed)
    left = ids[side == 0]
    right = ids[side == 1]
    if left.size == 0 or right.size == 0:
        # degenerate bisection (tiny graph): split by index
        half = max(1, int(round(ids.size * frac0)))
        left, right = ids[:half], ids[half:]
    _recurse(adj, vwgt, left, k0, offset, out, seed + 1)
    _recurse(adj, vwgt, right, nparts - k0, offset + k0, out, seed + 2)


def partition_rcb(points: np.ndarray, nparts: int) -> np.ndarray:
    """Recursive coordinate bisection of *points* into *nparts* parts.

    Splits along the longest axis at the weighted median; handles any
    *nparts* via proportional splits.  Deterministic.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    if nparts > n:
        raise PartitionError(f"nparts={nparts} exceeds point count {n}")
    part = np.zeros(n, dtype=np.int64)
    _rcb_recurse(points, np.arange(n), nparts, 0, part)
    return part


def _rcb_recurse(points, ids, nparts, offset, out):
    if nparts == 1:
        out[ids] = offset
        return
    k0 = nparts // 2
    pts = points[ids]
    axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
    order = np.argsort(pts[:, axis], kind="stable")
    split = int(round(ids.size * (k0 / nparts)))
    split = min(max(split, 1), ids.size - 1)
    left = ids[order[:split]]
    right = ids[order[split:]]
    _rcb_recurse(points, left, k0, offset, out)
    _rcb_recurse(points, right, nparts - k0, offset + k0, out)
