"""Partition quality metrics: balance, edge cut, connectivity.

These are the quantities a METIS user checks; the test suite asserts them
and the benchmark harness reports them (they drive the coarse-operator
sparsity |O_i| of figure 11).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components


def part_weights(part: np.ndarray, vwgt: np.ndarray | None = None,
                 nparts: int | None = None) -> np.ndarray:
    """Total vertex weight per part."""
    part = np.asarray(part)
    if nparts is None:
        nparts = int(part.max()) + 1
    if vwgt is None:
        vwgt = np.ones(part.shape[0])
    w = np.zeros(nparts)
    np.add.at(w, part, vwgt)
    return w


def imbalance(part: np.ndarray, vwgt: np.ndarray | None = None,
              nparts: int | None = None) -> float:
    """max(part weight) / mean(part weight) − 1; 0 = perfect balance."""
    w = part_weights(part, vwgt, nparts)
    return float(w.max() / w.mean() - 1.0)


def edge_cut(adj: sp.spmatrix, part: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    coo = adj.tocoo()
    mask = part[coo.row] != part[coo.col]
    return float(coo.data[mask].sum()) / 2.0


def parts_connected(adj: sp.spmatrix, part: np.ndarray) -> bool:
    """True iff the induced subgraph of every part is connected."""
    adj = adj.tocsr()
    for p in np.unique(part):
        ids = np.flatnonzero(part == p)
        sub = adj[ids][:, ids]
        ncomp, _ = connected_components(sub, directed=False)
        if ncomp > 1:
            return False
    return True


def neighbour_counts(adj: sp.spmatrix, part: np.ndarray) -> np.ndarray:
    """Number of distinct neighbouring parts per part (graph-level |O_i|)."""
    coo = adj.tocoo()
    pi, pj = part[coo.row], part[coo.col]
    cross = pi != pj
    pairs = np.unique(np.column_stack([pi[cross], pj[cross]]), axis=0)
    nparts = int(part.max()) + 1
    counts = np.zeros(nparts, dtype=np.int64)
    np.add.at(counts, pairs[:, 0], 1)
    return counts
