"""Graph/mesh partitioning substrate (the paper's METIS/SCOTCH role)."""

from __future__ import annotations

import numpy as np

from ..common.errors import PartitionError
from ..mesh import SimplexMesh
from .kway import partition_graph, partition_rcb
from .metrics import edge_cut, imbalance, neighbour_counts, part_weights, parts_connected
from .kway import enforce_connected
from .multilevel import multilevel_bisect
from .spectral import fiedler_vector, partition_spectral


def partition_mesh(mesh: SimplexMesh, nparts: int, *, method: str = "multilevel",
                   seed: int = 0) -> np.ndarray:
    """Partition a mesh's cells into *nparts* subdomains.

    ``method`` is ``"multilevel"`` (METIS-like, on the dual graph) or
    ``"rcb"`` (recursive coordinate bisection of cell centroids).
    Returns a per-cell part array.
    """
    if method == "multilevel":
        return partition_graph(mesh.dual_graph, nparts, seed=seed)
    if method == "rcb":
        return partition_rcb(mesh.cell_centroids(), nparts)
    if method == "spectral":
        return partition_spectral(mesh.dual_graph, nparts, seed=seed)
    raise PartitionError(f"unknown partition method {method!r} "
                         "(expected 'multilevel', 'rcb' or 'spectral')")


__all__ = [
    "partition_mesh",
    "partition_spectral",
    "fiedler_vector",
    "enforce_connected",
    "partition_graph",
    "partition_rcb",
    "multilevel_bisect",
    "edge_cut",
    "imbalance",
    "part_weights",
    "parts_connected",
    "neighbour_counts",
]
