"""Multilevel graph bisection in the METIS style.

The paper partitions its meshes with METIS/SCOTCH.  This module implements
the same three-phase multilevel scheme from scratch:

1. **Coarsening** — heavy-edge matching collapses matched vertex pairs
   until the graph is small;
2. **Initial partition** — greedy graph growing from a pseudo-peripheral
   seed on the coarsest graph, best of several seeds;
3. **Uncoarsening + refinement** — project the partition back up and run
   Fiduccia–Mattheyses-style boundary refinement sweeps at every level.

Only bisection lives here; k-way partitioning is recursive bisection in
:mod:`repro.partition.kway`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import PartitionError

#: stop coarsening below this many vertices
_COARSE_LIMIT = 64
#: stop coarsening when a level shrinks by less than this factor
_MIN_SHRINK = 0.9
#: FM refinement sweeps per level
_FM_SWEEPS = 4


def _symmetrize(adj: sp.csr_matrix) -> sp.csr_matrix:
    a = adj.tocsr().astype(np.float64)
    a = a.maximum(a.T)
    a.setdiag(0)
    a.eliminate_zeros()
    return a


def heavy_edge_matching(adj: sp.csr_matrix, rng: np.random.Generator) -> np.ndarray:
    """Greedy heavy-edge matching.

    Returns ``match`` where ``match[v]`` is v's partner (or v itself when
    unmatched).  Vertices are visited in random order; each unmatched
    vertex grabs its heaviest unmatched neighbour.
    """
    n = adj.shape[0]
    match = np.full(n, -1, dtype=np.int64)
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    order = rng.permutation(n)
    for v in order:
        if match[v] != -1:
            continue
        best, best_w = v, -1.0
        for k in range(indptr[v], indptr[v + 1]):
            u = indices[k]
            if u != v and match[u] == -1 and data[k] > best_w:
                best, best_w = u, data[k]
        match[v] = best
        match[best] = v
    return match


def coarsen(adj: sp.csr_matrix, vwgt: np.ndarray,
            rng: np.random.Generator):
    """One coarsening level: returns ``(coarse_adj, coarse_vwgt, cmap)``
    where ``cmap[v]`` is the coarse vertex containing fine vertex v."""
    n = adj.shape[0]
    match = heavy_edge_matching(adj, rng)
    cmap = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        u = match[v]
        cmap[v] = nxt
        cmap[u] = nxt          # u == v when unmatched
        nxt += 1
    nc = nxt
    # contract: coarse adjacency via triple product P^T A P
    P = sp.coo_matrix((np.ones(n), (np.arange(n), cmap)), shape=(n, nc)).tocsr()
    cadj = (P.T @ adj @ P).tocsr()
    cadj.setdiag(0)
    cadj.eliminate_zeros()
    cvwgt = np.zeros(nc)
    np.add.at(cvwgt, cmap, vwgt)
    return cadj, cvwgt, cmap


def _pseudo_peripheral(adj: sp.csr_matrix, start: int) -> int:
    """A vertex roughly at maximal graph distance from *start* (two BFS)."""
    for _ in range(2):
        dist = _bfs_levels(adj, start)
        reachable = dist >= 0
        start = int(np.argmax(np.where(reachable, dist, -1)))
    return start


def _bfs_levels(adj: sp.csr_matrix, source: int) -> np.ndarray:
    n = adj.shape[0]
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    indptr, indices = adj.indptr, adj.indices
    level = 0
    while frontier:
        level += 1
        nxt = []
        for v in frontier:
            for k in range(indptr[v], indptr[v + 1]):
                u = indices[k]
                if dist[u] == -1:
                    dist[u] = level
                    nxt.append(u)
        frontier = nxt
    return dist


def grow_bisection(adj: sp.csr_matrix, vwgt: np.ndarray, target0: float,
                   seed_vertex: int) -> np.ndarray:
    """Greedy graph-growing bisection from *seed_vertex*.

    Grows part 0 by repeatedly absorbing the frontier vertex with the
    largest connectivity to part 0 until its weight reaches *target0*.
    """
    n = adj.shape[0]
    part = np.ones(n, dtype=np.int8)
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    in0 = np.zeros(n, dtype=bool)
    gain = np.zeros(n)
    w0 = 0.0
    v = seed_vertex
    while True:
        in0[v] = True
        part[v] = 0
        w0 += vwgt[v]
        if w0 >= target0:
            break
        for k in range(indptr[v], indptr[v + 1]):
            u = indices[k]
            if not in0[u]:
                gain[u] += data[k]
        gain[v] = -np.inf
        cand = np.where(in0, -np.inf, gain)
        v = int(np.argmax(cand))
        if not np.isfinite(cand[v]):
            # disconnected remainder: restart growth from any unassigned vertex
            rest = np.flatnonzero(~in0)
            if rest.size == 0:
                break
            v = int(rest[0])
    return part


def cut_weight(adj: sp.csr_matrix, part: np.ndarray) -> float:
    """Total weight of edges crossing the bisection."""
    coo = adj.tocoo()
    mask = part[coo.row] != part[coo.col]
    return float(coo.data[mask].sum()) / 2.0


def fm_refine(adj: sp.csr_matrix, vwgt: np.ndarray, part: np.ndarray,
              target0: float, imbalance: float = 0.02,
              sweeps: int = _FM_SWEEPS) -> np.ndarray:
    """Boundary Fiduccia–Mattheyses refinement.

    Greedy passes over boundary vertices moving the best-gain vertex
    subject to the balance constraint, with hill-climbing rollback (the
    classic FM "best prefix" rule, simplified to non-negative-gain moves
    plus balance-improving moves).
    """
    part = part.astype(np.int8).copy()
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    total = float(vwgt.sum())
    lo0 = target0 - imbalance * total
    hi0 = target0 + imbalance * total
    w0 = float(vwgt[part == 0].sum())

    for _ in range(sweeps):
        # internal/external connectivity per vertex
        moved_any = False
        # gains: moving v to the other side changes cut by (int - ext)
        ext = np.zeros(adj.shape[0])
        internal = np.zeros(adj.shape[0])
        coo = adj.tocoo()
        same = part[coo.row] == part[coo.col]
        np.add.at(internal, coo.row[same], coo.data[same])
        np.add.at(ext, coo.row[~same], coo.data[~same])
        gain = ext - internal
        boundary = np.flatnonzero(ext > 0)
        order = boundary[np.argsort(-gain[boundary])]
        for v in order:
            g = gain[v]
            if g < 0:
                break
            if part[v] == 0:
                nw0 = w0 - vwgt[v]
            else:
                nw0 = w0 + vwgt[v]
            if not (lo0 <= nw0 <= hi0):
                continue
            # apply the move and update neighbour gains incrementally
            old = part[v]
            part[v] = 1 - old
            w0 = nw0
            moved_any = True
            gain[v] = -gain[v]
            for k in range(indptr[v], indptr[v + 1]):
                u = indices[k]
                w = data[k]
                if part[u] == old:
                    gain[u] += 2 * w
                else:
                    gain[u] -= 2 * w
        if not moved_any:
            break
    part = _force_balance(adj, vwgt, part, target0, imbalance)
    return part


def _force_balance(adj: sp.csr_matrix, vwgt: np.ndarray, part: np.ndarray,
                   target0: float, imbalance: float) -> np.ndarray:
    """Move least-damaging boundary vertices from the heavy side until the
    bisection is within tolerance (FM alone can leave compounding drift
    when used inside a deep recursive-bisection tree)."""
    part = part.copy()
    total = float(vwgt.sum())
    lo0 = target0 - imbalance * total
    hi0 = target0 + imbalance * total
    w0 = float(vwgt[part == 0].sum())
    max_moves = adj.shape[0]
    moves = 0
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    while (w0 < lo0 or w0 > hi0) and moves < max_moves:
        heavy = 1 if w0 < lo0 else 0
        coo = adj.tocoo()
        ext = np.zeros(adj.shape[0])
        internal = np.zeros(adj.shape[0])
        same = part[coo.row] == part[coo.col]
        np.add.at(internal, coo.row[same], coo.data[same])
        np.add.at(ext, coo.row[~same], coo.data[~same])
        gain = ext - internal
        cand = np.flatnonzero((part == heavy) & (ext > 0))
        if cand.size == 0:
            cand = np.flatnonzero(part == heavy)
            if cand.size == 0:
                break
        v = cand[int(np.argmax(gain[cand]))]
        part[v] = 1 - heavy
        w0 += vwgt[v] if heavy == 1 else -vwgt[v]
        moves += 1
    return part


def multilevel_bisect(adj: sp.csr_matrix, vwgt: np.ndarray,
                      frac0: float = 0.5, *, seed: int = 0,
                      n_trials: int = 4) -> np.ndarray:
    """Bisect a weighted graph, part 0 receiving ``frac0`` of the weight.

    Returns a 0/1 array over vertices.
    """
    adj = _symmetrize(adj)
    n = adj.shape[0]
    vwgt = np.asarray(vwgt, dtype=np.float64)
    if vwgt.shape != (n,):
        raise PartitionError(f"vwgt must have shape ({n},), got {vwgt.shape}")
    if not (0.0 < frac0 < 1.0):
        raise PartitionError(f"frac0 must be in (0, 1), got {frac0}")
    rng = np.random.default_rng(seed)

    # ---- coarsening phase
    graphs = [(adj, vwgt)]
    cmaps = []
    while graphs[-1][0].shape[0] > _COARSE_LIMIT:
        cadj, cvwgt, cmap = coarsen(graphs[-1][0], graphs[-1][1], rng)
        if cadj.shape[0] > _MIN_SHRINK * graphs[-1][0].shape[0]:
            break
        graphs.append((cadj, cvwgt))
        cmaps.append(cmap)

    cadj, cvwgt = graphs[-1]
    target0 = frac0 * float(cvwgt.sum())

    # ---- initial partition: best of several grown bisections
    best_part, best_cut = None, np.inf
    noniso = np.flatnonzero(np.diff(cadj.indptr) > 0)
    seeds = []
    if noniso.size:
        seeds.append(_pseudo_peripheral(cadj, int(noniso[0])))
    seeds.extend(int(s) for s in
                 rng.integers(0, cadj.shape[0], size=max(0, n_trials - 1)))
    for sv in seeds:
        p = grow_bisection(cadj, cvwgt, target0, sv)
        p = fm_refine(cadj, cvwgt, p, target0)
        c = cut_weight(cadj, p)
        if c < best_cut:
            best_part, best_cut = p, c
    part = best_part

    # ---- uncoarsening + refinement
    for (fadj, fvwgt), cmap in zip(reversed(graphs[:-1]), reversed(cmaps)):
        part = part[cmap]
        part = fm_refine(fadj, fvwgt, part,
                         frac0 * float(fvwgt.sum()))
    return part.astype(np.int8)
