"""Spectral bisection: the Fiedler-vector partitioner.

A third partitioning backend built on this package's own Lanczos
eigensolver (:mod:`repro.eigen`): split at the median of the second
eigenvector of the graph Laplacian.  Slower than multilevel but produces
smooth cuts; mainly a cross-check and a showcase of substrate reuse.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import PartitionError
from ..eigen import lanczos_generalized
from ..solvers import factorize


def graph_laplacian(adj: sp.spmatrix) -> sp.csr_matrix:
    """Combinatorial Laplacian L = D − A of a symmetric adjacency."""
    A = adj.tocsr().astype(np.float64)
    A = A.maximum(A.T)
    A.setdiag(0)
    A.eliminate_zeros()
    deg = np.asarray(A.sum(axis=1)).ravel()
    return (sp.diags(deg) - A).tocsr()


def fiedler_vector(adj: sp.spmatrix, *, seed: int = 0) -> np.ndarray:
    """Second-smallest Laplacian eigenvector (the Fiedler vector).

    Computed with the package's generalized Lanczos on the inverted,
    shifted pencil: largest μ of ``(I − 𝟙𝟙ᵀ/n) v = μ (L + σI) v``
    restricted off the constant vector.
    """
    n = adj.shape[0]
    if n < 2:
        raise PartitionError("fiedler_vector needs at least 2 vertices")
    L = graph_laplacian(adj)
    sigma = 1e-8 * max(float(L.diagonal().max()), 1.0)
    M = (L + sigma * sp.eye(n, format="csr")).tocsr()
    Mf = factorize(M, "superlu")
    ones = np.ones(n) / np.sqrt(n)

    def project(v):
        return v - ones * (ones @ v)

    def B_mul(v):
        return project(v)

    res = lanczos_generalized(B_mul, Mf, lambda v: M @ v, n,
                              nev=1, seed=seed)
    vec = project(res.vectors[:, 0])
    nrm = np.linalg.norm(vec)
    if nrm < 1e-12:  # pragma: no cover - disconnected degenerate start
        raise PartitionError("failed to compute a Fiedler vector "
                             "(disconnected graph?)")
    return vec / nrm


def spectral_bisect(adj: sp.spmatrix, *, seed: int = 0) -> np.ndarray:
    """0/1 bisection at the median of the Fiedler vector."""
    f = fiedler_vector(adj, seed=seed)
    med = np.median(f)
    side = (f > med).astype(np.int8)
    # break ties at the median to keep the halves balanced
    ties = np.flatnonzero(f == med)
    need = adj.shape[0] // 2 - int(side.sum())
    for t in ties[:max(0, need)]:
        side[t] = 1
    return side


def partition_spectral(adj: sp.spmatrix, nparts: int, *,
                       seed: int = 0) -> np.ndarray:
    """k-way spectral partitioning by recursive Fiedler bisection."""
    n = adj.shape[0]
    if nparts < 1 or nparts > n:
        raise PartitionError(f"invalid nparts={nparts} for n={n}")
    part = np.zeros(n, dtype=np.int64)

    def recurse(ids, k, offset):
        if k == 1:
            part[ids] = offset
            return
        sub = adj.tocsr()[ids][:, ids]
        side = spectral_bisect(sub, seed=seed)
        k0 = k // 2
        # proportional split along the Fiedler ordering
        f = fiedler_vector(sub, seed=seed)
        order = np.argsort(f, kind="stable")
        cut = int(round(ids.size * k0 / k))
        cut = min(max(cut, 1), ids.size - 1)
        left = ids[order[:cut]]
        right = ids[order[cut:]]
        recurse(left, k0, offset)
        recurse(right, k - k0, offset + k0)

    recurse(np.arange(n), nparts, 0)
    return part
