"""Nonlinear extensions (the paper's conclusion/outlook)."""

from .picard import NonlinearReport, PicardSolver

__all__ = ["PicardSolver", "NonlinearReport"]
