"""Nonlinear elliptic problems via Picard (frozen-coefficient) iteration.

The paper's conclusion announces nonlinear solid-mechanics experiments
as the framework's next target.  This module implements the natural
first step: quasilinear problems

    −∇·(κ(x, u) ∇u) = f

solved by Picard iteration — freeze κ at the current iterate, solve the
resulting *linear* heterogeneous problem with the two-level GenEO
preconditioner, repeat.  Because the linearised operator changes every
step, the module exposes the paper-relevant design choice as a knob:

* ``coarse="rebuild"`` — solve each step's GenEO eigenproblems afresh
  (robust, pays the *deflation* column of fig. 8 every step);
* ``coarse="reuse"``   — keep the first step's deflation vectors and
  only re-assemble E against the new operator (cheap; the spectral
  content usually drifts slowly between Picard steps);
* ``coarse="freeze"``  — keep the entire first-step preconditioner
  (cheapest; pairs with FGMRES since the preconditioner no longer
  matches the operator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ReproError
from ..common.timing import PhaseTimer
from ..core.adef import TwoLevelADEF1
from ..core.coarse import CoarseOperator
from ..core.deflation import DeflationSpace
from ..core.geneo import compute_deflation
from ..core.ras import OneLevelRAS
from ..dd.decomposition import Decomposition
from ..dd.problem import Problem
from ..fem.forms import DiffusionForm
from ..krylov import gmres
from ..mesh import SimplexMesh
from ..partition import partition_mesh


@dataclass
class NonlinearReport:
    """Outcome of a Picard solve."""

    x: np.ndarray                      # full-dof solution
    picard_iterations: int
    linear_iterations: list[int] = field(default_factory=list)
    updates: list[float] = field(default_factory=list)
    converged: bool = True
    timer: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def total_linear_iterations(self) -> int:
        return int(sum(self.linear_iterations))


class PicardSolver:
    """Two-level Schwarz inside a Picard loop for −∇·(κ(x,u)∇u) = f.

    Parameters
    ----------
    mesh:
        Geometry.
    kappa_of_u:
        Callable ``(cell_values_of_u, centroids) -> per-cell κ`` giving
        the frozen coefficient for the next linear solve.  ``u`` is
        passed as per-cell averages of the current iterate.
    f:
        Source term (constant or callable), as in
        :class:`~repro.fem.forms.DiffusionForm`.
    degree, num_subdomains, delta, nev:
        As in :class:`~repro.core.solver.SchwarzSolver`.
    coarse:
        "rebuild" | "reuse" | "freeze" (see module docstring).
    """

    def __init__(self, mesh: SimplexMesh, kappa_of_u, *, f=1.0,
                 degree: int = 2, num_subdomains: int = 8, delta: int = 1,
                 nev: int = 8, coarse: str = "reuse", dirichlet=None,
                 seed: int = 0):
        if coarse not in ("rebuild", "reuse", "freeze"):
            raise ReproError(f"unknown coarse strategy {coarse!r}")
        self.mesh = mesh
        self.kappa_of_u = kappa_of_u
        self.f = f
        self.degree = degree
        self.num_subdomains = num_subdomains
        self.delta = delta
        self.nev = nev
        self.coarse_strategy = coarse
        self.dirichlet = dirichlet
        self.seed = seed
        self.part = partition_mesh(mesh, num_subdomains, seed=seed)
        self._frozen_pre = None
        self._frozen_W = None

    # ------------------------------------------------------------------
    def _cell_average(self, problem: Problem, x_full: np.ndarray) -> np.ndarray:
        """Per-cell average of the P1-part of the current iterate (the
        vertex dofs always come first in the scalar numbering)."""
        vertex_vals = x_full[:self.mesh.num_vertices]
        return vertex_vals[self.mesh.cells].mean(axis=1)

    def _linear_setup(self, kappa, timer: PhaseTimer):
        form = DiffusionForm(degree=self.degree, kappa=kappa, f=self.f)
        problem = Problem(self.mesh, form, dirichlet=self.dirichlet,
                          scaling="jacobi")
        with timer.phase("decomposition"):
            dec = Decomposition(problem, self.part, delta=self.delta)
        with timer.phase("factorization"):
            ras = OneLevelRAS(dec)
        if self.coarse_strategy == "freeze" and self._frozen_pre is not None:
            # keep the old preconditioner entirely (operator changed!)
            return problem, dec, self._frozen_pre
        if self.coarse_strategy == "reuse" and self._frozen_W is not None:
            W = self._frozen_W
        else:
            with timer.phase("deflation"):
                W = [compute_deflation(s, nev=self.nev,
                                       seed=self.seed + s.index).W
                     for s in dec.subdomains]
            self._frozen_W = W
        with timer.phase("coarse"):
            space = DeflationSpace(dec, W)
            pre = TwoLevelADEF1(ras, CoarseOperator(space))
        if self._frozen_pre is None:
            self._frozen_pre = pre
        return problem, dec, pre

    # ------------------------------------------------------------------
    def solve(self, *, tol: float = 1e-8, picard_tol: float = 1e-6,
              max_picard: int = 30, linear_tol: float = 1e-8,
              restart: int = 60, maxiter: int = 400,
              u0: np.ndarray | None = None) -> NonlinearReport:
        """Run the Picard loop until the relative update ‖u⁺−u‖/‖u⁺‖
        drops below *picard_tol*."""
        timer = PhaseTimer()
        centroids = self.mesh.cell_centroids()
        # initial coefficient from u = 0 (or the supplied start)
        n_report = NonlinearReport(x=np.zeros(0), picard_iterations=0,
                                   timer=timer)
        x_full = u0
        u_cells = (np.zeros(self.mesh.num_cells) if u0 is None
                   else self._cell_average_init(u0))
        for it in range(1, max_picard + 1):
            kappa = np.asarray(self.kappa_of_u(u_cells, centroids),
                               dtype=np.float64)
            if kappa.shape != (self.mesh.num_cells,):
                raise ReproError(
                    f"kappa_of_u must return ({self.mesh.num_cells},), "
                    f"got {kappa.shape}")
            if np.any(kappa <= 0):
                raise ReproError("kappa_of_u produced non-positive "
                                 "diffusivity")
            problem, dec, pre = self._linear_setup(kappa, timer)
            b = problem.rhs()
            with timer.phase("solution"):
                res = gmres(dec.matvec, b, M=pre.apply, tol=linear_tol,
                            restart=restart, maxiter=maxiter)
            x_new = problem.extend(res.x)
            n_report.linear_iterations.append(res.iterations)
            if x_full is None:
                update = np.inf
            else:
                denom = max(np.linalg.norm(x_new), 1e-300)
                update = float(np.linalg.norm(x_new - x_full) / denom)
                n_report.updates.append(update)
            x_full = x_new
            u_cells = self._cell_average(problem, x_full)
            n_report.picard_iterations = it
            if update <= picard_tol:
                n_report.x = x_full
                n_report.converged = True
                return n_report
        n_report.x = x_full if x_full is not None else np.zeros(0)
        n_report.converged = False
        return n_report

    def _cell_average_init(self, u0: np.ndarray) -> np.ndarray:
        vertex_vals = u0[:self.mesh.num_vertices]
        return vertex_vals[self.mesh.cells].mean(axis=1)
