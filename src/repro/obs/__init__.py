"""Unified telemetry: hierarchical spans, counters, exportable traces.

One :class:`Recorder` threads through setup (``SchwarzSolver`` →
``Decomposition``/``CoarseOperator``), the solve phase (every Krylov
driver), the parallel setup engine and the simulated MPI layer; the four
legacy mechanisms (``PhaseTimer``, ``SolveProfiler``, ``Tracer``,
``Meter``) are thin adapters over it.  See ``docs/observability.md``.
"""

from .export import (
    FORMATS,
    TraceData,
    load_trace,
    render_trace,
    summary,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)
from .recorder import (
    NULL_RECORDER,
    EventRecord,
    NullRecorder,
    Recorder,
    SpanRecord,
    column_iterations,
    iteration_residuals,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SpanRecord",
    "EventRecord",
    "iteration_residuals",
    "column_iterations",
    "FORMATS",
    "TraceData",
    "to_chrome_trace",
    "to_jsonl",
    "summary",
    "write_trace",
    "load_trace",
    "render_trace",
]
