"""Unified telemetry: hierarchical spans, counters, exportable traces.

One :class:`Recorder` threads through setup (``SchwarzSolver`` →
``Decomposition``/``CoarseOperator``), the solve phase (every Krylov
driver), the parallel setup engine and the simulated MPI layer; the four
legacy mechanisms (``PhaseTimer``, ``SolveProfiler``, ``Tracer``,
``Meter``) are thin adapters over it.  See ``docs/observability.md``.

On top of the capture layer sit three analysis surfaces:

* :mod:`repro.obs.analysis` — critical path, load imbalance, comm
  matrix, convergence forensics (the ``repro report`` subcommand);
* :mod:`repro.obs.metrics` — OpenMetrics exposition + JSON snapshot
  (the ``repro metrics`` subcommand / future daemon endpoint);
* :mod:`repro.obs.regress` — baseline comparison over tracked
  ``results/BENCH_*.json`` (the ``repro regress`` subcommand and the
  CI ``perf-regression`` gate).
"""

from .analysis import (
    CommMatrix,
    ConvergenceDiagnostics,
    ImbalanceStat,
    PathStep,
    RunReport,
    analyze,
    comm_matrix,
    convergence_forensics,
    critical_path,
    critical_paths,
    fit_decay_rate,
    load_imbalance,
)
from .export import (
    FORMATS,
    TraceData,
    load_trace,
    render_trace,
    summary,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)
from .metrics import (meter_counters, snapshot, to_openmetrics,
                      validate_openmetrics)
from .recorder import (
    NULL_RECORDER,
    EventRecord,
    NullRecorder,
    Recorder,
    SpanRecord,
    column_iterations,
    iteration_residuals,
)
from .regress import (
    MetricCheck,
    RegressionReport,
    Thresholds,
    compare,
    compare_dirs,
    compare_files,
    inject_slowdown,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SpanRecord",
    "EventRecord",
    "iteration_residuals",
    "column_iterations",
    "FORMATS",
    "TraceData",
    "to_chrome_trace",
    "to_jsonl",
    "summary",
    "write_trace",
    "load_trace",
    "render_trace",
    # analysis
    "analyze",
    "critical_path",
    "critical_paths",
    "load_imbalance",
    "comm_matrix",
    "convergence_forensics",
    "fit_decay_rate",
    "RunReport",
    "PathStep",
    "ImbalanceStat",
    "CommMatrix",
    "ConvergenceDiagnostics",
    # metrics
    "meter_counters",
    "snapshot",
    "to_openmetrics",
    "validate_openmetrics",
    # regression gating
    "compare",
    "compare_files",
    "compare_dirs",
    "inject_slowdown",
    "Thresholds",
    "RegressionReport",
    "MetricCheck",
]
