"""OpenMetrics/Prometheus exposition of recorded telemetry.

The machine-readable metrics surface for the solver-as-a-service
direction: :func:`snapshot` is the JSON shape a daemon's ``/metrics``-
adjacent status endpoint returns, and :func:`to_openmetrics` renders
the same data as OpenMetrics text — counters as ``*_total``, gauges as
gauges, per-span totals as ``repro_span_seconds_total`` /
``repro_span_calls_total`` with a ``span`` label, and the meter's pair
counters as ``repro_mpi_pair_*`` with ``src``/``dst`` labels.

Both accept a live :class:`~repro.obs.Recorder` or a loaded
:class:`~repro.obs.TraceData`, so ``repro metrics <trace>`` works on a
file and the future daemon works on the in-process recorder with the
same code path.
"""

from __future__ import annotations

import re

from .analysis import _PAIR_RE

#: legal OpenMetrics metric-name characters
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
#: one exposition line: ``name{labels} value`` (labels optional)
_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"[-+0-9.eEnaif]+$")


def sanitize(name: str) -> str:
    """Make *name* a legal OpenMetrics metric name."""
    out = _NAME_RE.sub("_", name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    v = float(value)
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def meter_counters(meter) -> dict[str, float]:
    """Counters a :class:`repro.mpi.meter.Meter` holds that are not
    mirrored into a recorder — most importantly the per-kind
    injected-fault counts (``MpiStats.faults``) and the
    retry/repair/rank-death aggregates of fault-tolerant runs.  Only
    nonzero values are exported (a fault-free run adds nothing)."""
    out: dict[str, float] = {}
    for kind, n in sorted(meter.faults_by_kind().items()):
        out[f"mpi.fault.{kind}"] = float(n)
    pairs = (("mpi.retry_attempts", meter.total_retries()),
             ("mpi.retry_recovered", meter.retries_recovered),
             ("mpi.retry_exhausted", meter.retries_exhausted),
             ("mpi.rank_deaths", meter.rank_deaths),
             ("mpi.repairs", meter.repairs),
             ("mpi.ranks_replaced", meter.ranks_replaced))
    for name, value in pairs:
        if value:
            out[name] = float(value)
    return out


def _merged_counters(rec, meter) -> dict[str, float]:
    counters = dict(rec.counters)
    if meter is not None:
        # recorder-fed meters already mirror these into rec.counters;
        # the meter's own tallies win (identical when mirrored, and the
        # only copy on meters constructed without a recorder)
        counters.update(meter_counters(meter))
    return counters


def snapshot(rec, *, extra: dict | None = None, meter=None) -> dict:
    """JSON-ready metrics snapshot: counters, gauges, span totals.

    The structured twin of :func:`to_openmetrics` — what a service
    endpoint returns to programmatic clients (the autotuner reads this
    shape too).  Passing the run's *meter* merges its fault/retry/repair
    tallies into the counters (see :func:`meter_counters`).
    """
    totals = rec.totals() if hasattr(rec, "totals") else {}
    out = {
        "counters": _merged_counters(rec, meter),
        "gauges": dict(rec.gauges),
        "spans": {name: {"seconds": t["seconds"], "count": t["count"]}
                  for name, t in totals.items()},
        "num_events": len(rec.events),
    }
    if extra:
        out.update(extra)
    return out


def to_openmetrics(rec, *, prefix: str = "repro",
                   labels: dict[str, str] | None = None,
                   meter=None) -> str:
    """Render *rec* as an OpenMetrics text exposition.

    *labels* are attached to every sample (e.g. ``{"run": "bench42"}``
    from a daemon serving several cached sessions).  Passing *meter*
    merges its fault/retry/repair tallies (:func:`meter_counters`) into
    the counter blocks.  The output ends with the mandatory ``# EOF``
    marker.
    """
    base = dict(labels or {})
    lines: list[str] = []

    def emit(name: str, mtype: str, help_text: str,
             samples: list[tuple[dict, float]]) -> None:
        lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"# HELP {name} {help_text}")
        for lbl, value in samples:
            lines.append(f"{name}{_label_str(dict(base, **lbl))} "
                         f"{_fmt(value)}")

    def emit_grouped(metric_of, mtype: str, help_of,
                     items: list[tuple[str, float]]) -> None:
        # Distinct raw names may sanitize to the same metric name
        # (``coarse.dim`` and ``coarse_dim``); OpenMetrics forbids
        # repeating a metric block, so colliding names are merged into
        # one block with a ``name`` label carrying the raw spelling.
        groups: dict[str, list[tuple[str, float]]] = {}
        for name, value in items:
            groups.setdefault(metric_of(name), []).append((name, value))
        for metric, members in sorted(groups.items()):
            if len(members) == 1:
                name, value = members[0]
                emit(metric, mtype, help_of(name), [({}, value)])
            else:
                emit(metric, mtype,
                     f"recorded {mtype}s (colliding names merged)",
                     [({"name": name}, value) for name, value in members])

    pair_samples: dict[str, list[tuple[dict, float]]] = {}
    plain_counters: list[tuple[str, float]] = []
    for name, value in sorted(_merged_counters(rec, meter).items()):
        m = _PAIR_RE.match(name)
        if m:
            pair_samples.setdefault(m.group("weight"), []).append(
                ({"src": m.group("src"), "dst": m.group("dst")},
                 float(value)))
        else:
            plain_counters.append((name, float(value)))
    emit_grouped(lambda n: f"{prefix}_{sanitize(n)}_total", "counter",
                 lambda n: f"recorded counter {n}", plain_counters)
    for weight, samples in sorted(pair_samples.items()):
        emit(f"{prefix}_mpi_pair_{weight}_total", "counter",
             f"point-to-point {weight} sent from src to dst", samples)

    emit_grouped(lambda n: f"{prefix}_{sanitize(n)}", "gauge",
                 lambda n: f"recorded gauge {n}",
                 [(n, float(v)) for n, v in sorted(rec.gauges.items())])

    totals = rec.totals() if hasattr(rec, "totals") else {}
    if totals:
        emit(f"{prefix}_span_seconds_total", "counter",
             "accumulated seconds per span name",
             [({"span": name}, t["seconds"])
              for name, t in sorted(totals.items())])
        emit(f"{prefix}_span_calls_total", "counter",
             "span open count per span name",
             [({"span": name}, float(t["count"]))
              for name, t in sorted(totals.items())])
    emit(f"{prefix}_events", "gauge", "recorded instant events",
         [({}, float(len(rec.events)))])
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics(text: str) -> None:
    """Cheap structural validation of an exposition (used in tests and
    by ``repro metrics --check``): every line is a comment or a
    parsable sample, and the exposition ends with ``# EOF``."""
    lines = text.rstrip("\n").split("\n")
    if lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    typed: set[str] = set()
    seen_samples: set[str] = set()
    for ln in lines:
        if ln.startswith("#"):
            m = re.match(r"^# (TYPE|HELP|UNIT|EOF)(?: (\S+))?", ln)
            if not m:
                raise ValueError(f"malformed comment line: {ln!r}")
            if m.group(1) == "TYPE":
                if m.group(2) in typed:
                    raise ValueError(
                        f"duplicate metric block: {m.group(2)!r}")
                typed.add(m.group(2))
            continue
        if not _LINE_RE.match(ln):
            raise ValueError(f"malformed sample line: {ln!r}")
        key = ln.rsplit(" ", 1)[0]
        if key in seen_samples:
            raise ValueError(f"duplicate sample: {key!r}")
        seen_samples.add(key)
