"""The telemetry core: one recorder for spans, counters and events.

The repo used to measure its cost breakdown — the per-phase times of
figs. 8/10, the §3.3 message counts, the reductions §3.5 pipelines away
— with four disconnected mechanisms (``PhaseTimer``, ``SolveProfiler``,
``Tracer``, ``Meter``) that neither nested nor shared a clock.  This
module is the single source of truth they now adapt to:

* **hierarchical spans** — every span opened on a thread nests inside
  the span currently open on that thread, so ``coarse_solve`` sits
  inside ``apply`` *structurally*, not by naming convention;
* **counters and gauges** — monotone tallies (matvecs, coarse solves,
  bytes exchanged — fed by :class:`repro.mpi.meter.Meter`) and
  last-value gauges;
* **instant events** — per-iteration convergence records from the
  Krylov drivers (residual, restart boundary, orthogonality loss).

All clocks are one ``time.perf_counter`` origin (:attr:`Recorder.t0`),
so spans from SPMD rank threads, setup workers and the driver thread
land on a common timeline and can be exported together
(:mod:`repro.obs.export`).

Un-instrumented runs pay ~zero cost: every instrumented call site holds
a :class:`NullRecorder` by default and guards on :attr:`enabled` before
doing any work.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One closed span on the shared timeline (seconds since ``t0``)."""

    name: str
    track: str
    start: float
    end: float
    #: unique id, assigned at open time (ordering of *opens*)
    index: int
    #: :attr:`index` of the enclosing span on the same thread, or None
    parent: int | None = None
    attrs: dict | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class EventRecord:
    """An instant (zero-duration) event."""

    name: str
    track: str
    time: float
    attrs: dict = field(default_factory=dict)


class _SpanHandle:
    """Context manager for one live span (single use)."""

    __slots__ = ("_rec", "_name", "_track", "_attrs", "_start", "_index",
                 "_parent")

    def __init__(self, rec: "Recorder", name: str, track: str | None,
                 attrs: dict | None):
        self._rec = rec
        self._name = name
        self._track = track
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        rec = self._rec
        stack = rec._stack()
        self._parent = stack[-1] if stack else None
        self._index = rec._next_index()
        stack.append(self._index)
        self._start = rec.now()
        return self

    def __exit__(self, *exc) -> bool:
        rec = self._rec
        end = rec.now()
        rec._stack().pop()
        record = SpanRecord(
            name=self._name,
            track=self._track if self._track is not None
            else rec._default_track(),
            start=self._start, end=end, index=self._index,
            parent=self._parent, attrs=self._attrs)
        with rec._lock:
            rec.spans.append(record)
        return False


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The do-nothing recorder: every un-instrumented run's default.

    All methods are O(1) no-ops and :attr:`enabled` is False, so hot
    loops can skip even the call with ``if recorder.enabled: ...``.
    """

    enabled = False
    ring = None
    spans: tuple = ()
    events: tuple = ()
    counters: dict = {}
    gauges: dict = {}

    def span(self, name: str, *, track: str | None = None,
             attrs: dict | None = None):
        return _NULL_SPAN

    def event(self, name: str, *, track: str | None = None,
              attrs: dict | None = None) -> None:
        pass

    def add(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def flight_dump(self) -> dict:
        return {}


#: module-wide shared no-op instance (stateless, safe to share)
NULL_RECORDER = NullRecorder()


class Recorder:
    """Thread-safe telemetry sink: spans, events, counters, gauges.

    Usage::

        rec = Recorder()
        with rec.span("apply"):
            with rec.span("coarse_solve"):   # parent = the apply span
                ...
        rec.add("matvecs")
        rec.event("iteration", attrs={"k": 0, "residual": 1.0})

    Spans nest per thread: the span most recently opened (and not yet
    closed) on the current thread is the parent of the next one.  Spans
    opened on other threads (setup workers, SPMD ranks) start their own
    stacks and render as separate tracks.

    Passing ``ring=K`` turns the recorder into a **flight recorder**:
    spans and events live in bounded ring buffers holding only the last
    *K* records each (counters and gauges stay exact — they are bounded
    by construction).  Memory stays O(K) no matter how long the run, so
    the mode is cheap enough to leave on; when a breakdown fires,
    :meth:`flight_dump` snapshots the buffers into a JSON-ready black
    box that lands in ``SolveReport.resilience["flight_recorder"]``.
    """

    enabled = True

    def __init__(self, *, ring: int | None = None):
        #: perf_counter origin — all recorded times are relative to this
        self.t0 = time.perf_counter()
        #: flight-recorder capacity (None = unbounded, the default)
        self.ring = None if ring is None else max(int(ring), 1)
        if self.ring is None:
            self.spans: list[SpanRecord] = []
            self.events: list[EventRecord] = []
        else:
            self.spans = deque(maxlen=self.ring)
            self.events = deque(maxlen=self.ring)
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._index = 0
        self._num_events = 0

    # -- recording -----------------------------------------------------
    def now(self) -> float:
        """Seconds since this recorder's origin (the shared clock)."""
        return time.perf_counter() - self.t0

    def span(self, name: str, *, track: str | None = None,
             attrs: dict | None = None) -> _SpanHandle:
        """Open a span; use as ``with rec.span("name"): ...``.

        ``track`` labels the timeline row in exports (default: "main"
        for the main thread, the thread name otherwise — SPMD ranks pass
        ``rank{r}``, workers inherit their pool-thread name).
        """
        return _SpanHandle(self, name, track, attrs)

    def event(self, name: str, *, track: str | None = None,
              attrs: dict | None = None) -> None:
        """Record an instant event (e.g. one Krylov iteration)."""
        rec = EventRecord(name, track if track is not None
                          else self._default_track(), self.now(),
                          attrs if attrs is not None else {})
        with self._lock:
            self.events.append(rec)
            self._num_events += 1

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter *name* by *value* (thread-safe)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to its latest *value*."""
        with self._lock:
            self.gauges[name] = value

    # -- internals -----------------------------------------------------
    def _stack(self) -> list[int]:
        try:
            return self._tls.stack
        except AttributeError:
            st = self._tls.stack = []
            return st

    def _next_index(self) -> int:
        with self._lock:
            i = self._index
            self._index += 1
        return i

    def _default_track(self) -> str:
        t = threading.current_thread()
        return "main" if t is threading.main_thread() else t.name

    # -- queries (tests, exporters, reports) ---------------------------
    def find(self, name: str) -> list[SpanRecord]:
        """All closed spans called *name*."""
        return [s for s in self.spans if s.name == name]

    def parent_of(self, span: SpanRecord) -> SpanRecord | None:
        """The enclosing span, or None for a root span."""
        if span.parent is None:
            return None
        by_index = {s.index: s for s in self.spans}
        return by_index.get(span.parent)

    def ancestors_of(self, span: SpanRecord) -> list[SpanRecord]:
        """Chain of enclosing spans, innermost first."""
        by_index = {s.index: s for s in self.spans}
        out = []
        cur = span
        while cur.parent is not None:
            cur = by_index.get(cur.parent)
            if cur is None:
                break
            out.append(cur)
        return out

    def nested_within(self, child: str, parent: str) -> bool:
        """True iff every span named *child* has an ancestor named
        *parent* (and at least one *child* span exists)."""
        children = self.find(child)
        if not children:
            return False
        return all(any(a.name == parent for a in self.ancestors_of(c))
                   for c in children)

    def totals(self) -> dict[str, dict]:
        """Per-name accumulated seconds and counts over all spans."""
        out: dict[str, dict] = {}
        for s in self.spans:
            t = out.setdefault(s.name, {"seconds": 0.0, "count": 0})
            t["seconds"] += s.duration
            t["count"] += 1
        return out

    def flight_dump(self) -> dict:
        """Snapshot the black box: the last ``ring`` spans/events (or
        everything, when unbounded) plus the exact counters and gauges,
        as a JSON-ready dict.

        ``spans_total`` / ``events_total`` count every record *ever*
        made, so a reader can tell how much the ring dropped.
        """
        with self._lock:
            spans = list(self.spans)
            events = list(self.events)
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            spans_total = self._index
            events_total = self._num_events
        return {
            "ring": self.ring,
            "spans_total": spans_total,
            "events_total": events_total,
            "spans": [{"name": s.name, "track": s.track,
                       "start": s.start, "end": s.end,
                       "index": s.index, "parent": s.parent,
                       "attrs": s.attrs or {}} for s in spans],
            "events": [{"name": e.name, "track": e.track,
                        "time": e.time, "attrs": dict(e.attrs)}
                       for e in events],
            "counters": counters,
            "gauges": gauges,
        }

    def tracks(self) -> list[str]:
        """Track names in order of first appearance (spans, then
        event-only tracks)."""
        seen: list[str] = []
        for s in sorted(self.spans, key=lambda s: s.index):
            if s.track not in seen:
                seen.append(s.track)
        for e in self.events:
            if e.track not in seen:
                seen.append(e.track)
        return seen


def iteration_residuals(recorder) -> list[float]:
    """Reconstruct a Krylov residual history from ``iteration`` events.

    Drivers emit one ``iteration`` event per entry appended to
    ``KrylovResult.residuals``; when a restart loop replaces the last
    estimate with the true residual it emits a correcting event with
    ``corrected=True``.  Applying the same semantics here makes the
    event stream reproduce ``KrylovResult.residuals`` exactly (asserted
    in ``tests/test_krylov.py``).
    """
    out: list[float] = []
    for e in recorder.events:
        if e.name != "iteration":
            continue
        if e.attrs.get("corrected") and out:
            out[-1] = e.attrs["residual"]
        else:
            out.append(e.attrs["residual"])
    return out


def column_iterations(recorder) -> dict[int, int]:
    """Per-column convergence map from ``batch.column_converged`` events.

    Block drivers emit one event per right-hand side when its column
    reaches the target; the returned dict maps column index → block
    iteration at which it was deflated (mirrors
    ``BlockKrylovResult.column_iterations`` for columns that converged).
    """
    out: dict[int, int] = {}
    for e in recorder.events:
        if e.name != "batch.column_converged":
            continue
        col = int(e.attrs["col"])
        if col not in out:
            out[col] = int(e.attrs["k"])
    return out
