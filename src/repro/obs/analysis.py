"""Trace analytics: what a recorded run *means*.

PR 3 gave the repo raw telemetry capture (spans/counters/events and the
chrome/jsonl exports); this module interprets it.  Every function works
on either a live :class:`~repro.obs.Recorder` or a loaded
:class:`~repro.obs.TraceData` — anything exposing ``spans`` /
``events`` / ``counters`` / ``gauges``:

* :func:`critical_path` — the chain of spans that bounds the wall
  clock, with per-hop self time (what figs. 8/10 call the dominant
  phase, extracted structurally instead of by eyeballing);
* :func:`load_imbalance` — max/mean/min statistics per phase across
  tracks and per-task indices (``geneo[i]``), the SPMD wall-clock =
  max-over-subdomains story of the paper's scaling figures;
* :func:`comm_matrix` — the rank-to-rank traffic matrix, from a live
  :class:`~repro.mpi.meter.Meter` or reconstructed from the
  ``mpi.pair_*`` counters a trace file carries;
* :func:`convergence_forensics` — residual decay-rate fit, stagnation
  and orthogonality-loss flags from the ``iteration`` / ``health.*``
  event stream;
* :func:`analyze` — all of the above bundled into a :class:`RunReport`
  that renders as the one-page ``repro report`` output (ASCII or
  markdown).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

import numpy as np

from .recorder import iteration_residuals

#: per-task span suffix (``geneo[3]``, ``factorize[0]``, ...)
_TASK_RE = re.compile(r"^(?P<base>.+)\[(?P<idx>\d+)\]$")
#: pair counters fed by :class:`repro.mpi.meter.Meter`
_PAIR_RE = re.compile(r"^mpi\.pair_(?P<weight>msgs|bytes)\."
                      r"(?P<src>\d+)->(?P<dst>\d+)$")


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------

@dataclass
class PathStep:
    """One hop of the critical path."""

    name: str
    track: str
    depth: int
    duration: float
    #: duration not covered by any child span (own work on the path)
    self_seconds: float
    #: fraction of the path root's duration
    fraction: float


def critical_path(trace, root: str | None = None) -> list[PathStep]:
    """Extract the dominant chain of the span tree.

    Starting from the longest root span (or the longest span named
    *root*), descend at every level into the child with the largest
    duration.  The result is the chain of spans that bounds the wall
    clock; each step carries its *self* time — the part of its duration
    no child span accounts for — so the report shows where on the path
    the time actually goes.
    """
    spans = list(trace.spans)
    if not spans:
        return []
    children: dict[int | None, list] = {}
    for s in spans:
        children.setdefault(s.parent, []).append(s)
    if root is None:
        candidates = children.get(None, [])
    else:
        candidates = [s for s in spans if s.name == root]
    if not candidates:
        return []
    top = max(candidates, key=lambda s: s.duration)
    total = max(top.duration, 1e-12)
    path: list[PathStep] = []
    node, depth = top, 0
    while node is not None:
        kids = children.get(node.index, [])
        covered = sum(k.duration for k in kids)
        path.append(PathStep(
            name=node.name, track=node.track, depth=depth,
            duration=node.duration,
            self_seconds=max(node.duration - covered, 0.0),
            fraction=node.duration / total))
        node = max(kids, key=lambda s: s.duration) if kids else None
        depth += 1
    return path


def critical_paths(trace, *, max_roots: int = 3) -> list[PathStep]:
    """Critical paths of the run's top-level phases, concatenated.

    A solver run has several sequential root spans (``setup`` then
    ``solution``); :func:`critical_path` alone would only show the
    longest one.  This walks the *max_roots* longest distinct root
    names in start order, so the report reads as the run's timeline.
    """
    roots: dict[str, object] = {}
    for s in trace.spans:
        if s.parent is not None:
            continue
        cur = roots.get(s.name)
        if cur is None or s.duration > cur.duration:
            roots[s.name] = s
    picked = sorted(roots.values(), key=lambda s: -s.duration)[:max_roots]
    picked.sort(key=lambda s: s.start)
    out: list[PathStep] = []
    for r in picked:
        out.extend(critical_path(trace, root=r.name))
    return out


# ----------------------------------------------------------------------
# Load imbalance
# ----------------------------------------------------------------------

@dataclass
class ImbalanceStat:
    """Max/mean statistics of one phase over its parallel instances.

    *Instances* are either tracks (SPMD rank threads, pool workers) or
    per-task indices (``geneo[i]`` spans, which land on whatever thread
    ran them): whichever axis the phase parallelises over.
    """

    name: str
    instances: int
    mean: float
    max: float
    min: float
    #: max/mean — 1.0 is perfect balance; the SPMD wall clock pays max
    ratio: float
    #: instance label holding the maximum (rank/track or task index)
    argmax: str


def load_imbalance(trace, *, min_instances: int = 2) -> list[ImbalanceStat]:
    """Per-phase imbalance statistics across parallel instances.

    Spans named ``base[i]`` are grouped under ``base`` with one
    instance per index; other span names group per track.  Phases with
    fewer than *min_instances* instances are skipped (nothing to
    balance).  Sorted by total seconds, heaviest first.
    """
    groups: dict[str, dict[str, float]] = {}
    for s in trace.spans:
        m = _TASK_RE.match(s.name)
        if m:
            base, instance = m.group("base"), f"[{m.group('idx')}]"
        else:
            base, instance = s.name, s.track
        per = groups.setdefault(base, {})
        per[instance] = per.get(instance, 0.0) + s.duration
    out: list[ImbalanceStat] = []
    for base, per in groups.items():
        if len(per) < min_instances:
            continue
        vals = np.array(list(per.values()))
        mean = float(vals.mean())
        argmax = max(per, key=per.get)
        out.append(ImbalanceStat(
            name=base, instances=len(per), mean=mean,
            max=float(vals.max()), min=float(vals.min()),
            ratio=float(vals.max()) / max(mean, 1e-300), argmax=argmax))
    out.sort(key=lambda st: -(st.mean * st.instances))
    return out


# ----------------------------------------------------------------------
# Communication matrix
# ----------------------------------------------------------------------

@dataclass
class CommMatrix:
    """Rank-to-rank point-to-point traffic (sends define direction)."""

    bytes: np.ndarray
    messages: np.ndarray

    @property
    def nranks(self) -> int:
        return self.bytes.shape[0]

    @property
    def total_bytes(self) -> float:
        return float(self.bytes.sum())

    @property
    def total_messages(self) -> float:
        return float(self.messages.sum())

    def neighbors(self, rank: int) -> list[int]:
        """Ranks this rank exchanged any payload with (either way)."""
        touched = np.flatnonzero(self.bytes[rank] + self.bytes[:, rank])
        return [int(r) for r in touched if r != rank]

    def render(self, *, weight: str = "bytes", max_ranks: int = 16) -> str:
        """ASCII heat map: one glyph per (src, dst) cell, log-scaled."""
        M = self.bytes if weight == "bytes" else self.messages
        n = min(self.nranks, max_ranks)
        if n == 0 or M.sum() == 0:
            return "(no point-to-point traffic recorded)"
        glyphs = " .:-=+*#@"
        peak = M[:n, :n].max()
        lines = [f"comm matrix ({weight}, sends row -> column, "
                 f"peak = {peak:g})"]
        header = "      " + "".join(f"{j:>4d}" for j in range(n))
        lines.append(header)
        for i in range(n):
            row = []
            for j in range(n):
                v = M[i, j]
                if v <= 0:
                    row.append("   .")
                else:
                    # log scale so one heavy pair doesn't blank the rest
                    t = math.log1p(v) / math.log1p(peak)
                    row.append("   " + glyphs[min(len(glyphs) - 1,
                                                  int(t * (len(glyphs) - 1)))])
            lines.append(f"{i:>4d} |" + "".join(row))
        if self.nranks > n:
            lines.append(f"... ({self.nranks - n} more ranks)")
        lines.append(f"totals: {self.total_messages:g} messages, "
                     f"{self.total_bytes:g} bytes")
        return "\n".join(lines)


def comm_matrix(source) -> CommMatrix:
    """Build the rank-to-rank matrix from a live meter or a trace.

    *source* may be a :class:`repro.mpi.meter.Meter` (exact per-rank
    peer stats) or any recorder/trace carrying the ``mpi.pair_msgs.*``
    / ``mpi.pair_bytes.*`` counters the meter feeds — which is how a
    trace file alone reconstructs the exchange pattern.
    """
    if hasattr(source, "comm_matrix"):          # a Meter
        return CommMatrix(bytes=source.comm_matrix("bytes"),
                          messages=source.comm_matrix("messages"))
    pairs: list[tuple[str, int, int, float]] = []
    nranks = 0
    for name, value in source.counters.items():
        m = _PAIR_RE.match(name)
        if not m:
            continue
        src, dst = int(m.group("src")), int(m.group("dst"))
        pairs.append((m.group("weight"), src, dst, float(value)))
        nranks = max(nranks, src + 1, dst + 1)
    B = np.zeros((nranks, nranks))
    M = np.zeros((nranks, nranks))
    for weight, src, dst, value in pairs:
        (B if weight == "bytes" else M)[src, dst] += value
    return CommMatrix(bytes=B, messages=M)


# ----------------------------------------------------------------------
# Convergence forensics
# ----------------------------------------------------------------------

@dataclass
class ConvergenceDiagnostics:
    """What the per-iteration event stream says about the solve."""

    iterations: int
    residuals: list[float] = field(default_factory=list)
    #: geometric per-iteration contraction factor from a log-linear fit
    #: of the residual history (NaN when unfittable)
    decay_rate: float = float("nan")
    #: iterations needed per decimal digit of residual reduction
    iterations_per_digit: float = float("nan")
    converged_ratio: float = float("nan")
    restarts: int = 0
    #: longest run of iterations with < ``stagnation_rtol`` improvement
    stagnation_window: int = 0
    stagnating: bool = False
    #: health.* breakdown events seen (reason -> count)
    health_events: dict = field(default_factory=dict)
    orthogonality_loss: bool = False
    recovery_restarts: int = 0

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "decay_rate": self.decay_rate,
            "iterations_per_digit": self.iterations_per_digit,
            "converged_ratio": self.converged_ratio,
            "restarts": self.restarts,
            "stagnation_window": self.stagnation_window,
            "stagnating": self.stagnating,
            "health_events": dict(self.health_events),
            "orthogonality_loss": self.orthogonality_loss,
            "recovery_restarts": self.recovery_restarts,
        }


def fit_decay_rate(residuals) -> float:
    """Geometric contraction factor ρ from ``r_k ≈ r_0 ρ^k``.

    A least-squares fit of ``log10 r_k`` against ``k`` over the finite,
    positive samples; NaN when fewer than two such samples exist.
    """
    pts = [(k, math.log10(r)) for k, r in enumerate(residuals)
           if r > 0 and math.isfinite(r)]
    if len(pts) < 2:
        return float("nan")
    ks = np.array([p[0] for p in pts], dtype=float)
    ys = np.array([p[1] for p in pts], dtype=float)
    slope = float(np.polyfit(ks, ys, 1)[0])
    return float(10.0 ** slope)


def stagnation_run(residuals, *, rtol: float = 1e-2) -> int:
    """Length of the longest streak of iterations whose best-so-far
    residual improved by less than a factor ``(1 - rtol)`` each."""
    best = math.inf
    run = longest = 0
    for r in residuals:
        if not math.isfinite(r):
            break
        if r < best * (1 - rtol):
            best = min(best, r)
            run = 0
        else:
            best = min(best, r)
            run += 1
            longest = max(longest, run)
    return longest


def convergence_forensics(trace, *, stagnation_threshold: int = 10
                          ) -> ConvergenceDiagnostics:
    """Reconstruct the solve's convergence story from recorded events."""
    residuals = iteration_residuals(trace)
    diag = ConvergenceDiagnostics(iterations=len(residuals),
                                  residuals=residuals)
    if residuals:
        diag.decay_rate = fit_decay_rate(residuals)
        if 0 < diag.decay_rate < 1:
            diag.iterations_per_digit = -1.0 / math.log10(diag.decay_rate)
        if residuals[0] > 0 and residuals[-1] > 0:
            diag.converged_ratio = residuals[-1] / residuals[0]
        diag.stagnation_window = stagnation_run(residuals)
        diag.stagnating = (diag.stagnation_window >= stagnation_threshold
                           or (len(residuals) >= stagnation_threshold
                               and not diag.decay_rate < 1))
    for e in trace.events:
        if e.name == "restart":
            diag.restarts += 1
        elif e.name.startswith("health."):
            reason = e.name[len("health."):]
            diag.health_events[reason] = \
                diag.health_events.get(reason, 0) + 1
        elif e.name == "recovery.restart":
            diag.recovery_restarts += 1
    diag.orthogonality_loss = "orthogonality" in diag.health_events
    return diag


# ----------------------------------------------------------------------
# The bundled run report
# ----------------------------------------------------------------------

@dataclass
class RunReport:
    """Everything ``repro report`` prints, as structured data."""

    path: list[PathStep]
    imbalance: list[ImbalanceStat]
    comm: CommMatrix
    convergence: ConvergenceDiagnostics
    counters: dict
    gauges: dict
    totals: dict

    def render(self, *, width: int = 78, max_ranks: int = 16) -> str:
        from ..common.asciiplot import table

        parts: list[str] = []
        rows = [[k, f"{v:g}"] for k, v in sorted(self.gauges.items())]
        wall = sum(s.duration for s in self.path if s.depth == 0)
        rows.append(["wall clock (critical path)", f"{wall * 1e3:.3f} ms"])
        parts.append(table(["run summary", "value"], rows))

        if self.path:
            prow = [["  " * p.depth + p.name, p.track,
                     f"{p.duration * 1e3:.3f}",
                     f"{p.self_seconds * 1e3:.3f}",
                     f"{p.fraction * 100:.1f}%"] for p in self.path]
            parts.append(table(
                ["critical path", "track", "total (ms)", "self (ms)",
                 "share"], prow))

        if self.imbalance:
            irow = [[st.name, str(st.instances),
                     f"{st.mean * 1e3:.3f}", f"{st.max * 1e3:.3f}",
                     f"{st.ratio:.2f}", st.argmax]
                    for st in self.imbalance]
            parts.append(table(
                ["phase", "instances", "mean (ms)", "max (ms)",
                 "max/mean", "slowest"], irow,
                title="load imbalance (SPMD wall clock pays max)"))

        parts.append(self.comm.render(max_ranks=max_ranks))

        c = self.convergence
        crow = [["iterations", c.iterations],
                ["decay rate (rho per iter)",
                 f"{c.decay_rate:.4f}" if math.isfinite(c.decay_rate)
                 else "n/a"],
                ["iterations per digit",
                 f"{c.iterations_per_digit:.2f}"
                 if math.isfinite(c.iterations_per_digit) else "n/a"],
                ["residual reduction",
                 f"{c.converged_ratio:.3e}"
                 if math.isfinite(c.converged_ratio) else "n/a"],
                ["restart cycles", c.restarts],
                ["longest stagnation run", c.stagnation_window],
                ["stagnating", c.stagnating],
                ["orthogonality loss", c.orthogonality_loss]]
        if c.health_events:
            crow.append(["health events",
                         ", ".join(f"{k}:{v}" for k, v in
                                   sorted(c.health_events.items()))])
        if c.recovery_restarts:
            crow.append(["recovery restarts", c.recovery_restarts])
        parts.append(table(["convergence", "value"], crow))
        return "\n\n".join(parts)

    def to_markdown(self) -> str:
        """The same report as GitHub-flavoured markdown."""
        lines = ["# repro run report", ""]
        lines += ["## Critical path", "",
                  "| span | track | total (ms) | self (ms) | share |",
                  "|---|---|---:|---:|---:|"]
        for p in self.path:
            lines.append(f"| {'&nbsp;' * 2 * p.depth}{p.name} | {p.track} "
                         f"| {p.duration * 1e3:.3f} "
                         f"| {p.self_seconds * 1e3:.3f} "
                         f"| {p.fraction * 100:.1f}% |")
        lines += ["", "## Load imbalance", "",
                  "| phase | instances | mean (ms) | max (ms) | "
                  "max/mean | slowest |", "|---|---:|---:|---:|---:|---|"]
        for st in self.imbalance:
            lines.append(f"| {st.name} | {st.instances} "
                         f"| {st.mean * 1e3:.3f} | {st.max * 1e3:.3f} "
                         f"| {st.ratio:.2f} | {st.argmax} |")
        lines += ["", "## Communication", "", "```",
                  self.comm.render(), "```", ""]
        lines += ["## Convergence", ""]
        for k, v in self.convergence.as_dict().items():
            if k == "residuals":
                continue
            lines.append(f"- **{k}**: {v}")
        lines.append("")
        return "\n".join(lines)


def analyze(trace, *, meter=None) -> RunReport:
    """Run every analysis over *trace* and bundle the results.

    Passing the live :class:`~repro.mpi.meter.Meter` (when available)
    gives the comm matrix exact per-rank stats; otherwise it is
    reconstructed from the trace's ``mpi.pair_*`` counters.
    """
    totals = trace.totals() if hasattr(trace, "totals") else {}
    return RunReport(
        path=critical_paths(trace),
        imbalance=load_imbalance(trace),
        comm=comm_matrix(meter if meter is not None else trace),
        convergence=convergence_forensics(trace),
        counters=dict(trace.counters),
        gauges=dict(trace.gauges),
        totals=totals)
