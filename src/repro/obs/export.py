"""Exporters and renderers for recorded telemetry.

Three interchangeable views of one :class:`~repro.obs.Recorder`:

* **Chrome trace-event JSON** (:func:`to_chrome_trace`) — loads directly
  in Perfetto / ``chrome://tracing``; one named track (tid) per
  rank/worker/thread, spans as complete ("X") events, iteration events
  as instants, counters as a final counter sample.
* **JSONL** (:func:`to_jsonl`) — one self-describing JSON object per
  line (``span`` / ``event`` / ``counters`` / ``gauges``), the format
  to diff between runs or feed to ad-hoc scripts.
* **flat summary dict** (:func:`summary`) — per-span-name totals plus
  the counters/gauges, the shape stored under the ``telemetry`` key of
  the benchmark ``results/BENCH_*.json`` files.

:func:`write_trace` / :func:`load_trace` round-trip either file format;
:func:`render_trace` turns a loaded file back into the ASCII Gantt +
phase table that ``python -m repro.cli trace <path>`` prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .recorder import EventRecord, Recorder, SpanRecord

#: recognised on-disk formats
FORMATS = ("chrome", "jsonl")


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def to_chrome_trace(rec) -> dict:
    """The Chrome trace-event representation (a JSON-serialisable dict).

    Timestamps are microseconds on the recorder's shared clock; tracks
    map to tids of a single pid, with thread-name metadata so Perfetto
    labels each row by rank/worker name.
    """
    tracks = list(rec.tracks())
    tid = {t: i for i, t in enumerate(tracks)}
    events: list[dict] = []
    for t, i in tid.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": i, "args": {"name": t}})
    for s in rec.spans:
        ev = {"name": s.name, "cat": "span", "ph": "X", "pid": 0,
              "tid": tid[s.track], "ts": s.start * 1e6,
              "dur": s.duration * 1e6,
              "args": dict(s.attrs or {}, parent=s.parent, index=s.index)}
        events.append(ev)
    for e in rec.events:
        events.append({"name": e.name, "cat": "event", "ph": "i", "s": "t",
                       "pid": 0, "tid": tid.get(e.track, 0),
                       "ts": e.time * 1e6, "args": dict(e.attrs)})
    t_end = max([s.end for s in rec.spans] or [0.0])
    for name, value in sorted(rec.counters.items()):
        events.append({"name": name, "cat": "counter", "ph": "C",
                       "pid": 0, "tid": 0, "ts": t_end * 1e6,
                       "args": {name: value}})
    for name, value in sorted(rec.gauges.items()):
        events.append({"name": name, "cat": "gauge", "ph": "C",
                       "pid": 0, "tid": 0, "ts": t_end * 1e6,
                       "args": {name: value}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-telemetry",
            "counters": dict(rec.counters),
            "gauges": dict(rec.gauges),
        },
    }


# ----------------------------------------------------------------------
# JSONL event stream
# ----------------------------------------------------------------------

def to_jsonl(rec) -> str:
    """One JSON object per line: spans (in open order), events,
    counters, gauges."""
    lines = []
    for s in sorted(rec.spans, key=lambda s: s.index):
        lines.append(json.dumps({
            "type": "span", "name": s.name, "track": s.track,
            "start": s.start, "end": s.end, "index": s.index,
            "parent": s.parent, "attrs": s.attrs or {}}))
    for e in rec.events:
        lines.append(json.dumps({
            "type": "event", "name": e.name, "track": e.track,
            "time": e.time, "attrs": e.attrs}))
    lines.append(json.dumps({"type": "counters",
                             "values": dict(rec.counters)}))
    lines.append(json.dumps({"type": "gauges", "values": dict(rec.gauges)}))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Flat summary
# ----------------------------------------------------------------------

def summary(rec) -> dict:
    """Flat, JSON-ready digest: per-span-name seconds/counts, counters,
    gauges, event count — the benchmarks' ``telemetry`` section."""
    return {
        "spans": rec.totals() if hasattr(rec, "totals") else {},
        "counters": dict(rec.counters),
        "gauges": dict(rec.gauges),
        "num_events": len(rec.events),
    }


# ----------------------------------------------------------------------
# Files: write + load (round-trip)
# ----------------------------------------------------------------------

def write_trace(rec, path, format: str = "chrome") -> None:
    """Serialise *rec* to *path* in the requested on-disk *format*."""
    if format not in FORMATS:
        raise ValueError(f"unknown telemetry format {format!r}; "
                         f"expected one of {FORMATS}")
    path = Path(path)
    if format == "chrome":
        path.write_text(json.dumps(to_chrome_trace(rec), indent=1) + "\n")
    else:
        path.write_text(to_jsonl(rec))


@dataclass
class TraceData:
    """A loaded telemetry file (either format), renderable and queryable
    with the same span/event records the live :class:`Recorder` holds."""

    spans: list[SpanRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)

    def tracks(self) -> list[str]:
        return Recorder.tracks(self)          # same first-appearance order

    def totals(self) -> dict[str, dict]:
        return Recorder.totals(self)


def _load_chrome(payload: dict) -> TraceData:
    out = TraceData()
    names = {}
    for ev in payload.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev.get("tid", 0)] = ev["args"]["name"]
    for ev in payload.get("traceEvents", []):
        ph = ev.get("ph")
        track = names.get(ev.get("tid", 0), f"tid{ev.get('tid', 0)}")
        if ph == "X":
            args = dict(ev.get("args", {}))
            index = args.pop("index", len(out.spans))
            parent = args.pop("parent", None)
            start = ev["ts"] / 1e6
            out.spans.append(SpanRecord(
                name=ev["name"], track=track, start=start,
                end=start + ev.get("dur", 0.0) / 1e6, index=index,
                parent=parent, attrs=args or None))
        elif ph == "i":
            out.events.append(EventRecord(
                ev["name"], track, ev["ts"] / 1e6,
                dict(ev.get("args", {}))))
        elif ph == "C":
            # counter/gauge samples — the fidelity fallback for traces
            # whose otherData block was stripped (e.g. by trace tools
            # that only preserve traceEvents)
            target = out.gauges if ev.get("cat") == "gauge" \
                else out.counters
            for name, value in ev.get("args", {}).items():
                target[name] = value
    other = payload.get("otherData", {})
    # otherData is authoritative when present (exact, unsampled values)
    out.counters.update(other.get("counters", {}))
    out.gauges.update(other.get("gauges", {}))
    return out


def _load_jsonl(text: str) -> TraceData:
    out = TraceData()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("type")
        if kind == "span":
            out.spans.append(SpanRecord(
                name=obj["name"], track=obj["track"], start=obj["start"],
                end=obj["end"], index=obj.get("index", len(out.spans)),
                parent=obj.get("parent"), attrs=obj.get("attrs") or None))
        elif kind == "event":
            out.events.append(EventRecord(
                obj["name"], obj["track"], obj["time"],
                dict(obj.get("attrs", {}))))
        elif kind == "counters":
            out.counters.update(obj.get("values", {}))
        elif kind == "gauges":
            out.gauges.update(obj.get("values", {}))
    return out


def load_trace(path) -> TraceData:
    """Load a telemetry file, auto-detecting chrome vs jsonl format."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text:
        return _load_chrome(json.loads(text))
    return _load_jsonl(text)


# ----------------------------------------------------------------------
# ASCII rendering (the ``repro trace`` subcommand)
# ----------------------------------------------------------------------

def _gantt(trace: TraceData, *, width: int = 78,
           max_tracks: int = 16) -> str:
    """ASCII Gantt over tracks — the telemetry twin of
    :meth:`repro.mpi.trace.Tracer.gantt`, labelled by track name."""
    spans = trace.spans
    if not spans:
        return "(no spans recorded)"
    tracks = trace.tracks()
    t_begin = min(s.start for s in spans)
    t_end = max(s.end for s in spans)
    horizon = max(t_end - t_begin, 1e-12)
    labels: list[str] = []
    for s in sorted(spans, key=lambda s: s.index):
        if s.name not in labels:
            labels.append(s.name)
    glyphs = "#*+o=%@&x~"
    glyph = {lab: glyphs[i % len(glyphs)] for i, lab in enumerate(labels)}
    name_w = max(len(t) for t in tracks[:max_tracks])
    by_track: dict[str, list[SpanRecord]] = {t: [] for t in tracks}
    for s in spans:
        by_track[s.track].append(s)
    lines = []
    for t in tracks[:max_tracks]:
        chars = [" "] * width
        # deepest spans last so leaves paint over their parents
        for s in sorted(by_track[t], key=lambda s: s.duration,
                        reverse=True):
            c0 = int((s.start - t_begin) / horizon * (width - 1))
            c1 = max(c0, int((s.end - t_begin) / horizon * (width - 1)))
            for c in range(c0, c1 + 1):
                chars[c] = glyph[s.name]
        lines.append(f"{t:>{name_w}} |" + "".join(chars) + "|")
    if len(tracks) > max_tracks:
        lines.append(f"... ({len(tracks) - max_tracks} more tracks)")
    lines.append(" " * name_w + " 0" + " " * (width - 10)
                 + f"{horizon * 1e3:.1f} ms")
    legend = "   ".join(f"[{glyph[lab]}] {lab}" for lab in labels)
    lines.append("  " + legend)
    return "\n".join(lines)


def render_trace(trace: TraceData, *, width: int = 78,
                 max_tracks: int = 16) -> str:
    """The ASCII report of a loaded trace: Gantt, phase table, counters."""
    from ..common.asciiplot import table

    parts = [_gantt(trace, width=width, max_tracks=max_tracks)]
    totals = trace.totals()
    if totals:
        rows = [[name, f"{t['seconds'] * 1e3:.3f}", str(t["count"])]
                for name, t in sorted(totals.items(),
                                      key=lambda kv: -kv[1]["seconds"])]
        parts.append(table(["span", "total (ms)", "count"], rows,
                           title="phase totals"))
    if trace.counters or trace.gauges:
        rows = [[k, "counter", f"{v:g}"]
                for k, v in sorted(trace.counters.items())]
        rows += [[k, "gauge", f"{v:g}"]
                 for k, v in sorted(trace.gauges.items())]
        parts.append(table(["name", "kind", "value"], rows,
                           title="counters and gauges"))
    if trace.events:
        by_name: dict[str, int] = {}
        for e in trace.events:
            by_name[e.name] = by_name.get(e.name, 0) + 1
        rows = [[name, str(n)] for name, n in
                sorted(by_name.items(), key=lambda kv: (-kv[1], kv[0]))]
        parts.append(table(["event", "count"], rows,
                           title=f"events ({len(trace.events)} total)"))
    return "\n\n".join(parts)
