"""Continuous performance-regression gating over tracked bench JSONs.

The tracked ``results/BENCH_*.json`` files carry provenance stamps (PR
6) but nothing compared runs over time; this module is that
comparator.  It flattens the numeric leaves of two bench payloads into
dotted metric paths, classifies each metric by name (time-like → lower
is better, ``speedup``-like → higher is better, iteration counts →
lower is better but integer-noisy), applies noise-tolerant thresholds,
and emits a pass/fail :class:`RegressionReport`.

Scale awareness: when the two payloads' ``problem`` sections disagree
(e.g. a CI smoke run against a committed full-scale baseline), scale-
dependent metrics — times, bytes, and speedup ratios (which collapse
on cache-resident smoke problems) — are *skipped* rather than
nonsensically compared; algorithmic counts (iterations, restarts) are
still gated.

:func:`inject_slowdown` is the self-test: CI multiplies a current
payload's time metrics by 2× and asserts the comparator flags it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: metric-name fragments, checked in order: first match wins
_HIGHER_IS_BETTER = ("speedup", "throughput", "rate", "hit")
#: unit suffixes only match at the end of the path ("bytes_sent" and
#: "ortho_steps" must not read as time)
_TIME_SUFFIXES = ("_ms", "_s")
_TIME_LIKE = ("seconds", "time", "t_fact", "t_solve",
              "t_seq", "apply", "setup", "wall")
_COUNT_LIKE = ("iterations", "iteration", "restarts", "solves",
               "applies", "matvecs", "syncs", "messages")
_SIZE_LIKE = ("bytes", "nnz", "dim", "memory")
#: subtrees that are identity, not performance
_SKIP_SUBTREES = ("provenance", "capability_table", "problem")
#: problem-context keys that define the measurement scale
_SCALE_KEYS = ("n_free", "num_subdomains", "smoke", "workload",
               "coarse_dim", "n", "degree")


def classify(path: str) -> str:
    """Metric kind for dotted *path*: ``higher`` / ``time`` / ``count``
    / ``size`` / ``info`` (informational, not gated)."""
    leaf = path.lower()
    for frag in _HIGHER_IS_BETTER:
        if frag in leaf:
            return "higher"
    for frag in _COUNT_LIKE:
        if frag in leaf:
            return "count"
    if leaf.endswith(_TIME_SUFFIXES):
        return "time"
    for frag in _TIME_LIKE:
        if frag in leaf:
            return "time"
    for frag in _SIZE_LIKE:
        if frag in leaf:
            return "size"
    return "info"


def flatten_metrics(payload: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of *payload* as ``dotted.path -> value``.

    Booleans and identity subtrees (provenance, capability tables, the
    problem description) are excluded; list elements use their index as
    a path segment.
    """
    out: dict[str, float] = {}

    def walk(node, path):
        if isinstance(node, dict):
            for k, v in node.items():
                if not path and k in _SKIP_SUBTREES:
                    continue
                walk(v, f"{path}.{k}" if path else str(k))
        elif isinstance(node, list):
            for i, v in enumerate(node):
                walk(v, f"{path}.{i}")
        elif isinstance(node, bool):
            return
        elif isinstance(node, (int, float)) and path:
            out[path] = float(node)

    walk(payload, prefix)
    return out


def same_scale(baseline: dict, current: dict) -> bool:
    """True when the payloads measured the same problem scale (their
    ``problem`` sections agree on every scale key both carry)."""
    pb = baseline.get("problem") or {}
    pc = current.get("problem") or {}
    for key in _SCALE_KEYS:
        if key in pb and key in pc and pb[key] != pc[key]:
            return False
    return True


@dataclass
class Thresholds:
    """Noise-tolerant gating thresholds, per metric kind.

    The defaults are deliberately generous — CI machines are shared and
    noisy; the gate exists to catch *clear* regressions (the injected
    2× slowdown self-test), not 10% wobbles.
    """

    #: a time metric regresses past ``baseline * time_ratio + time_abs``
    time_ratio: float = 1.6
    time_abs: float = 5e-3            # seconds of absolute slack
    #: counts regress past ``baseline * count_ratio + count_abs``
    count_ratio: float = 1.3
    count_abs: float = 2.0
    size_ratio: float = 1.5
    size_abs: float = 4096.0
    #: higher-is-better metrics regress below ``baseline / higher_ratio``
    higher_ratio: float = 1.6

    def limit(self, kind: str, baseline: float) -> float:
        if kind == "time":
            return baseline * self.time_ratio + self.time_abs
        if kind == "count":
            return baseline * self.count_ratio + self.count_abs
        if kind == "size":
            return baseline * self.size_ratio + self.size_abs
        if kind == "higher":
            return baseline / self.higher_ratio
        raise ValueError(f"kind {kind!r} is not gated")


@dataclass
class MetricCheck:
    """One gated metric's verdict."""

    metric: str
    kind: str
    baseline: float
    current: float
    limit: float
    status: str          # "ok" | "regression" | "improved" | "skipped"
    reason: str = ""

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline


@dataclass
class RegressionReport:
    """The comparator's verdict over one or more bench files."""

    name: str
    checks: list[MetricCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricCheck]:
        return [c for c in self.checks if c.status == "regression"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for c in self.checks:
            out[c.status] = out.get(c.status, 0) + 1
        return out

    def merge(self, other: "RegressionReport") -> None:
        self.checks.extend(other.checks)
        self.notes.extend(other.notes)

    def render(self, *, verbose: bool = False) -> str:
        from ..common.asciiplot import table

        verdict = "PASS" if self.passed else "FAIL"
        parts = [f"regression gate [{self.name}]: {verdict} "
                 + " ".join(f"{k}={v}" for k, v in
                            sorted(self.counts().items()))]
        shown = self.checks if verbose else [
            c for c in self.checks if c.status in ("regression",
                                                   "improved")]
        if shown:
            rows = [[c.metric, c.kind, f"{c.baseline:g}",
                     f"{c.current:g}", f"{c.ratio:.2f}x", c.status]
                    for c in shown]
            parts.append(table(["metric", "kind", "baseline", "current",
                                "ratio", "status"], rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        verdict = "✅ PASS" if self.passed else "❌ FAIL"
        lines = [f"# Performance regression report — {verdict}", "",
                 f"**{self.name}**: "
                 + ", ".join(f"{v} {k}" for k, v in
                             sorted(self.counts().items())), ""]
        if self.checks:
            lines += ["| metric | kind | baseline | current | ratio "
                      "| status |", "|---|---|---:|---:|---:|---|"]
            ordered = sorted(
                self.checks,
                key=lambda c: (c.status != "regression",
                               c.status != "improved", c.metric))
            for c in ordered:
                lines.append(f"| `{c.metric}` | {c.kind} "
                             f"| {c.baseline:g} | {c.current:g} "
                             f"| {c.ratio:.2f}x | {c.status} |")
        lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
        return "\n".join(lines) + "\n"


def compare(baseline: dict, current: dict, *, name: str = "bench",
            thresholds: Thresholds | None = None) -> RegressionReport:
    """Gate *current* against *baseline* (two bench JSON payloads)."""
    th = thresholds or Thresholds()
    report = RegressionReport(name=name)
    scale_ok = same_scale(baseline, current)
    if not scale_ok:
        report.notes.append(
            "problem scales differ (e.g. smoke run vs full-scale "
            "baseline): time/size/speedup metrics skipped, "
            "algorithmic counts still gated")
    base = flatten_metrics(baseline)
    cur = flatten_metrics(current)
    pb, pc = baseline.get("provenance", {}), current.get("provenance", {})
    for key in ("kernel_backend", "precision"):
        if pb.get(key) and pc.get(key) and pb[key] != pc[key]:
            report.notes.append(
                f"provenance mismatch: {key} {pb[key]!r} (baseline) vs "
                f"{pc[key]!r} (current)")
    for metric in sorted(base):
        if metric not in cur:
            continue
        kind = classify(metric)
        b, c = base[metric], cur[metric]
        if kind == "info":
            continue
        if kind in ("time", "size", "higher") and not scale_ok:
            report.checks.append(MetricCheck(
                metric, kind, b, c, float("nan"), "skipped",
                "scale mismatch"))
            continue
        limit = th.limit(kind, b)
        if kind == "higher":
            if c < limit:
                status, reason = "regression", \
                    f"below {limit:g} (= baseline / {th.higher_ratio})"
            elif b and c > b * 1.1:
                status, reason = "improved", ""
            else:
                status, reason = "ok", ""
        else:
            if c > limit:
                status, reason = "regression", f"above limit {limit:g}"
            elif b and c < b / 1.25:
                status, reason = "improved", ""
            else:
                status, reason = "ok", ""
        report.checks.append(MetricCheck(metric, kind, b, c, limit,
                                         status, reason))
    return report


def compare_files(baseline_path, current_path, *,
                  thresholds: Thresholds | None = None
                  ) -> RegressionReport:
    baseline = json.loads(Path(baseline_path).read_text())
    current = json.loads(Path(current_path).read_text())
    return compare(baseline, current, name=Path(current_path).stem,
                   thresholds=thresholds)


def compare_dirs(baseline_dir, current_dir, *,
                 pattern: str = "BENCH_*.json",
                 thresholds: Thresholds | None = None
                 ) -> RegressionReport:
    """Gate every matching bench file present in *both* directories."""
    baseline_dir, current_dir = Path(baseline_dir), Path(current_dir)
    report = RegressionReport(name=f"{current_dir} vs {baseline_dir}")
    matched = 0
    for bpath in sorted(baseline_dir.glob(pattern)):
        cpath = current_dir / bpath.name
        if not cpath.exists():
            report.notes.append(f"{bpath.name}: no current run, skipped")
            continue
        matched += 1
        sub = compare_files(bpath, cpath, thresholds=thresholds)
        for c in sub.checks:
            c.metric = f"{bpath.stem}:{c.metric}"
        report.merge(sub)
    if not matched:
        report.notes.append(
            f"no baseline/current pairs matched {pattern!r} — "
            f"nothing gated")
    return report


def inject_slowdown(payload: dict, factor: float = 2.0) -> dict:
    """Return a copy of *payload* with every time-like and count-like
    metric multiplied by *factor* — the synthetic regression CI uses to
    self-test the gate (a gate that cannot flag a 2× slowdown is not a
    gate)."""
    def walk(node, path=""):
        if isinstance(node, dict):
            return {k: (v if not path and k in _SKIP_SUBTREES
                        else walk(v, f"{path}.{k}" if path else str(k)))
                    for k, v in node.items()}
        if isinstance(node, list):
            return [walk(v, f"{path}.{i}") for i, v in enumerate(node)]
        if isinstance(node, bool):
            return node
        if isinstance(node, (int, float)) and path \
                and classify(path) in ("time", "count"):
            return node * factor
        return node

    return walk(payload)
