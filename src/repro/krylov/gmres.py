"""Restarted GMRES with right preconditioning and synchronisation counting.

The paper's experiments stop GMRES at a relative 10⁻⁶ residual decrease
(10⁻⁸ for fig. 1) and use GMRES(40) for the elasticity comparison of
fig. 7.  Right preconditioning keeps the residual of the *original*
system observable at no extra cost, which is what the convergence
histograms plot.

Every global reduction (the dot-product batch of the Gram–Schmidt
orthogonalisation and the normalisation) increments a synchronisation
counter — the quantity the communication-avoiding variants of §3.5 are
designed to reduce.

Allocation discipline: the Krylov basis V, the Hessenberg workspace and
the Givens/orthogonalisation scratch vectors are allocated **once** per
solve and reused across restarts; the modified-Gram–Schmidt updates run
through preallocated buffers (``np.multiply``/``np.subtract`` with
``out=``), so the restart loop allocates nothing proportional to n·m.
A :class:`~repro.krylov.SolveProfiler` times the ``matvec``, ``apply``
and ``orthogonalization`` cost centres; the result carries the
accumulated seconds in :attr:`KrylovResult.profile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ConvergenceError, KrylovError
from .profile import SolveProfiler, finish_zero_rhs


@dataclass
class KrylovResult:
    """Outcome of a Krylov solve."""

    x: np.ndarray
    iterations: int
    residuals: list[float] = field(default_factory=list)
    converged: bool = True
    #: number of global synchronisations (reductions) performed
    global_syncs: int = 0
    #: per-phase wall-clock seconds of the solve — ``apply`` (the
    #: preconditioner), ``coarse_solve`` (nested inside ``apply``),
    #: ``matvec``, ``orthogonalization``
    profile: dict[str, float] = field(default_factory=dict)
    #: last-cycle Arnoldi data ``(V, H̄)`` with ``V`` of shape
    #: ``(n, k+1)`` and the *untransformed* Hessenberg ``H̄`` of shape
    #: ``(k+1, k)`` — populated only by drivers called with
    #: ``keep_basis=True``; the raw material for harvesting recycled
    #: Ritz vectors (:mod:`repro.batch.recycle`)
    basis: tuple | None = None

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else np.inf


def _as_operator(op, n: int, name: str):
    """Accept a callable, a scipy sparse matrix or a dense array;
    matrix-like operands are validated against the system size *n*.

    Dtype contract: complex operators are rejected (the drivers are
    real-valued), and a reduced-precision matrix (e.g. float32) is
    wrapped so its products are upcast to float64 — the iterates the
    drivers hand back are always float64, whatever the operator's
    storage precision.
    """
    if op is None:
        return lambda x: x
    if callable(op):
        return op
    matrix = op
    shape = getattr(matrix, "shape", None)
    if shape is not None and tuple(shape) != (n, n):
        raise KrylovError(
            f"operator {name} has shape {tuple(shape)}, expected ({n}, {n})")
    dtype = getattr(matrix, "dtype", None)
    if dtype is not None and np.issubdtype(dtype, np.complexfloating):
        raise KrylovError(
            f"operator {name} has complex dtype {dtype}; the Krylov "
            f"drivers are real-valued")
    if dtype is not None and dtype != np.float64:
        def mul(x, _m=matrix):
            return np.asarray(_m @ x, dtype=np.float64)
        return mul

    def mul(x, _m=matrix):
        return _m @ x

    return mul


def gmres(A, b: np.ndarray, *, M=None, x0: np.ndarray | None = None,
          tol: float = 1e-6, restart: int = 40, maxiter: int = 1000,
          callback=None, raise_on_stall: bool = False,
          profiler: SolveProfiler | None = None,
          health=None, keep_basis: bool = False,
          kernels=None) -> KrylovResult:
    """Right-preconditioned restarted GMRES: solve ``A (M y) = b``,
    ``x = M y``.

    Parameters
    ----------
    A, M:
        Operator and (right) preconditioner — callables or matrices.
    tol:
        Relative residual target ‖b − A x‖ / ‖b‖.
    restart:
        Krylov basis size m of GMRES(m).
    maxiter:
        Total iteration budget across restarts.
    raise_on_stall:
        Raise :class:`ConvergenceError` instead of returning an
        unconverged result (benchmarks *expect* the one-level method to
        stall, so the default is to return).
    profiler:
        Per-phase timer; pass the one shared with the preconditioner to
        also capture ``coarse_solve``.  Created internally if ``None``.
    health:
        Optional :class:`~repro.resilience.HealthMonitor`, checked once
        per iteration; the iterate is handed over at restart boundaries
        (where it is cheap), so checkpoint/rollback recovery restarts
        from the last completed cycle.  New basis vectors are scanned
        for NaN/Inf and a cheap orthogonality defect ``|v_{j+1}·v_0|``
        is reported.
    keep_basis:
        When True, attach the last cycle's Arnoldi data (basis V and the
        untransformed Hessenberg H̄) to :attr:`KrylovResult.basis` for a
        posteriori Ritz harvesting (subspace recycling).
    kernels:
        Optional :class:`~repro.kernels.KernelBackend` owning the
        orthogonalisation kernel; ``None`` uses the reference ``numpy``
        backend (bitwise-identical to the historical inline MGS).
    """
    from ..kernels import default_backend
    kern = default_backend() if kernels is None else kernels
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if restart < 1:
        raise KrylovError(f"restart must be >= 1, got {restart}")
    prof = profiler if profiler is not None else SolveProfiler()
    A_mul = prof.wrap(_as_operator(A, n, "A"), "matvec")
    M_mul = prof.wrap(_as_operator(M, n, "M"), "apply")
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if health is not None:
        health.profiler = prof

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return finish_zero_rhs(n, profiler=prof, callback=callback,
                               health=health)
    target = tol * bnorm

    residuals: list[float] = []
    syncs = 0
    total_it = 0
    cycle = 0
    j_done = 0

    # workspaces allocated once, reused across restarts
    m = restart
    V = np.empty((n, m + 1))
    H = np.zeros((m + 1, m))
    # Givens rotations triangularise H in place; recycling needs the raw
    # Arnoldi Hessenberg, so keep an untouched copy when asked to
    Hraw = np.zeros((m + 1, m)) if keep_basis else None
    cs = np.zeros(m)
    sn = np.zeros(m)
    g = np.zeros(m + 1)
    scratch = np.empty(n)

    def _basis():
        # last completed cycle's Arnoldi data, or None when harvesting
        # is off / the solve converged before any inner iteration ran
        if Hraw is None or j_done == 0:
            return None
        return (V[:, :j_done + 1].copy(),
                Hraw[:j_done + 1, :j_done].copy())

    while True:
        if cycle > 0:
            prof.restart(cycle, total_it)
        cycle += 1
        r = b - A_mul(x)
        beta = float(np.linalg.norm(r))
        syncs += 1
        residuals.append(beta / bnorm)
        prof.iteration(total_it, beta / bnorm)
        if health is not None:
            health.observe(total_it, beta / bnorm, x)
        if callback is not None:
            callback(total_it, beta / bnorm)
        if beta <= target or total_it >= maxiter:
            break

        H.fill(0.0)
        g.fill(0.0)
        g[0] = beta
        np.divide(r, beta, out=V[:, 0])
        j_done = 0
        for j in range(m):
            w = A_mul(M_mul(V[:, j]))
            # Gram–Schmidt through the kernel backend (reference: MGS,
            # one batched reduction + one norm)
            with prof.phase("orthogonalization"):
                syncs += kern.ortho_step(V, w, H, j, scratch)
                if H[j + 1, j] > 0:
                    if health is not None and j > 0:
                        health.check_vector("basis", V[:, j + 1], total_it)
                        health.orthogonality(
                            total_it, float(V[:, j + 1] @ V[:, 0]))
                else:
                    # lucky breakdown — the basis stopped growing
                    prof.orthogonality_loss(total_it, float(H[j + 1, j]))
            if Hraw is not None:
                Hraw[:j + 2, j] = H[:j + 2, j]
            # apply stored Givens rotations to the new column
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            # new rotation to annihilate H[j+1, j]
            denom = np.hypot(H[j, j], H[j + 1, j])
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, H[j + 1, j] / denom
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_it += 1
            j_done = j + 1
            res = abs(g[j + 1])
            residuals.append(res / bnorm)
            prof.iteration(total_it, res / bnorm)
            if health is not None:
                health.observe(total_it, res / bnorm)
            if callback is not None:
                callback(total_it, res / bnorm)
            if res <= target or total_it >= maxiter:
                break
        # solve the small triangular system and update x
        if j_done:
            y = _back_substitute(H, g, j_done)
            x = x + M_mul(V[:, :j_done] @ y)
        rtrue = float(np.linalg.norm(b - A_mul(x)))
        if rtrue <= target:
            residuals[-1] = rtrue / bnorm
            prof.iteration(total_it, rtrue / bnorm, corrected=True)
            break
        if total_it >= maxiter:
            if raise_on_stall:
                raise ConvergenceError(
                    f"GMRES stalled at {residuals[-1]:.3e} after "
                    f"{total_it} iterations", x=x, residuals=residuals,
                    profile=prof.as_dict())
            return KrylovResult(x=x, iterations=total_it,
                                residuals=residuals, converged=False,
                                global_syncs=syncs, profile=prof.as_dict(),
                                basis=_basis())
    return KrylovResult(x=x, iterations=total_it, residuals=residuals,
                        converged=residuals[-1] * bnorm <= target * (1 + 1e-12),
                        global_syncs=syncs, profile=prof.as_dict(),
                        basis=_basis())


def _back_substitute(H: np.ndarray, g: np.ndarray, k: int) -> np.ndarray:
    y = np.zeros(k)
    for i in range(k - 1, -1, -1):
        y[i] = (g[i] - H[i, i + 1:k] @ y[i + 1:k]) / H[i, i]
    return y
