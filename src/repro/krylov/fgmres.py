"""Flexible GMRES (Saad 1993).

The two-level preconditioner becomes *variable* as soon as the coarse
problem is solved inexactly — e.g. by a few CG iterations on E instead
of a factorization (attractive when E outgrows the masters, §3.4's
closing concern).  Classical right-preconditioned GMRES assumes a fixed
M; FGMRES stores the preconditioned basis Z_j = M_j v_j and stays exact
under iteration-dependent preconditioning.

Workspaces (V, the flexible basis Z, the Hessenberg data) are allocated
once per solve and reused across restarts; the per-phase profiler
mirrors :func:`repro.krylov.gmres`.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import KrylovError
from .gmres import KrylovResult, _as_operator
from .profile import SolveProfiler, finish_zero_rhs


def fgmres(A, b: np.ndarray, *, M=None, x0: np.ndarray | None = None,
           tol: float = 1e-6, restart: int = 40, maxiter: int = 1000,
           callback=None,
           profiler: SolveProfiler | None = None,
           health=None, kernels=None) -> KrylovResult:
    """Flexible restarted GMRES; *M* may change between applications.

    *kernels* selects the orthogonalisation kernel backend
    (:mod:`repro.kernels`); ``None`` is the bitwise-reference ``numpy``
    backend.
    """
    from ..kernels import default_backend
    kern = default_backend() if kernels is None else kernels
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if restart < 1:
        raise KrylovError(f"restart must be >= 1, got {restart}")
    prof = profiler if profiler is not None else SolveProfiler()
    A_mul = prof.wrap(_as_operator(A, n, "A"), "matvec")
    M_mul = prof.wrap(_as_operator(M, n, "M"), "apply")
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if health is not None:
        health.profiler = prof

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return finish_zero_rhs(n, profiler=prof, callback=callback,
                               health=health)
    target = tol * bnorm
    residuals: list[float] = []
    syncs = 0
    total_it = 0
    cycle = 0

    # workspaces allocated once, reused across restarts
    m = restart
    V = np.empty((n, m + 1))
    Zs = np.empty((n, m))              # flexible: store M_j v_j
    H = np.zeros((m + 1, m))
    g = np.zeros(m + 1)
    cs, sn = np.zeros(m), np.zeros(m)
    scratch = np.empty(n)

    while True:
        if cycle > 0:
            prof.restart(cycle, total_it)
        cycle += 1
        r = b - A_mul(x)
        beta = float(np.linalg.norm(r))
        syncs += 1
        residuals.append(beta / bnorm)
        prof.iteration(total_it, beta / bnorm)
        if health is not None:
            health.observe(total_it, beta / bnorm, x)
        if callback is not None:
            callback(total_it, beta / bnorm)
        if beta <= target or total_it >= maxiter:
            break
        H.fill(0.0)
        g.fill(0.0)
        g[0] = beta
        np.divide(r, beta, out=V[:, 0])
        j_done = 0
        for j in range(m):
            Zs[:, j] = M_mul(V[:, j])
            w = A_mul(Zs[:, j])
            with prof.phase("orthogonalization"):
                syncs += kern.ortho_step(V, w, H, j, scratch)
                if H[j + 1, j] > 0:
                    if health is not None and j > 0:
                        health.check_vector("basis", V[:, j + 1], total_it)
                        health.orthogonality(
                            total_it, float(V[:, j + 1] @ V[:, 0]))
                else:
                    prof.orthogonality_loss(total_it, float(H[j + 1, j]))
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            denom = np.hypot(H[j, j], H[j + 1, j])
            cs[j] = H[j, j] / denom if denom else 1.0
            sn[j] = H[j + 1, j] / denom if denom else 0.0
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_it += 1
            j_done = j + 1
            residuals.append(abs(g[j + 1]) / bnorm)
            prof.iteration(total_it, residuals[-1])
            if health is not None:
                health.observe(total_it, residuals[-1])
            if callback is not None:
                callback(total_it, residuals[-1])
            if abs(g[j + 1]) <= target or total_it >= maxiter:
                break
        if j_done:
            y = np.zeros(j_done)
            for i in range(j_done - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1:j_done] @ y[i + 1:j_done]) \
                    / H[i, i]
            x = x + Zs[:, :j_done] @ y
        rtrue = float(np.linalg.norm(b - A_mul(x)))
        if rtrue <= target:
            residuals[-1] = rtrue / bnorm
            prof.iteration(total_it, rtrue / bnorm, corrected=True)
            break
        if total_it >= maxiter:
            return KrylovResult(x=x, iterations=total_it,
                                residuals=residuals, converged=False,
                                global_syncs=syncs, profile=prof.as_dict())
    return KrylovResult(x=x, iterations=total_it, residuals=residuals,
                        converged=residuals[-1] * bnorm <= target
                        * (1 + 1e-12),
                        global_syncs=syncs, profile=prof.as_dict())
