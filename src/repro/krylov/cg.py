"""Preconditioned conjugate gradients.

The paper's systems are SPD, so CG with the *symmetric* variants of the
preconditioners (ASM one-level, BNN/A-DEF2 two-level) is the natural
companion method; it also anchors tests (CG and GMRES must agree).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import IndefiniteError, KrylovBreakdown
from .gmres import KrylovResult, _as_operator
from .profile import SolveProfiler, finish_zero_rhs


def cg(A, b: np.ndarray, *, M=None, x0: np.ndarray | None = None,
       tol: float = 1e-6, maxiter: int = 1000,
       callback=None, profiler: SolveProfiler | None = None,
       health=None) -> KrylovResult:
    """Left-preconditioned CG: solve ``A x = b`` with SPD ``A`` and SPD
    preconditioner ``M`` (applied as an operator).

    A :class:`~repro.resilience.HealthMonitor` passed as *health* is
    checked once per iteration (with the current iterate, so its
    checkpoints can serve rollback-restart recovery); breakdowns raise
    typed :class:`~repro.common.errors.KrylovBreakdown` subclasses
    carrying the last healthy iterate, the residual history and the
    solve profile.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    prof = profiler if profiler is not None else SolveProfiler()
    A_mul = prof.wrap(_as_operator(A, n, "A"), "matvec")
    M_mul = prof.wrap(_as_operator(M, n, "M"), "apply")
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if health is not None:
        health.profiler = prof

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return finish_zero_rhs(n, profiler=prof, callback=callback,
                               health=health)
    target = tol * bnorm

    try:
        r = b - A_mul(x)
        z = M_mul(r)
        p = z.copy()
        rz = float(r @ z)
        syncs = 2
        residuals = [float(np.linalg.norm(r)) / bnorm]
        prof.iteration(0, residuals[0])
        if health is not None:
            health.observe(0, residuals[0], x)
        it = 0
        while residuals[-1] * bnorm > target and it < maxiter:
            Ap = A_mul(p)
            pAp = float(p @ Ap)
            syncs += 1
            if pAp <= 0:
                raise IndefiniteError(
                    f"CG breakdown: p·Ap = {pAp:.3e} <= 0 (operator or "
                    "preconditioner not SPD)",
                    x=x.copy(), residuals=list(residuals), iteration=it,
                    profile=prof.as_dict())
            alpha = rz / pAp
            x += alpha * p
            r -= alpha * Ap
            z = M_mul(r)
            rz_new = float(r @ z)
            syncs += 1
            beta = rz_new / rz
            rz = rz_new
            p = z + beta * p
            it += 1
            residuals.append(float(np.linalg.norm(r)) / bnorm)
            prof.iteration(it, residuals[-1])
            syncs += 1
            if health is not None:
                health.observe(it, residuals[-1], x)
            if callback is not None:
                callback(it, residuals[-1])
    except KrylovBreakdown as exc:
        if exc.profile is None:
            exc.profile = prof.as_dict()
        raise
    return KrylovResult(x=x, iterations=it, residuals=residuals,
                        converged=residuals[-1] * bnorm <= target,
                        global_syncs=syncs, profile=prof.as_dict())
