"""Per-phase solve profiler for the Krylov drivers.

The solve phase of an iteration decomposes into four cost centres the
paper's analysis keeps separate (§2.1, §3.3): the preconditioner
application (``apply``), the coarse solve hidden inside it
(``coarse_solve`` — the most communication-intensive operation), the
operator product (``matvec``), and the basis orthogonalisation
(``orthogonalization`` — the reductions §3.5 pipelines away).

Every Krylov driver threads a :class:`SolveProfiler` through its hot
loop; preconditioner objects that hold a reference to the same profiler
(see :attr:`repro.core.coarse.CoarseOperator.profiler`) time their
coarse solves into it, so ``coarse_solve`` is a sub-interval of
``apply``.  The accumulated seconds surface on
:attr:`~repro.krylov.KrylovResult.profile` and in the CLI report.

As an adapter over the unified telemetry layer, a profiler constructed
with a :class:`repro.obs.Recorder` additionally records every phase as a
hierarchical span (``coarse_solve`` nests inside ``apply`` structurally,
because the coarse solve runs while the ``apply`` span is open on the
same thread) and emits per-iteration convergence events
(:meth:`iteration`, :meth:`restart`, :meth:`orthogonality_loss`) that
the drivers feed.  Without a recorder all telemetry calls are no-ops.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import numpy as np

from ..obs.recorder import NULL_RECORDER


class SolveProfiler:
    """Accumulate wall-clock seconds and call counts per solve phase.

    Phases are created on first use.  ``coarse_solve`` time is nested
    inside ``apply`` (the coarse solve happens during the preconditioner
    application), so the phases are cost centres, not a partition.

    Parameters
    ----------
    recorder:
        Optional :class:`repro.obs.Recorder`; when attached, phases are
        mirrored as telemetry spans and the event helpers record.  The
        default is the shared no-op recorder (~zero cost).
    """

    __slots__ = ("times", "calls", "recorder")

    def __init__(self, recorder=None):
        self.times: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.recorder = NULL_RECORDER if recorder is None else recorder

    def _note(self, name: str, dt: float) -> None:
        self.times[name] = self.times.get(name, 0.0) + dt
        self.calls[name] = self.calls.get(name, 0) + 1

    @contextmanager
    def phase(self, name: str):
        rec = self.recorder
        handle = rec.span(name).__enter__() if rec.enabled else None
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            if handle is not None:
                handle.__exit__(None, None, None)
            self._note(name, dt)

    def wrap(self, fn, name: str):
        """Return *fn* instrumented to accumulate under phase *name*
        (one :meth:`phase` block per call)."""

        def timed(x):
            with self.phase(name):
                return fn(x)

        return timed

    # -- per-iteration convergence events ------------------------------
    def iteration(self, k: int, residual: float, *,
                  corrected: bool = False) -> None:
        """One relative-residual sample, aligned with
        ``KrylovResult.residuals`` (``corrected=True`` marks the restart
        loop replacing its last estimate with the true residual —
        :func:`repro.obs.iteration_residuals` reapplies the semantics)."""
        rec = self.recorder
        if rec.enabled:
            attrs = {"k": int(k), "residual": float(residual)}
            if corrected:
                attrs["corrected"] = True
            rec.event("iteration", attrs=attrs)

    def restart(self, cycle: int, k: int) -> None:
        """A restart boundary: cycle *cycle* begins at iteration *k*."""
        rec = self.recorder
        if rec.enabled:
            rec.event("restart", attrs={"cycle": int(cycle), "k": int(k)})

    def orthogonality_loss(self, k: int, value: float) -> None:
        """Orthogonalisation produced a (numerically) zero new direction
        — a lucky breakdown or a loss of basis orthogonality."""
        rec = self.recorder
        if rec.enabled:
            rec.event("orthogonality_loss",
                      attrs={"k": int(k), "value": float(value)})

    def column_converged(self, k: int, col: int, residual: float) -> None:
        """A block driver's column *col* reached its target at (block)
        iteration *k* — emitted once per right-hand side, so the trace
        shows when each column was deflated from the active block
        (:func:`repro.obs.column_iterations` reconstructs the map)."""
        rec = self.recorder
        if rec.enabled:
            rec.event("batch.column_converged",
                      attrs={"k": int(k), "col": int(col),
                             "residual": float(residual)})

    def as_dict(self) -> dict[str, float]:
        """Accumulated seconds per phase (a plain copy)."""
        return dict(self.times)


def finish_zero_rhs(n: int, *, profiler: SolveProfiler,
                    callback=None, health=None):
    """Shared ``‖b‖ = 0`` early return for every Krylov driver.

    Semantics (previously six diverging copies): a zero right-hand side
    has the exact solution ``x = 0`` for any nonsingular operator, so
    the drivers return it immediately — *discarding* any ``x0`` (the
    exact answer is known, iterating from a guess could only add noise).
    ``residuals`` is ``[0.0]`` by convention: the relative residual
    ``‖b − A x‖ / ‖b‖`` is 0/0 and the solve is converged, so the
    history records a single converged sample.  The callback and the
    health monitor each fire exactly once with that sample, mirroring
    the iteration-0 behaviour of a normal solve (previously both were
    silently skipped).
    """
    from .gmres import KrylovResult    # deferred: gmres imports profile
    x = np.zeros(n)
    profiler.iteration(0, 0.0)
    if health is not None:
        health.observe(0, 0.0, x)
    if callback is not None:
        callback(0, 0.0)
    return KrylovResult(x=x, iterations=0, residuals=[0.0],
                        converged=True, profile=profiler.as_dict())
