"""Per-phase solve profiler for the Krylov drivers.

The solve phase of an iteration decomposes into four cost centres the
paper's analysis keeps separate (§2.1, §3.3): the preconditioner
application (``apply``), the coarse solve hidden inside it
(``coarse_solve`` — the most communication-intensive operation), the
operator product (``matvec``), and the basis orthogonalisation
(``orthogonalization`` — the reductions §3.5 pipelines away).

Every Krylov driver threads a :class:`SolveProfiler` through its hot
loop; preconditioner objects that hold a reference to the same profiler
(see :attr:`repro.core.coarse.CoarseOperator.profiler`) time their
coarse solves into it, so ``coarse_solve`` is a sub-interval of
``apply``.  The accumulated seconds surface on
:attr:`~repro.krylov.KrylovResult.profile` and in the CLI report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class SolveProfiler:
    """Accumulate wall-clock seconds and call counts per solve phase.

    Phases are created on first use.  ``coarse_solve`` time is nested
    inside ``apply`` (the coarse solve happens during the preconditioner
    application), so the phases are cost centres, not a partition.
    """

    __slots__ = ("times", "calls")

    def __init__(self):
        self.times: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.times[name] = self.times.get(name, 0.0) + dt
            self.calls[name] = self.calls.get(name, 0) + 1

    def wrap(self, fn, name: str):
        """Return *fn* instrumented to accumulate under phase *name*."""

        def timed(x):
            t0 = time.perf_counter()
            out = fn(x)
            dt = time.perf_counter() - t0
            self.times[name] = self.times.get(name, 0.0) + dt
            self.calls[name] = self.calls.get(name, 0) + 1
            return out

        return timed

    def as_dict(self) -> dict[str, float]:
        """Accumulated seconds per phase (a plain copy)."""
        return dict(self.times)
