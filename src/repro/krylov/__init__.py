"""Krylov methods: GMRES(m), CG, deflated CG, pipelined p1-GMRES (§3.5)."""

from .cg import cg
from .deflated_cg import deflated_cg
from .fgmres import fgmres
from .gmres import KrylovResult, gmres
from .pipelined import p1_gmres
from .profile import SolveProfiler
from .sstep import s_step_gmres

__all__ = ["gmres", "fgmres", "cg", "deflated_cg", "p1_gmres",
           "s_step_gmres", "KrylovResult", "SolveProfiler"]
