"""Deflated conjugate gradients (Nicolaides 1987; Frank & Vuik 2002).

The paper's references [23] and [11] are the classical deflation
literature its coarse operator generalises.  Deflated CG solves the SPD
system on the A-orthogonal complement of range(Z):

    P = I − A Z E⁻¹ Zᵀ,  E = ZᵀAZ,
    solve P A x̂ = P b with CG, then  x = Q b + Pᵀ x̂,  Q = Z E⁻¹ Zᵀ.

With the GenEO Z this is the CG-side counterpart of P_A-DEF1.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import IndefiniteError, KrylovError
from ..solvers import factorize
from .gmres import KrylovResult, _as_operator
from .profile import SolveProfiler, finish_zero_rhs


def deflated_cg(A, b: np.ndarray, Z, *, M=None,
                x0: np.ndarray | None = None, tol: float = 1e-6,
                maxiter: int = 1000, backend: str = "dense",
                callback=None,
                profiler: SolveProfiler | None = None,
                health=None) -> KrylovResult:
    """Deflated (and optionally preconditioned) CG.

    Parameters
    ----------
    A:
        SPD matrix or operator callable.
    Z:
        ``(n, m)`` deflation basis (dense or sparse), full column rank.
    M:
        Optional SPD preconditioner (callable or matrix).
    x0:
        Initial guess.  The deflated iteration runs on x̂ with
        ``r = P(b − A x0)``; the final map ``x = Q b + Pᵀ x̂`` then
        reproduces ``x0`` exactly when it already solves the system
        (``Q b + Pᵀ x* = x*``), so a warm start from the exact solution
        converges in zero iterations like the undeflated drivers.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    prof = profiler if profiler is not None else SolveProfiler()
    A_mul = prof.wrap(_as_operator(A, n, "A"), "matvec")
    M_mul = prof.wrap(_as_operator(M, n, "M"), "apply")
    if health is not None:
        health.profiler = prof
    Zd = Z.toarray() if sp.issparse(Z) else np.asarray(Z, dtype=np.float64)
    if Zd.ndim != 2 or Zd.shape[0] != n:
        raise KrylovError(f"Z must be (n, m) with n={n}, got {Zd.shape}")
    m = Zd.shape[1]
    if m == 0:
        raise KrylovError("deflation basis Z has no columns")
    AZ = np.column_stack([A_mul(Zd[:, j]) for j in range(m)])
    E = Zd.T @ AZ
    Ef = factorize(sp.csr_matrix(E), backend)

    def P(v):                     # P = I − AZ E⁻¹ Zᵀ
        return v - AZ @ Ef.solve(Zd.T @ v)

    def Pt(v):                    # Pᵀ = I − Z E⁻¹ (AZ)ᵀ
        return v - Zd @ Ef.solve(AZ.T @ v)

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return finish_zero_rhs(n, profiler=prof, callback=callback,
                               health=health)
    target = tol * bnorm

    x_coarse = Zd @ Ef.solve(Zd.T @ b)      # Q b
    if x0 is None:
        xhat = np.zeros(n)
        r = P(b)
    else:
        xhat = np.array(x0, dtype=np.float64)
        r = P(b - A_mul(xhat))
    z = M_mul(r)
    if health is not None:
        # a corrupted preconditioner application must surface as a typed
        # breakdown before the NaN reaches the projector's dense solve
        health.check_vector("preconditioned", z, 0)
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r)) / bnorm]
    prof.iteration(0, residuals[0])
    if health is not None:
        health.observe(0, residuals[0], xhat)
    it = 0
    while residuals[-1] * bnorm > target and it < maxiter:
        Ap = P(A_mul(p))
        pAp = float(p @ Ap)
        if pAp <= 0:
            # numerically zero curvature happens when p drifts into
            # range(Z); project and retry once, else give up
            p = P(p)
            Ap = P(A_mul(p))
            pAp = float(p @ Ap)
            if pAp <= 0:
                # attach the last healthy iterate mapped back to the
                # original solution space, so recovery can restart
                raise IndefiniteError(
                    f"deflated CG breakdown: p·PAp = {pAp:.3e}",
                    x=x_coarse + Pt(xhat), residuals=list(residuals),
                    iteration=it, profile=prof.as_dict())
        alpha = rz / pAp
        xhat += alpha * p
        r -= alpha * Ap
        z = M_mul(r)
        if health is not None:
            health.check_vector("preconditioned", z, it)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        it += 1
        residuals.append(float(np.linalg.norm(r)) / bnorm)
        prof.iteration(it, residuals[-1])
        if health is not None:
            health.observe(it, residuals[-1], xhat)
        if callback is not None:
            callback(it, residuals[-1])
    x = x_coarse + Pt(xhat)
    true_res = float(np.linalg.norm(b - A_mul(x))) / bnorm
    return KrylovResult(x=x, iterations=it, residuals=residuals,
                        converged=true_res <= tol * 10,
                        profile=prof.as_dict())
