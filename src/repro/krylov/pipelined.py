"""p1-GMRES — the one-step pipelined GMRES of Ghysels et al. (§3.5).

The computational loop follows the paper's listing verbatim: iteration i
produces the *uncorrected* Hessenberg entries of column i (one fused
non-blocking reduction: the ⟨z_{i+1}, v_j⟩ batch together with ‖v_i‖),
and corrects column i−1 with the previous iteration's scale factor
h_{i−1,i−2}.  The reduction posted at iteration i is only consumed at
iteration i+1 — in a parallel run it hides behind the next matrix–vector
product, so each iteration costs **zero blocking** global
synchronisations (vs two for classical GMRES).

The synchronisation accounting distinguishes ``global_syncs`` (blocking)
from ``overlapped_reductions`` (posted non-blocking and hidden); the
§3.5 bench compares these across the three GMRES variants.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import KrylovError
from .gmres import KrylovResult, _as_operator
from .profile import SolveProfiler, finish_zero_rhs


def p1_gmres(A, b: np.ndarray, *, M=None, x0: np.ndarray | None = None,
             tol: float = 1e-6, restart: int = 40, maxiter: int = 1000,
             callback=None,
             profiler: SolveProfiler | None = None,
             health=None) -> KrylovResult:
    """Right-preconditioned pipelined GMRES(m) (p1-GMRES).

    Mathematically equivalent to classical GMRES in exact arithmetic; the
    basis is built with a one-iteration-lagged normalisation.  The basis
    and Hessenberg workspaces are allocated once per solve and reused
    across restarts.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if restart < 1:
        raise KrylovError(f"restart must be >= 1, got {restart}")
    prof = profiler if profiler is not None else SolveProfiler()
    A_mul = prof.wrap(_as_operator(A, n, "A"), "matvec")
    M_mul = prof.wrap(_as_operator(M, n, "M"), "apply")
    op = lambda v: A_mul(M_mul(v))  # noqa: E731 - local composition
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if health is not None:
        health.profiler = prof

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return finish_zero_rhs(n, profiler=prof, callback=callback,
                               health=health)
    target = tol * bnorm

    residuals: list[float] = []
    blocking_syncs = 0
    overlapped = 0
    total_it = 0
    cycle = 0

    # workspaces allocated once, reused across restarts
    m = restart
    V = np.empty((n, m + 2))
    Z = np.empty((n, m + 2))
    H = np.zeros((m + 2, m + 1))

    while True:
        if cycle > 0:
            prof.restart(cycle, total_it)
        cycle += 1
        r = b - A_mul(x)
        beta = float(np.linalg.norm(r))
        blocking_syncs += 1
        residuals.append(beta / bnorm)
        prof.iteration(total_it, beta / bnorm)
        if health is not None:
            health.observe(total_it, beta / bnorm, x)
        if callback is not None:
            callback(total_it, beta / bnorm)
        if beta <= target or total_it >= maxiter:
            break

        H.fill(0.0)
        np.divide(r, beta, out=V[:, 0])
        Z[:, 0] = V[:, 0]
        finalized = 0            # number of fully corrected columns
        for i in range(m + 1):
            w = op(Z[:, i])
            if i > 1:
                eta = H[i - 1, i - 2]
                if eta == 0.0:
                    # lucky breakdown: basis is invariant
                    prof.orthogonality_loss(total_it, 0.0)
                    break
                V[:, i - 1] /= eta
                Z[:, i] /= eta
                w /= eta
                H[i - 1, i - 1] /= eta * eta
                H[:i - 1, i - 1] /= eta
            # line 8: z_{i+1} = w − Σ_{j<i} h_{j,i−1} z_{j+1}
            if i > 0:
                Z[:, i + 1] = w - Z[:, 1:i + 1] @ H[:i, i - 1]
            else:
                Z[:, i + 1] = w
            # line 10: v_i = z_i − Σ_{j<i} h_{j,i−1} v_j; h_{i,i−1} = ‖v_i‖
            if i > 0:
                V[:, i] = Z[:, i] - V[:, :i] @ H[:i, i - 1]
                H[i, i - 1] = float(np.linalg.norm(V[:, i]))
                finalized = i    # column i−1 of H̄ is now final
                total_it += 1
            # line 12: h_{j,i} = ⟨z_{i+1}, v_j⟩ — fused with the norm above
            # into ONE reduction, posted non-blocking (hidden behind the
            # next matvec in a parallel run)
            with prof.phase("orthogonalization"):
                H[:i + 1, i] = V[:, :i + 1].T @ Z[:, i + 1]
            overlapped += 1

            if finalized:
                res = _lsq_residual(H, beta, finalized)
                residuals.append(res / bnorm)
                prof.iteration(total_it, res / bnorm)
                if health is not None:
                    health.observe(total_it, res / bnorm)
                if callback is not None:
                    callback(total_it, res / bnorm)
                if res <= target or total_it >= maxiter:
                    break
            if i > 1 and H[i - 1, i - 2] == 0.0:
                break
        k = finalized
        if k:
            y = _lsq_solve(H, beta, k)
            x = x + M_mul(V[:, :k] @ y)
        rtrue = float(np.linalg.norm(b - A_mul(x)))
        blocking_syncs += 1
        if rtrue <= target:
            residuals[-1] = rtrue / bnorm
            prof.iteration(total_it, rtrue / bnorm, corrected=True)
            break
        if total_it >= maxiter:
            res = KrylovResult(x=x, iterations=total_it, residuals=residuals,
                               converged=False, global_syncs=blocking_syncs,
                               profile=prof.as_dict())
            res.overlapped_reductions = overlapped
            return res
    res = KrylovResult(x=x, iterations=total_it, residuals=residuals,
                       converged=residuals[-1] * bnorm <= target * (1 + 1e-12),
                       global_syncs=blocking_syncs, profile=prof.as_dict())
    res.overlapped_reductions = overlapped
    return res


def _hbar(H: np.ndarray, k: int) -> np.ndarray:
    return H[:k + 1, :k]


def _lsq_solve(H: np.ndarray, beta: float, k: int) -> np.ndarray:
    g = np.zeros(k + 1)
    g[0] = beta
    y, *_ = np.linalg.lstsq(_hbar(H, k), g, rcond=None)
    return y


def _lsq_residual(H: np.ndarray, beta: float, k: int) -> float:
    g = np.zeros(k + 1)
    g[0] = beta
    y, res2, *_ = np.linalg.lstsq(_hbar(H, k), g, rcond=None)
    if res2.size:
        return float(np.sqrt(res2[0]))
    return float(np.linalg.norm(g - _hbar(H, k) @ y))
