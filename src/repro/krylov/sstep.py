"""s-step (communication-avoiding) GMRES.

The paper's §3.5 cites the s-step line of work (Chronopoulos & Gear; De
Sturler & van der Vorst) as the classical way of trading reductions for
flops.  This module implements GMRES(s) in its s-step form: one restart
cycle generates the whole Krylov block with ``s`` matvecs and **no**
intermediate reductions, then orthonormalises it with two batched
reductions (block Gram–Schmidt + CholeskyQR) — ~2 global
synchronisations per ``s`` iterations instead of ~2 per iteration.

In exact arithmetic one cycle minimises the residual over the same
Krylov space as classical GMRES(s), so per-cycle convergence matches;
the monomial basis limits practical ``s`` to ≲ 12 (its condition number
grows geometrically), which is the known trade-off of the approach.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import KrylovError
from .gmres import KrylovResult, _as_operator
from .profile import SolveProfiler, finish_zero_rhs


def s_step_gmres(A, b: np.ndarray, *, M=None, s: int = 6,
                 x0: np.ndarray | None = None, tol: float = 1e-6,
                 maxiter: int = 1000, callback=None,
                 profiler: SolveProfiler | None = None,
                 health=None) -> KrylovResult:
    """Right-preconditioned s-step GMRES (restart length = s).

    Parameters
    ----------
    s:
        Basis-block size per cycle (recommended 2–12; the monomial basis
        degrades beyond that).
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if not (1 <= s <= n):
        raise KrylovError(f"s must be in [1, {n}], got {s}")
    prof = profiler if profiler is not None else SolveProfiler()
    A_mul = prof.wrap(_as_operator(A, n, "A"), "matvec")
    M_mul = prof.wrap(_as_operator(M, n, "M"), "apply")
    op = lambda v: A_mul(M_mul(v))          # noqa: E731
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    if health is not None:
        health.profiler = prof

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return finish_zero_rhs(n, profiler=prof, callback=callback,
                               health=health)
    target = tol * bnorm

    residuals: list[float] = []
    syncs = 0
    total_it = 0
    cycle = 0
    theta = None                             # spectral-radius estimate

    while True:
        if cycle > 0:
            prof.restart(cycle, total_it)
        cycle += 1
        r = b - A_mul(x)
        beta = float(np.linalg.norm(r))
        syncs += 1
        residuals.append(beta / bnorm)
        prof.iteration(total_it, beta / bnorm)
        if health is not None:
            health.observe(total_it, beta / bnorm, x)
        if callback is not None:
            callback(total_it, beta / bnorm)
        if beta <= target or total_it >= maxiter:
            break

        # ---- generate the monomial block: NO reductions inside -------
        P = np.zeros((n, s + 1))
        P[:, 0] = r / beta
        if theta is None:
            w = op(P[:, 0])
            theta = float(np.linalg.norm(w))    # one-time scale estimate
            syncs += 1
            theta = max(theta, 1e-300)
            P[:, 1] = w / theta
            start = 2
        else:
            start = 1
        for j in range(start, s + 1):
            P[:, j] = op(P[:, j - 1]) / theta

        # ---- orthonormalise with two batched reductions ---------------
        # CholeskyQR: G = PᵀP (reduction #1), P Q R with R = chol(G)ᵀ
        with prof.phase("orthogonalization"):
            G = P.T @ P
        syncs += 1
        # regularise: the monomial basis may be numerically rank-deficient
        eps = 1e-14 * max(float(np.trace(G)) / (s + 1), 1e-300)
        k_eff = s
        try:
            L = np.linalg.cholesky(G + eps * np.eye(s + 1))
        except np.linalg.LinAlgError:
            # fall back to an eigendecomposition-based whitening
            w_, V_ = np.linalg.eigh(G)
            keep = w_ > 1e-12 * w_.max()
            k_eff = max(int(keep.sum()) - 1, 1)
            L = None
        if L is not None:
            R = L.T                               # P = Q R
            Rinv = np.linalg.solve(R, np.eye(s + 1))
            Q = P @ Rinv
        else:
            Q, R = np.linalg.qr(P)               # rare fallback (1 sync)
            syncs += 1

        # ---- the Arnoldi-like relation --------------------------------
        # op P[:, :s] = θ P[:, 1:s+1]  ⇒  op Q R[:, :s] = θ Q R[:, 1:]
        # ⇒ H̄ = θ R[:, 1:] (R[:s, :s])⁻¹ restricted to (s+1) × s
        Rl = R[: s + 1, 1: s + 1]
        H = theta * Rl @ np.linalg.solve(R[:s, :s], np.eye(s))

        # least squares: r = P e_0 β = Q R e_0 β
        g = beta * R[:, 0]
        k = k_eff
        y, *_ = np.linalg.lstsq(H[: k + 1, :k], g[: k + 1], rcond=None)
        x = x + M_mul(Q[:, :k] @ y)
        total_it += k
        est = float(np.linalg.norm(g[: k + 1] - H[: k + 1, :k] @ y))
        residuals.append(est / bnorm)
        prof.iteration(total_it, est / bnorm)
        if health is not None:
            health.observe(total_it, est / bnorm, x)
        if callback is not None:
            callback(total_it, residuals[-1])
        if total_it >= maxiter:
            rtrue = float(np.linalg.norm(b - A_mul(x)))
            residuals[-1] = rtrue / bnorm
            prof.iteration(total_it, rtrue / bnorm, corrected=True)
            return KrylovResult(x=x, iterations=total_it,
                                residuals=residuals,
                                converged=rtrue <= target,
                                global_syncs=syncs,
                                profile=prof.as_dict())
    return KrylovResult(x=x, iterations=total_it, residuals=residuals,
                        converged=residuals[-1] * bnorm
                        <= target * (1 + 1e-12),
                        global_syncs=syncs, profile=prof.as_dict())
