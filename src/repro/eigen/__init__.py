"""Eigensolver substrate (the paper's ARPACK role)."""

from .lanczos import EigenResult, lanczos_generalized, subspace_iteration

__all__ = ["EigenResult", "lanczos_generalized", "subspace_iteration"]
