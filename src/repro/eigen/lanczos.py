"""Generalized symmetric eigensolver: Lanczos with full reorthogonalisation.

The paper computes the GenEO deflation vectors with ARPACK (implicitly
restarted Arnoldi).  This module is the from-scratch substitute: a Lanczos
iteration for the pencil ``B v = μ M v`` (M symmetric positive definite,
B symmetric positive semi-definite), M-orthonormal basis, full
reorthogonalisation, Ritz extraction, residual-based convergence.  The
GenEO driver calls it for the *largest* μ of a transformed pencil, which
is Lanczos's easy regime (ARPACK's shift-invert does the same thing).

Operators may be passed either as callables (vector → vector) or as
sparse/dense matrices; matrices unlock the blocked paths — multi-RHS
``M_factor.solve(B @ X)`` in :func:`subspace_iteration`, block products
in the orthogonalisation — which cut the solve/matvec call counts by an
order of magnitude (one blocked call per iteration instead of one per
column).  Lanczos additionally caches ``M @ v_j`` as columns are added,
so full reorthogonalisation reuses them instead of recomputing
``M_mul(V[:, j])`` on every pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import EigenError
from ..solvers.local import Factorization


@dataclass
class EigenResult:
    """Eigenpairs of ``B v = μ M v``, sorted by descending μ."""

    values: np.ndarray    # (k,)
    vectors: np.ndarray   # (n, k), M-orthonormal
    iterations: int
    residuals: np.ndarray


def _as_operator(op):
    """Normalise an operator argument to a function on vectors *and* blocks.

    *op* may be anything supporting ``@`` — a sparse matrix, an ndarray,
    or a linear-operator wrapper — applied directly, so a column block
    costs one csrmm/gemm; or a vector-only callable (blocks fall back to
    a per-column loop — the legacy path, kept for API compatibility with
    per-vector lambdas).
    """
    if not callable(op):
        return lambda x: op @ x

    def apply(x: np.ndarray) -> np.ndarray:
        if x.ndim == 1:
            return op(x)
        return np.column_stack([op(x[:, i]) for i in range(x.shape[1])])

    return apply


def lanczos_generalized(B_mul, M_factor: Factorization, M_mul, n: int,
                        nev: int, *, maxiter: int | None = None,
                        tol: float = 1e-8, seed: int = 0) -> EigenResult:
    """Largest *nev* eigenpairs of ``B v = μ M v``.

    Parameters
    ----------
    B_mul, M_mul:
        B and M as sparse matrices / ndarrays, or matrix–vector callables.
    M_factor:
        Factorisation of M (provides the solve in ``w = M⁻¹ B v``).
    n:
        Problem size.
    nev:
        Number of requested eigenpairs.
    """
    if nev < 1:
        raise EigenError(f"nev must be >= 1, got {nev}")
    if nev > n:
        raise EigenError(f"nev={nev} exceeds problem size {n}")
    if maxiter is None:
        maxiter = min(n, max(4 * nev + 40, 60))
    maxiter = min(maxiter, n)
    rng = np.random.default_rng(seed)
    B_op = _as_operator(B_mul)
    M_op = _as_operator(M_mul)

    V = np.zeros((n, maxiter + 1))
    #: MV[:, j] = M @ V[:, j], cached so reorthogonalisation never
    #: recomputes M products against settled basis columns
    MV = np.zeros((n, maxiter + 1))
    alphas: list[float] = []
    betas: list[float] = []

    v = rng.standard_normal(n)
    Mv = M_op(v)
    nrm = np.sqrt(max(v @ Mv, 0.0))
    if nrm == 0:  # pragma: no cover - random vector cannot be 0
        raise EigenError("degenerate start vector")
    V[:, 0] = v / nrm
    MV[:, 0] = Mv / nrm

    k = 0
    for j in range(maxiter):
        w = M_factor.solve(B_op(V[:, j]))
        alpha = float(w @ MV[:, j])
        w = w - alpha * V[:, j]
        if j > 0:
            w = w - betas[-1] * V[:, j - 1]
        # full reorthogonalisation in the M-inner product (twice is
        # enough); the cached MV columns make each pass two gemvs
        for _ in range(2):
            coef = MV[:, :j + 1].T @ w
            w = w - V[:, :j + 1] @ coef
        alphas.append(alpha)
        Mw = M_op(w)
        beta = float(np.sqrt(max(w @ Mw, 0.0)))
        k = j + 1
        if beta < 1e-14 * max(1.0, abs(alpha)):
            break                      # invariant subspace (rank(B) reached)
        betas.append(beta)
        V[:, j + 1] = w / beta
        MV[:, j + 1] = Mw / beta
        # convergence test every few steps once we have nev Ritz values
        if k >= nev and (k % 5 == 0 or k == maxiter):
            theta, S = _tridiag_eig(alphas, betas[:k - 1])
            res = np.abs(beta * S[-1, :])
            order = np.argsort(-theta)
            top = order[:nev]
            scale = max(np.max(np.abs(theta)), 1e-300)
            if np.all(res[top] <= tol * scale):
                break

    theta, S = _tridiag_eig(alphas[:k], betas[:k - 1])
    resid = np.abs((betas[k - 1] if k - 1 < len(betas) else 0.0) * S[-1, :])
    order = np.argsort(-theta)
    take = order[:min(nev, k)]
    vectors = V[:, :k] @ S[:, take]
    return EigenResult(values=theta[take], vectors=vectors,
                       iterations=k, residuals=resid[take])


def _tridiag_eig(alphas, betas):
    from scipy.linalg import eigh_tridiagonal
    a = np.asarray(alphas, dtype=np.float64)
    b = np.asarray(betas, dtype=np.float64)
    if a.size == 1:
        return a.copy(), np.ones((1, 1))
    return eigh_tridiagonal(a, b)


def subspace_iteration(B_mul, M_factor: Factorization, M_mul, n: int,
                       nev: int, *, maxiter: int = 200, tol: float = 1e-8,
                       seed: int = 0) -> EigenResult:
    """Block power method fallback for ``B v = μ M v`` (largest μ).

    Slower convergence than Lanczos but immune to breakdown; used in tests
    to cross-check and as a safety net when the Lanczos basis saturates.
    Fully blocked: each iteration is ONE multi-RHS ``M_factor.solve`` and
    ONE block product with B (all :class:`Factorization` backends accept
    column blocks), instead of one call per column.
    """
    if nev < 1 or nev > n:
        raise EigenError(f"invalid nev={nev} for n={n}")
    rng = np.random.default_rng(seed)
    B_op = _as_operator(B_mul)
    M_op = _as_operator(M_mul)
    block = min(n, nev + min(nev, 8))
    X = rng.standard_normal((n, block))
    theta_old = np.zeros(block)
    its = 0
    for its in range(1, maxiter + 1):
        Y = M_factor.solve(B_op(X))            # one blocked solve
        X = _m_orthonormalize(Y, M_op, rng=rng)
        # Rayleigh–Ritz in the M-inner product
        BX = B_op(X)                           # one blocked product
        H = X.T @ BX
        H = 0.5 * (H + H.T)
        theta, S = np.linalg.eigh(H)
        order = np.argsort(-theta)
        theta, S = theta[order], S[:, order]
        X = X @ S
        scale = max(np.max(np.abs(theta)), 1e-300)
        if np.max(np.abs(theta[:nev] - theta_old[:nev])) <= tol * scale:
            break
        theta_old = theta
    res = np.full(nev, np.nan)
    return EigenResult(values=theta[:nev], vectors=X[:, :nev],
                       iterations=its, residuals=res)


def _m_orthonormalize(X: np.ndarray, M_mul,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """Gram–Schmidt M-orthonormalisation of the columns of X.

    Classical Gram–Schmidt with reorthogonalisation (CGS2) against the
    cached block ``MQ = M @ Q``: one M product per settled column instead
    of one per (i, j) pair, and each projection pass is two gemvs.

    *rng* replaces degenerate (M-null) directions; callers must pass
    their seeded generator so results never depend on the column index
    alone (reproducibility across call sites).
    """
    M_op = _as_operator(M_mul)
    Q = np.array(X, dtype=np.float64, copy=True)
    n, k = Q.shape
    MQ = np.empty((n, k))
    if rng is None:
        rng = np.random.default_rng(0)
    for i in range(k):
        orig = np.sqrt(max(Q[:, i] @ M_op(Q[:, i]), 0.0))
        for _ in range(2):
            if i:
                coef = MQ[:, :i].T @ Q[:, i]
                Q[:, i] -= Q[:, :i] @ coef
        Mq = M_op(Q[:, i])
        nrm = np.sqrt(max(Q[:, i] @ Mq, 0.0))
        # degenerate = the projection annihilated the column (it was
        # numerically inside the settled span); the residual is then
        # rounding noise whose normalisation would be garbage
        if nrm <= 1e-12 * orig or orig == 0.0:
            # replace with a fresh direction from the *caller's* rng,
            # projected against the settled columns
            Q[:, i] = rng.standard_normal(n)
            for _ in range(2):
                if i:
                    coef = MQ[:, :i].T @ Q[:, i]
                    Q[:, i] -= Q[:, :i] @ coef
            Mq = M_op(Q[:, i])
            nrm = np.sqrt(max(Q[:, i] @ Mq, 0.0))
        Q[:, i] /= nrm
        MQ[:, i] = Mq / nrm
    return Q
