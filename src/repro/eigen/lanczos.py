"""Generalized symmetric eigensolver: Lanczos with full reorthogonalisation.

The paper computes the GenEO deflation vectors with ARPACK (implicitly
restarted Arnoldi).  This module is the from-scratch substitute: a Lanczos
iteration for the pencil ``B v = μ M v`` (M symmetric positive definite,
B symmetric positive semi-definite), M-orthonormal basis, full
reorthogonalisation, Ritz extraction, residual-based convergence.  The
GenEO driver calls it for the *largest* μ of a transformed pencil, which
is Lanczos's easy regime (ARPACK's shift-invert does the same thing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import EigenError
from ..solvers.local import Factorization


@dataclass
class EigenResult:
    """Eigenpairs of ``B v = μ M v``, sorted by descending μ."""

    values: np.ndarray    # (k,)
    vectors: np.ndarray   # (n, k), M-orthonormal
    iterations: int
    residuals: np.ndarray


def lanczos_generalized(B_mul, M_factor: Factorization, M_mul, n: int,
                        nev: int, *, maxiter: int | None = None,
                        tol: float = 1e-8, seed: int = 0) -> EigenResult:
    """Largest *nev* eigenpairs of ``B v = μ M v``.

    Parameters
    ----------
    B_mul, M_mul:
        Matrix–vector products with B and M.
    M_factor:
        Factorisation of M (provides the solve in ``w = M⁻¹ B v``).
    n:
        Problem size.
    nev:
        Number of requested eigenpairs.
    """
    if nev < 1:
        raise EigenError(f"nev must be >= 1, got {nev}")
    if nev > n:
        raise EigenError(f"nev={nev} exceeds problem size {n}")
    if maxiter is None:
        maxiter = min(n, max(4 * nev + 40, 60))
    maxiter = min(maxiter, n)
    rng = np.random.default_rng(seed)

    V = np.zeros((n, maxiter + 1))
    alphas: list[float] = []
    betas: list[float] = []

    v = rng.standard_normal(n)
    Mv = M_mul(v)
    nrm = np.sqrt(max(v @ Mv, 0.0))
    if nrm == 0:  # pragma: no cover - random vector cannot be 0
        raise EigenError("degenerate start vector")
    V[:, 0] = v / nrm

    k = 0
    for j in range(maxiter):
        w = M_factor.solve(B_mul(V[:, j]))
        alpha = float(w @ M_mul(V[:, j]))
        w = w - alpha * V[:, j]
        if j > 0:
            w = w - betas[-1] * V[:, j - 1]
        # full reorthogonalisation in the M-inner product (twice is enough)
        for _ in range(2):
            coef = V[:, :j + 1].T @ M_mul(w)
            w = w - V[:, :j + 1] @ coef
        alphas.append(alpha)
        beta = float(np.sqrt(max(w @ M_mul(w), 0.0)))
        k = j + 1
        if beta < 1e-14 * max(1.0, abs(alpha)):
            break                      # invariant subspace (rank(B) reached)
        betas.append(beta)
        V[:, j + 1] = w / beta
        # convergence test every few steps once we have nev Ritz values
        if k >= nev and (k % 5 == 0 or k == maxiter):
            theta, S = _tridiag_eig(alphas, betas[:k - 1])
            res = np.abs(beta * S[-1, :])
            order = np.argsort(-theta)
            top = order[:nev]
            scale = max(np.max(np.abs(theta)), 1e-300)
            if np.all(res[top] <= tol * scale):
                break

    theta, S = _tridiag_eig(alphas[:k], betas[:k - 1])
    resid = np.abs((betas[k - 1] if k - 1 < len(betas) else 0.0) * S[-1, :])
    order = np.argsort(-theta)
    take = order[:min(nev, k)]
    vectors = V[:, :k] @ S[:, take]
    return EigenResult(values=theta[take], vectors=vectors,
                       iterations=k, residuals=resid[take])


def _tridiag_eig(alphas, betas):
    from scipy.linalg import eigh_tridiagonal
    a = np.asarray(alphas, dtype=np.float64)
    b = np.asarray(betas, dtype=np.float64)
    if a.size == 1:
        return a.copy(), np.ones((1, 1))
    return eigh_tridiagonal(a, b)


def subspace_iteration(B_mul, M_factor: Factorization, M_mul, n: int,
                       nev: int, *, maxiter: int = 200, tol: float = 1e-8,
                       seed: int = 0) -> EigenResult:
    """Block power method fallback for ``B v = μ M v`` (largest μ).

    Slower convergence than Lanczos but immune to breakdown; used in tests
    to cross-check and as a safety net when the Lanczos basis saturates.
    """
    if nev < 1 or nev > n:
        raise EigenError(f"invalid nev={nev} for n={n}")
    rng = np.random.default_rng(seed)
    block = min(n, nev + min(nev, 8))
    X = rng.standard_normal((n, block))
    theta_old = np.zeros(block)
    its = 0
    for its in range(1, maxiter + 1):
        Y = np.column_stack([M_factor.solve(B_mul(X[:, i]))
                             for i in range(block)])
        X = _m_orthonormalize(Y, M_mul)
        # Rayleigh–Ritz in the M-inner product
        BX = np.column_stack([B_mul(X[:, i]) for i in range(block)])
        H = X.T @ BX
        H = 0.5 * (H + H.T)
        theta, S = np.linalg.eigh(H)
        order = np.argsort(-theta)
        theta, S = theta[order], S[:, order]
        X = X @ S
        scale = max(np.max(np.abs(theta)), 1e-300)
        if np.max(np.abs(theta[:nev] - theta_old[:nev])) <= tol * scale:
            break
        theta_old = theta
    res = np.full(nev, np.nan)
    return EigenResult(values=theta[:nev], vectors=X[:, :nev],
                       iterations=its, residuals=res)


def _m_orthonormalize(X: np.ndarray, M_mul) -> np.ndarray:
    """Gram–Schmidt M-orthonormalisation of the columns of X."""
    Q = np.array(X, dtype=np.float64, copy=True)
    k = Q.shape[1]
    for i in range(k):
        for _ in range(2):
            for j in range(i):
                Q[:, i] -= (Q[:, j] @ M_mul(Q[:, i])) * Q[:, j]
        nrm = np.sqrt(max(Q[:, i] @ M_mul(Q[:, i]), 0.0))
        if nrm < 1e-300:
            # replace a degenerate direction with a fresh random one
            Q[:, i] = np.random.default_rng(i).standard_normal(Q.shape[0])
            nrm = np.sqrt(Q[:, i] @ M_mul(Q[:, i]))
        Q[:, i] /= nrm
    return Q
