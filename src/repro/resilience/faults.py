"""Deterministic fault injection for the simulated MPI layer and the
sequential solver stack.

A :class:`FaultPlan` is a declarative, seeded list of :class:`FaultSpec`
entries — *drop/delay/corrupt a message on (rank, op, nth call)*, *kill
rank r on its k-th iteration*, *poison a local solve with NaN* — loaded
from JSON (``repro solve --faults plan.json``) or built in code.  A
:class:`FaultInjector` consumes the plan at runtime: every instrumented
call site (``Comm.send/recv``/collectives, the one-level local solves,
the coarse solve, the GenEO eigensolves, the Krylov iteration tick)
calls :meth:`FaultInjector.fire` with its operation name; when a spec's
per-(rank, op) call counter reaches ``nth`` the fault triggers.

Determinism: the corruption values are drawn from per-spec RNGs seeded
by ``plan.seed`` and the spec's position, and the counters depend only
on the call sequence — replaying the same plan against the same program
reproduces the same faults bit for bit (asserted in
``tests/test_resilience.py``).

Fault kinds
-----------
``drop``
    Message is silently not delivered (``send`` only).  The peer's
    blocking receive times out after ``plan.timeout`` seconds and
    raises :class:`~repro.common.errors.RankFailure` instead of
    hanging.
``delay``
    Sleep ``spec.delay`` seconds before the operation completes.
``corrupt``
    Multiply one seeded-random entry of the float payload by
    ``spec.scale`` (default 1e6).
``nan``
    Overwrite one seeded-random entry of the float payload with NaN
    (the *poisoned local solve* of the issue).
``kill``
    Raise :class:`~repro.common.errors.RankFailure` at the call site.
    Non-persistent kills (the default) fire exactly once — a restarted
    solve proceeds past them; ``persistent: true`` keeps firing, which
    defeats restart and forces degraded-mode recovery.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import RankFailure, ReproError

#: sentinel returned by :meth:`FaultInjector.fire` for a dropped message
DROP = object()

_KINDS = ("drop", "delay", "corrupt", "nan", "kill")

#: operations that accept each kind (None = any op)
_KIND_OPS: dict[str, tuple[str, ...] | None] = {
    "drop": ("send",),
    "delay": None,
    "corrupt": None,
    "nan": None,
    "kill": None,
}


@dataclass
class FaultSpec:
    """One declarative fault: *kind* on (*rank*, *op*, *nth* call).

    ``rank=None`` matches any rank; ``op`` names the instrumented call
    site (``send``, ``recv``, ``bcast``, ``allreduce``, ``barrier``,
    ``local_solve``, ``coarse_solve``, ``eigensolve``, ``iteration``,
    …).  The spec arms on the ``nth`` matching call (0-based, counted
    per matching rank) and, unless ``persistent``, fires exactly once.
    """

    kind: str
    op: str
    rank: int | None = None
    nth: int = 0
    delay: float = 0.0
    scale: float = 1e6
    persistent: bool = False

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        allowed = _KIND_OPS[self.kind]
        if allowed is not None and self.op not in allowed:
            raise ReproError(
                f"fault kind {self.kind!r} only applies to ops {allowed}, "
                f"got {self.op!r}")
        if self.nth < 0:
            raise ReproError(f"nth must be >= 0, got {self.nth}")

    def matches(self, op: str, rank: int) -> bool:
        return self.op == op and (self.rank is None or self.rank == rank)

    def to_dict(self) -> dict:
        d = {"kind": self.kind, "op": self.op, "nth": self.nth}
        if self.rank is not None:
            d["rank"] = self.rank
        if self.kind == "delay":
            d["delay"] = self.delay
        if self.kind == "corrupt":
            d["scale"] = self.scale
        if self.persistent:
            d["persistent"] = True
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        known = {"kind", "op", "rank", "nth", "delay", "scale", "persistent"}
        extra = set(d) - known
        if extra:
            raise ReproError(f"unknown fault-spec fields {sorted(extra)}")
        return cls(**d)


@dataclass(frozen=True)
class RetryPolicy:
    """Sender-side retry/backoff budget for transient-fault absorption.

    When armed on a run (``run_spmd(retry=...)`` or ``FaultPlan.retry``)
    a dropped ``send`` is retried up to ``max_retries`` times with
    exponential backoff (``backoff * 2**attempt`` seconds, capped at
    ``max_backoff``); each retry re-fires the injector, so
    non-persistent drop specs are absorbed transparently while a drop
    storm longer than the budget still escalates to the receiver-side
    timeout and :class:`~repro.common.errors.RankFailure`.
    """

    max_retries: int = 3
    backoff: float = 0.001
    max_backoff: float = 0.05

    def __post_init__(self):
        if self.max_retries < 1:
            raise ReproError(
                f"max_retries must be >= 1, got {self.max_retries}")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ReproError("backoff values must be >= 0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (0-based)."""
        return min(self.backoff * (2.0 ** attempt), self.max_backoff)

    def to_dict(self) -> dict:
        return {"max_retries": self.max_retries, "backoff": self.backoff,
                "max_backoff": self.max_backoff}

    @classmethod
    def from_dict(cls, d: dict) -> "RetryPolicy":
        known = {"max_retries", "backoff", "max_backoff"}
        extra = set(d) - known
        if extra:
            raise ReproError(f"unknown retry-policy fields {sorted(extra)}")
        return cls(**d)


def as_retry(retry) -> "RetryPolicy | None":
    """Coerce None / RetryPolicy / dict / an int budget into a policy."""
    if retry is None or isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, dict):
        return RetryPolicy.from_dict(retry)
    if isinstance(retry, int) and not isinstance(retry, bool):
        return RetryPolicy(max_retries=retry)
    raise ReproError(f"cannot build a RetryPolicy from {type(retry)!r}")


@dataclass
class FaultPlan:
    """A seeded list of fault specs plus the failure-detection timeout.

    ``timeout`` bounds every blocking receive/barrier while the plan is
    active — a dropped message surfaces as a typed
    :class:`~repro.common.errors.RankFailure` after at most this many
    seconds instead of the library-wide deadlock deadline.  An optional
    ``retry`` :class:`RetryPolicy` arms sender-side drop absorption for
    any run the plan is attached to.
    """

    faults: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    timeout: float = 30.0
    retry: RetryPolicy | None = None

    def to_json(self) -> str:
        d = {"seed": self.seed, "timeout": self.timeout,
             "faults": [f.to_dict() for f in self.faults]}
        if self.retry is not None:
            d["retry"] = self.retry.to_dict()
        return json.dumps(d, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        d = json.loads(text)
        if not isinstance(d, dict) or "faults" not in d:
            raise ReproError(
                "fault plan must be a JSON object with a 'faults' list")
        retry = d.get("retry")
        if retry is not None:
            retry = RetryPolicy.from_dict(retry)
        return cls(faults=[FaultSpec.from_dict(f) for f in d["faults"]],
                   seed=int(d.get("seed", 0)),
                   timeout=float(d.get("timeout", 30.0)),
                   retry=retry)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


class FaultInjector:
    """Runtime fault dispatcher: thread-safe, seeded, replayable.

    One injector may be shared by every instrumented layer of a run
    (the simulated MPI context, the one-level preconditioner, the
    coarse operator, the health monitor); its per-spec call counters
    and RNGs make the fault sequence a pure function of the call
    sequence.
    """

    def __init__(self, plan: FaultPlan, *, meter=None, recorder=None):
        from ..obs.recorder import NULL_RECORDER
        self.plan = plan
        self.meter = meter
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._lock = threading.Lock()
        #: (spec index, rank) -> matching-call count
        self._counts: dict[tuple[int, int], int] = {}
        #: spec indices already fired (non-persistent specs fire once)
        self._fired: set[int] = set()
        self._rngs = [np.random.default_rng(plan.seed + 7919 * (i + 1))
                      for i in range(len(plan.faults))]
        #: total faults triggered, by kind
        self.injected: dict[str, int] = {}

    @property
    def timeout(self) -> float:
        return self.plan.timeout

    def reset(self) -> None:
        """Forget all counters/fired state — an exact replay follows."""
        with self._lock:
            self._counts.clear()
            self._fired.clear()
            self._rngs = [np.random.default_rng(self.plan.seed
                                                + 7919 * (i + 1))
                          for i in range(len(self.plan.faults))]
            self.injected.clear()

    # ------------------------------------------------------------------
    def _arm(self, op: str, rank: int):
        """Advance counters; return the (index, spec) that fires now."""
        hit = None
        with self._lock:
            for i, spec in enumerate(self.plan.faults):
                if not spec.matches(op, rank):
                    continue
                key = (i, rank)
                n = self._counts.get(key, 0)
                self._counts[key] = n + 1
                if hit is not None:
                    continue               # one fault per call site
                if i in self._fired and not spec.persistent:
                    continue
                if n == spec.nth or (spec.persistent and n >= spec.nth):
                    self._fired.add(i)
                    hit = (i, spec)
            if hit is not None:
                kind = hit[1].kind
                self.injected[kind] = self.injected.get(kind, 0) + 1
        return hit

    def _record(self, spec: FaultSpec, rank: int) -> None:
        if self.recorder.enabled:
            self.recorder.add(f"fault.injected.{spec.kind}", 1)
            self.recorder.event("fault", attrs={
                "kind": spec.kind, "op": spec.op, "rank": int(rank)})
        if self.meter is not None:
            self.meter.on_fault(rank, spec.kind, spec.op)

    def fire(self, op: str, rank: int = 0, payload=None):
        """Count one call of *op* on *rank*; apply a triggered fault.

        Returns the (possibly corrupted) payload, :data:`DROP` for a
        dropped message, or raises
        :class:`~repro.common.errors.RankFailure` for a kill.
        """
        hit = self._arm(op, rank)
        if hit is None:
            return payload
        i, spec = hit
        self._record(spec, rank)
        if spec.kind == "kill":
            exc = RankFailure(
                f"injected fault: rank {rank} killed at {op} call "
                f"{spec.nth}", rank=rank, op=op)
            if self.recorder.ring is not None:
                # flight-recorder mode: the black box rides on the
                # failure so the last K spans/events survive the crash
                exc.flight = self.recorder.flight_dump()
            raise exc
        if spec.kind == "delay":
            time.sleep(spec.delay)
            return payload
        if spec.kind == "drop":
            return DROP
        # corrupt / nan need a float payload to poison
        return self._poison(payload, spec, self._rngs[i])

    def _poison(self, payload, spec: FaultSpec, rng):
        arr = None
        if isinstance(payload, np.ndarray) and payload.dtype.kind == "f":
            arr = payload.copy()
        elif isinstance(payload, float):
            arr = np.array([payload])
        if arr is None or arr.size == 0:
            return payload             # nothing poisonable: no-op
        idx = int(rng.integers(arr.size))
        if spec.kind == "nan":
            arr.flat[idx] = np.nan
        else:
            arr.flat[idx] *= spec.scale * (1.0 + rng.random())
        if isinstance(payload, float):
            return float(arr[0])
        return arr

    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def summary(self) -> dict[str, int]:
        with self._lock:
            return dict(self.injected)


def as_injector(faults, *, meter=None, recorder=None) -> FaultInjector | None:
    """Coerce None / FaultPlan / FaultInjector / a JSON path into an
    injector (None stays None)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults, meter=meter, recorder=recorder)
    if isinstance(faults, str):
        return FaultInjector(FaultPlan.load(faults), meter=meter,
                             recorder=recorder)
    raise ReproError(f"cannot build a FaultInjector from {type(faults)!r}")
