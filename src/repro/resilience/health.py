"""Numerical health monitoring for the Krylov drivers.

A :class:`HealthMonitor` is checked once per Krylov iteration by every
driver (``cg``, ``gmres``, ``fgmres``, ``p1_gmres``, ``s_step_gmres``,
``deflated_cg``): it watches the residual stream for NaN/Inf,
divergence and stagnation, the basis for non-finite entries, and the
orthogonalisation for loss of orthogonality — each failure classified
into a typed :class:`~repro.common.errors.KrylovBreakdown` subclass
carrying the last *healthy* iterate (the checkpoint), the residual
history and the iteration index, so a
:class:`~repro.resilience.recovery.RecoveryPolicy` can roll back and
restart instead of aborting the run.

The monitor also drives the per-iteration fault tick: when a
:class:`~repro.resilience.faults.FaultInjector` is attached, every
``observe`` call fires the ``iteration`` op — this is how *kill rank r
at iteration k* plans reach a sequential solve.

Every detection emits an ``obs`` instant event (``health.<reason>``)
on the attached recorder, so breakdowns and their classification are
visible in the exported trace.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import (
    DivergenceError,
    KrylovBreakdown,
    NonFiniteError,
    OrthogonalityError,
    StagnationError,
)


class HealthMonitor:
    """Cheap per-iteration breakdown detector with iterate checkpoints.

    Parameters
    ----------
    recorder:
        Optional :class:`repro.obs.Recorder`; detections are emitted as
        ``health.*`` instant events.
    injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`; every
        observed iteration fires the ``iteration`` fault op.
    divergence_ratio:
        Raise :class:`DivergenceError` when the relative residual grows
        past ``divergence_ratio ×`` its best value so far.
    stagnation_window, stagnation_rtol:
        Raise :class:`StagnationError` when the best residual improved
        by less than a factor ``(1 - stagnation_rtol)`` over the last
        *stagnation_window* iterations (0 disables the check).
    orthogonality_tol:
        Raise :class:`OrthogonalityError` when a driver reports a basis
        orthogonality defect above this threshold.  The default (0.5)
        only flags catastrophic loss: modified Gram–Schmidt legitimately
        drifts to O(ε·κ) defects on ill-conditioned (e.g. degraded)
        operators, and restarts bound the damage — tighten per-solve for
        strict monitoring.
    checkpoint_every:
        Snapshot the iterate every this-many healthy observations that
        carry one (drivers pass ``x`` where it is cheaply available:
        every CG iteration, every GMRES restart boundary).
    """

    def __init__(self, *, recorder=None, injector=None,
                 divergence_ratio: float = 1e4,
                 stagnation_window: int = 0,
                 stagnation_rtol: float = 1e-3,
                 orthogonality_tol: float = 0.5,
                 checkpoint_every: int = 10):
        from ..obs.recorder import NULL_RECORDER
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.injector = injector
        self.divergence_ratio = float(divergence_ratio)
        self.stagnation_window = int(stagnation_window)
        self.stagnation_rtol = float(stagnation_rtol)
        self.orthogonality_tol = float(orthogonality_tol)
        self.checkpoint_every = max(int(checkpoint_every), 1)
        self.residuals: list[float] = []
        self.best = np.inf
        self.best_at = 0
        #: last healthy iterate (k, x.copy()) — the rollback target
        self.checkpoint: tuple[int, np.ndarray] | None = None
        self._since_checkpoint = 0
        #: typed breakdowns raised so far (for reporting)
        self.breakdowns: list[str] = []
        #: set by the driver so raised breakdowns carry the profile
        self.profiler = None

    # ------------------------------------------------------------------
    def _fail(self, cls, message: str, k: int, reason: str):
        self.breakdowns.append(reason)
        if self.recorder.enabled:
            self.recorder.event(f"health.{reason}",
                                attrs={"k": int(k), "message": message})
        x = None
        kc = k
        if self.checkpoint is not None:
            kc, xc = self.checkpoint
            x = xc.copy()
        profile = None
        if self.profiler is not None:
            profile = self.profiler.as_dict()
        exc = cls(message, x=x, residuals=list(self.residuals),
                  iteration=kc, profile=profile)
        if self.recorder.ring is not None:
            # flight-recorder mode: snapshot the ring buffers onto the
            # breakdown so the last K spans/events reach
            # SolveReport.resilience["flight_recorder"]
            exc.flight = self.recorder.flight_dump()
        raise exc

    def observe(self, k: int, residual: float, x=None) -> None:
        """One per-iteration health check (drivers call this exactly
        once per appended residual).  May raise a typed breakdown or an
        injected :class:`~repro.common.errors.RankFailure`."""
        if self.injector is not None:
            self.injector.fire("iteration", 0)
        self.residuals.append(float(residual))
        if not np.isfinite(residual):
            self._fail(NonFiniteError,
                       f"non-finite residual at iteration {k}", k,
                       "nonfinite")
        if x is not None and not np.all(np.isfinite(x)):
            self._fail(NonFiniteError,
                       f"non-finite iterate at iteration {k}", k,
                       "nonfinite")
        if residual > self.divergence_ratio * max(self.best, 1e-300):
            self._fail(DivergenceError,
                       f"residual {residual:.3e} diverged past "
                       f"{self.divergence_ratio:.1e} x best "
                       f"{self.best:.3e} at iteration {k}", k,
                       "divergence")
        if residual < self.best:
            self.best = residual
            self.best_at = k
        elif (self.stagnation_window
              and k - self.best_at >= self.stagnation_window):
            self._fail(StagnationError,
                       f"no residual improvement over the last "
                       f"{self.stagnation_window} iterations "
                       f"(best {self.best:.3e} at {self.best_at})", k,
                       "stagnation")
        if x is not None:
            self._since_checkpoint += 1
            if (self.checkpoint is None
                    or self._since_checkpoint >= self.checkpoint_every):
                self.checkpoint = (k, np.array(x, dtype=np.float64,
                                               copy=True))
                self._since_checkpoint = 0

    def check_vector(self, name: str, v: np.ndarray, k: int) -> None:
        """NaN/Inf scan of a basis/search vector (one pass, no copy)."""
        if not np.all(np.isfinite(v)):
            self._fail(NonFiniteError,
                       f"non-finite entries in {name} at iteration {k}",
                       k, "nonfinite")

    def orthogonality(self, k: int, defect: float) -> None:
        """A driver's (cheap) orthogonality-defect estimate — e.g.
        ``|<v_new, v_0>|`` after Gram–Schmidt.  NaN counts as a
        non-finite basis; values above the threshold are a loss of
        orthogonality."""
        if not np.isfinite(defect):
            self._fail(NonFiniteError,
                       f"non-finite orthogonality defect at iteration "
                       f"{k}", k, "nonfinite")
        if abs(defect) > self.orthogonality_tol:
            self._fail(OrthogonalityError,
                       f"orthogonality defect {defect:.3e} > "
                       f"{self.orthogonality_tol:.1e} at iteration {k}",
                       k, "orthogonality")

    def attach_profile(self, exc: KrylovBreakdown, profile: dict) -> None:
        """Late-bind the profiler summary onto a raised breakdown."""
        exc.profile = dict(profile)
