"""Resilience subsystem: fault injection, health monitoring, recovery.

The production-hardening layer the paper's robustness claims assume:
inject faults deterministically (:class:`FaultPlan`,
:class:`FaultInjector`), detect them cheaply once per Krylov iteration
(:class:`HealthMonitor`), and recover visibly
(:class:`RecoveryPolicy` — checkpoint/rollback-restart, coarse-solve
fallback chain, per-subdomain GenEO → Nicolaides degradation).  See
``docs/resilience.md``.
"""

from .chaos import (ChaosConfig, ChaosReport, build_problem, random_plan,
                    run_campaign)
from .checkpoint import CheckpointStore, partner_map
from .faults import (DROP, FaultInjector, FaultPlan, FaultSpec, RetryPolicy,
                     as_injector, as_retry)
from .health import HealthMonitor
from .recovery import MODES, RecoveryPolicy, resolve_recovery

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "CheckpointStore",
    "DROP",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "as_injector",
    "as_retry",
    "build_problem",
    "HealthMonitor",
    "MODES",
    "RecoveryPolicy",
    "random_plan",
    "resolve_recovery",
    "run_campaign",
    "partner_map",
]
