"""Resilience subsystem: fault injection, health monitoring, recovery.

The production-hardening layer the paper's robustness claims assume:
inject faults deterministically (:class:`FaultPlan`,
:class:`FaultInjector`), detect them cheaply once per Krylov iteration
(:class:`HealthMonitor`), and recover visibly
(:class:`RecoveryPolicy` — checkpoint/rollback-restart, coarse-solve
fallback chain, per-subdomain GenEO → Nicolaides degradation).  See
``docs/resilience.md``.
"""

from .faults import DROP, FaultInjector, FaultPlan, FaultSpec, as_injector
from .health import HealthMonitor
from .recovery import MODES, RecoveryPolicy, resolve_recovery

__all__ = [
    "DROP",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "as_injector",
    "HealthMonitor",
    "MODES",
    "RecoveryPolicy",
    "resolve_recovery",
]
