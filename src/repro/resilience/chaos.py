"""Chaos soak harness: seeded randomized fault campaigns over many
short fault-tolerant SPMD solves.

At the paper's scales (N = 256-8192 subdomains) mean time between
failures drops below one solve's wall clock, so "the solver survives
faults" is a statistical claim, not a unit test.  This module makes it
one number: :func:`run_campaign` runs ``solves`` smoke-sized SPMD
solves, each under an independently seeded random :class:`FaultPlan`
(kill / drop / delay / corrupt, rank- and time-randomized), through
:func:`repro.core.spmd_ft.solve_spmd_ft`, and reports the survival rate
(completed AND converged to tolerance), per-failure time-to-recover,
and fault/repair totals.  The CLI entry is ``repro chaos``; the gated
benchmark is ``benchmarks/bench_chaos_soak.py``.

Determinism: every fault spec is **rank-pinned** (``rank=None``
any-rank specs would fire on whichever thread reaches the call site
first — scheduling-dependent), so a campaign's fault sequence is a pure
function of ``(seed, solve index)`` and the per-solve fault counters
replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ReproError
from .faults import FaultPlan, FaultSpec, RetryPolicy


@dataclass
class ChaosConfig:
    """One campaign's knobs (defaults = the CI smoke campaign)."""

    solves: int = 50
    nranks: int = 6
    seed: int = 2013
    #: per-solve Bernoulli rates, by fault kind
    kill_rate: float = 0.35
    drop_rate: float = 0.35
    delay_rate: float = 0.25
    corrupt_rate: float = 0.10
    #: rate of budget-exceeding drop bursts (exercise the repair path)
    storm_rate: float = 0.05
    spares: int = 2
    checkpoint_every: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: failure-detection timeout for the per-solve fault plans
    timeout: float = 5.0
    #: latest iteration tick a kill may target
    kill_horizon: int = 25
    #: latest send call a drop/delay/corrupt may target
    send_horizon: int = 120
    max_delay: float = 0.005
    # -- smoke problem + solver settings -------------------------------
    mesh_n: int = 12
    degree: int = 1
    delta: int = 1
    nev: int = 2
    num_masters: int = 2
    tol: float = 1e-6
    restart: int = 30
    maxiter: int = 120
    two_level: bool = True

    def __post_init__(self):
        if self.solves < 1:
            raise ReproError(f"solves must be >= 1, got {self.solves}")
        if self.nranks < 2:
            raise ReproError(f"nranks must be >= 2, got {self.nranks}")
        for name in ("kill_rate", "drop_rate", "delay_rate",
                     "corrupt_rate", "storm_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {v}")


@dataclass
class ChaosReport:
    """Campaign outcome: the survival floor check plus diagnostics."""

    config: ChaosConfig
    records: list = field(default_factory=list)

    @property
    def solves(self) -> int:
        return len(self.records)

    @property
    def survived(self) -> int:
        return sum(1 for r in self.records if r["survived"])

    @property
    def survival_rate(self) -> float:
        return self.survived / self.solves if self.solves else 0.0

    @property
    def faulted_solves(self) -> int:
        return sum(1 for r in self.records if r["planned_faults"])

    @property
    def repairs(self) -> int:
        return sum(r["repairs"] for r in self.records)

    def time_to_recover(self) -> list[float]:
        """Per-repair time-to-recover (repair + restore), campaign-wide."""
        out: list[float] = []
        for r in self.records:
            out.extend(r["ttr"])
        return out

    def fault_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for r in self.records:
            for kind, n in r["injected"].items():
                totals[kind] = totals.get(kind, 0) + n
        return totals

    def to_dict(self) -> dict:
        ttr = self.time_to_recover()
        return {
            "solves": self.solves,
            "survived": self.survived,
            "survival_rate": self.survival_rate,
            "faulted_solves": self.faulted_solves,
            "repairs": self.repairs,
            "fault_totals": self.fault_totals(),
            "time_to_recover": {
                "count": len(ttr),
                "mean": float(np.mean(ttr)) if ttr else 0.0,
                "max": float(np.max(ttr)) if ttr else 0.0,
            },
            "records": self.records,
        }


# ----------------------------------------------------------------------
# Plan generation
# ----------------------------------------------------------------------

def random_plan(rng: np.random.Generator, cfg: ChaosConfig) -> FaultPlan:
    """Draw one solve's fault plan: each kind is an independent
    Bernoulli at its configured rate, rank- and time-pinned by *rng*."""
    specs: list[FaultSpec] = []
    if rng.random() < cfg.kill_rate:
        specs.append(FaultSpec(
            kind="kill", op="iteration",
            rank=int(rng.integers(cfg.nranks)),
            nth=int(rng.integers(1, cfg.kill_horizon))))
    if rng.random() < cfg.drop_rate:
        specs.append(FaultSpec(
            kind="drop", op="send",
            rank=int(rng.integers(cfg.nranks)),
            nth=int(rng.integers(cfg.send_horizon))))
    if rng.random() < cfg.storm_rate:
        # a burst of consecutive drops on one rank longer than the retry
        # budget: the retries themselves advance the send counter, so
        # budget+1 consecutive nth values defeat absorption and force
        # the receiver-timeout -> repair path
        r = int(rng.integers(cfg.nranks))
        n0 = int(rng.integers(cfg.send_horizon))
        for j in range(cfg.retry.max_retries + 1):
            specs.append(FaultSpec(kind="drop", op="send", rank=r,
                                   nth=n0 + j))
    if rng.random() < cfg.delay_rate:
        specs.append(FaultSpec(
            kind="delay", op="send",
            rank=int(rng.integers(cfg.nranks)),
            nth=int(rng.integers(cfg.send_horizon)),
            delay=float(rng.uniform(0.0, cfg.max_delay))))
    if rng.random() < cfg.corrupt_rate:
        specs.append(FaultSpec(
            kind="corrupt", op="send",
            rank=int(rng.integers(cfg.nranks)),
            nth=int(rng.integers(cfg.send_horizon))))
    return FaultPlan(faults=specs, seed=int(rng.integers(2**31)),
                     timeout=cfg.timeout, retry=cfg.retry)


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------

def build_problem(cfg: ChaosConfig):
    """Build the smoke problem once per campaign: a heterogeneous
    diffusion square partitioned into ``nranks`` overlapping subdomains
    with a small GenEO space.  Returns ``(dec, space, b)``."""
    from ..core import DeflationSpace, compute_deflation
    from ..dd import Decomposition, Problem
    from ..fem import channels_and_inclusions
    from ..fem.forms import DiffusionForm
    from ..mesh import unit_square
    from ..partition import partition_mesh

    mesh = unit_square(cfg.mesh_n)
    kappa = channels_and_inclusions(mesh, seed=3)
    problem = Problem(mesh, DiffusionForm(degree=cfg.degree, kappa=kappa))
    part = partition_mesh(mesh, cfg.nranks, seed=1)
    dec = Decomposition(problem, part, delta=cfg.delta)
    Ws = [compute_deflation(s, nev=cfg.nev, seed=s.index).W
          for s in dec.subdomains]
    space = DeflationSpace(dec, Ws)
    return dec, space, problem.rhs()


def run_solve(dec, space, b, cfg: ChaosConfig, plan: FaultPlan | None,
              *, recorder=None) -> dict:
    """One campaign solve under *plan*; never raises — failures are the
    data.  Returns the per-solve record."""
    from ..common.errors import ReproError as _ReproError
    from ..core.spmd_ft import solve_spmd_ft
    from ..mpi.meter import Meter

    meter = Meter(dec.num_subdomains, recorder=recorder)
    record = {
        "planned_faults": [f.to_dict() for f in plan.faults] if plan else [],
        "survived": False, "converged": False, "completed": False,
        "iterations": 0, "repairs": 0, "ttr": [], "injected": {},
        "retries": 0, "error": None,
    }
    try:
        rep = solve_spmd_ft(
            dec, space, b, num_masters=cfg.num_masters, tol=cfg.tol,
            restart=cfg.restart, maxiter=cfg.maxiter,
            two_level=cfg.two_level, spares=cfg.spares,
            checkpoint_every=cfg.checkpoint_every, faults=plan,
            meter=meter, recorder=recorder)
    except _ReproError as exc:
        record["error"] = f"{type(exc).__name__}: {exc}"
    else:
        record["completed"] = True
        record["converged"] = bool(rep.converged)
        record["survived"] = bool(rep.converged)
        record["iterations"] = int(rep.iterations)
        record["repairs"] = len(rep.recoveries)
        record["ttr"] = [float(r["repair_seconds"] + r["restore_seconds"])
                         for r in rep.recoveries]
        record["two_level"] = bool(rep.two_level)
    record["injected"] = meter.faults_by_kind()
    record["retries"] = meter.total_retries()
    record["rank_deaths"] = meter.rank_deaths
    return record


def run_campaign(cfg: ChaosConfig, *, recorder=None,
                 progress=None) -> ChaosReport:
    """Run the full seeded campaign.  *progress* (optional callable)
    receives ``(solve_index, record)`` after each solve."""
    dec, space, b = build_problem(cfg)
    report = ChaosReport(config=cfg)
    for s in range(cfg.solves):
        rng = np.random.default_rng(cfg.seed + 1009 * s)
        plan = random_plan(rng, cfg)
        record = run_solve(dec, space, b, cfg,
                           plan if plan.faults else None,
                           recorder=recorder)
        record["solve"] = s
        report.records.append(record)
        if progress is not None:
            progress(s, record)
    return report
