"""Graceful-degradation recovery policies for the two-level solver.

A :class:`RecoveryPolicy` configures what
:meth:`repro.SchwarzSolver.solve` does when a typed failure — a
:class:`~repro.common.errors.KrylovBreakdown` from the health monitor,
a :class:`~repro.common.errors.RankFailure` from a killed rank, a
:class:`~repro.common.errors.CoarseSolveError` from an unrecoverable
coarse factorization — interrupts the Krylov loop:

``off``
    Re-raise.  The failure surfaces as a typed exception, never as a
    hang or a silent NaN result.
``restart``
    Checkpoint/rollback-restart: resume the Krylov method from the
    last healthy iterate (the exception's rolled-back ``x``), up to
    ``max_restarts`` times.  One-shot faults (a transient NaN, a
    non-persistent kill) are survived exactly; persistent faults
    exhaust the budget and re-raise.
``degrade``
    Everything ``restart`` does, plus structural degradation matched to
    the failure: a killed subdomain is disabled in the one-level sum, a
    dead coarse solve falls back factorization → pseudo-inverse →
    one-level-only mode, and (at setup) a failed GenEO eigensolve is
    retried once then replaced by the Nicolaides coarse space for that
    subdomain.  Degradations are logged with ``warnings.warn`` and
    recorded as ``recovery.*`` events in the telemetry trace.

The policy object itself is a small value type; the recovery loop
lives in :meth:`SchwarzSolver.solve` and the per-layer fallbacks next
to the structures they repair (``CoarseOperator``, ``OneLevelRAS``,
:func:`repro.core.geneo.resilient_deflation`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ReproError

MODES = ("off", "restart", "degrade")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the solver reacts to typed failures (see module docstring).

    Parameters
    ----------
    mode:
        ``"off"`` | ``"restart"`` | ``"degrade"``.
    max_restarts:
        Rollback-restart budget per solve; once exhausted the failure
        re-raises.
    checkpoint_every:
        Iterate-snapshot period handed to the
        :class:`~repro.resilience.health.HealthMonitor`.
    stagnation_window:
        Health-monitor stagnation window (0 disables; breakdown-only
        faults are detected regardless).
    divergence_ratio:
        Health-monitor divergence threshold.
    """

    mode: str = "off"
    max_restarts: int = 3
    checkpoint_every: int = 10
    stagnation_window: int = 0
    divergence_ratio: float = 1e4

    def __post_init__(self):
        if self.mode not in MODES:
            raise ReproError(
                f"unknown recovery mode {self.mode!r}; expected one of "
                f"{MODES}")
        if self.max_restarts < 0:
            raise ReproError(
                f"max_restarts must be >= 0, got {self.max_restarts}")

    @property
    def active(self) -> bool:
        return self.mode != "off"

    @property
    def degrading(self) -> bool:
        return self.mode == "degrade"


def resolve_recovery(policy) -> RecoveryPolicy:
    """Coerce None / a mode string / a policy into a RecoveryPolicy."""
    if policy is None:
        return RecoveryPolicy()
    if isinstance(policy, RecoveryPolicy):
        return policy
    if isinstance(policy, str):
        return RecoveryPolicy(mode=policy)
    raise ReproError(f"cannot build a RecoveryPolicy from {type(policy)!r}")
