"""Diskless neighbor checkpointing for the fault-tolerant SPMD solve.

The RAS overlap of the paper is natural redundancy: every subdomain
shares its boundary layers with its overlap neighbors, so a partner rank
can hold a full in-memory replica of a rank's recovery state at the cost
of one extra message per checkpoint interval — no filesystem involved
(Plank's *diskless checkpointing*).

Each rank replicates to ONE partner (its overlap neighbor with the most
shared dofs; ties break to the lowest rank so the map is deterministic):

* once, after setup: the **setup payload** — GenEO basis ``W``, the
  pristine coarse row block / row offsets / per-rank ν on masters — the
  state that is expensive (algorithms 1-2 + eigensolves) to rebuild;
* every ``checkpoint_every`` Krylov cycles: the **iterate checkpoint**
  (cycle number, local iterate, residual history).

On a communicator repair the substitute restores from the partner's
replica.  When the replica is missing or stale the subdomain is
reconstructed from its overlap neighbors by partition-of-unity
interpolation (:func:`pou_reconstruct`): shared dofs get the
PoU-weighted average of the neighbors' copies, interior dofs restart
from zero — the Krylov method re-converges from a worse but consistent
iterate.  A missing setup replica degrades the local solver to the
Jacobi surrogate (:func:`jacobi_surrogate`) of PR 4's degraded modes.

Everything here is policy-free mechanics (partner election, blob
packing, the send/recv choreography); the recovery *protocol* — who
restores what after a repair — lives in :mod:`repro.core.spmd_ft`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ReproError

#: tag bases, above the spmd layer's 11-13k and the coarse solver's 40k+q
TAG_CKPT_SETUP = 14_000
TAG_CKPT_ITER = 14_500
TAG_RESTORE = 15_000       # partner -> substitute: setup blob
TAG_RESTORE_ITER = 15_100  # partner -> substitute: iterate checkpoint
TAG_POU = 15_500           # neighbor -> substitute: PoU contribution


def partner_map(dec) -> list[int]:
    """Deterministic replication partner per subdomain.

    Partner of *i* = the overlap neighbor sharing the most dofs with
    *i* (the cheapest rank to also reconstruct *i* by interpolation);
    ties break to the lowest rank.  Raises when a subdomain has no
    neighbors — a disconnected subdomain has no diskless redundancy.
    """
    partners: list[int] = []
    for sub in dec.subdomains:
        if not sub.neighbors:
            raise ReproError(
                f"subdomain {sub.index} has no overlap neighbors; "
                "diskless neighbor checkpointing needs a connected "
                "overlap graph")
        best = min(sub.neighbors,
                   key=lambda j: (-len(sub.shared[j]), j))
        partners.append(int(best))
    return partners


@dataclass
class IterateCheckpoint:
    """One rank's Krylov state at a cycle boundary."""

    cycle: int
    k: int                          # total iterations completed
    x: np.ndarray                   # local iterate
    residuals: list = field(default_factory=list)

    def copy(self) -> "IterateCheckpoint":
        return IterateCheckpoint(self.cycle, self.k, self.x.copy(),
                                 list(self.residuals))


def setup_payload(rank) -> dict:
    """Pack a :class:`~repro.core.spmd.SpmdRank`'s expensive setup
    state into a replicable blob (numpy arrays only — the meter prices
    it as its true wire size)."""
    blob = {"index": rank.index, "W": rank.W.copy(),
            "is_master": rank.layout.is_master}
    if rank.layout.is_master and rank.rows is not None:
        # pristine coarse rows need assemble_coarse_spmd(keep_rows=True);
        # a degraded master (rows already lost) replicates without them
        blob["rows"] = rank.rows.copy()
        blob["row_starts"] = rank.row_starts.copy()
        blob["nu_all"] = rank.nu_all.copy()
    return blob


class CheckpointStore:
    """One rank's end of the replication choreography.

    Holds the blobs this rank keeps for its *clients* (the ranks whose
    partner it is) and drives the symmetric send/recv rounds.  All
    rounds are collectively scheduled — every rank calls the same method
    at the same point of the algorithm, so the pairwise traffic matches
    up without a rendezvous."""

    def __init__(self, comm, partners: list[int], *,
                 checkpoint_every: int = 1):
        self.comm = comm
        self.partners = partners
        self.partner = partners[comm.rank]
        self.clients = sorted(i for i, p in enumerate(partners)
                              if p == comm.rank)
        self.checkpoint_every = int(checkpoint_every)
        #: client rank -> setup blob held on their behalf
        self.held_setup: dict[int, dict] = {}
        #: client rank -> latest iterate checkpoint
        self.held_iter: dict[int, IterateCheckpoint] = {}
        #: checkpoints this rank produced (for overhead accounting)
        self.ticks = 0

    # -- replication rounds -------------------------------------------
    def replicate_setup(self, blob: dict,
                        affected: set[int] | None = None) -> None:
        """Send my setup blob to my partner; absorb my clients' blobs.

        With *affected*, the round is restricted to replication pairs
        touching that set — a post-repair re-replication re-sends the
        blobs a dead rank held and re-homes the substitutes' own blobs
        without re-running the full round."""
        comm = self.comm
        me = comm.rank
        if (affected is None or me in affected
                or self.partner in affected):
            comm.isend(blob, self.partner, TAG_CKPT_SETUP)
        for c in self.clients:
            if affected is None or me in affected or c in affected:
                self.held_setup[c] = comm.recv(c, TAG_CKPT_SETUP)

    def tick(self, ckpt: IterateCheckpoint) -> None:
        """One iterate-checkpoint exchange (call at a cycle boundary on
        EVERY rank; the schedule is collective)."""
        comm = self.comm
        comm.isend({"cycle": ckpt.cycle, "k": ckpt.k, "x": ckpt.x.copy(),
                    "residuals": list(ckpt.residuals)},
                   self.partner, TAG_CKPT_ITER)
        for c in self.clients:
            d = comm.recv(c, TAG_CKPT_ITER)
            self.held_iter[c] = IterateCheckpoint(
                d["cycle"], d["k"], d["x"], d["residuals"])
        self.ticks += 1

    def due(self, cycle: int) -> bool:
        """Is a checkpoint due at this cycle boundary?"""
        return (self.checkpoint_every > 0
                and cycle % self.checkpoint_every == 0)

    # -- restore helpers (driven by the spmd_ft recovery protocol) -----
    def serve_setup(self, client: int) -> None:
        self.comm.isend(self.held_setup[client], client, TAG_RESTORE)

    def fetch_setup(self) -> dict:
        return self.comm.recv(self.partner, TAG_RESTORE)

    def serve_iter(self, client: int) -> None:
        ck = self.held_iter[client]
        self.comm.isend({"cycle": ck.cycle, "k": ck.k, "x": ck.x.copy(),
                         "residuals": list(ck.residuals)},
                        client, TAG_RESTORE_ITER)

    def fetch_iter(self) -> IterateCheckpoint:
        d = self.comm.recv(self.partner, TAG_RESTORE_ITER)
        return IterateCheckpoint(d["cycle"], d["k"], d["x"], d["residuals"])


# ----------------------------------------------------------------------
# Partition-of-unity reconstruction + Jacobi surrogate (last resorts)
# ----------------------------------------------------------------------

def pou_send_contribution(comm, sub, x: np.ndarray, lost: int) -> None:
    """Live neighbor side: ship my PoU-weighted copy of the dofs I share
    with the *lost* subdomain."""
    idx = sub.shared[lost]
    comm.isend({"vals": sub.d[idx] * x[idx], "wts": sub.d[idx].copy()},
               lost, TAG_POU)


def pou_reconstruct(comm, sub, neighbors: list[int]) -> np.ndarray:
    """Substitute side: rebuild a consistent local iterate from the
    overlap *neighbors*' contributions.

    Shared dofs get the PoU-weighted average ``Σ_j d_j x_j / Σ_j d_j``
    over the contributing neighbors (both sides order their ``shared``
    arrays by ascending global dof id, so the entries align); dofs
    exclusively owned by the lost subdomain restart from zero.
    """
    n = len(sub.dofs)
    num = np.zeros(n)
    den = np.zeros(n)
    for j in neighbors:
        d = comm.recv(j, TAG_POU)
        idx = sub.shared[j]
        num[idx] += d["vals"]
        den[idx] += d["wts"]
    x = np.zeros(n)
    mask = den > 0
    x[mask] = num[mask] / den[mask]
    return x


class JacobiFactor:
    """Diagonal (Jacobi) surrogate for a lost local factorization — the
    degraded local solve used when a subdomain's setup replica is gone.
    Matches the ``factorize`` backends' ``solve`` interface."""

    def __init__(self, A_dir):
        diag = np.asarray(A_dir.diagonal(), dtype=float).copy()
        diag[diag == 0.0] = 1.0
        self._inv = 1.0 / diag

    def solve(self, r: np.ndarray) -> np.ndarray:
        return self._inv * r


def jacobi_surrogate(sub) -> JacobiFactor:
    """Build the Jacobi surrogate local solver for *sub* (its direct
    stiffness ``A_dir`` is always reassemblable from the decomposition,
    only the factorization is lost)."""
    return JacobiFactor(sub.A_dir)
