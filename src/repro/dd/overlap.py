"""Overlap growth: the recursive construction of T_i^δ (paper §2, fig. 2).

Starting from the non-overlapping cell partition {T_i}, layer m adds all
cells adjacent (sharing at least one vertex) to T_i^{m-1}.  The layer
index of every cell is retained — the partition of unity χ̃_i of the paper
is a function of that layer.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..common.errors import DecompositionError
from ..mesh import SimplexMesh


def grow_overlap(mesh: SimplexMesh, part: np.ndarray, subdomain: int,
                 delta: int) -> tuple[np.ndarray, np.ndarray]:
    """Cells of T_i^δ and their layer indices.

    Returns ``(cells, layers)``: sorted parent cell ids of the overlapping
    subdomain and, aligned with them, the layer at which each cell entered
    (0 for T_i^0 cells, m for cells of T_i^m \\ T_i^{m-1}).
    """
    part = np.asarray(part)
    if part.shape != (mesh.num_cells,):
        raise DecompositionError(
            f"part must have shape ({mesh.num_cells},), got {part.shape}")
    if delta < 0:
        raise DecompositionError(f"delta must be >= 0, got {delta}")
    v2c = mesh.vertex_to_cells          # (nv, nc) incidence
    in_sub = part == subdomain
    if not np.any(in_sub):
        raise DecompositionError(f"subdomain {subdomain} is empty")
    layer = np.full(mesh.num_cells, -1, dtype=np.int64)
    layer[in_sub] = 0
    current = in_sub.copy()
    for m in range(1, delta + 1):
        # cells sharing a vertex with the current set
        verts = (v2c @ current.astype(np.int8)) > 0        # vertices touched
        touched = (v2c.T @ verts.astype(np.int8)) > 0      # cells touching
        new = touched & (layer < 0)
        if not np.any(new):
            break
        layer[new] = m
        current |= new
    cells = np.flatnonzero(layer >= 0)
    return cells, layer[cells]


def all_overlaps(mesh: SimplexMesh, part: np.ndarray, delta: int,
                 nparts: int | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
    """:func:`grow_overlap` for every subdomain."""
    if nparts is None:
        nparts = int(np.asarray(part).max()) + 1
    return [grow_overlap(mesh, part, i, delta) for i in range(nparts)]


def vertex_layers(mesh: SimplexMesh, cells: np.ndarray,
                  layers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Node layer m(v) for every vertex of the overlapping subdomain.

    The paper defines χ̃_i on *nodes*: value 1 on nodes of T_i^0 and
    ``1 − m/δ`` on nodes of T_i^m \\ T_i^{m-1}; the node layer is the
    smallest layer of any subdomain cell containing the node.

    Returns ``(verts, vlayer)``: parent vertex ids (sorted) and their layer.
    """
    cell_vertices = mesh.cells[cells]                     # (ncs, dim+1)
    nloc = mesh.dim + 1
    flat_v = cell_vertices.ravel()
    flat_l = np.repeat(layers, nloc)
    order = np.argsort(flat_v, kind="stable")
    v_sorted = flat_v[order]
    l_sorted = flat_l[order]
    verts, start = np.unique(v_sorted, return_index=True)
    vlayer = np.minimum.reduceat(l_sorted, start)
    return verts, vlayer
