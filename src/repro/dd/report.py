"""Decomposition diagnostics: the numbers a practitioner checks first.

HPDDM/PETSc users debugging a slow two-level solve look at the same
handful of quantities every time — subdomain size spread, overlap
fraction, neighbour counts, partition-of-unity multiplicities.  This
module computes them and renders the report the CLI's ``info`` command
and the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.asciiplot import table
from .decomposition import Decomposition


@dataclass
class DecompositionReport:
    """Summary statistics of an overlapping decomposition."""

    num_subdomains: int
    delta: int
    n_free: int
    sizes: np.ndarray               # local dof counts n_i
    core_sizes: np.ndarray          # dofs owned exclusively (mult == 1 part)
    overlap_fractions: np.ndarray   # per subdomain: overlap dofs / n_i
    neighbor_counts: np.ndarray     # |O_i|
    max_multiplicity: int

    @property
    def size_imbalance(self) -> float:
        return float(self.sizes.max() / max(self.sizes.mean(), 1e-300) - 1)

    @property
    def mean_overlap_fraction(self) -> float:
        return float(self.overlap_fractions.mean())

    def render(self) -> str:
        rows = [
            ["subdomains N", self.num_subdomains],
            ["overlap width delta", self.delta],
            ["global free dofs", self.n_free],
            ["local dofs min / mean / max",
             f"{self.sizes.min()} / {self.sizes.mean():.0f} / "
             f"{self.sizes.max()}"],
            ["size imbalance", f"{self.size_imbalance:.2%}"],
            ["overlap fraction mean / max",
             f"{self.overlap_fractions.mean():.2%} / "
             f"{self.overlap_fractions.max():.2%}"],
            ["|O_i| min / mean / max",
             f"{self.neighbor_counts.min()} / "
             f"{self.neighbor_counts.mean():.1f} / "
             f"{self.neighbor_counts.max()}"],
            ["max dof multiplicity", self.max_multiplicity],
        ]
        return table(["quantity", "value"], rows,
                     title="decomposition report")


def decomposition_report(dec: Decomposition) -> DecompositionReport:
    """Compute the report for a built decomposition."""
    sizes = np.array([s.size for s in dec.subdomains])
    overlap = np.array([float(s.overlap_mask.mean())
                        for s in dec.subdomains])
    core = np.array([int((~s.overlap_mask).sum()) for s in dec.subdomains])
    return DecompositionReport(
        num_subdomains=dec.num_subdomains,
        delta=dec.delta,
        n_free=dec.problem.num_free,
        sizes=sizes,
        core_sizes=core,
        overlap_fractions=overlap,
        neighbor_counts=dec.neighbor_counts(),
        max_multiplicity=int(dec.multiplicity.max()),
    )
