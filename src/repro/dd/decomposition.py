"""Overlapping decomposition: subdomain data + neighbour exchange maps.

This is the algebraic heart of the paper's §2: every subdomain carries

* its restriction ``R_i`` (an index set into the reduced global dofs),
* the assembled "Dirichlet" matrix ``A_i = R_i A R_iᵀ`` — obtained by the
  paper's approach 2 (assemble on V_i^{δ+1}, trim the extra layer; the
  global A is **never** assembled),
* the unassembled "Neumann" matrix ``A_i^δ`` (discretisation of the form
  on V_i^δ) used by the GenEO eigenproblem,
* the partition-of-unity diagonal ``D_i``,
* and the actions of ``R_i R_jᵀ`` for every neighbour j — position index
  pairs aligned by global dof, which is all eq. (5) needs to compute the
  distributed matrix–vector product with purely local data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..common.errors import DecompositionError
from ..common.validation import as_float64_block
from ..fem.space import FunctionSpace
from ..mesh import SimplexMesh
from ..parallel import ParallelConfig, parallel_map, resolve_parallel
from .dofmap import map_vector_dofs
from .overlap import grow_overlap
from .pou import chi_tilde, expand_to_vector, pou_diagonal
from .problem import Problem


@dataclass
class Subdomain:
    """All local data of one subdomain (one simulated MPI rank)."""

    index: int
    #: parent cell ids of T_i^δ and the layer at which each entered
    cells: np.ndarray
    layers: np.ndarray
    #: local overlapping mesh Ω_i^δ and its FE space V_i^δ
    mesh: SimplexMesh
    space: FunctionSpace
    #: R_i — reduced-global dof id of each kept local dof (length n_i)
    dofs: np.ndarray
    #: assembled (Dirichlet) matrix R_i A R_iᵀ
    A_dir: sp.csr_matrix
    #: unassembled (Neumann) matrix from discretising a on V_i^δ
    A_neu: sp.csr_matrix
    #: partition-of-unity diagonal D_i
    d: np.ndarray
    #: local right-hand side contribution? not stored; use restrict(b)
    neighbors: list[int] = field(default_factory=list)
    #: for each neighbour j, positions (into my local vector) of the dofs
    #: shared with j, ordered by ascending global dof id — the two sides'
    #: arrays align, giving the action of R_i R_jᵀ
    shared: dict[int, np.ndarray] = field(default_factory=dict)
    #: boolean mask of local dofs lying in the overlap ∪_j (V_i^δ ∩ V_j^δ)
    #: — the R_{i,0} of the GenEO eigenproblem (eq. 9)
    overlap_mask: np.ndarray | None = None
    #: SPD surrogate of A_neu for the extended-GenEO pencil (the form's
    #: ``assemble_geneo_matrix``); ``None`` for forms whose A_neu is
    #: already symmetric positive semi-definite
    A_geneo: sp.csr_matrix | None = None

    @property
    def size(self) -> int:
        return int(self.dofs.size)

    @property
    def num_deflation_neighbors(self) -> int:
        return len(self.neighbors)


class Decomposition:
    """The overlapping decomposition of a :class:`~repro.dd.problem.Problem`.

    Parameters
    ----------
    problem:
        Global problem (form + mesh + Dirichlet data).
    part:
        Per-cell subdomain ids (from :func:`repro.partition.partition_mesh`).
    delta:
        Overlap width δ >= 1 (the paper's strong-scaling runs use the
        minimal geometric overlap δ = 1).
    parallel:
        Executor for the per-subdomain extraction/assembly loop
        (:class:`~repro.parallel.ParallelConfig`, a backend name, or
        ``None`` for serial).  Results are executor-independent.
    recorder:
        Optional :class:`repro.obs.Recorder` — records the build steps
        as spans (``build_subdomains``, ``apply_scaling``,
        ``build_exchange``) and counts every distributed matvec under
        the ``matvecs`` counter.
    kernels:
        Optional :class:`~repro.kernels.KernelBackend` owning the
        overlap-exchange kernel; ``None`` uses the reference ``numpy``
        backend (identical operations).
    """

    def __init__(self, problem: Problem, part: np.ndarray, delta: int = 1,
                 *, parallel: ParallelConfig | str | None = None,
                 recorder=None, kernels=None):
        from ..kernels import default_backend
        from ..obs.recorder import NULL_RECORDER
        part = np.asarray(part, dtype=np.int64)
        if part.shape != (problem.mesh.num_cells,):
            raise DecompositionError(
                f"part must have shape ({problem.mesh.num_cells},), "
                f"got {part.shape}")
        if delta < 1:
            raise DecompositionError(f"delta must be >= 1, got {delta}")
        self.problem = problem
        self.part = part
        self.delta = int(delta)
        self.parallel = resolve_parallel(parallel)
        self.num_subdomains = int(part.max()) + 1
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.kernels = default_backend() if kernels is None else kernels
        #: number of distributed A·x products performed (the solve-phase
        #: SpMV counter — the fast A-DEF1 apply path must not move it)
        self.matvecs = 0
        with self.recorder.span("build_subdomains"):
            self._build_subdomains()
        with self.recorder.span("apply_scaling"):
            self._apply_scaling()
        with self.recorder.span("build_exchange"):
            self._build_exchange()
        self._detect_symmetry()

    # ------------------------------------------------------------------
    def _detect_symmetry(self) -> None:
        """Detect (a)symmetry of the global operator once, from local data.

        Every global nonzero ``A[p, q]`` comes from a cell interior to
        some subdomain's T_i^δ, so both ``(p, q)`` and ``(q, p)`` appear
        in that subdomain's principal submatrix ``A_dir`` — all-local
        symmetry therefore implies global symmetry, without ever
        assembling A.  The result is recorded on the operator as
        :attr:`is_symmetric`/:attr:`is_spd`, the single flag that driver
        dispatch, ``solve_many``'s auto-pick, deflated-cg validation and
        the kernel backends all branch on.
        """
        from ..common.validation import matrix_is_symmetric
        self.is_symmetric = all(
            matrix_is_symmetric(s.A_dir) for s in self.subdomains)
        #: symmetric + the form's definiteness claim (indefinite forms
        #: such as Helmholtz declare spd=False even though symmetric)
        self.is_spd = bool(
            self.is_symmetric and getattr(self.problem.form, "spd", True))

    # ------------------------------------------------------------------
    def _apply_scaling(self) -> None:
        """Symmetric Jacobi scaling computed from *local* diagonals.

        diag(A)|_{V_i^δ} = diag(A_i) because A_i is the assembled Dirichlet
        matrix, so the global scale vector is available without ever
        assembling A — every subdomain just scatters its diagonal."""
        if self.problem.scaling is None:
            return
        scale = np.zeros(self.problem.num_free)
        for s in self.subdomains:
            # |diag|: indefinite operators carry negative diagonal
            # entries; bitwise identical to sqrt(diag) for SPD forms
            scale[s.dofs] = 1.0 / np.sqrt(np.abs(s.A_dir.diagonal()))
        self.problem.set_scale(scale)
        for s in self.subdomains:
            Si = sp.diags(scale[s.dofs])
            s.A_dir = (Si @ s.A_dir @ Si).tocsr()
            s.A_neu = (Si @ s.A_neu @ Si).tocsr()
            if s.A_geneo is not None:
                s.A_geneo = (Si @ s.A_geneo @ Si).tocsr()

    # ------------------------------------------------------------------
    def _build_subdomains(self) -> None:
        problem, delta = self.problem, self.delta
        mesh, form = problem.mesh, problem.form
        gspace = problem.space
        N = self.num_subdomains

        # pre-warm the shared caches every task reads (mesh topology and
        # the global dof layout), so concurrent tasks never race to
        # populate a lazily-computed attribute
        mesh.vertex_to_cells
        gspace.cell_scalar_dofs
        gspace.cell_dofs

        # grow to δ+1 once; T_i^δ is the layer <= δ prefix
        grown = parallel_map(
            lambda i: grow_overlap(mesh, self.part, i, delta + 1),
            range(N), self.parallel)
        overlaps_d = []
        for cells, layers in grown:
            keep = layers <= delta
            overlaps_d.append((cells[keep], layers[keep]))
        chi, chi_total = chi_tilde(mesh, overlaps_d, delta)

        def build_one(i: int) -> Subdomain:
            cells_dp1, _ = grown[i]
            cells_d, layers_d = overlaps_d[i]

            smesh1, vmap1, cmap1 = mesh.extract_cells(cells_dp1)
            space1 = form.make_space(smesh1)
            A_loc = form.assemble_matrix(space1, cell_map=cmap1)

            smesh0, vmap0, cmap0 = mesh.extract_cells(cells_d)
            space0 = form.make_space(smesh0)

            g_d = map_vector_dofs(space0, gspace, vmap0, cmap0)
            g_dp1 = map_vector_dofs(space1, gspace, vmap1, cmap1)
            inv = np.full(gspace.num_dofs, -1, dtype=np.int64)
            inv[g_dp1] = np.arange(g_dp1.size)
            pos_in_dp1 = inv[g_d]
            if np.any(pos_in_dp1 < 0):  # pragma: no cover - internal check
                raise DecompositionError(
                    f"V_{i}^δ not contained in V_{i}^(δ+1)")

            reduced = problem.free_lookup[g_d]
            keep = reduced >= 0
            dofs = reduced[keep]

            # Dirichlet matrix: trim the δ+1 assembly (approach 2 of §2)
            sel = pos_in_dp1[keep]
            A_dir = A_loc[sel][:, sel].tocsr()

            # Neumann matrix: discretise directly on V_i^δ
            A_neu = form.assemble_matrix(space0, cell_map=cmap0)
            keep_idx = np.flatnonzero(keep)
            A_neu = A_neu[keep_idx][:, keep_idx].tocsr()

            # SPD surrogate for the extended-GenEO pencil, same V_i^δ
            # reduction as A_neu (None for plain-GenEO-compatible forms)
            A_geneo = form.assemble_geneo_matrix(space0, cell_map=cmap0)
            if A_geneo is not None:
                A_geneo = A_geneo[keep_idx][:, keep_idx].tocsr()

            # partition-of-unity diagonal
            verts, chi_vals = chi[i]
            if not np.array_equal(verts, vmap0):  # pragma: no cover
                raise DecompositionError(
                    "vertex sets of χ̃ and submesh disagree")
            d_scal = pou_diagonal(space0, chi_vals, chi_total[vmap0])
            d = expand_to_vector(d_scal, gspace.ncomp)[keep]

            return Subdomain(
                index=i, cells=cells_d, layers=layers_d, mesh=smesh0,
                space=space0, dofs=dofs, A_dir=A_dir, A_neu=A_neu, d=d,
                A_geneo=A_geneo)

        self.subdomains = parallel_map(build_one, range(N), self.parallel)

    # ------------------------------------------------------------------
    def _build_exchange(self) -> None:
        """Compute neighbour sets O_i and the aligned shared-dof position
        arrays that realise R_i R_jᵀ."""
        subs = self.subdomains
        dofs_all = np.concatenate([s.dofs for s in subs])
        owner = np.concatenate([np.full(s.size, s.index, dtype=np.int64)
                                for s in subs])
        pos = np.concatenate([np.arange(s.size, dtype=np.int64) for s in subs])
        order = np.argsort(dofs_all, kind="stable")
        dsort, osort, psort = dofs_all[order], owner[order], pos[order]
        starts = np.flatnonzero(np.r_[True, dsort[1:] != dsort[:-1]])
        ends = np.r_[starts[1:], dsort.size]

        from collections import defaultdict
        pair_pos: dict[tuple[int, int], list[int]] = defaultdict(list)
        multiplicity = np.zeros(self.problem.num_free, dtype=np.int64)
        for s0, s1 in zip(starts, ends):
            multiplicity[dsort[s0]] = s1 - s0
            if s1 - s0 < 2:
                continue
            group_owner = osort[s0:s1]
            group_pos = psort[s0:s1]
            for a in range(s1 - s0):
                for b in range(s1 - s0):
                    if group_owner[a] != group_owner[b]:
                        pair_pos[(group_owner[a], group_owner[b])].append(
                            group_pos[a])
        if np.any(multiplicity == 0):  # pragma: no cover - internal check
            raise DecompositionError("a free dof belongs to no subdomain")
        self.multiplicity = multiplicity

        for (i, j), plist in pair_pos.items():
            # entries appended in ascending global-dof order (groups are
            # visited in sorted order), so both sides align
            subs[i].shared[j] = np.asarray(plist, dtype=np.int64)
        for s in subs:
            s.neighbors = sorted(s.shared.keys())
            mask = np.zeros(s.size, dtype=bool)
            for j in s.neighbors:
                mask[s.shared[j]] = True
            s.overlap_mask = mask

    # ------------------------------------------------------------------
    # Global <-> local transfers (test / driver utilities)
    # ------------------------------------------------------------------
    def restrict(self, u: np.ndarray) -> list[np.ndarray]:
        """u_i = R_i u for every subdomain."""
        return [u[s.dofs] for s in self.subdomains]

    def combine(self, u_list: list[np.ndarray]) -> np.ndarray:
        """Σ_i R_iᵀ D_i u_i — the partition-of-unity prolongation.

        A subdomain's dofs are unique, so fancy-index accumulation is
        exact (and far cheaper than ``np.add.at``'s unbuffered path).
        """
        out = np.zeros(self.problem.num_free)
        for s, ui in zip(self.subdomains, u_list):
            out[s.dofs] += s.d * ui
        return out

    def combine_raw(self, u_list: list[np.ndarray]) -> np.ndarray:
        """Σ_i R_iᵀ u_i (no partition of unity)."""
        out = np.zeros(self.problem.num_free)
        for s, ui in zip(self.subdomains, u_list):
            out[s.dofs] += ui
        return out

    # ------------------------------------------------------------------
    # Neighbour exchange and the distributed matvec of eq. (5)
    # ------------------------------------------------------------------
    def exchange_sum(self, x_list: list[np.ndarray]) -> list[np.ndarray]:
        """y_i = Σ_{j ∈ Ō_i} R_i R_jᵀ x_j  (the j = i term is x_i itself).

        This is the communication pattern of one global sparse
        matrix–vector product (peer-to-peer transfers on the overlap);
        the loop itself lives in the kernel backend
        (:meth:`repro.kernels.KernelBackend.exchange_sum`).
        """
        return self.kernels.exchange_sum(self.subdomains, x_list)

    def matvec_local(self, x_list: list[np.ndarray]) -> list[np.ndarray]:
        """(Ax)_i from purely local data: eq. (5),
        (Ax)_i = Σ_j R_i R_jᵀ A_j D_j x_j, for consistent inputs x_i = R_i x.
        """
        t = [s.A_dir @ (s.d * xi) for s, xi in zip(self.subdomains, x_list)]
        return self.exchange_sum(t)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Global A·x computed through the distributed algorithm (never
        touching the assembled global matrix); returns the reduced vector.

        Consistency: the result is read off subdomain-local pieces using
        the partition of unity (each dof's value is identical on every
        subdomain owning it, so any weighted combination returns it)."""
        self.matvecs += 1
        if self.recorder.enabled:
            self.recorder.add("matvecs", 1)
        y_list = self.matvec_local(self.restrict(x))
        return self.combine(y_list)

    def matvec_block(self, X: np.ndarray) -> np.ndarray:
        """Blocked distributed A·X for a column block ``X (n_free, k)``.

        Same algorithm as :meth:`matvec` run on all k columns at once:
        one csrmm per subdomain instead of k csrmvs, and one neighbour
        exchange for the whole block (``exchange_sum`` is shape-generic —
        the shared-dof row indexing broadcasts over columns).  Counts as
        k distributed matvecs.
        """
        X = as_float64_block(X, "matvec_block", DecompositionError)
        k = X.shape[1]
        self.matvecs += k
        if self.recorder.enabled:
            self.recorder.add("matvecs", k)
        subs = self.subdomains
        t = [s.A_dir @ (s.d[:, None] * X[s.dofs, :]) for s in subs]
        summed = self.exchange_sum(t)
        out = np.zeros((self.problem.num_free, k))
        for s, yi in zip(subs, summed):
            out[s.dofs] += s.d[:, None] * yi
        return out

    # ------------------------------------------------------------------
    def neighbor_counts(self) -> np.ndarray:
        """|O_i| per subdomain (drives the fill of E in fig. 11)."""
        return np.array([len(s.neighbors) for s in self.subdomains])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Decomposition(N={self.num_subdomains}, delta={self.delta}, "
                f"n_free={self.problem.num_free})")
