"""Overlapping domain decomposition substrate (paper §2)."""

from .decomposition import Decomposition, Subdomain
from .dofmap import map_scalar_dofs, map_vector_dofs
from .overlap import all_overlaps, grow_overlap, vertex_layers
from .pou import chi_tilde, expand_to_vector, pou_diagonal
from .problem import Problem
from .report import DecompositionReport, decomposition_report

__all__ = [
    "Problem",
    "decomposition_report",
    "DecompositionReport",
    "Decomposition",
    "Subdomain",
    "grow_overlap",
    "all_overlaps",
    "vertex_layers",
    "chi_tilde",
    "pou_diagonal",
    "expand_to_vector",
    "map_scalar_dofs",
    "map_vector_dofs",
]
