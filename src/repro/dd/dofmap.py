"""Entity-based dof mapping between a submesh space and its parent space.

Subdomain matrices are assembled on local submeshes (the paper's approach
2: *"build the stiffness matrices yielded by the discretization of a on
V_i^{δ+1}, then remove rows and columns"* — no global matrix, no global
ordering needed at solver runtime).  For verification and for building the
restriction index sets we still need the injection of local dofs into the
parent numbering, which this module computes entity-by-entity:

* vertex dofs map through the submesh ``vertex_map``;
* edge dofs map through matching sorted global vertex pairs — the
  ascending-id canonical orientation is preserved because ``vertex_map``
  is monotonic;
* face dofs (3D) map through matching sorted vertex triples;
* cell-interior dofs map through ``cell_map``.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import DecompositionError
from ..fem.space import FunctionSpace


def _match_sorted_tuples(sub_rows: np.ndarray, parent_rows: np.ndarray,
                         nv: int, what: str) -> np.ndarray:
    """Index of each row of *sub_rows* within *parent_rows*.

    Rows are sorted small tuples (pairs or triples) of vertex ids < nv;
    they are flattened to scalar keys for a searchsorted lookup.
    """
    width = parent_rows.shape[1]
    if nv ** width >= 2 ** 62:  # pragma: no cover - astronomically large mesh
        raise DecompositionError(
            f"vertex count {nv} too large for {what} key packing")

    def pack(rows):
        key = rows[:, 0].astype(np.int64)
        for c in range(1, width):
            key = key * nv + rows[:, c]
        return key

    pkey = pack(parent_rows)
    order = np.argsort(pkey)
    pkey_sorted = pkey[order]
    skey = pack(sub_rows)
    pos = np.searchsorted(pkey_sorted, skey)
    if pos.max(initial=-1) >= pkey_sorted.shape[0] or \
            not np.array_equal(pkey_sorted[pos], skey):
        raise DecompositionError(
            f"submesh {what} not found in parent mesh (non-conforming "
            "submesh?)")
    return order[pos]


def map_scalar_dofs(sub_space: FunctionSpace, parent_space: FunctionSpace,
                    vertex_map: np.ndarray, cell_map: np.ndarray) -> np.ndarray:
    """Parent scalar-dof id for every scalar dof of *sub_space*.

    *vertex_map*/*cell_map* come from
    :meth:`repro.mesh.SimplexMesh.extract_cells`.
    """
    if sub_space.degree != parent_space.degree:
        raise DecompositionError("degree mismatch between sub and parent space")
    if sub_space.mesh.dim != parent_space.mesh.dim:
        raise DecompositionError("dimension mismatch between sub and parent space")
    k = sub_space.degree
    sub_mesh = sub_space.mesh
    parent_mesh = parent_space.mesh
    nv_parent = parent_mesh.num_vertices
    out = np.empty(sub_space.num_scalar_dofs, dtype=np.int64)

    # vertices
    out[:sub_space.n_vertex_dofs] = vertex_map

    # edges
    if k > 1:
        sub_edges_parent = np.sort(vertex_map[sub_mesh.edges], axis=1)
        edge_ids = _match_sorted_tuples(sub_edges_parent, parent_mesh.edges,
                                        nv_parent, "edge")
        dpe = sub_space.dofs_per_edge
        base_sub = sub_space._edge_offset
        base_par = parent_space._edge_offset
        sub_idx = (base_sub + np.arange(sub_mesh.edges.shape[0])[:, None] * dpe
                   + np.arange(dpe)[None, :])
        par_idx = base_par + edge_ids[:, None] * dpe + np.arange(dpe)[None, :]
        out[sub_idx.ravel()] = par_idx.ravel()

    # faces (3D, k >= 3)
    if sub_space.dofs_per_face:
        sub_faces_parent = np.sort(vertex_map[sub_mesh.facets], axis=1)
        face_ids = _match_sorted_tuples(sub_faces_parent, parent_mesh.facets,
                                        nv_parent, "face")
        dpf = sub_space.dofs_per_face
        sub_idx = (sub_space._face_offset +
                   np.arange(sub_mesh.facets.shape[0])[:, None] * dpf +
                   np.arange(dpf)[None, :])
        par_idx = (parent_space._face_offset + face_ids[:, None] * dpf +
                   np.arange(dpf)[None, :])
        out[sub_idx.ravel()] = par_idx.ravel()

    # cell interiors
    dpc = sub_space.dofs_per_cell_interior
    if dpc:
        sub_idx = (sub_space._cell_offset +
                   np.arange(sub_mesh.num_cells)[:, None] * dpc +
                   np.arange(dpc)[None, :])
        par_idx = (parent_space._cell_offset +
                   np.asarray(cell_map)[:, None] * dpc +
                   np.arange(dpc)[None, :])
        out[sub_idx.ravel()] = par_idx.ravel()
    return out


def map_vector_dofs(sub_space: FunctionSpace, parent_space: FunctionSpace,
                    vertex_map: np.ndarray, cell_map: np.ndarray) -> np.ndarray:
    """Vector-dof version of :func:`map_scalar_dofs` (interleaved layout)."""
    if sub_space.ncomp != parent_space.ncomp:
        raise DecompositionError("ncomp mismatch between sub and parent space")
    scal = map_scalar_dofs(sub_space, parent_space, vertex_map, cell_map)
    ncmp = sub_space.ncomp
    if ncmp == 1:
        return scal
    return (scal[:, None] * ncmp + np.arange(ncmp)[None, :]).reshape(-1)
