"""Global problem definition: form + mesh + essential boundary conditions.

The solvers all operate on the *reduced* SPD system (Dirichlet dofs
eliminated), which matches the paper's setting where A is symmetric
positive definite.  The global matrix is assembled **only on demand**
(tests, one-level baselines, reference residuals); the domain-decomposition
path never calls :meth:`Problem.matrix`.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.sparse as sp

from ..common.errors import DecompositionError
from ..fem.forms import Form
from ..fem.space import FunctionSpace
from ..mesh import SimplexMesh


class Problem:
    """An elliptic problem ``a(u, v) = l(v)`` with homogeneous Dirichlet
    conditions on a boundary region.

    Parameters
    ----------
    mesh, form:
        Geometry and variational form.
    dirichlet:
        ``None`` → whole boundary; a callable ``(n, dim) -> bool mask`` →
        that part of the boundary; an explicit dof array is also accepted.
    """

    def __init__(self, mesh: SimplexMesh, form: Form, *, dirichlet=None,
                 scaling: str | None = None):
        if scaling not in (None, "jacobi"):
            raise DecompositionError(
                f"unknown scaling {scaling!r} (expected None or 'jacobi')")
        self.scaling = scaling
        #: symmetric-scaling vector s = diag(A)^{-1/2} on free dofs; set by
        #: the decomposition (from local diagonals) or lazily from the
        #: assembled matrix.  The solved system is (SAS)(S⁻¹x) = Sb.
        self._scale: np.ndarray | None = None
        self.mesh = mesh
        self.form = form
        self.space: FunctionSpace = form.make_space(mesh)
        if dirichlet is None or callable(dirichlet):
            self.dirichlet_dofs = self.space.boundary_dofs(dirichlet)
        else:
            self.dirichlet_dofs = np.unique(
                np.asarray(dirichlet, dtype=np.int64))
        if self.dirichlet_dofs.size == 0:
            raise DecompositionError(
                "problem has no Dirichlet dofs; the operator would be "
                "singular (pure-Neumann problems are not supported)")
        n = self.space.num_dofs
        mask = np.ones(n, dtype=bool)
        mask[self.dirichlet_dofs] = False
        #: global free (unconstrained) dof ids, sorted
        self.free = np.flatnonzero(mask)
        #: full-dof -> reduced index, -1 on constrained dofs
        self.free_lookup = np.full(n, -1, dtype=np.int64)
        self.free_lookup[self.free] = np.arange(self.free.size)

    @property
    def num_free(self) -> int:
        return int(self.free.size)

    # ------------------------------------------------------------------
    @cached_property
    def _full_system(self) -> tuple[sp.csr_matrix, np.ndarray]:
        A = self.form.assemble_matrix(self.space)
        b = self.form.assemble_rhs(self.space)
        return A, b

    # -- symmetric Jacobi scaling --------------------------------------
    def set_scale(self, scale: np.ndarray) -> None:
        """Install the scaling vector (computed by the decomposition from
        the *local* matrix diagonals — the global A stays unassembled)."""
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape != (self.num_free,):
            raise DecompositionError(
                f"scale must have shape ({self.num_free},), got {scale.shape}")
        self._scale = scale

    @property
    def scale(self) -> np.ndarray | None:
        """diag(A)^{-1/2} on free dofs (None when scaling is off)."""
        if self.scaling is None:
            return None
        if self._scale is None:
            A, _ = self._full_system
            d = A.diagonal()[self.free]
            # |d|: indefinite operators (Helmholtz past the resonance)
            # have negative diagonal entries; sqrt(d) would be NaN.
            # Bitwise identical to the old expression for SPD operators.
            self.set_scale(1.0 / np.sqrt(np.abs(d)))
        return self._scale

    def matrix(self) -> sp.csr_matrix:
        """Reduced global stiffness matrix (assembled lazily; reference
        use only — the DD path never forms it).  Includes the symmetric
        scaling when enabled."""
        A, _ = self._full_system
        A = A[self.free][:, self.free].tocsr()
        s = self.scale
        if s is not None:
            S = sp.diags(s)
            A = (S @ A @ S).tocsr()
        return A

    def rhs(self) -> np.ndarray:
        """Reduced (and scaled, if enabled) right-hand side."""
        _, b = self._full_system
        b = b[self.free]
        s = self.scale
        return b if s is None else s * b

    def extend(self, x_reduced: np.ndarray) -> np.ndarray:
        """Prolong a reduced solution to the full dof vector (zeros on the
        Dirichlet boundary), undoing the symmetric scaling."""
        s = self.scale
        out = np.zeros(self.space.num_dofs)
        out[self.free] = x_reduced if s is None else s * x_reduced
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Problem({type(self.form).__name__}, "
                f"n={self.space.num_dofs}, free={self.num_free})")
