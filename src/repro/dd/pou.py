"""The paper's partition of unity (§2).

χ̃_i is the continuous piecewise-linear function on Ω_i^δ with node values

* 1 on all nodes of T_i^0,
* 1 − m/δ on all nodes of T_i^m \\ T_i^{m-1}, m ∈ [1; δ],

and the partition of unity is χ_i = χ̃_i / Σ_j χ̃_j.  The diagonal matrix
D_i is obtained by *linear interpolation* of χ_i at the dof nodes of the
(typically higher-order) local space V_i^δ — exactly the construction of
the paper (also used in Kimn & Sarkis).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import DecompositionError
from ..fem.space import FunctionSpace
from ..mesh import SimplexMesh
from .overlap import vertex_layers


def chi_tilde(mesh: SimplexMesh, overlaps: list[tuple[np.ndarray, np.ndarray]],
              delta: int) -> tuple[list[tuple[np.ndarray, np.ndarray]], np.ndarray]:
    """Node values of χ̃_i for every subdomain, plus the global sum.

    Parameters
    ----------
    overlaps:
        Per subdomain ``(cells, layers)`` from :func:`~repro.dd.overlap.
        grow_overlap` with the *same* δ.

    Returns
    -------
    ``(per_sub, total)`` where ``per_sub[i] = (verts, values)`` gives
    χ̃_i at the parent vertex ids *verts*, and ``total[v] = Σ_j χ̃_j(v)``
    over all parent vertices (≥ 1 everywhere by construction).
    """
    if delta < 1:
        raise DecompositionError(
            f"the partition of unity requires overlap delta >= 1, got {delta}")
    total = np.zeros(mesh.num_vertices)
    per_sub = []
    for cells, layers in overlaps:
        verts, vlayer = vertex_layers(mesh, cells, layers)
        values = 1.0 - vlayer.astype(np.float64) / delta
        per_sub.append((verts, values))
        total[verts] += values
    if np.any(total[np.unique(mesh.cells)] <= 0):  # pragma: no cover
        raise DecompositionError(
            "partition-of-unity sum vanished at a mesh vertex; the cell "
            "partition does not cover the mesh")
    return per_sub, total


def pou_diagonal(space_d: FunctionSpace, chi_vertex: np.ndarray,
                 total_vertex: np.ndarray) -> np.ndarray:
    """D_i diagonal at the scalar dofs of the local δ-space.

    *chi_vertex*/*total_vertex* are χ̃_i and Σ_j χ̃_j at the **local**
    vertices of ``space_d.mesh``.  Both P1 functions are evaluated at each
    Lagrange node by barycentric interpolation within any containing cell
    (continuity makes the choice irrelevant), then divided.
    """
    mesh = space_d.mesh
    if chi_vertex.shape != (mesh.num_vertices,):
        raise DecompositionError("chi_vertex has wrong length")
    bary = space_d.ref.nodes_bary.astype(np.float64) / space_d.degree
    chi_c = chi_vertex[mesh.cells]                    # (nc, dim+1)
    tot_c = total_vertex[mesh.cells]
    chi_at = np.einsum("ld,cd->cl", bary, chi_c)
    tot_at = np.einsum("ld,cd->cl", bary, tot_c)
    vals = np.empty(space_d.num_scalar_dofs)
    vals[space_d.cell_scalar_dofs.ravel()] = (chi_at / tot_at).ravel()
    return vals


def expand_to_vector(diag_scalar: np.ndarray, ncomp: int) -> np.ndarray:
    """Repeat a scalar-dof diagonal across interleaved vector components."""
    if ncomp == 1:
        return diag_scalar
    return np.repeat(diag_scalar, ncomp)
