"""α–β machine model of a Curie-like cluster.

Converts metered communication (message counts/bytes from
:class:`repro.mpi.Meter`) and measured per-subdomain compute into modelled
parallel times.  The collective-cost formulas encode the paper's §3.2
observation: fixed-count collectives (gather/scatter/allreduce with
uniform ν) cost O(log N) latency terms, while variable-count ones
(gatherv) serialise at the root and cost O(N).

Absolute constants are calibrated to the Curie generation (Sandy Bridge,
InfiniBand QDR); only *shape* conclusions — speedup, efficiency,
crossovers — are meaningful on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: collectives whose latency scales with log₂(P) (tree algorithms)
_LOG_COLLECTIVES = {"bcast", "gather", "scatter", "allgather", "allreduce",
                    "iallreduce", "reduce", "barrier", "alltoall",
                    "ineighbor_alltoall"}
#: variable-count collectives: the root touches every rank — O(P)
_LINEAR_COLLECTIVES = {"gatherv", "scatterv", "allgatherv"}


@dataclass
class MachineModel:
    """A homogeneous cluster: per-core flop rate + α–β network."""

    #: sustained per-core flop rate (Sandy Bridge @ 2.7 GHz, AVX)
    flops: float = 10.0e9
    #: point-to-point latency (InfiniBand QDR)
    latency: float = 1.5e-6
    #: inverse bandwidth, seconds per byte (≈ 3 GB/s effective per link)
    inv_bandwidth: float = 1.0 / 3.0e9

    def p2p(self, nbytes: float, messages: int = 1) -> float:
        """Time for point-to-point traffic."""
        return messages * self.latency + nbytes * self.inv_bandwidth

    def collective(self, kind: str, nbytes: float, nranks: int) -> float:
        """Time of one collective of *kind* moving *nbytes* per rank."""
        if nranks <= 1:
            return 0.0
        if kind in _LINEAR_COLLECTIVES:
            return nranks * self.latency + nbytes * self.inv_bandwidth
        if kind in _LOG_COLLECTIVES:
            lg = np.log2(nranks)
            return lg * (self.latency + nbytes * self.inv_bandwidth)
        return self.latency + nbytes * self.inv_bandwidth

    def compute(self, flop_count: float) -> float:
        return flop_count / self.flops

    # ------------------------------------------------------------------
    def model_rank_comm(self, stats) -> float:
        """Modelled communication seconds for one rank's
        :class:`~repro.mpi.meter.RankStats`."""
        t = stats.sends * self.latency + stats.send_bytes * self.inv_bandwidth
        for kind, count in stats.collectives.items():
            nbytes = stats.collective_bytes.get(kind, 0)
            avg = nbytes / max(count, 1)
            # communicator size is unknown per call; use a conservative
            # world-size bound stored by the caller via `default_ranks`
            t += count * self.collective(kind, avg, self.default_ranks)
        return t

    default_ranks: int = 2

    def model_meter(self, meter, nranks: int | None = None) -> float:
        """Critical-path communication estimate: max over ranks."""
        if nranks is not None:
            self.default_ranks = nranks
        return max(self.model_rank_comm(meter.stats(r))
                   for r in range(meter.world_size))


#: the machine of the paper's experiments
CURIE = MachineModel()
