"""Per-strategy cost models of the coarse solve at paper scale.

The substrate runs N = 8..64 subdomains; the paper runs N = 256..8192,
where the coarse dimension N·ν makes the *strategy* of the E-solve the
scaling story (§3.4's closing concern).  This module prices one coarse
solve (and the one-off factorization) for each registered strategy on
the α–β machine model, so the benchmarks can print measured-vs-modelled
tables and extend them to the paper's N:

``dense``
    Fan-out block Cholesky over the P masters
    (:class:`repro.solvers.distributed.DistributedCholesky`): dim³/3
    flops spread over P, but every panel broadcast serialises — the
    O(P · log P) latency term is exactly why the paper's dense direct
    solvers stop scaling past ~hundreds of masters.
``sparse``
    Distributed sparse direct (the MUMPS-on-masterComm regime): the
    fill of the factors follows the subdomain connectivity graph, so
    factorization flops ≈ Σ_r fill(r)² ≈ nnz(L)²/dim and each solve is
    4·nnz(L) flops plus the same gather/scatter plumbing.
``multilevel``
    A fixed budget of inner FGMRES iterations, each one SpMV with E
    (2·nnz(E)), the level-2 RAS local solves (4·nnz(L₂)) and a tiny
    dense level-2 correction — O(inner · nnz(E)) work with only
    log-latency collectives, i.e. one more level of the same algorithm.

Absolute seconds inherit the CURIE calibration; only shape conclusions
(crossovers, scaling exponents) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import CURIE, MachineModel


@dataclass
class CoarseCost:
    """Modelled cost of the coarse solve for one (strategy, N) point."""

    strategy: str
    N: int
    #: masters (level-2 parts for ``multilevel``)
    P: int
    dim: int
    nnz: int
    nnz_factor: int
    #: one-off factorization / setup seconds
    t_factorize: float
    #: seconds of ONE coarse solve E⁻¹w
    t_solve: float
    #: bytes moved per solve (critical-path, modelled)
    bytes_solve: float

    def as_row(self) -> list:
        return [self.strategy, self.N, self.P, self.dim, self.nnz,
                self.nnz_factor, self.t_factorize, self.t_solve,
                self.bytes_solve]


def coarse_problem_shape(N: int, nev: int,
                         neighbors: float = 6.0) -> tuple[int, int]:
    """(dim, nnz) of E at decomposition size *N*: dim = N·ν and one
    ν×ν block per subdomain pair in contact (fig. 4 sparsity)."""
    dim = N * nev
    nnz = int(round(N * (neighbors + 1.0) * nev * nev))
    return dim, nnz


def strategy_cost(strategy: str, N: int, nev: int, *,
                  num_masters: int | None = None, neighbors: float = 6.0,
                  fill: float = 12.0, inner_iters: int = 8,
                  model: MachineModel = CURIE) -> CoarseCost:
    """Price the coarse solve of *strategy* at decomposition size *N*.

    *fill* is nnz(L)/nnz(E) of the sparse factorization (measured values
    from the benchmarks can be passed in to calibrate); *inner_iters*
    the multilevel inner-FGMRES budget.
    """
    dim, nnz = coarse_problem_shape(N, nev, neighbors)
    P = num_masters if num_masters else max(1, N // 8)
    nnz_l = int(round(fill * nnz))
    if strategy == "dense":
        w = max(1.0, dim / P)
        # P serialised panel rounds: triangle bcast + panel allgather
        per_panel = (model.collective("bcast", 8.0 * w * w, P)
                     + model.collective("allgather", 8.0 * w * dim / P, P))
        t_fact = model.compute(dim ** 3 / (3.0 * P)) + P * per_panel
        t_solve = model.compute(2.0 * dim * dim / P) \
            + 2.0 * P * model.collective("bcast", 8.0 * w, P)
        bytes_solve = 2.0 * 8.0 * dim * np.log2(max(P, 2))
        return CoarseCost(strategy, N, P, dim, nnz, dim * dim,
                          t_fact, t_solve, bytes_solve)
    if strategy == "sparse":
        t_fact = model.compute(2.0 * nnz_l * nnz_l / max(dim, 1) / P) \
            + P * model.latency
        t_solve = model.compute(4.0 * nnz_l / P) \
            + 2.0 * P * model.latency \
            + model.collective("gatherv", 8.0 * dim / P, P) \
            + model.collective("scatterv", 8.0 * dim / P, P)
        bytes_solve = 2.0 * 8.0 * dim
        return CoarseCost(strategy, N, P, dim, nnz, nnz_l,
                          t_fact, t_solve, bytes_solve)
    if strategy == "multilevel":
        # level-2 parts own ~N/P blocks each; δ=1 halo ≈ doubles them
        loc_nnz = 2.0 * fill * nnz / P
        t_fact = model.compute(2.0 * loc_nnz * loc_nnz
                               / max(dim / P, 1.0)) \
            + model.collective("allreduce", 8.0 * P, P)
        per_iter = model.compute((2.0 * nnz + 4.0 * fill * nnz
                                  + 2.0 * dim * P / max(P, 1)) / P) \
            + model.collective("allreduce", 64.0, P) \
            + model.p2p(8.0 * nev * neighbors, messages=int(neighbors))
        t_solve = inner_iters * per_iter
        bytes_solve = inner_iters * (64.0 * np.log2(max(P, 2))
                                     + 8.0 * nev * neighbors)
        return CoarseCost(strategy, N, P, dim, nnz,
                          int(round(2.0 * fill * nnz)) + P * P,
                          t_fact, t_solve, bytes_solve)
    raise ValueError(f"unknown strategy {strategy!r} "
                     f"(expected dense/sparse/multilevel)")


def scaleout_table(Ns, nev: int, *,
                   strategies=("dense", "sparse", "multilevel"),
                   neighbors: float = 6.0, fill: float = 12.0,
                   inner_iters: int = 8,
                   model: MachineModel = CURIE) -> list[CoarseCost]:
    """Modelled coarse-solve costs for every (N, strategy) pair — the
    scale-out half of the measured-vs-modelled table (paper N ≥ 1024)."""
    out = []
    for N in Ns:
        for s in strategies:
            out.append(strategy_cost(s, int(N), nev, neighbors=neighbors,
                                     fill=fill, inner_iters=inner_iters,
                                     model=model))
    return out
