"""Extrapolation of measured scaling rows to the paper's machine scales.

The laptop substrate runs N = 8..64 subdomains; the paper runs
N = 256..8192.  To fill the figure-8/10 tables at the paper's N we fit
per-phase power laws ``t(n_local) = a · n_local^b`` to the *measured*
per-subdomain costs (factorization and GenEO deflation are local, so
their cost depends only on the local problem size) and evaluate them at
the local sizes the paper's N would give, adding the modelled
communication at that scale.

The exponents b are the interesting output: b > 1 (superlinear local
cost, typical for 3D sparse factorization) is exactly the mechanism the
paper credits for its superlinear strong-scaling speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import CURIE, MachineModel
from .scaling import ScalingRow


@dataclass
class PowerLaw:
    """t = a · n^b fitted in log space."""

    a: float
    b: float

    def __call__(self, n: float) -> float:
        return self.a * n ** self.b


def fit_power_law(sizes, times) -> PowerLaw:
    """Least-squares fit of log t = log a + b log n."""
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.maximum(np.asarray(times, dtype=np.float64), 1e-12)
    if sizes.size < 2:
        return PowerLaw(a=float(times[0] / sizes[0]), b=1.0)
    coeff = np.polyfit(np.log(sizes), np.log(times), 1)
    return PowerLaw(a=float(np.exp(coeff[1])), b=float(coeff[0]))


@dataclass
class StrongScalingModel:
    """Fitted per-phase local-cost laws + the global problem size."""

    global_dofs: int
    factorization: PowerLaw
    deflation: PowerLaw
    local_solve: PowerLaw
    iterations: int
    nu: int

    @classmethod
    def fit(cls, rows: list[ScalingRow], nu: int) -> "StrongScalingModel":
        n_local = [r.dofs / r.N for r in rows]
        fact = fit_power_law(n_local, [r.factorization for r in rows])
        defl = fit_power_law(n_local, [r.deflation for r in rows])
        # per-iteration local work ≈ solution / iterations (compute part)
        sol = fit_power_law(n_local,
                            [max(r.solution / max(r.iterations, 1), 1e-12)
                             for r in rows])
        its = int(round(np.mean([r.iterations for r in rows])))
        return cls(global_dofs=rows[0].dofs, factorization=fact,
                   deflation=defl, local_solve=sol, iterations=its, nu=nu)

    def predict(self, N: int, *, model: MachineModel = CURIE,
                num_masters: int | None = None) -> ScalingRow:
        """Predicted figure-8 row at decomposition size N."""
        if num_masters is None:
            num_masters = max(1, N // 128)
        n_local = self.global_dofs / N
        fact = self.factorization(n_local)
        defl = self.deflation(n_local)
        # communication per iteration at scale N
        overlap_bytes = 8.0 * (n_local ** (2 / 3)) * 6   # surface ~ n^{2/3}
        exch = model.p2p(overlap_bytes, messages=6)
        split = max(2, N // num_masters)
        coarse = (model.collective("gatherv", 8 * self.nu * split, split)
                  + model.collective("scatterv", 8 * self.nu * split, split)
                  + model.compute(2.0 * (self.nu * N) ** 2 / num_masters))
        red = 2 * model.collective("allreduce", 64, N)
        per_it = 4 * exch + coarse + red + self.local_solve(n_local)
        solution = self.iterations * per_it
        return ScalingRow(N=N, factorization=fact, deflation=defl,
                          solution=solution, iterations=self.iterations,
                          dofs=self.global_dofs)
