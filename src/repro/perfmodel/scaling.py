"""Scaling harness: regenerates the rows of figures 8, 10 and 11.

Methodology (documented per experiment in EXPERIMENTS.md):

* *factorization* and *deflation* columns are **measured** — each
  subdomain's local factorization / GenEO eigensolve is timed separately
  and the SPMD wall-clock is the max over subdomains (all ranks run
  concurrently in the paper's setting);
* the *solution* column combines the measured per-subdomain iteration
  work (sequential time / N) with **modelled** communication from the
  decomposition's actual exchange sizes and the α–β machine model;
* figure 11's assembly time is modelled from the actual metered traffic
  of the SPMD run of algorithms 1–2 plus a dense-panel factorization
  flop model for the masters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solver import SchwarzSolver
from .machine import CURIE, MachineModel


@dataclass
class ScalingRow:
    """One row of the figure-8/10 tables."""

    N: int
    factorization: float
    deflation: float
    solution: float
    iterations: int
    dofs: int

    @property
    def total(self) -> float:
        return self.factorization + self.deflation + self.solution

    def as_tuple(self):
        return (self.N, self.factorization, self.deflation, self.solution,
                self.iterations, self.total, self.dofs)


def iteration_comm_time(solver: SchwarzSolver, model: MachineModel,
                        num_masters: int) -> float:
    """Modelled communication seconds of ONE preconditioned iteration.

    A-DEF1 + GMRES: 4 overlap exchanges (operator matvec, correction
    prolongation, the matvec inside (I − AQ), RAS prolongation), the
    splitComm Gather(v)/Scatter(v) of the coarse solve, the masters'
    triangular solves, and two global reductions.
    """
    dec = solver.decomposition
    N = dec.num_subdomains
    P = max(1, num_masters)
    # worst-rank p2p volume of one exchange
    per_rank = []
    for s in dec.subdomains:
        nbytes = sum(8 * s.shared[j].size for j in s.neighbors)
        per_rank.append(model.p2p(nbytes, messages=len(s.neighbors)))
    exchange = max(per_rank) if per_rank else 0.0
    nu_max = int(solver.nu.max()) if solver.nu.size else 0
    split_size = max(1, N // P)
    gather = model.collective("gatherv", 8 * nu_max * split_size, split_size)
    scatter = model.collective("scatterv", 8 * nu_max * split_size, split_size)
    dim_e = solver.coarse_dim
    coarse_solve = model.compute(2.0 * dim_e * dim_e / P) \
        + P * model.latency          # pipelined block substitutions
    reductions = 2 * model.collective("allreduce", 64, N)
    n_exchanges = 4 if solver.coarse is not None else 2
    return n_exchanges * exchange + gather + scatter + coarse_solve \
        + reductions


def _robust_max(times) -> float:
    """SPMD wall-clock estimate of a concurrent phase.

    Ideally the max over ranks; on a single shared core the max of many
    small measurements is badly biased by scheduler noise, so beyond a
    handful of ranks we use the 90th percentile instead."""
    times = np.asarray(list(times), dtype=np.float64)
    if times.size <= 8:
        return float(times.max())
    return float(np.percentile(times, 90))


def measure_row(solver: SchwarzSolver, *, tol: float = 1e-6,
                restart: int = 40, maxiter: int = 400,
                model: MachineModel = CURIE,
                num_masters: int | None = None,
                repeats: int = 2) -> ScalingRow:
    """Solve and convert measurements into one table row.

    The local phases are re-timed *repeats* times and the best (minimum)
    is kept — the standard defence against single-core scheduler noise
    on measurements in the millisecond range.
    """
    from ..core.ras import OneLevelRAS
    from ..core.geneo import compute_deflation
    import time as _time

    N = solver.decomposition.num_subdomains
    if num_masters is None:
        num_masters = max(1, N // 8)
    report = solver.solve(tol=tol, restart=restart, maxiter=maxiter)
    fact_times = list(solver.one_level.factor_times)
    defl_times = list(getattr(solver, "deflation_times",
                              [0.0] * N)) or [0.0] * N
    nev = int(solver.nu.max()) if solver.nu.size else 0
    for _ in range(max(0, repeats - 1)):
        redo = OneLevelRAS(solver.decomposition,
                           backend=solver.one_level.backend)
        fact_times = np.minimum(fact_times, redo.factor_times).tolist()
        if nev:
            redo_defl = []
            for s in solver.decomposition.subdomains:
                t0 = _time.perf_counter()
                compute_deflation(s, nev=nev, seed=s.index)
                redo_defl.append(_time.perf_counter() - t0)
            defl_times = np.minimum(defl_times, redo_defl).tolist()
    fact = _robust_max(fact_times)
    defl = _robust_max(defl_times)
    t_seq = solver.timer.seconds("solution")
    comm = iteration_comm_time(solver, model, num_masters)
    solution = t_seq / N + report.iterations * comm
    return ScalingRow(N=N, factorization=fact, deflation=defl,
                      solution=solution, iterations=report.iterations,
                      dofs=solver.problem.space.num_dofs)


def speedup(rows: list[ScalingRow]) -> np.ndarray:
    """Total-time speedup relative to the smallest decomposition."""
    base = rows[0].total
    return np.array([base / r.total for r in rows])


def weak_efficiency(rows: list[ScalingRow]) -> np.ndarray:
    """The paper's weak-scaling metric:
    (t₀ · dof_N) / (t_N · dof₀ · (N/N₀))."""
    base = rows[0]
    out = []
    for r in rows:
        out.append((base.total * r.dofs) /
                   (r.total * base.dofs * (r.N / base.N)))
    return np.array(out)


# ----------------------------------------------------------------------
# Figure-11 report: the coarse operator
# ----------------------------------------------------------------------

@dataclass
class CoarseReport:
    """One row of the figure-11 table."""

    N: int
    P: int
    dim_e: int
    avg_neighbors: float
    nnz_factor: int
    time: float


def coarse_operator_report(solver: SchwarzSolver, *, num_masters: int,
                           nonuniform: bool = False,
                           strategy: str = "dense",
                           model: MachineModel = CURIE) -> CoarseReport:
    """Assemble E over the simulated MPI (algorithms 1–2) and report the
    figure-11 columns with a modelled assembly + factorization time.

    *strategy* selects the factorization cost model: ``dense`` prices
    the masters' fan-out Cholesky (dim³/(3P) on the critical path),
    ``sparse`` the MUMPS-regime sparse direct (Σ fill² ≈ nnz(L)²/dim),
    ``multilevel`` the level-2 local factorizations of the inexact
    solve.  The assembly communication is metered, not modelled.
    """
    from ..core.spmd import assemble_coarse_spmd
    from ..mpi import Meter, run_spmd
    from ..solvers import SparseLDL, reverse_cuthill_mckee

    dec = solver.decomposition
    space = solver.deflation
    N = dec.num_subdomains
    meter = Meter(N)

    def rank_main(comm):
        assemble_coarse_spmd(comm, dec, space, num_masters,
                             nonuniform=nonuniform)
        return None

    run_spmd(N, rank_main, meter=meter)
    comm_time = model.model_meter(meter, nranks=max(2, N // num_masters))
    dim_e = solver.coarse_dim
    # fill of a *sparse* factorization of E (what MUMPS/PWSMP would store)
    E = solver.coarse.E
    ldl = SparseLDL(E, perm=reverse_cuthill_mckee(E),
                    shift=1e-12 * abs(E.diagonal()).max())
    if strategy == "dense":
        # masters factorize dense panels: ~ (dim_e)³/(3P) flops on the
        # critical path (fan-out Cholesky)
        fact_time = model.compute(dim_e ** 3 / (3.0 * num_masters))
        nnz_used = ldl.nnz_factor
    elif strategy == "sparse":
        fact_time = model.compute(
            2.0 * ldl.nnz_factor ** 2 / max(dim_e, 1) / num_masters)
        nnz_used = ldl.nnz_factor
    elif strategy == "multilevel":
        from ..core.coarse_strategies import MultilevelCoarseSolve
        fact = solver.coarse.factorization
        nnz_used = fact.nnz_factor \
            if isinstance(fact, MultilevelCoarseSolve) else ldl.nnz_factor
        # level-2 local factorizations run concurrently over the parts
        parts = getattr(fact, "num_parts", max(2, N // 8))
        loc = nnz_used / max(parts, 1)
        fact_time = model.compute(
            2.0 * loc * loc / max(dim_e / max(parts, 1), 1.0))
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return CoarseReport(
        N=N, P=num_masters, dim_e=dim_e,
        avg_neighbors=float(dec.neighbor_counts().mean()),
        nnz_factor=nnz_used,
        time=comm_time + fact_time)
