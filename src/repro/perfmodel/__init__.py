"""Performance modelling: α–β machine model + scaling harness."""

from .coarse_costs import (
    CoarseCost,
    coarse_problem_shape,
    scaleout_table,
    strategy_cost,
)
from .extrapolate import PowerLaw, StrongScalingModel, fit_power_law
from .machine import CURIE, MachineModel
from .scaling import (
    CoarseReport,
    ScalingRow,
    coarse_operator_report,
    iteration_comm_time,
    measure_row,
    speedup,
    weak_efficiency,
)

__all__ = [
    "CoarseCost",
    "coarse_problem_shape",
    "strategy_cost",
    "scaleout_table",
    "PowerLaw",
    "StrongScalingModel",
    "fit_power_law",
    "MachineModel",
    "CURIE",
    "ScalingRow",
    "CoarseReport",
    "measure_row",
    "iteration_comm_time",
    "coarse_operator_report",
    "speedup",
    "weak_efficiency",
]
