"""Performance modelling: α–β machine model + scaling harness."""

from .extrapolate import PowerLaw, StrongScalingModel, fit_power_law
from .machine import CURIE, MachineModel
from .scaling import (
    CoarseReport,
    ScalingRow,
    coarse_operator_report,
    iteration_comm_time,
    measure_row,
    speedup,
    weak_efficiency,
)

__all__ = [
    "PowerLaw",
    "StrongScalingModel",
    "fit_power_law",
    "MachineModel",
    "CURIE",
    "ScalingRow",
    "CoarseReport",
    "measure_row",
    "iteration_comm_time",
    "coarse_operator_report",
    "speedup",
    "weak_efficiency",
]
