"""Iterative substructuring: Schur complement + Neumann–Neumann + coarse.

The paper stresses that its coarse-operator framework is not tied to
overlapping methods: *"in the context of non-overlapping methods, the
sparsity pattern of E is typically more dense … This can be handled by
our framework"* (§3.1), and the conclusion announces non-overlapping
experiments in solid mechanics.  This module implements the classical
non-overlapping pipeline so that claim is exercised end to end:

* the mesh's non-overlapping partition induces interior (I) and
  interface (Γ) dofs per subdomain;
* each subdomain eliminates its interior:
  ``S_i = A_ΓΓ^(i) − A_ΓI^(i) (A_II^(i))⁻¹ A_IΓ^(i)`` — computed with the
  package's local direct solvers;
* the global interface problem ``S u_Γ = g`` (S = Σ R_iᵀ S_i R_i) is
  solved by PCG with the **Neumann–Neumann** preconditioner
  ``M⁻¹ = Σ R_iᵀ D_i S_i⁺ D_i R_i`` (multiplicity-scaled, pseudo-inverse
  for floating subdomains);
* an optional **coarse level** deflates the D-weighted per-subdomain
  constants (the balancing/BDD coarse space) through the *same*
  :class:`~repro.core.abstract.AbstractDeflation` machinery used for the
  overlapping method — with the denser, distance-2 block pattern of E
  that the paper describes;
* interiors are back-substituted.

A composition lesson surfaced by the benchmarks: the A-DEF1 form that
the paper (rightly) prefers for RAS interacts poorly with Neumann-
Neumann, whose difficulty sits in the *upper* part of the preconditioned
spectrum; the classical **balanced** (BNN) composition
``Q + (I − QS) M (I − SQ)`` is used here instead, together with
stiffness-scaled counting functions — both standard in the BDD
literature and both necessary on high-contrast coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..common.errors import DecompositionError
from ..core.abstract import AbstractDeflation
from ..dd.dofmap import map_vector_dofs
from ..dd.problem import Problem
from ..krylov import gmres
from ..solvers import factorize


@dataclass
class SchurSubdomain:
    """One non-overlapping subdomain's Schur data."""

    index: int
    gamma_global: np.ndarray        # global reduced dofs of my interface
    interior_global: np.ndarray
    S: np.ndarray                   # dense local Schur complement
    S_solve: object                 # (pseudo-)inverse apply for S_i
    d: np.ndarray                   # interface multiplicity weights
    A_II_factor: object
    A_IG: sp.csr_matrix
    b_I: np.ndarray
    b_G: np.ndarray


class SchurComplementSolver:
    """Non-overlapping substructuring solver.

    Parameters
    ----------
    problem:
        The global :class:`~repro.dd.problem.Problem` (scaling is
        ignored — the Schur path builds its own operators).
    part:
        Per-cell subdomain ids.
    coarse:
        ``"none"``, ``"constants"`` (the classical balancing coarse
        space — adequate for mild coefficients) or ``"geneo"`` (per-
        subdomain low eigenvectors of S_i, the spectral coarse space the
        paper's approach brings to non-overlapping methods).
    nev:
        Eigenvectors per subdomain for ``coarse="geneo"``.
    """

    def __init__(self, problem: Problem, part: np.ndarray, *,
                 coarse: str = "constants", nev: int = 4,
                 backend: str = "superlu"):
        if coarse not in ("none", "constants", "geneo"):
            raise DecompositionError(f"unknown coarse option {coarse!r}")
        self.nev = int(nev)
        if problem.scaling is not None:
            raise DecompositionError(
                "SchurComplementSolver expects an unscaled Problem")
        self.problem = problem
        self.part = np.asarray(part, dtype=np.int64)
        self.coarse_kind = coarse
        self.backend = backend
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        problem = self.problem
        mesh, form, gspace = problem.mesh, problem.form, problem.space
        N = int(self.part.max()) + 1
        self.N = N
        b_full = problem.rhs()

        # ownership count per reduced dof -> interface = multiplicity > 1
        owners = np.zeros(problem.num_free, dtype=np.int64)
        sub_data = []
        for i in range(N):
            cells = np.flatnonzero(self.part == i)
            smesh, vmap, cmap = mesh.extract_cells(cells)
            space = form.make_space(smesh)
            gmap = map_vector_dofs(space, gspace, vmap, cmap)
            A_loc = form.assemble_matrix(space, cell_map=cmap)
            reduced = problem.free_lookup[gmap]
            keep = np.flatnonzero(reduced >= 0)
            A_loc = A_loc[keep][:, keep].tocsr()
            dofs = reduced[keep]
            owners[dofs] += 1
            sub_data.append((dofs, A_loc))

        interface_mask = owners > 1
        self.gamma_dofs = np.flatnonzero(interface_mask)
        self.n_gamma = self.gamma_dofs.size
        if self.n_gamma == 0:
            raise DecompositionError(
                "partition produced no interface dofs (single subdomain?)")
        gamma_index = np.full(problem.num_free, -1, dtype=np.int64)
        gamma_index[self.gamma_dofs] = np.arange(self.n_gamma)

        self.subdomains: list[SchurSubdomain] = []
        g = np.zeros(self.n_gamma)
        for i, (dofs, A_loc) in enumerate(sub_data):
            is_g = interface_mask[dofs]
            gi = np.flatnonzero(is_g)
            ii = np.flatnonzero(~is_g)
            A_II = A_loc[ii][:, ii].tocsc()
            A_IG = A_loc[ii][:, gi].tocsr()
            A_GG = A_loc[gi][:, gi].toarray()
            fac = factorize(A_II, self.backend)
            # dense Schur complement (interfaces are small)
            X = fac.solve(A_IG.toarray()) if A_IG.shape[1] else \
                np.zeros((ii.size, 0))
            S = A_GG - A_IG.T @ X
            S = 0.5 * (S + S.T)
            # condensed rhs: g = b_Γ − Σ_i A_ΓI^(i) (A_II^(i))⁻¹ b_I^(i);
            # the b_Γ term is added once globally below (interface dofs
            # are shared — only the elimination term is per-subdomain)
            b_I = b_full[dofs[ii]]
            b_G = b_full[dofs[gi]]
            if ii.size:
                np.add.at(g, gamma_index[dofs[gi]],
                          -(A_IG.T @ fac.solve(b_I)))
            # stiffness-weighted counting functions (the standard cure
            # for coefficient jumps in Neumann-Neumann/BDD): weight each
            # subdomain's share of an interface dof by its local
            # diagonal stiffness — reduces to 1/multiplicity when the
            # coefficient is homogeneous
            d = A_loc.diagonal()[gi].copy()
            self.subdomains.append(SchurSubdomain(
                index=i, gamma_global=gamma_index[dofs[gi]],
                interior_global=dofs[ii], S=S,
                S_solve=_pinv_solver(S), d=d,
                A_II_factor=fac, A_IG=A_IG, b_I=b_I, b_G=b_G))
        g += b_full[self.gamma_dofs]
        self.g = g
        # normalise the stiffness weights: Σ_i R_iᵀ d_i = 1 on Γ
        acc = np.zeros(self.n_gamma)
        for sub in self.subdomains:
            np.add.at(acc, sub.gamma_global, sub.d)
        for sub in self.subdomains:
            sub.d = sub.d / acc[sub.gamma_global]

        # optional coarse level through the abstract-deflation machinery
        self.deflation = None
        if self.coarse_kind == "constants":
            Z = np.zeros((self.n_gamma, self.N))
            for s in self.subdomains:
                Z[s.gamma_global, s.index] = s.d
            nrm = np.linalg.norm(Z, axis=0)
            nrm[nrm < 1e-300] = 1.0
            Z = Z / nrm                   # condition E across κ jumps
            self.deflation = AbstractDeflation(
                self.schur_matvec, Z, M=self.neumann_neumann)
        elif self.coarse_kind == "geneo":
            # the GenEO pencil transplanted to the interface:
            # D_i S_i D_i v = μ S_i v — for Neumann-Neumann the harmful
            # modes are the LARGEST generalized eigenvalues of (S, M)
            # (coefficient-jump modes blow up the upper spectrum), which
            # correspond to the SMALLEST μ of this pencil; cf. the GenEO
            # construction for BDD/FETI (Spillane et al.)
            import scipy.linalg as sla
            cols = []
            for s in self.subdomains:
                B = (s.d[:, None] * s.S) * s.d[None, :]
                B = 0.5 * (B + B.T)
                sigma = 1e-10 * max(float(np.abs(s.S).max()), 1e-300)
                M_reg = s.S + sigma * np.eye(s.S.shape[0])
                mu, V = sla.eigh(B, M_reg)
                order = np.argsort(np.abs(mu))    # smallest |μ|
                k = min(self.nev, V.shape[1])
                vecs = V[:, order[:k]]
                block = np.zeros((self.n_gamma, k))
                block[s.gamma_global] = s.d[:, None] * vecs
                nrm = np.linalg.norm(block, axis=0)
                nrm[nrm < 1e-300] = 1.0
                cols.append(block / nrm)
            Z = np.column_stack(cols)
            self.deflation = AbstractDeflation(
                self.schur_matvec, Z, M=self.neumann_neumann)

    # ------------------------------------------------------------------
    def schur_matvec(self, u: np.ndarray) -> np.ndarray:
        """S u = Σ_i R_iᵀ S_i R_i u (subdomain-local applies)."""
        out = np.zeros_like(u)
        for s in self.subdomains:
            np.add.at(out, s.gamma_global, s.S @ u[s.gamma_global])
        return out

    def neumann_neumann(self, r: np.ndarray) -> np.ndarray:
        """M⁻¹ r = Σ_i R_iᵀ D_i S_i⁺ D_i R_i r."""
        out = np.zeros_like(r)
        for s in self.subdomains:
            loc = s.d * s.S_solve(s.d * r[s.gamma_global])
            np.add.at(out, s.gamma_global, loc)
        return out

    # ------------------------------------------------------------------
    def balanced_preconditioner(self, r: np.ndarray) -> np.ndarray:
        """The balancing composition (BNN): Q r + (I − QS) M (I − SQ) r —
        the classical hybrid form for Neumann-Neumann coarse spaces
        (symmetric, unlike A-DEF1 which is tailored to RAS)."""
        Q = self.deflation.correction
        w = Q(r)
        v = r - self.schur_matvec(w)
        z = self.neumann_neumann(v)
        z = z - Q(self.schur_matvec(z))
        return z + w

    def solve(self, *, tol: float = 1e-8, maxiter: int = 400):
        """Solve the condensed interface problem, then back-substitute.

        Returns ``(x_full, interface_iterations)``.
        """
        if self.deflation is not None:
            res = gmres(self.schur_matvec, self.g,
                        M=self.balanced_preconditioner, tol=tol,
                        restart=80, maxiter=maxiter)
        else:
            res = gmres(self.schur_matvec, self.g,
                        M=self.neumann_neumann, tol=tol,
                        restart=80, maxiter=maxiter)
        u_gamma = res.x
        # back-substitute interiors: u_I = A_II⁻¹ (b_I − A_IΓ u_Γ)
        x = np.zeros(self.problem.num_free)
        x[self.gamma_dofs] = u_gamma
        for s in self.subdomains:
            if s.interior_global.size == 0:
                continue
            rhs = s.b_I - s.A_IG @ u_gamma[s.gamma_global]
            x[s.interior_global] = s.A_II_factor.solve(rhs)
        return self.problem.extend(x), res.iterations

    def coarse_pattern_density(self) -> float:
        """Fraction of nonzero blocks in E — denser than the overlapping
        method's pattern (the paper's §3.1 remark)."""
        if self.deflation is None:
            raise DecompositionError("no coarse level configured")
        E = np.asarray(self.deflation.E.todense())
        blocks = E.reshape(self.N, 1, self.N, 1)
        nz = np.abs(blocks).max(axis=(1, 3)) > 1e-14 * abs(E).max()
        return float(nz.mean())


def _pinv_solver(S: np.ndarray):
    """(Pseudo-)inverse apply for a local Schur complement.

    Floating subdomains have singular S_i (constants in the kernel for
    diffusion, rigid modes for elasticity); the Neumann–Neumann theory
    uses any pseudo-inverse there.
    """
    import scipy.linalg as sla
    w, V = sla.eigh(S)
    cut = 1e-10 * max(float(np.abs(w).max()), 1e-300)
    keep = w > cut
    Vk = V[:, keep]
    winv = 1.0 / w[keep]

    def solve(b):
        return Vk @ (winv * (Vk.T @ b))

    return solve
