"""Non-overlapping (substructuring) methods — the paper's §3.1 extension."""

from .schur import SchurComplementSolver, SchurSubdomain

__all__ = ["SchurComplementSolver", "SchurSubdomain"]
