#!/usr/bin/env python3
"""3D heterogeneous elasticity on the tripod (paper fig. 6 top).

The paper's 3D strong-scaling geometry is a tripod: a column standing on
three legs, meshed by Gmsh, with two elastic phases.  Here the tripod is
carved from a structured tetrahedral mesh, loaded vertically on its top
face and clamped under its feet; the solve uses P2 elements and the
two-level GenEO preconditioner, and exports mesh + displacement +
partition as legacy VTK for ParaView.

Run:  python examples/tripod_elasticity_3d.py
"""

import numpy as np

from repro import SchwarzSolver
from repro.fem import assemble_boundary_load, layered_elasticity
from repro.fem.forms import ElasticityForm
from repro.mesh import tripod_3d, write_vtk


def main():
    mesh = tripod_3d(3)
    print(f"tripod mesh: {mesh.num_cells} tets, {mesh.num_vertices} "
          f"vertices, volume {mesh.total_volume():.2f}")

    lam, mu = layered_elasticity(mesh, n_layers=5, axis=2)
    form = ElasticityForm(degree=2, lam=lam, mu=mu,
                          f=np.array([0.0, 0.0, -9.81]))
    clamp = lambda x: x[:, 2] < 1e-9            # noqa: E731  (the feet)

    solver = SchwarzSolver(mesh, form, num_subdomains=8, delta=1, nev=16,
                           dirichlet=clamp, seed=0)
    print(f"P2 elasticity: {solver.problem.space.num_dofs} dofs, "
          f"8 subdomains, dim(E) = {solver.coarse_dim}")

    # vertical load on the column's top face
    top = float(mesh.vertices[:, 2].max())
    g = assemble_boundary_load(solver.problem.space,
                               np.array([0.0, 0.0, -1e5]),
                               where=lambda x: x[:, 2] > top - 1e-9)
    b = solver.problem.rhs()
    scale = solver.problem.scale
    gr = g[solver.problem.free]
    b = b + (gr if scale is None else scale * gr)

    report = solver.solve(b, tol=1e-6, restart=40, maxiter=300)
    print(f"A-DEF1 GMRES(40): {report.iterations} iterations, "
          f"converged={report.converged}")
    zeros = [int((np.abs(g.eigenvalues) < 1e-8).sum())
             for g in solver.geneo_results]
    print(f"rigid modes captured per subdomain (6 ⇔ floating in 3D): "
          f"{zeros}")

    # export for ParaView
    nv = mesh.num_vertices
    disp = report.x.reshape(-1, 3)[:nv]
    part_cells = solver.decomposition.part.astype(float)
    write_vtk(mesh, "tripod_solution.vtk",
              point_data={"displacement": disp},
              cell_data={"partition": part_cells,
                         "mu": np.asarray(mu, dtype=float)})
    print("wrote tripod_solution.vtk "
          f"(max |u| = {np.abs(disp).max():.3e})")


if __name__ == "__main__":
    main()
