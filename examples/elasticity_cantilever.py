#!/usr/bin/env python3
"""Heterogeneous linear elasticity on a cantilever beam (paper fig. 6/7).

A long beam of alternating hard (steel-like, E = 2·10¹¹, ν = 0.25) and
soft (rubber-like, E = 10⁷, ν = 0.45) layers is clamped on its left face
and loaded vertically on its top face.  The coefficient jump of 2·10⁴
makes one-level Schwarz stall (the paper's fig. 7: GMRES(40) with RAS is
"not converged after 600 seconds"); GenEO deflation restores mesh- and
contrast-independent convergence.

Run:  python examples/elasticity_cantilever.py
"""

import numpy as np

from repro import SchwarzSolver
from repro.common.asciiplot import semilogy
from repro.fem import assemble_boundary_load, layered_elasticity
from repro.fem.forms import ElasticityForm
from repro.mesh import cantilever_2d


def main():
    mesh = cantilever_2d(8, length=8.0, height=1.0)
    lam, mu = layered_elasticity(mesh, n_layers=8)
    form = ElasticityForm(degree=2, lam=lam, mu=mu,
                          f=np.array([0.0, -9.81]))
    clamp = lambda x: x[:, 0] < 1e-9             # noqa: E731

    solver = SchwarzSolver(mesh, form, num_subdomains=16, delta=1, nev=12,
                           dirichlet=clamp)
    print(f"mesh: {mesh.num_cells} triangles, "
          f"{solver.problem.space.num_dofs} dofs, "
          f"N = 16 subdomains, ν = 12 GenEO vectors each")

    # add the paper's surface traction: vertical load on the top face
    g = assemble_boundary_load(solver.problem.space,
                               np.array([0.0, -1e4]),
                               where=lambda x: x[:, 1] > 1.0 - 1e-9)
    b = solver.problem.rhs()
    scale = solver.problem.scale
    g_reduced = g[solver.problem.free]
    b = b + (g_reduced if scale is None else scale * g_reduced)

    report = solver.solve(b, tol=1e-6, restart=40, maxiter=400)
    print(f"two-level A-DEF1, GMRES(40): {report.iterations} iterations, "
          f"converged={report.converged}")

    basic = SchwarzSolver(mesh, form, num_subdomains=16, delta=1, levels=1,
                          dirichlet=clamp)
    report1 = basic.solve(b, tol=1e-6, restart=40, maxiter=400)
    print(f"one-level RAS,    GMRES(40): {report1.iterations} iterations, "
          f"converged={report1.converged} "
          f"(stalls at {report1.krylov.final_residual:.1e})")

    print("\n" + semilogy({
        "P_RAS (one-level)": report1.residuals,
        "P_A-DEF1 (GenEO)": report.residuals,
    }))

    # tip deflection: mean vertical displacement on the right face
    coords = solver.problem.space.scalar_dof_coordinates
    tip = np.flatnonzero(coords[:, 0] > 8.0 - 1e-9)
    uy = report.x[tip * 2 + 1]
    print(f"\nmean tip deflection u_y = {uy.mean():.4e} m")

    # count rigid-body modes captured per floating subdomain
    zeros = [int((np.abs(g.eigenvalues) < 1e-8).sum())
             for g in solver.geneo_results]
    print(f"zero GenEO eigenvalues per subdomain (3 ⇔ floating): {zeros}")


if __name__ == "__main__":
    main()
