#!/usr/bin/env python3
"""Quickstart: solve a heterogeneous diffusion problem with the two-level
GenEO-Schwarz preconditioner and compare against the one-level method.

This is figure 1 of the paper in miniature: the "basic" preconditioner
(one-level RAS) is oblivious to the κ contrast and crawls; the "advanced"
one (A-DEF1 with a GenEO coarse space) converges in a few tens of
iterations regardless of the 3·10⁶ coefficient jump.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SchwarzSolver
from repro.common.asciiplot import semilogy
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import unit_square


def main():
    # -- problem: -∇·(κ∇u) = 1 on the unit square, u = 0 on the boundary,
    #    κ jumping between 1 and 3e6 (channels + inclusions, fig. 9)
    mesh = unit_square(48)
    kappa = channels_and_inclusions(mesh, seed=42)
    form = DiffusionForm(degree=2, kappa=kappa, f=1.0)
    print(f"mesh: {mesh.num_cells} triangles, "
          f"contrast κ_max/κ_min = {kappa.max() / kappa.min():.1e}")

    # -- "advanced" two-level solver: 16 subdomains, 8 GenEO vectors each
    solver = SchwarzSolver(mesh, form, num_subdomains=16, delta=2, nev=8)
    report = solver.solve(tol=1e-8)
    print(f"\ntwo-level A-DEF1 : {report.iterations:3d} iterations "
          f"(converged={report.converged}, dim(E)={report.coarse_dim})")
    for phase, secs in solver.timer.as_dict().items():
        print(f"   {phase:<14s} {secs:6.2f} s")

    # -- "basic" one-level RAS on the same decomposition
    basic = SchwarzSolver(mesh, form, num_subdomains=16, delta=2, levels=1)
    report1 = basic.solve(tol=1e-8, maxiter=200)
    print(f"one-level RAS    : {report1.iterations:3d} iterations "
          f"(converged={report1.converged})")

    print("\n" + semilogy({
        '"Basic" preconditioning (RAS)': report1.residuals,
        '"Advanced" preconditioning (A-DEF1/GenEO)': report.residuals,
    }, ylabel="relative residual"))

    # -- sanity: compare with a direct solve
    import scipy.sparse.linalg as spla
    xref = solver.problem.extend(
        spla.spsolve(solver.problem.matrix().tocsc(), solver.problem.rhs()))
    err = np.linalg.norm(report.x - xref) / np.linalg.norm(xref)
    print(f"\n‖x − x_direct‖/‖x_direct‖ = {err:.2e}")


if __name__ == "__main__":
    main()
