#!/usr/bin/env python3
"""Non-overlapping substructuring (the paper's §3.1 extension).

The same coarse-operator machinery applied to a Schur-complement method:
interiors are eliminated subdomain-by-subdomain with the local direct
solvers, the interface problem is solved with a Neumann–Neumann
preconditioner (stiffness-scaled counting functions), and a coarse level
is deflated through the abstract-deflation framework — with the denser
distance-2 block pattern the paper describes for non-overlapping methods.

Run:  python examples/substructuring.py
"""

import numpy as np
import scipy.sparse.linalg as spla

from repro.common.asciiplot import table
from repro.dd import Decomposition, Problem
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import unit_square
from repro.partition import partition_mesh
from repro.substructuring import SchurComplementSolver


def main():
    mesh = unit_square(24)
    kappa = channels_and_inclusions(mesh, seed=2)
    prob = Problem(mesh, DiffusionForm(degree=2, kappa=kappa))
    part = partition_mesh(mesh, 8, seed=1)
    xref = prob.extend(spla.spsolve(prob.matrix().tocsc(), prob.rhs()))

    rows = []
    for coarse, kw in (("none", {}), ("constants", {}),
                       ("geneo", {"nev": 4})):
        s = SchurComplementSolver(prob, part, coarse=coarse, **kw)
        x, its = s.solve(tol=1e-8)
        err = np.linalg.norm(x - xref) / np.linalg.norm(xref)
        dim = s.deflation.E.shape[0] if s.deflation is not None else 0
        rows.append([coarse, s.n_gamma, dim, its, f"{err:.1e}"])
    print(table(["coarse space", "interface dofs", "dim(E)",
                 "interface #it", "error vs direct"], rows,
                title="Schur complement + balanced Neumann-Neumann "
                      "(8 subdomains, contrast 3e6)"))

    s = SchurComplementSolver(prob, part, coarse="constants")
    dec = Decomposition(prob, part, delta=1)
    overl = sum(len(sub.neighbors) + 1
                for sub in dec.subdomains) / dec.num_subdomains ** 2
    print(f"\nE block density: {s.coarse_pattern_density():.2f} "
          f"(non-overlapping) vs {overl:.2f} (overlapping) — the denser "
          f"pattern of paper §3.1,\nhandled by the same assembly "
          f"framework.")


if __name__ == "__main__":
    main()
