#!/usr/bin/env python3
"""§3.5: communication-avoiding multilevel preconditioning.

Runs the same two-level solve three ways over the simulated MPI and
counts *blocking global synchronisations* on the critical path:

1. classical GMRES — one dot-batch + one norm reduction per iteration;
2. sequential p1-GMRES — reductions posted non-blocking (overlappable);
3. the paper's **fused** p1-GMRES — the reduction contributions ride the
   coarse-correction Gather/Scatter and one Iallreduce between the
   masters overlaps the coarse solve: zero extra global syncs/iteration.

Run:  python examples/pipelined_gmres.py
"""

from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.core.spmd import solve_spmd
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import unit_square
from repro.mpi import Meter, Tracer


def main():
    mesh = unit_square(32)
    form = DiffusionForm(degree=2,
                         kappa=channels_and_inclusions(mesh, seed=5))
    solver = SchwarzSolver(mesh, form, num_subdomains=8, nev=8)
    b = solver.problem.rhs()
    dec, space = solver.decomposition, solver.deflation

    rows = []
    tracer = None
    for label, method in (("classical GMRES", "gmres"),
                          ("fused p1-GMRES (paper §3.5)", "fused-p1")):
        meter = Meter(dec.num_subdomains)
        meter.tracer = Tracer(dec.num_subdomains)
        _, its, res, _ = solve_spmd(dec, space, b, num_masters=2,
                                    method=method, tol=1e-8, maxiter=100,
                                    meter=meter)
        stats = meter.summary()
        rows.append([label, its, f"{res[-1]:.1e}",
                     stats["max_global_syncs"], stats["messages"]])
        tracer = meter.tracer
    print(table(["method", "#it", "final residual",
                 "blocking global syncs", "p2p messages"], rows,
                title="Two-level solve over simulated MPI "
                      "(8 ranks, 2 masters)"))
    print("\nThe fused pipeline performs the same Krylov iterations but "
          "replaces per-iteration\nblocking reductions with values "
          "piggybacked on the coarse-solve Gather/Scatter\nplus one "
          "overlapped Iallreduce on masterComm (paper §3.5).")
    print("\nper-rank execution timeline of the fused run "
          "(masters show coarse solves):")
    print(tracer.gantt(width=70, max_ranks=8))


if __name__ == "__main__":
    main()
