#!/usr/bin/env python3
"""Nonlinear heterogeneous diffusion (the paper's outlook, §4).

Solves the quasilinear problem −∇·(κ(x,u)∇u) = f with κ(x,u) =
κ₀(x)(1 + β u²) — a solution-dependent conductivity on top of a
high-contrast background — by Picard iteration, reusing the two-level
GenEO machinery for every frozen-coefficient linear solve.

Compares the three coarse-space strategies across Picard steps:
rebuild (GenEO every step), reuse (GenEO once, re-assemble E), freeze
(keep the whole first preconditioner).

Run:  python examples/nonlinear_diffusion.py
"""

import numpy as np

from repro.common.asciiplot import table
from repro.mesh import unit_square
from repro.nonlinear import PicardSolver


def kappa_of_u(u_cells, centroids):
    """High-contrast channel + solution-dependent enhancement."""
    base = np.where(np.abs(centroids[:, 1] - 0.5) < 0.08, 1e4, 1.0)
    return base * (1.0 + 100.0 * u_cells ** 2)


def main():
    mesh = unit_square(32)
    rows = []
    for strategy in ("rebuild", "reuse", "freeze"):
        solver = PicardSolver(mesh, kappa_of_u, f=10.0,
                              num_subdomains=8, nev=8, coarse=strategy)
        rep = solver.solve(picard_tol=1e-8, max_picard=40)
        rows.append([strategy, rep.picard_iterations,
                     rep.total_linear_iterations,
                     f"{rep.timer.seconds('deflation'):.2f} s",
                     rep.converged])
        print(f"{strategy:8s}: {rep.picard_iterations} Picard steps, "
              f"linear its/step = {rep.linear_iterations}")
    print()
    print(table(["coarse strategy", "Picard steps", "total linear its",
                 "GenEO time", "converged"], rows,
                title="nonlinear diffusion: reuse of the GenEO coarse "
                      "space across Picard steps"))
    print("\n'reuse' pays the eigensolves once and keeps the linear "
          "iteration counts\nessentially flat — the workflow the paper's "
          "conclusion anticipates for\nnonlinear mechanics.")


if __name__ == "__main__":
    main()
