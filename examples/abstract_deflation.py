#!/usr/bin/env python3
"""Abstract deflation beyond domain decomposition (§3 + conclusion).

Two demonstrations that the coarse-operator framework is agnostic to
where the deflation vectors come from:

1. **Generic operator** (the cosmology use-case the paper cites): an
   ill-conditioned SPD system with a handful of tiny eigenvalues is
   cured by deflating approximations of those eigenvectors — no mesh, no
   subdomains.
2. **A posteriori Ritz harvest** (the paper's conclusion): instead of
   solving local GenEO eigenproblems up front, run a few one-level
   Arnoldi steps, extract harmonic Ritz vectors of the slow modes, and
   build the coarse space from them.

Run:  python examples/abstract_deflation.py
"""

import numpy as np
import scipy.sparse as sp

from repro.common.asciiplot import table
from repro.core import (
    AbstractDeflation,
    CoarseOperator,
    OneLevelRAS,
    TwoLevelADEF1,
    ritz_deflation,
)
from repro.dd import Decomposition, Problem
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.krylov import cg, deflated_cg, gmres
from repro.mesh import unit_square
from repro.partition import partition_mesh


def generic_operator_demo():
    rng = np.random.default_rng(7)
    n = 400
    Q = np.linalg.qr(rng.standard_normal((n, n)))[0]
    eigs = np.concatenate([[1e-6, 1e-5, 1e-4, 1e-3],
                           np.linspace(0.5, 2.0, n - 4)])
    A = sp.csr_matrix(Q @ np.diag(eigs) @ Q.T)
    b = rng.standard_normal(n)
    # noisy approximations of the 4 bad eigenvectors
    Z = Q[:, :4] + 0.01 * rng.standard_normal((n, 4))

    plain = cg(A, b, tol=1e-10, maxiter=2000)
    defl = deflated_cg(A, b, Z, tol=1e-10, maxiter=2000)
    adef = gmres(A, b, M=AbstractDeflation(A, Z).apply, tol=1e-10,
                 restart=60, maxiter=2000)
    print(table(["method", "#it", "converged"],
                [["plain CG", plain.iterations, plain.converged],
                 ["deflated CG (Nicolaides/Frank-Vuik)", defl.iterations,
                  defl.converged],
                 ["GMRES + abstract A-DEF1", adef.iterations,
                  adef.converged]],
                title=f"Generic SPD operator, κ(A) = {2.0 / 1e-6:.0e}"))


def ritz_harvest_demo():
    mesh = unit_square(32)
    form = DiffusionForm(degree=2,
                         kappa=channels_and_inclusions(mesh, seed=2))
    prob = Problem(mesh, form, scaling="jacobi")
    part = partition_mesh(mesh, 8, seed=0)
    dec = Decomposition(prob, part, delta=2)
    ras = OneLevelRAS(dec)
    A, b = prob.matrix(), prob.rhs()

    one = gmres(A, b, M=ras.apply, tol=1e-8, restart=60, maxiter=300)
    space = ritz_deflation(dec, ras, b, n_vectors=12)
    two = gmres(A, b, M=TwoLevelADEF1(ras, CoarseOperator(space)).apply,
                tol=1e-8, restart=60, maxiter=300)
    print()
    print(table(["method", "coarse dim", "#it"],
                [["one-level RAS", 0, one.iterations],
                 ["A-DEF1 with a-posteriori Ritz vectors", space.m,
                  two.iterations]],
                title="Ritz-harvested coarse space "
                      "(no local eigenproblems solved)"))


if __name__ == "__main__":
    generic_operator_demo()
    ritz_harvest_demo()
