#!/usr/bin/env python3
"""3D flow through porous media (the paper's weak-scaling workload).

Darcy-type scalar diffusion on the unit cube with channels-and-inclusions
diffusivity (fig. 9), P2 elements (~27 nnz/row as in the paper).  The
script solves the same local problem size at two decomposition sizes to
show the iteration count staying flat — the essence of figure 10's ≈90 %
weak-scaling efficiency.

Run:  python examples/porous_media_3d.py
"""

import numpy as np

from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import refine_uniform, unit_cube


def main():
    rows = []
    # constant work per subdomain: (mesh, N) pairs sized so dofs/N ≈ const
    configs = [(unit_cube(4), 4), (refine_uniform(unit_cube(4), 1), 32)]
    for mesh, N in configs:
        kappa = channels_and_inclusions(mesh, seed=9)
        form = DiffusionForm(degree=2, kappa=kappa)
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1, nev=6)
        report = solver.solve(tol=1e-6, maxiter=300)
        rows.append([N, solver.problem.space.num_dofs,
                     solver.problem.space.num_dofs // N,
                     report.iterations, report.converged,
                     solver.coarse_dim])
        print(f"N={N:3d}: {report.iterations} iterations "
              f"({solver.problem.space.num_dofs} dofs)")
    print()
    print(table(
        ["N", "#dofs", "dofs/N", "#it", "converged", "dim(E)"], rows,
        title="Weak-scaling flavour: iterations stay flat as N grows "
              "(paper fig. 10: 13-20 its from N=256 to N=8192)"))

    # verify the solution against a direct solve on the larger problem
    mesh, N = configs[-1]
    kappa = channels_and_inclusions(mesh, seed=9)
    solver = SchwarzSolver(mesh, DiffusionForm(degree=2, kappa=kappa),
                           num_subdomains=N, delta=1, nev=6)
    report = solver.solve(tol=1e-8, maxiter=300)
    import scipy.sparse.linalg as spla
    xref = solver.problem.extend(
        spla.spsolve(solver.problem.matrix().tocsc(), solver.problem.rhs()))
    err = np.linalg.norm(report.x - xref) / np.linalg.norm(xref)
    print(f"\nvalidation vs direct solve: rel. error = {err:.2e}")


if __name__ == "__main__":
    main()
