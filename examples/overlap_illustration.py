#!/usr/bin/env python3
"""Figure 2 of the paper: growing the overlapping decomposition.

Decomposes a mesh into three subdomains (the paper uses the SC logo; we
use a rectangle) and performs two consecutive overlap extensions,
printing the layer structure and an ASCII rendering of one subdomain's
growth, plus the sparsity patterns of Z and E (figures 3–4).

Run:  python examples/overlap_illustration.py
"""

import numpy as np

from repro.common.asciiplot import sparsity
from repro.core import CoarseOperator, DeflationSpace, compute_deflation
from repro.dd import Decomposition, Problem, grow_overlap
from repro.fem.forms import DiffusionForm
from repro.mesh import interval_chain, rectangle
from repro.partition import partition_mesh


def render(mesh, marked, layers=None):
    """Crude raster of a 2D mesh: one char per cell, by layer."""
    c = mesh.cell_centroids()
    nx, ny = 60, 14
    lo, hi = mesh.vertices.min(axis=0), mesh.vertices.max(axis=0)
    grid = [["."] * nx for _ in range(ny)]
    lookup = {cid: (layers[k] if layers is not None else 0)
              for k, cid in enumerate(marked)}
    for cid in range(mesh.num_cells):
        col = min(nx - 1, int((c[cid, 0] - lo[0]) / (hi[0] - lo[0]) * nx))
        row = min(ny - 1, int((1 - (c[cid, 1] - lo[1]) / (hi[1] - lo[1]))
                              * ny))
        if cid in lookup:
            grid[row][col] = str(lookup[cid]) if layers is not None else "#"
    return "\n".join("".join(r) for r in grid)


def main():
    mesh = rectangle(30, 10, x1=3.0)
    part = partition_mesh(mesh, 3, seed=0)
    print(f"mesh with {mesh.num_cells} cells split into 3 subdomains "
          f"(sizes {[int((part == i).sum()) for i in range(3)]})\n")

    for delta in (0, 2):
        cells, layers = grow_overlap(mesh, part, 1, delta)
        print(f"subdomain 1 with delta = {delta}: {cells.size} cells "
              f"(layers 0..{layers.max()})")
        print(render(mesh, cells, layers))
        print()

    # figures 3-4: sparsity of Z and E on a 4-subdomain chain
    chain = interval_chain(24, width=2)
    cpart = np.minimum((chain.cell_centroids()[:, 0] / 6).astype(int), 3)
    prob = Problem(chain, DiffusionForm(degree=1))
    dec = Decomposition(prob, cpart, delta=1)
    Ws = [compute_deflation(s, nev=2).W for s in dec.subdomains]
    space = DeflationSpace(dec, Ws)
    print("neighbour sets O_i:",
          {s.index: s.neighbors for s in dec.subdomains})
    print("\nsparsity of the deflation matrix Z (fig. 3):")
    print(sparsity(space.explicit_z(), width=24))
    print("\nsparsity of the coarse operator E (fig. 4):")
    print(sparsity(CoarseOperator(space).E, width=24))


if __name__ == "__main__":
    main()
