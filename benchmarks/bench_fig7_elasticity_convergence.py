"""Figure 7: GMRES(40), P⁻¹_RAS vs P⁻¹_A-DEF1, heterogeneous 2D elasticity.

Paper: 1024 subdomains, relative tol 10⁻⁶; A-DEF1 converges in 28
iterations, RAS has not converged after 400+ iterations (600 s).  We run
the same contrast (E: 2·10¹¹/10⁷, ν: 0.25/0.45) on a laptop-sized
cantilever with 16 subdomains: A-DEF1 needs a few tens of iterations,
RAS stalls at O(10⁻¹).
"""

import pytest

from common import elasticity_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import semilogy


@pytest.fixture(scope="module")
def runs():
    mesh, form, clamp = elasticity_2d(n=8, degree=3)
    adv = SchwarzSolver(mesh, form, num_subdomains=16, delta=1, nev=14,
                        dirichlet=clamp, seed=0)
    r_adv = adv.solve(tol=1e-6, restart=40, maxiter=400)
    bas = SchwarzSolver(mesh, form, num_subdomains=16, delta=1, levels=1,
                        dirichlet=clamp, seed=0)
    r_bas = bas.solve(tol=1e-6, restart=40, maxiter=400)

    fig = semilogy({
        "P_RAS": r_bas.residuals,
        "P_A-DEF1": r_adv.residuals,
    }, ylabel="relative residual")
    write_result(
        "fig7_elasticity_convergence",
        "FIGURE 7 — GMRES(40) on heterogeneous 2D elasticity "
        "(E contrast 2e4, P3), 16 subdomains, tol 1e-6\n"
        f"paper (1024 subdomains): A-DEF1 28 its, RAS not converged "
        f"after 400+ its\n"
        f"here: A-DEF1 {r_adv.iterations} its "
        f"(converged={r_adv.converged}); RAS {r_bas.iterations} its "
        f"(converged={r_bas.converged}, "
        f"stalled at {r_bas.krylov.final_residual:.1e})\n" + fig)
    return adv, r_adv, bas, r_bas


def test_fig7_adef1_converges_ras_stalls(runs):
    _, r_adv, _, r_bas = runs
    assert r_adv.converged
    assert r_adv.iterations <= 80            # paper: 28 at N=1024
    assert not r_bas.converged               # paper: never converges
    assert r_bas.krylov.final_residual > 1e-3


def test_fig7_bench_geneo_deflation(runs, benchmark):
    """Kernel timed: one subdomain's GenEO eigensolve (the dominant
    setup cost of the strong-scaling table)."""
    adv, *_ = runs
    from repro.core import compute_deflation
    sub = adv.decomposition.subdomains[3]
    benchmark(compute_deflation, sub, nev=14)
