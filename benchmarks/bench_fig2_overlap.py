"""Figure 2: construction of the overlapping decomposition.

Paper: a mesh (the SC logo) decomposed into three subdomains; two
consecutive extensions (δ = 2) grow each T_i⁰ by layers of adjacent
elements.  The bench asserts the defining properties of the recursive
construction on a three-subdomain decomposition and regenerates the
layer picture in ASCII.
"""

import numpy as np
import pytest

from common import write_result
from repro.dd import grow_overlap, vertex_layers
from repro.mesh import rectangle
from repro.partition import partition_mesh


@pytest.fixture(scope="module")
def decomposition():
    mesh = rectangle(30, 10, x1=3.0)
    part = partition_mesh(mesh, 3, seed=0)
    return mesh, part


def test_fig2_delta0_is_partition(decomposition):
    mesh, part = decomposition
    sizes = []
    for i in range(3):
        cells, layers = grow_overlap(mesh, part, i, 0)
        assert np.array_equal(cells, np.flatnonzero(part == i))
        assert layers.max(initial=0) == 0
        sizes.append(cells.size)
    assert sum(sizes) == mesh.num_cells      # non-overlapping cover


def test_fig2_recursive_extension(decomposition):
    """T_i^δ = T_i^{δ-1} + all adjacent elements (the paper's recursion):
    growing twice equals growing once from the once-grown set."""
    mesh, part = decomposition
    for i in range(3):
        c2, l2 = grow_overlap(mesh, part, i, 2)
        # layer-m prefix equals an independent m-growth
        for m in (0, 1):
            cm, _ = grow_overlap(mesh, part, i, m)
            assert np.array_equal(c2[l2 <= m], cm)
        # every layer-2 cell shares a vertex with a layer<=1 cell
        prev_verts = set(mesh.cells[c2[l2 <= 1]].ravel().tolist())
        for c in c2[l2 == 2]:
            assert set(mesh.cells[c].tolist()) & prev_verts


def test_fig2_overlaps_cover_and_intersect(decomposition):
    mesh, part = decomposition
    grown = [grow_overlap(mesh, part, i, 2)[0] for i in range(3)]
    covered = np.unique(np.concatenate(grown))
    assert covered.size == mesh.num_cells or \
        covered.size >= 0.99 * mesh.num_cells
    # neighbouring subdomains share cells after extension
    assert np.intersect1d(grown[0], grown[1]).size > 0 or \
        np.intersect1d(grown[0], grown[2]).size > 0


@pytest.fixture(scope="module", autouse=True)
def write_artifact(decomposition):
    mesh, part = decomposition
    lines = ["FIGURE 2 — decomposition into 3 subdomains, delta = 0 vs 2"]
    for delta in (0, 2):
        sizes = [grow_overlap(mesh, part, i, delta)[0].size
                 for i in range(3)]
        lines.append(f"delta={delta}: subdomain cell counts {sizes} "
                     f"(sum {sum(sizes)}, mesh {mesh.num_cells})")
    cells, layers = grow_overlap(mesh, part, 1, 2)
    verts, vlayer = vertex_layers(mesh, cells, layers)
    hist = np.bincount(vlayer)
    lines.append(f"subdomain 1 node layers (chi = 1, 1/2, 0): "
                 f"{hist.tolist()}")
    write_result("fig2_overlap", "\n".join(lines))


def test_fig2_bench_overlap_growth(decomposition, benchmark):
    mesh, part = decomposition
    benchmark(grow_overlap, mesh, part, 1, 2)
