"""Shared workload builders + result recording for the benchmark suite.

Every paper experiment writes its regenerated table/figure to
``benchmarks/results/<experiment>.txt`` so that EXPERIMENTS.md can point
at concrete artefacts; pytest-benchmark additionally times one
representative kernel per experiment.

Result hygiene: every JSON payload is stamped with a ``provenance``
block — git SHA, kernel backend + precision, numpy version — so a
result file is interpretable on its own.  ``benchmarks/results/`` holds
regenerated (gitignored) artefacts; committed reference numbers go to
the tracked repo-root ``results/`` via :func:`write_tracked_json`.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import numpy as np

from repro.fem import channels_and_inclusions, layered_elasticity
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import cantilever_2d, refine_uniform, unit_cube, unit_square

RESULTS = Path(__file__).parent / "results"
#: committed reference results (repo root, tracked by git)
TRACKED_RESULTS = Path(__file__).parent.parent / "results"


def provenance() -> dict:
    """Provenance stamp for result JSONs: git SHA, the active kernel
    backend (``$REPRO_KERNEL_BACKEND`` resolution) and its precision,
    and the numpy version."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent.parent, capture_output=True,
            text=True, timeout=10).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    try:
        from repro.kernels import get_backend
        backend = get_backend()
        name, precision = backend.name, backend.precision
    except Exception:  # noqa: BLE001 - provenance must never fail a bench
        name, precision = "unknown", "unknown"
    return {"git_sha": sha, "kernel_backend": name,
            "precision": precision, "numpy": np.__version__}


def write_result(name: str, text: str) -> None:
    RESULTS.mkdir(exist_ok=True)
    path = RESULTS / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def _dump_json(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(exist_ok=True)
    payload = dict(payload)
    payload.setdefault("provenance", provenance())
    path = directory / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {path}]")


def write_json(name: str, payload: dict) -> None:
    """Machine-readable companion to :func:`write_result` — trajectory
    numbers (speedups, call counts) land in ``results/<name>.json``,
    stamped with :func:`provenance`."""
    _dump_json(RESULTS, name, payload)


def write_tracked_json(name: str, payload: dict) -> None:
    """Like :func:`write_json` but to the tracked repo-root
    ``results/`` — for reference numbers that are committed.

    Before overwriting, the previous committed payload is gated via
    :func:`gate_against_baseline` so a bench run that regresses its own
    reference numbers says so loudly at the point of overwrite."""
    gate_against_baseline(name, payload)
    _dump_json(TRACKED_RESULTS, name, payload)


def gate_against_baseline(name: str, payload: dict) -> bool:
    """Compare *payload* against the committed ``results/<name>.json``
    (when present) with the noise-tolerant regression comparator and
    print the verdict.  Returns True when no regression was flagged —
    advisory here; the CI ``perf-regression`` job is the hard gate."""
    baseline_path = TRACKED_RESULTS / f"{name}.json"
    if not baseline_path.exists():
        return True
    try:
        from repro.obs import compare
        baseline = json.loads(baseline_path.read_text())
        report = compare(baseline, payload, name=name)
    except Exception as exc:  # noqa: BLE001 - gating must never fail a bench
        print(f"[regression gate skipped: {exc}]")
        return True
    print(report.render())
    return report.passed


# ----------------------------------------------------------------------
# The paper's two workloads, laptop-sized
# ----------------------------------------------------------------------

def diffusion_2d(n: int = 48, degree: int = 4, seed: int = 42):
    """Fig. 9 workload: heterogeneous diffusivity, P4 in 2D (paper:
    ~23 nnz/row)."""
    mesh = unit_square(n)
    kappa = channels_and_inclusions(mesh, seed=seed)
    return mesh, DiffusionForm(degree=degree, kappa=kappa), None


def diffusion_3d(n: int = 5, degree: int = 2, seed: int = 9,
                 refine: int = 0):
    """Fig. 9 workload in 3D: P2 (~27 nnz/row)."""
    mesh = unit_cube(n)
    if refine:
        mesh = refine_uniform(mesh, refine)
    kappa = channels_and_inclusions(mesh, seed=seed)
    return mesh, DiffusionForm(degree=degree, kappa=kappa), None


def elasticity_2d(n: int = 8, degree: int = 3, length: float = 8.0):
    """Fig. 6 bottom: heterogeneous cantilever, P3 in 2D (~33 nnz/row)."""
    mesh = cantilever_2d(n, length=length, height=1.0)
    lam, mu = layered_elasticity(mesh, n_layers=8)
    form = ElasticityForm(degree=degree, lam=lam, mu=mu,
                          f=np.array([0.0, -9.81]))
    return mesh, form, (lambda x: x[:, 0] < 1e-9)


def elasticity_3d(n: int = 4, degree: int = 2):
    """Fig. 6 top stand-in: heterogeneous 3D solid, P2 (~83 nnz/row).

    A layered box replaces the tripod for the scaling runs (same
    operator, same contrast; the tripod generator is exercised in the
    examples) — carving makes tiny meshes too irregular to partition
    evenly at these scales.
    """
    mesh = unit_cube(n)
    lam, mu = layered_elasticity(mesh, n_layers=4, axis=2)
    form = ElasticityForm(degree=degree, lam=lam, mu=mu,
                          f=np.array([0.0, 0.0, -9.81]))
    return mesh, form, (lambda x: x[:, 2] < 1e-9)
