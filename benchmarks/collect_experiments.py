#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the benchmark result files.

Run after ``pytest benchmarks/``:

    python benchmarks/collect_experiments.py

Each section pairs the paper's reported numbers with the regenerated
table/figure in ``benchmarks/results/`` and states what was checked.
"""

from __future__ import annotations

from pathlib import Path

HERE = Path(__file__).parent
RESULTS = HERE / "results"
OUT = HERE.parent / "EXPERIMENTS.md"

#: (title, result file, paper-said, we-check commentary)
SECTIONS = [
    ("Figure 1 — convergence, basic vs advanced preconditioning",
     "fig1_convergence",
     "GMRES on 16 subdomains of a highly heterogeneous problem, relative "
     "residual target 1e-8.  The basic (one-level) method is oblivious to "
     "the heterogeneities and has not converged within ~120 iterations; "
     "the advanced (GenEO A-DEF1) method reaches 1e-8 in a few tens of "
     "iterations.",
     "Same N=16, same contrast family (kappa in [1, 3e6]).  The advanced "
     "method converges in ~14 iterations; the basic method needs several "
     "times more (asserted: >= 2x).  Shape reproduced: the gap between "
     "the two curves is the paper's figure."),
    ("Figure 2 — construction of the overlapping decomposition",
     "fig2_overlap",
     "A mesh decomposed into three subdomains; two consecutive "
     "extensions (delta = 2) grow each T_i^0 by layers of adjacent "
     "elements.",
     "Asserted: delta = 0 reproduces the non-overlapping partition "
     "exactly; the recursion property T_i^m = grow(T_i^{m-1}) holds "
     "layer by layer; extended subdomains overlap.  The regenerated "
     "artefact lists cell counts per delta and the node-layer histogram "
     "that drives the partition of unity (chi = 1, 1/2, 0)."),
    ("Figures 3-4 — sparsity of Z and of E",
     "fig34_sparsity",
     "With 4 chained subdomains, O1={2}, O2={1,3}, O3={2,4}, O4={3}; Z is "
     "block-column sparse with overlapping rows; E has one diagonal "
     "(communication-free) block per subdomain plus one off-diagonal "
     "block per neighbour pair.",
     "Asserted exactly: the decomposition reports those neighbour sets "
     "and coarse_blocks() produces exactly the block-tridiagonal pattern. "
     "ASCII spy plots regenerated."),
    ("Figure 5 — electing the masters",
     "fig5_masters",
     "N=16, P=4: uniform election puts masters at ranks 0,4,8,12; the "
     "non-uniform sequence p_i = floor(N - sqrt((p_{i-1}-N)^2 - N^2/P) + "
     "0.5) puts them at 0,2,5,8 and balances each master's share of the "
     "upper triangle of a symmetric E.",
     "Asserted exactly: elect_masters_uniform(16,4) == [0,4,8,12], "
     "elect_masters_nonuniform(16,4) == [0,2,5,8] (the figure's values), "
     "and for N up to 1024 the non-uniform upper-triangle imbalance is "
     "strictly smaller than uniform and < 2.0."),
    ("Figure 7 — GMRES(40) on heterogeneous 2D elasticity",
     "fig7_elasticity_convergence",
     "1024 subdomains, E contrast 2e4 (2e11/0.25 vs 1e7/0.45), tol 1e-6: "
     "A-DEF1 converges in 28 iterations; RAS has not converged after "
     "400+ iterations (600 s).",
     "Same coefficients, P3 elements, 16 subdomains: A-DEF1 converges in "
     "~27 iterations — essentially the paper's number — while RAS stalls "
     "around 1e-1 after 400 iterations.  The key claim (GenEO makes the "
     "iteration count independent of the contrast, RAS unusable) holds "
     "verbatim."),
    ("Figure 8 — strong scaling (heterogeneous elasticity)",
     "fig8_strong_scaling",
     "Fixed global systems; N = 1024 -> 8192.  3D-P2: total time 530.6 s "
     "-> 51.8 s, speedup ~10x on 8x the processes (superlinear, driven "
     "by the superlinear local factorization/eigensolve cost); 2D-P3: "
     "213.2 s -> 34.5 s, ~6x.  Iterations stay in 20-28.",
     "Fixed meshes, N = 2 -> 16 (same 8x span).  Measured max-per-"
     "subdomain phases + modelled communication: 3D speedup ~10x on 8x "
     "(superlinear; fitted local-cost exponents ~1.1-1.2, and the "
     "mechanism asserted deterministically via factor fill/dof), 2D ~5-6x "
     "(smaller, as in the paper).  Iterations flat (asserted).  The "
     "fitted power laws extrapolate a paper-scale table; at N >= 1024 "
     "the (modelled) communication dominates, as the paper observes at "
     "8192."),
    ("Figure 10 — weak scaling (heterogeneous diffusion)",
     "fig10_weak_scaling",
     "Constant dofs/subdomain (280K 3D-P2 / 2.7M 2D-P4), N = 256 -> "
     "8192: efficiency ~90% (3D) and ~96% (2D); iterations 13-20 (3D), "
     "25-29 (2D), flat across 32x more ranks.",
     "Constant cells/subdomain across refinements (base N chosen "
     "interior-like, the analogue of starting at N=256).  Iterations "
     "flat (asserted).  2D efficiency ~97-99% across 16x more ranks "
     "(paper: ~96%).  3D raw efficiency is shell-dominated at ~100-500 "
     "dof/subdomain (the delta=1 overlap shell is 50-200% of a tiny "
     "subdomain vs ~3% of the paper's 280K); normalising by the actual "
     "largest local problem gives ~90% (paper: ~90%).  The scalability "
     "mechanism (flat iterations, constant local work) is reproduced; "
     "the raw-3D gap is a documented artefact of miniature subdomains."),
    ("Figure 11 — assembling/factorising the coarse operator",
     "fig11_coarse_operator",
     "dim(E) = nu*N; average |O_i| ~ 12-15 in 3D vs ~5.5-5.9 in 2D "
     "(denser coarse operator in 3D); nnz(E^-1) grows superlinearly with "
     "N; assembly+factorization time grows with N and |O_i|.",
     "Algorithms 1-2 executed over the simulated MPI with metered "
     "traffic.  Asserted: dim(E) = nu*N exactly; 3D |O_i| > 2D |O_i|; "
     "nnz of a sparse LDL^T of E grows with N.  Times are modelled "
     "(alpha-beta + flop model)."),
    ("Section 3.3 — cost analysis",
     "sec33_cost_analysis",
     "Setup: each process exchanges one message of size nu x (overlap "
     "size) per neighbour, then each slave sends ONE message of "
     "|O_i| + nu^2 + nu*sum_j nu_j doubles to its master (no indices). "
     "Fixed-count collectives scale as O(log N), variable-count as O(N).",
     "Asserted EXACTLY against the meter: per-slave byte counts equal "
     "the closed-form formula to the byte; slaves send |O_i|+1 messages "
     "total; the paper's values-only protocol ships less than half the "
     "slave->master bytes of the natural (index-carrying) protocol; the "
     "modelled collective costs show the O(log N) vs O(N) split."),
    ("Section 3.5 — communication-avoiding multilevel preconditioning",
     "sec35_pipelined",
     "The fused p1-GMRES performs a two-level iteration with no "
     "additional global communication or synchronisation: the reduction "
     "contributions ride the coarse-correction Gather/Scatter and a "
     "single Iallreduce between the masters overlaps the coarse solve.  "
     "Convergence matches classical GMRES ('both pipelined GMRES are "
     "performing approximately the same').",
     "Executed at message level on the simulated MPI: classical GMRES "
     "needs >= 2 blocking global syncs per iteration; the fused variant "
     "needs a constant handful for the whole solve (asserted <= 10) plus "
     "one overlapped Iallreduce per iteration, at the same iteration "
     "count (+-4 asserted)."),
    ("Ablation — preconditioner variants (paper section 2.1)",
     "ablation_preconditioners",
     "A-DEF1 is chosen over A-DEF2 because it needs one coarse solve per "
     "application instead of two, at similar numerical properties.",
     "Measured: A-DEF1 ~1 coarse solve/iteration, A-DEF2 ~2 (asserted), "
     "same iteration count within +-4; BNN+CG also converges; both "
     "two-level variants beat one-level."),
    ("Ablation — coarse-space construction",
     "ablation_coarse_space",
     "GenEO eq. (9) with a per-subdomain nu; the paper's conclusion "
     "proposes a-posteriori Ritz vectors as future work.",
     "nu sweep: iterations fall as nu grows, dim(E) = nu*N; GenEO "
     "outperforms Nicolaides constants on high contrast; the a-"
     "posteriori Ritz space (paper's outlook, implemented) also "
     "accelerates the one-level method; overlap sweep: wider overlap "
     "does not degrade."),
    ("Ablation — assembly protocol (section 3.1.1)",
     "ablation_assembly_protocol",
     "The natural Gatherv-based assembly ships global row/column indices "
     "from slaves; the paper's protocol ships values only.",
     "Both protocols implemented over the simulated MPI; the natural one "
     "verified to produce the same E, and metered to ship > 2x the "
     "slave->master bytes."),
    ("Ablation — backend swap (the MUMPS/PARDISO/ARPACK roles)",
     "ablation_backends",
     "The paper swaps direct solvers freely (MUMPS, PaStiX, both "
     "PARDISOs, WSMP) behind one factorize-then-solve interface, and "
     "computes deflation vectors with ARPACK.",
     "Four local backends (SuperLU, band Cholesky with our RCM, the "
     "from-scratch up-looking LDL^T, dense LAPACK) produce identical "
     "solutions on real subdomain matrices (asserted); Lanczos and "
     "scipy's eigsh agree on the GenEO pencil to 1e-6."),
    ("Ablation — GenEO reuse across nonlinear Picard steps (conclusion)",
     "ablation_nonlinear",
     "The conclusion targets nonlinear solid mechanics as the framework's "
     "next application.",
     "Quasilinear diffusion by Picard iteration: rebuilding the GenEO "
     "space every step vs reusing the first step's vectors vs freezing "
     "the whole preconditioner.  All converge to the same fixed point "
     "(asserted); reuse pays the eigensolves once (~15x less GenEO time) "
     "at a few extra linear iterations."),
    ("Ablation — non-overlapping methods (section 3.1)",
     "ablation_nonoverlapping",
     "The framework also serves substructuring, where E's block pattern "
     "is denser (distance-2 connectivity).",
     "A Schur-complement solver with balanced Neumann-Neumann "
     "(stiffness-scaled counting functions) and coarse levels built "
     "through the same AbstractDeflation machinery; E's measured block "
     "density exceeds the overlapping method's, and the balanced "
     "constants coarse space helps (asserted).  A-DEF1 composition, "
     "tailored to RAS, demonstrably mismatches Neumann-Neumann — the "
     "balanced form is required (documented in the module)."),
    ("Ablation — number of masters (section 3.4)",
     "ablation_masters",
     "Increasing P does not always help: distributed solvers have "
     "difficulties scaling beyond ~128 processes; replicating E on all "
     "ranks is not feasible for large decompositions.",
     "Modelled solve time has an interior optimum in P and rises "
     "afterwards (latency-bound panel broadcasts); the memory table "
     "shows replication at N=8192 needs ~200 GiB per rank vs ~3 GiB per "
     "master when distributed."),
]

HEADER = """\
# EXPERIMENTS — paper vs. this reproduction

Every table and figure of the paper's evaluation (§3.4–3.5) is
regenerated by a benchmark under `benchmarks/`; each writes its artefact
to `benchmarks/results/<name>.txt` and *asserts* the qualitative claim it
reproduces.  Regenerate everything with

```bash
pytest benchmarks/                      # asserts + artefacts
pytest benchmarks/ --benchmark-only     # kernel timings only
python benchmarks/collect_experiments.py   # rebuild this file
```

**Scale disclaimer.**  The paper ran on Curie (up to 16 384 threads,
2–22·10⁹ unknowns); this reproduction runs every algorithm — including
the master–slave coarse assembly and the fused pipelined GMRES — on a
single core over a simulated MPI with metered traffic, at 10³–10⁵
unknowns and N ≤ 256 subdomains.  Absolute seconds are therefore not
comparable; the reproduction targets are *shapes*: iteration counts and
their independence of N and of the coefficient contrast, speedup and
efficiency trends, message-count formulas, synchronisation counts, and
crossovers.  Where a laptop-scale artefact distorts a shape (the 3D
overlap-shell effect in fig. 10), it is called out explicitly.

Figures 6 and 9 of the paper are workload definitions rather than
results — the tripod/cantilever geometries with two-phase elastic moduli
and the channels-and-inclusions diffusivity.  They are implemented as
`repro.mesh.tripod_3d` / `cantilever_2d` and
`repro.fem.layered_elasticity` / `channels_and_inclusions`, exercised by
every bench below and visualisable via the VTK export
(`examples/tripod_elasticity_3d.py`).
"""


def main() -> None:
    parts = [HEADER]
    for title, result, paper, ours in SECTIONS:
        parts.append(f"\n---\n\n## {title}\n")
        parts.append(f"**Paper.**  {paper}\n")
        parts.append(f"**This reproduction.**  {ours}\n")
        path = RESULTS / f"{result}.txt"
        if path.exists():
            body = path.read_text().rstrip()
            parts.append(f"**Regenerated artefact** "
                         f"(`benchmarks/results/{result}.txt`):\n")
            parts.append("```text\n" + body + "\n```\n")
        else:
            parts.append(f"*(artefact `{result}.txt` not generated yet — "
                         f"run `pytest benchmarks/`)*\n")
    OUT.write_text("\n".join(parts))
    print(f"wrote {OUT} ({OUT.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
