"""Kernel backends head-to-head: apply-phase speedup vs the reference.

The seed revision ran every preconditioner application through fp64
scipy kernels.  The kernel-backend registry (``repro.kernels``) lets the
hot apply path run through the ``fp32`` mixed-precision backend
(symmetric-mode LDLᵀ factors cast to fp32, applied by fused compiled
gather→solve→scatter kernels inside the fp64 Krylov loop) or the fp64
``compiled`` backend.

This benchmark times one full A-DEF1 application per backend on the
fig-10-style 2D heterogeneous diffusion problem, records iteration and
final-residual deltas of a complete GMRES solve per backend, and asserts
the headline ≥ 2× apply-phase speedup (best of fp32/compiled vs the
reference numpy backend) at full scale.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py [--smoke]

The smoke mode (CI) runs a small problem and skips the machine-speed
assertion, but still fails when the fp32 iteration count exceeds the
fp64 count by more than :data:`ITER_BUDGET` — the accuracy regression
guard.  Numbers land in ``benchmarks/results/BENCH_kernel_backends.txt``
and the tracked ``results/BENCH_kernel_backends.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import write_result, write_tracked_json  # noqa: E402

from repro import SchwarzSolver  # noqa: E402
from repro.common.asciiplot import table  # noqa: E402
from repro.fem import channels_and_inclusions  # noqa: E402
from repro.fem.forms import DiffusionForm  # noqa: E402
from repro.kernels import available_backends  # noqa: E402
from repro.mesh import unit_square  # noqa: E402
from repro.obs import Recorder  # noqa: E402

#: headline requirement at full scale: best reduced/compiled backend
#: must apply the preconditioner at least this much faster than numpy
MIN_SPEEDUP = 2.0
#: fp32 may cost at most this many extra GMRES iterations vs fp64
ITER_BUDGET = 10

BACKENDS = ("numpy", "compiled", "fp32")


def build_solver(backend: str, smoke: bool,
                 recorder: Recorder | None = None) -> SchwarzSolver:
    mesh_n = 16 if smoke else 64
    degree = 3 if smoke else 4
    nsub = 16 if smoke else 48
    nev = 6 if smoke else 8
    mesh = unit_square(mesh_n)
    kappa = channels_and_inclusions(mesh, seed=9)
    form = DiffusionForm(degree=degree, kappa=kappa)
    return SchwarzSolver(mesh, form, num_subdomains=nsub, delta=1,
                         nev=nev, seed=0, partition_method="rcb",
                         kernel_backend=backend, recorder=recorder)


def best_seconds(fn, arg, repeats: int, inner: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn(arg)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def bench_backend(name: str, smoke: bool, u: np.ndarray,
                  ref_apply: np.ndarray | None) -> dict:
    rec = Recorder()
    solver = build_solver(name, smoke, recorder=rec)
    if solver.kernels.name != name:
        # get_backend degraded (e.g. no C toolchain for "compiled")
        return {"backend": name, "available": False,
                "notes": list(solver.kernels.notes)}
    pre = solver.preconditioner
    out = pre.apply(u)
    rel_err = None if ref_apply is None else float(
        np.linalg.norm(out - ref_apply)
        / max(np.linalg.norm(ref_apply), 1e-300))
    repeats, inner = (3, 5) if smoke else (5, 15)
    t_apply = best_seconds(pre.apply, u, repeats, inner)
    t_ras = best_seconds(solver.one_level.apply, u, repeats, inner)
    report = solver.solve(tol=1e-8, restart=60, maxiter=300)
    kernel_counters = {k: int(v) for k, v in sorted(rec.counters.items())
                       if k.startswith("kernel.")}
    return {
        "backend": name,
        "available": True,
        "precision": solver.kernels.precision,
        "compiled": bool(solver.kernels.compiled),
        "apply_ms": t_apply * 1e3,
        "ras_apply_ms": t_ras * 1e3,
        "apply_rel_err_vs_numpy": rel_err,
        "iterations": int(report.iterations),
        "converged": bool(report.converged),
        "final_residual": float(report.krylov.final_residual),
        "counters": kernel_counters,
        "apply_out": out,
    }


def run(smoke: bool) -> dict:
    probe = build_solver("numpy", smoke)
    n = probe.problem.num_free
    nsub = probe.decomposition.num_subdomains
    m = probe.coarse_dim
    del probe

    rng = np.random.default_rng(0)
    u = rng.standard_normal(n)

    rows = []
    results: dict[str, dict] = {}
    ref = None
    for name in BACKENDS:
        r = bench_backend(name, smoke, u, ref)
        if r.get("available"):
            if name == "numpy":
                ref = r.pop("apply_out")
            else:
                r.pop("apply_out", None)
        results[name] = r

    base = results["numpy"]
    for name in BACKENDS:
        r = results[name]
        if not r.get("available"):
            rows.append([name, "UNAVAILABLE", "-", "-", "-", "-"])
            continue
        speedup = base["apply_ms"] / r["apply_ms"]
        r["apply_speedup_vs_numpy"] = speedup
        r["iteration_delta_vs_numpy"] = \
            r["iterations"] - base["iterations"]
        rows.append([
            name, f"{r['apply_ms']:.3f}", f"{speedup:.2f}x",
            f"{r['iterations']} ({r['iteration_delta_vs_numpy']:+d})",
            f"{r['final_residual']:.2e}",
            "-" if r["apply_rel_err_vs_numpy"] is None
            else f"{r['apply_rel_err_vs_numpy']:.1e}"])

    txt = table(
        ["backend", "apply (ms)", "speedup", "iterations (Δ)",
         "final resid", "apply rel err"],
        rows,
        title=f"KERNEL BACKENDS (2D diffusion, n_free={n}, N={nsub}, "
              f"m={m}, cpus={os.cpu_count()}, smoke={smoke})")
    candidates = [results[b].get("apply_speedup_vs_numpy", 0.0)
                  for b in ("fp32", "compiled")
                  if results[b].get("available")]
    best = max(candidates, default=0.0)
    txt += (f"\n\nbest reduced/compiled apply speedup: {best:.2f}x "
            f"(required at full scale: {MIN_SPEEDUP}x); "
            f"fp32 iteration budget: +{ITER_BUDGET}")
    write_result("BENCH_kernel_backends", txt)

    for r in results.values():
        r.pop("apply_out", None)
    payload = {
        "problem": {"workload": "diffusion2d", "n_free": n,
                    "num_subdomains": nsub, "coarse_dim": m,
                    "smoke": smoke, "cpu_count": os.cpu_count()},
        "backends": results,
        "best_apply_speedup": best,
        "min_speedup_required": MIN_SPEEDUP,
        "iter_budget": ITER_BUDGET,
        "capability_table": {
            k: {kk: vv for kk, vv in v.items() if kk != "notes"}
            for k, v in available_backends().items()},
    }
    write_tracked_json("BENCH_kernel_backends", payload)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized problem; skip the machine-speed "
                             "assertion, keep the accuracy guards")
    args = parser.parse_args(argv)
    smoke = args.smoke or bool(int(os.environ.get("BENCH_SMOKE", "0")))
    payload = run(smoke)

    failures = []
    backends = payload["backends"]
    base = backends["numpy"]
    if not base["converged"]:
        failures.append("reference numpy solve did not converge")
    fp32 = backends["fp32"]
    if fp32.get("available"):
        if not fp32["converged"]:
            failures.append("fp32 solve did not converge to fp64 tol")
        elif fp32["iterations"] > base["iterations"] + ITER_BUDGET:
            failures.append(
                f"fp32 took {fp32['iterations']} iterations vs fp64's "
                f"{base['iterations']} (budget +{ITER_BUDGET})")
        if fp32.get("apply_rel_err_vs_numpy", 1.0) > 1e-3:
            failures.append(
                f"fp32 apply rel err {fp32['apply_rel_err_vs_numpy']:.1e}"
                f" > 1e-3")
    else:
        failures.append("fp32 backend unavailable (pure-python env?)")
    comp = backends["compiled"]
    if comp.get("available") and comp["iterations"] \
            > base["iterations"] + 2:
        failures.append("compiled backend changed the iteration count")
    if not comp.get("available"):
        # skip-with-notice: a missing toolchain is an environment limit,
        # not a regression
        print("NOTICE: compiled backend unavailable "
              f"({'; '.join(comp.get('notes', []) or ['no C toolchain'])})"
              "; speedup asserted on fp32 only", file=sys.stderr)
    if not smoke and payload["best_apply_speedup"] < MIN_SPEEDUP:
        failures.append(
            f"best apply speedup {payload['best_apply_speedup']:.2f}x "
            f"< {MIN_SPEEDUP}x")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
