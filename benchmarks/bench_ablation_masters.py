"""Ablation: how many masters P? (§3.4, fig. 11 discussion.)

Paper: "increasing the number of masters P does not always have a
beneficial effect ... because distributed solvers have difficulties
scaling beyond ~128 processes".  With the α–β model, the distributed
Cholesky's panel broadcasts serialise: solve time first drops with P
(more parallel flops) then rises (latency-bound collectives) — a
crossover this bench locates, alongside the replicated-E alternative the
paper dismisses for memory reasons.
"""

import numpy as np
import pytest

from common import write_result
from repro.common.asciiplot import table
from repro.perfmodel import CURIE


def modelled_coarse_solve(dim_e: int, P: int, model=CURIE) -> float:
    """Pipelined block substitution: flops spread over P, one broadcast
    per panel (2 log P latency each), P panels."""
    flops = model.compute(2.0 * dim_e * dim_e / P)
    comm = P * 2 * np.log2(max(P, 2)) * model.latency \
        + dim_e * 8 * model.inv_bandwidth * np.log2(max(P, 2))
    return flops + comm


def modelled_factorization(dim_e: int, P: int, model=CURIE,
                           band: int = 400) -> float:
    """E is block-sparse; a banded/sparse factorization costs
    ~ dim·b² flops (b ≈ ν·|O_i| after reordering), spread over P, plus
    one panel broadcast per master."""
    flops = model.compute(dim_e * band * band / P)
    comm = P * np.log2(max(P, 2)) * (model.latency
                                     + (dim_e / P) * band * 8
                                     * model.inv_bandwidth)
    return flops + comm


@pytest.fixture(scope="module")
def p_sweep():
    dim_e = 1024 * 10          # paper scale: N=1024, ν=10
    rows = []
    for P in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512):
        t_f = modelled_factorization(dim_e, P)
        t_s = modelled_coarse_solve(dim_e, P)
        rows.append((P, t_f, t_s))
    txt = table(["P", "factorize E (s)", "solve E (s)"],
                [[p, f"{tf:.4f}", f"{ts * 1e3:.3f} ms"]
                 for p, tf, ts in rows],
                title=f"ABLATION — number of masters "
                      f"(modelled, dim(E) = {dim_e})")
    # memory: replicated vs distributed
    mem_rows = []
    for N, nu in ((1024, 20), (8192, 20)):
        d = N * nu
        nnz_dense = d * d * 8 / 2**30
        mem_rows.append([N, d, f"{nnz_dense:.1f} GiB",
                         f"{nnz_dense / max(1, N // 128):.3f} GiB"])
    txt2 = table(["N", "dim(E)", "replicated per rank",
                  "distributed per master (P=N/128)"], mem_rows,
                 title="replication vs distribution (the paper's 'simply "
                       "not feasible for large decompositions')")
    write_result("ablation_masters", txt + "\n\n" + txt2)
    return rows


def test_solve_time_has_crossover(p_sweep):
    """More masters eventually hurt the solve (latency-bound)."""
    ts = [t for _, _, t in p_sweep]
    best = int(np.argmin(ts))
    assert 0 < best < len(ts) - 1
    assert ts[-1] > ts[best]


def test_factorization_gains_then_saturate(p_sweep):
    tf = [t for _, t, _ in p_sweep]
    assert tf[3] < tf[0]             # P=8 beats P=1
    # marginal gain from the last doubling is small or negative
    assert tf[-1] > 0.5 * tf[-2]


def test_bench_distributed_solve_p4(benchmark):
    """Measured: distributed Cholesky solve with P=4 on simulated MPI."""
    from repro.mpi import run_spmd
    from repro.solvers import DistributedCholesky
    rng = np.random.default_rng(0)
    n = 96
    M = rng.standard_normal((n, n))
    E = M @ M.T + n * np.eye(n)
    b = rng.standard_normal(n)
    rs = np.linspace(0, n, 5).astype(np.int64)

    def run():
        def fn(comm):
            p = comm.rank
            f = DistributedCholesky(comm, rs, E[rs[p]:rs[p + 1]])
            return f.solve(b[rs[p]:rs[p + 1]])
        return run_spmd(4, fn)

    benchmark.pedantic(run, rounds=3, iterations=1)
