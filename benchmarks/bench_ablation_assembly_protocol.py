"""Ablation: the §3.1.1 assembly protocol — "natural" vs values-only.

The paper first sketches a *natural* assembly of the distributed E:
every slave ships global row indices, column indices AND values
(three Gatherv calls), then rejects it — "why should slaves send to
masters the global row and column indices?" — in favour of a single
values-only message per slave ([O_i | E_ii | E_ij…]) with all indices
computed by the masters.

This bench implements the natural protocol on the simulated MPI and
compares metered bytes against the paper's protocol (as implemented in
:func:`repro.core.spmd.assemble_coarse_spmd`).
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.core.coarse import elect_masters_uniform
from repro.core.spmd import assemble_coarse_spmd, build_master_comms
from repro.mpi import Meter, run_spmd

N = 12
NEV = 6
P = 3


def natural_assembly(comm, dec, space):
    """The paper's rejected baseline: slaves compute global indices and
    Gatherv (indices, indices, values) to their master."""
    i = comm.rank
    sub = dec.subdomains[i]
    W = space.W[i]
    layout = build_master_comms(comm, P)
    split = layout.split
    # step 1 of the natural flow: everyone learns every ν (O(N) allgather)
    nus = np.asarray(comm.allgather(W.shape[1]))
    offsets = np.concatenate([[0], np.cumsum(nus)])
    # local blocks (same numerics as algorithm 1)
    T = sub.A_dir @ W
    for j in sub.neighbors:
        comm.isend(np.ascontiguousarray(T[sub.shared[j]]), j, 777)
    blocks = {i: W.T @ T}
    for j in sub.neighbors:
        U = comm.recv(j, 777)
        blocks[j] = np.ascontiguousarray(W[sub.shared[j]]).T @ U
    # assemble local COO WITH GLOBAL INDICES on the slave
    rows_l, cols_l, vals_l = [], [], []
    for j, blk in blocks.items():
        r = np.repeat(np.arange(offsets[i], offsets[i + 1]), blk.shape[1])
        c = np.tile(np.arange(offsets[j], offsets[j + 1]), blk.shape[0])
        rows_l.append(r)
        cols_l.append(c)
        vals_l.append(blk.ravel())
    rows_l = np.concatenate(rows_l)
    cols_l = np.concatenate(cols_l)
    vals_l = np.concatenate(vals_l)
    # three Gatherv calls (indices are int64: same 8 bytes as a double)
    split.gatherv(np.asarray(sub.neighbors))
    got_r = split.gatherv(rows_l)
    got_c = split.gatherv(cols_l)
    got_v = split.gatherv(vals_l)
    if layout.is_master:
        return (np.concatenate(got_r), np.concatenate(got_c),
                np.concatenate(got_v))
    return None


@pytest.fixture(scope="module")
def protocols():
    mesh, form, _ = diffusion_2d(n=32, degree=2)
    solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                           nev=NEV, seed=0)
    dec, space = solver.decomposition, solver.deflation

    m_nat = Meter(N)
    nat_out = run_spmd(N, natural_assembly, dec, space, meter=m_nat)
    m_pap = Meter(N)
    run_spmd(N, lambda comm: assemble_coarse_spmd(comm, dec, space, P)
             and None, meter=m_pap)

    masters = set(elect_masters_uniform(N, P).tolist())
    # isolate the slave -> master shipment: natural = the Gatherv
    # payloads (neighbour list + rows + cols + values); paper = the one
    # packed message (total p2p minus the overlap exchange, which both
    # protocols share)
    slave_bytes_nat = sum(_coll_bytes(m_nat.stats(r))
                          for r in range(N) if r not in masters)
    slave_bytes_pap = 0
    for r in range(N):
        if r in masters:
            continue
        sub = dec.subdomains[r]
        overlap = sum(sub.shared[j].size for j in sub.neighbors)
        slave_bytes_pap += m_pap.stats(r).send_bytes - 8 * NEV * overlap
    txt = table(
        ["protocol", "total bytes", "slave→master bytes",
         "collective calls"],
        [["natural (Gatherv indices+values)", m_nat.total_bytes()
          + _total_coll_bytes(m_nat), slave_bytes_nat,
          m_nat.total_collectives("gatherv")],
         ["paper (values only, one message)", m_pap.total_bytes(),
          slave_bytes_pap, m_pap.total_collectives("gatherv")]],
        title=f"ABLATION — coarse assembly protocol (N={N}, P={P}, "
              f"ν={NEV})")
    write_result("ablation_assembly_protocol", txt)
    # verify the natural protocol produced a correct E on the masters
    E_ref = solver.coarse.E.toarray()
    E_nat = np.zeros_like(E_ref)
    for out in nat_out:
        if out is None:
            continue
        r, c, v = out
        np.add.at(E_nat, (r, c), v)
    assert np.allclose(E_nat, E_ref, atol=1e-9 * abs(E_ref).max())
    return m_nat, m_pap, slave_bytes_nat, slave_bytes_pap


def _coll_bytes(stats):
    return sum(stats.collective_bytes.values())


def _total_coll_bytes(meter):
    return sum(_coll_bytes(meter.stats(r)) for r in range(meter.world_size))


def test_values_only_protocol_ships_less(protocols):
    """Slaves must send strictly less than half the natural protocol's
    slave traffic (indices dropped: 3 arrays → 1)."""
    _, _, nat, pap = protocols
    assert pap < nat / 2


def test_no_gatherv_in_setup_paper_protocol(protocols):
    """The paper's assembly uses point-to-point messages (plus fixed-count
    gathers), not Gatherv with variable counts."""
    _, m_pap, _, _ = protocols
    assert m_pap.total_collectives("gatherv") == 0


def test_bench_natural_protocol(protocols, benchmark):
    mesh, form, _ = diffusion_2d(n=24, degree=2)
    solver = SchwarzSolver(mesh, form, num_subdomains=8, delta=1,
                           nev=4, seed=0)
    dec, space = solver.decomposition, solver.deflation

    def run():
        run_spmd(8, natural_assembly, dec, space)

    benchmark.pedantic(run, rounds=3, iterations=1)
