"""Solve-phase fast path: cached A·Z vs the pre-cache apply loop.

One A-DEF1 application used to cost, per iteration:

* a serial per-subdomain solve loop with ``np.add.at`` combines (RAS),
* per-block Python list comprehensions for ``Zᵀu`` and ``Zy`` with a
  full neighbour ``exchange_sum`` inside ``z_dot``,
* a **global SpMV** ``dec.matvec(Zy)`` to form ``A Z E⁻¹ Zᵀ u``.

The fast path caches ``T_i = A_i W_i`` (already computed for the E
assembly) as a sparse ``A·Z`` at setup, assembles a CSR ``Z`` once, and
runs the RAS loop under the parallel engine with fancy-index combines.
Per iteration that deletes one global SpMV and one overlap exchange and
replaces every per-block Python loop with a single spmv.

This benchmark times one preconditioner application both ways — the
reference is a line-for-line replica of the pre-cache code path (seed
revision), kept inline so the production kernels can keep improving —
and asserts the ≥ 2× per-iteration apply speedup on the fig-10 style
problem at N = 64 subdomains.  It also counts global SpMVs per apply
(fast path: zero) and reports the per-phase solve profile of a full
GMRES solve.

Run directly (CI smoke mode)::

    PYTHONPATH=src python benchmarks/bench_solve_apply.py --smoke

Numbers land in ``results/BENCH_solve_apply.{txt,json}``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import write_json, write_result  # noqa: E402

from repro import SchwarzSolver  # noqa: E402
from repro.common.asciiplot import table  # noqa: E402
from repro.fem import channels_and_inclusions  # noqa: E402
from repro.fem.forms import DiffusionForm  # noqa: E402
from repro.mesh import unit_square  # noqa: E402

MIN_SPEEDUP = 2.0


def build_solver(smoke: bool) -> SchwarzSolver:
    """Fig-10 style 2D heterogeneous diffusion; many subdomains so the
    deflated-correction term carries realistic weight per iteration."""
    mesh_n = 12 if smoke else 16
    degree = 3 if smoke else 4
    nsub = 32 if smoke else 64
    nev = 8 if smoke else 16
    mesh = unit_square(mesh_n)
    kappa = channels_and_inclusions(mesh, seed=9)
    form = DiffusionForm(degree=degree, kappa=kappa)
    return SchwarzSolver(mesh, form, num_subdomains=nsub, delta=1,
                         nev=nev, seed=0, partition_method="rcb")


class PrePRApply:
    """Faithful replica of the pre-cache A-DEF1 application.

    Serial per-subdomain loops, ``np.add.at`` combines, the neighbour
    ``exchange_sum`` inside ``z_dot``, and the global ``dec.matvec`` for
    the ``A Z E⁻¹ Zᵀ u`` term — exactly the seed-revision code path,
    inlined here so the production kernels can keep changing underneath.
    """

    def __init__(self, solver: SchwarzSolver):
        self.dec = solver.decomposition
        self.ras = solver.one_level
        self.coarse = solver.coarse
        self.space = solver.deflation

    def _combine(self, u_list, weighted=True):
        out = np.zeros(self.dec.problem.num_free)
        for s, u in zip(self.dec.subdomains, u_list):
            np.add.at(out, s.dofs, s.d * u if weighted else u)
        return out

    def ras_apply(self, r):
        sols = [f.solve(r[s.dofs])
                for f, s in zip(self.ras.factorizations,
                                self.dec.subdomains)]
        return self._combine(sols)

    def zt_dot(self, u):
        return np.concatenate([W.T @ u[s.dofs]
                               for W, s in zip(self.space.W,
                                               self.dec.subdomains)])

    def z_dot(self, y):
        off = self.space.offsets
        z_list = [W @ y[off[i]:off[i + 1]]
                  for i, W in enumerate(self.space.W)]
        return self._combine(self.dec.exchange_sum(z_list))

    def apply(self, u):
        w = self.zt_dot(u)
        y = self.coarse.factorization.solve(w)
        zy = self.z_dot(y)
        v = u - self.dec.matvec(zy)            # the deleted global SpMV
        return self.ras_apply(v) + zy


def best_seconds(fn, arg, repeats: int, inner: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn(arg)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def run(smoke: bool, telemetry: str = "") -> dict:
    solver = build_solver(smoke)
    dec, pre = solver.decomposition, solver.preconditioner
    ref = PrePRApply(solver)
    repeats = 3 if smoke else 5
    inner = 10 if smoke else 20

    rng = np.random.default_rng(0)
    u = rng.standard_normal(dec.problem.num_free)

    # correctness + SpMV accounting before any timing
    mv0 = dec.matvecs
    fast = pre.apply(u)
    fast_spmvs = dec.matvecs - mv0
    mv0 = dec.matvecs
    slow = ref.apply(u)
    ref_spmvs = dec.matvecs - mv0
    rel_err = float(np.linalg.norm(fast - slow)
                    / max(np.linalg.norm(slow), 1e-300))

    t_fast = best_seconds(pre.apply, u, repeats, inner)
    t_ref = best_seconds(ref.apply, u, repeats, inner)
    t_ras_fast = best_seconds(solver.one_level.apply, u, repeats, inner)
    t_ras_ref = best_seconds(ref.ras_apply, u, repeats, inner)
    speedup = t_ref / t_fast

    # the z-product kernels in isolation
    space, coarse = solver.deflation, solver.coarse
    y = rng.standard_normal(space.m)
    t_zt = best_seconds(space.zt_dot, u, repeats, inner)
    t_zt_ref = best_seconds(ref.zt_dot, u, repeats, inner)
    t_az = best_seconds(coarse.az_dot, y, repeats, inner)
    t_az_ref = best_seconds(lambda v: dec.matvec(ref.z_dot(v)), y,
                            repeats, inner)

    # one full solve for the per-phase profile.  The timing loops above
    # ran un-instrumented; the recorder is attached only now, so the
    # payload's telemetry section covers the full solve without touching
    # the kernel timings.
    from repro.obs import Recorder, summary, write_trace
    recorder = Recorder()
    for obj in (solver, solver.timer, solver.decomposition, solver.coarse):
        obj.recorder = recorder
    report = solver.solve(tol=1e-8, restart=60, maxiter=300)

    n, m = dec.problem.num_free, space.m
    body = [
        ["ADEF1 apply", f"{t_ref * 1e3:.3f}", f"{t_fast * 1e3:.3f}",
         f"{speedup:.2f}x"],
        ["RAS apply", f"{t_ras_ref * 1e3:.3f}", f"{t_ras_fast * 1e3:.3f}",
         f"{t_ras_ref / t_ras_fast:.2f}x"],
        ["Z^T u", f"{t_zt_ref * 1e3:.3f}", f"{t_zt * 1e3:.3f}",
         f"{t_zt_ref / t_zt:.2f}x"],
        ["A Z y", f"{t_az_ref * 1e3:.3f}", f"{t_az * 1e3:.3f}",
         f"{t_az_ref / t_az:.2f}x"],
    ]
    txt = table(["kernel", "pre-PR (ms)", "cached (ms)", "speedup"],
                body,
                title=f"SOLVE APPLY (2D diffusion, n={n}, "
                      f"N={dec.num_subdomains}, m={m}, "
                      f"cpus={os.cpu_count()}, smoke={smoke})")
    txt += (f"\n\nglobal SpMVs per apply: fast={fast_spmvs} "
            f"pre-PR={ref_spmvs}; fast vs pre-PR rel err {rel_err:.1e}; "
            f"GMRES converged={report.converged} in "
            f"{report.iterations} iterations")
    txt += "\nsolve profile: " + ", ".join(
        f"{k}={v:.3f}s" for k, v in report.krylov.profile.items())
    write_result("BENCH_solve_apply", txt)

    payload = {
        "problem": {"figure": "fig10-2d", "n_free": n,
                    "num_subdomains": dec.num_subdomains,
                    "coarse_dim": m, "smoke": smoke,
                    "cpu_count": os.cpu_count()},
        "apply_ms": {"fast": t_fast * 1e3, "pre_pr": t_ref * 1e3},
        "apply_speedup": speedup,
        "ras_apply_ms": {"fast": t_ras_fast * 1e3,
                         "pre_pr": t_ras_ref * 1e3},
        "zt_dot_ms": {"fast": t_zt * 1e3, "pre_pr": t_zt_ref * 1e3},
        "az_dot_ms": {"fast": t_az * 1e3, "pre_pr": t_az_ref * 1e3},
        "global_spmvs_per_apply": {"fast": int(fast_spmvs),
                                   "pre_pr": int(ref_spmvs)},
        "rel_err_fast_vs_pre_pr": rel_err,
        "gmres": {"converged": bool(report.converged),
                  "iterations": int(report.iterations),
                  "profile": report.krylov.profile},
        "min_speedup_required": MIN_SPEEDUP,
        "telemetry": summary(recorder),
    }
    write_json("BENCH_solve_apply", payload)
    if telemetry:
        write_trace(recorder, telemetry, format="chrome")
        print(f"chrome trace written to {telemetry}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized problem, fewer timing repeats")
    parser.add_argument("--telemetry", default="",
                        help="also write a chrome trace of the full "
                             "solve to this path")
    args = parser.parse_args(argv)
    smoke = args.smoke or bool(int(os.environ.get("BENCH_SMOKE", "0")))
    payload = run(smoke, telemetry=args.telemetry)

    failures = []
    if payload["global_spmvs_per_apply"]["fast"] != 0:
        failures.append("fast apply performed a global SpMV")
    if payload["rel_err_fast_vs_pre_pr"] > 1e-12:
        failures.append(f"fast apply diverged from the pre-PR path "
                        f"({payload['rel_err_fast_vs_pre_pr']:.1e})")
    if payload["apply_speedup"] < MIN_SPEEDUP:
        failures.append(f"apply speedup {payload['apply_speedup']:.2f}x "
                        f"< {MIN_SPEEDUP}x")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
