"""Parallel setup engine + blocked kernels: the perf trajectory.

Two claims are measured on the fig-10 weak-scaling problem (2D
heterogeneous diffusion, P4, N = 16 subdomains):

1. **Setup concurrency** — factorization + GenEO deflation wall-clock,
   serial vs 2 and 4 threads.  SuperLU/LAPACK/BLAS release the GIL, so
   on a multi-core machine the embarrassingly-parallel setup should
   approach ``min(workers, cores)``× speedup; per-subdomain phase times
   (the figs. 8/10 SPMD columns) and bitwise results are preserved
   either way.
2. **Kernel blocking** — ``M_factor.solve`` / matvec call counts of the
   GenEO eigensolvers.  ``subspace_iteration`` issues ONE multi-RHS
   solve per iteration where the per-column loop issued ``block`` of
   them; Lanczos's cached ``M @ V`` columns drop the per-iteration M
   products from O(k) to O(1).

Numbers land in ``results/BENCH_setup_parallel.{txt,json}``.  Smoke
mode (``BENCH_SMOKE=1``, used by CI) shrinks the problem and skips the
multi-run timing repeats.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from common import write_json, write_result
from repro import ParallelConfig, SchwarzSolver
from repro.common.asciiplot import table
from repro.core.geneo import geneo_pencil
from repro.eigen import lanczos_generalized, subspace_iteration
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import unit_square
from repro.solvers import factorize

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
N_SUB = 16
NEV = 8
MESH_N = 10 if SMOKE else 16
DEGREE = 3 if SMOKE else 4
REPEATS = 1 if SMOKE else 3


def _problem():
    mesh = unit_square(MESH_N)
    kappa = channels_and_inclusions(mesh, seed=9)
    return mesh, DiffusionForm(degree=DEGREE, kappa=kappa)


def _setup_seconds(parallel) -> tuple[float, SchwarzSolver]:
    """Build the solver, return its factorization+deflation wall-clock."""
    mesh, form = _problem()
    t0 = time.perf_counter()
    solver = SchwarzSolver(mesh, form, num_subdomains=N_SUB, delta=1,
                           nev=NEV, seed=0, partition_method="rcb",
                           parallel=parallel)
    total = time.perf_counter() - t0
    setup = (solver.timer.seconds("factorization") +
             solver.timer.seconds("deflation"))
    return setup, total, solver


class CountingFactorization:
    """Factorization proxy counting solve calls and solved columns.

    ``columns`` is what a per-column loop would have cost in calls, so
    ``1 - calls/columns`` is the measured blocking reduction.
    """

    def __init__(self, inner):
        self._inner = inner
        self.n = inner.n
        self.nnz_factor = inner.nnz_factor
        self.calls = 0
        self.columns = 0

    def solve(self, b):
        self.calls += 1
        self.columns += 1 if np.ndim(b) == 1 else b.shape[1]
        return self._inner.solve(b)


class CountingMatrix:
    """Matvec-counting wrapper mimicking a sparse operator's ``@``."""

    def __init__(self, A):
        self._A = A
        self.shape = A.shape
        self.calls = 0
        self.columns = 0

    def __matmul__(self, x):
        self.calls += 1
        self.columns += 1 if np.ndim(x) == 1 else x.shape[1]
        return self._A @ x


# ----------------------------------------------------------------------
# Measurements (module-scoped: one run feeds every assertion + report)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def timing_runs():
    configs = [("serial", None),
               ("threads-2", ParallelConfig("threads", workers=2)),
               ("threads-4", ParallelConfig("threads", workers=4))]
    rows = {}
    solvers = {}
    for label, cfg in configs:
        best_setup, best_total = np.inf, np.inf
        for _ in range(REPEATS):
            setup, total, solver = _setup_seconds(cfg)
            best_setup = min(best_setup, setup)
            best_total = min(best_total, total)
        rows[label] = (best_setup, best_total)
        solvers[label] = solver
    return rows, solvers


@pytest.fixture(scope="module")
def kernel_counts():
    """GenEO eigensolve call counts on one real subdomain pencil."""
    mesh, form = _problem()
    solver = SchwarzSolver(mesh, form, num_subdomains=N_SUB, delta=1,
                           nev=NEV, seed=0, partition_method="rcb")
    sub = max(solver.decomposition.subdomains, key=lambda s: s.size)
    A, B = geneo_pencil(sub)
    n = A.shape[0]
    import scipy.sparse as sp
    sigma = 1e-10 * float(np.mean(np.abs(A.diagonal())) + 1e-300)
    M = (A + sigma * sp.eye(n, format="csr")).tocsr()

    out = {}
    for name, driver in [("subspace", subspace_iteration),
                         ("lanczos", lanczos_generalized)]:
        Mf = CountingFactorization(factorize(M, "superlu"))
        Bc, Mc = CountingMatrix(B), CountingMatrix(M)
        res = driver(Bc, Mf, Mc, n, NEV, seed=sub.index)
        out[name] = dict(iterations=int(res.iterations),
                         solve_calls=Mf.calls,
                         solve_columns=Mf.columns,
                         m_matvec_calls=Mc.calls,
                         m_matvec_columns=Mc.columns,
                         b_matvec_calls=Bc.calls)
    out["n_local"] = n
    return out


@pytest.fixture(scope="module")
def report(timing_runs, kernel_counts):
    rows, solvers = timing_runs
    serial_setup = rows["serial"][0]
    body = []
    speedups = {}
    for label, (setup, total) in rows.items():
        sp_setup = serial_setup / setup if setup > 0 else float("nan")
        speedups[label] = sp_setup
        body.append([label, f"{setup:.3f}", f"{sp_setup:.2f}x",
                     f"{total:.3f}"])
    sub = kernel_counts["subspace"]
    loop_calls = sub["solve_columns"]         # what the per-column loop cost
    reduction = 1.0 - sub["solve_calls"] / max(loop_calls, 1)
    txt = table(["executor", "fact+defl (s)", "setup speedup", "total (s)"],
                body,
                title=f"SETUP PARALLEL (fig-10 2D, P{DEGREE}, N={N_SUB}, "
                      f"nev={NEV}, cpus={os.cpu_count()})")
    txt += (f"\n\nsubspace_iteration M-solves: {sub['solve_calls']} blocked "
            f"calls vs {loop_calls} per-column ({100 * reduction:.0f}% fewer "
            f"calls); lanczos M products/iter: "
            f"{kernel_counts['lanczos']['m_matvec_calls']} total for "
            f"{kernel_counts['lanczos']['iterations']} iterations")
    write_result("BENCH_setup_parallel", txt)
    # one instrumented setup for the payload's telemetry section: span
    # totals of every setup phase plus the per-subdomain task spans
    from repro.obs import Recorder, summary
    mesh, form = _problem()
    recorder = Recorder()
    SchwarzSolver(mesh, form, num_subdomains=N_SUB, delta=1, nev=NEV,
                  seed=0, partition_method="rcb",
                  parallel=ParallelConfig("threads", workers=2),
                  recorder=recorder)
    write_json("BENCH_setup_parallel", {
        "problem": {"figure": "fig10-2d", "mesh_n": MESH_N,
                    "degree": DEGREE, "num_subdomains": N_SUB,
                    "nev": NEV, "smoke": SMOKE,
                    "cpu_count": os.cpu_count()},
        "setup_seconds": {k: v[0] for k, v in rows.items()},
        "total_seconds": {k: v[1] for k, v in rows.items()},
        "setup_speedup": speedups,
        "geneo_kernels": kernel_counts,
        "subspace_solve_call_reduction": reduction,
        "telemetry": summary(recorder),
    })
    return rows, solvers, kernel_counts, speedups, reduction


# ----------------------------------------------------------------------
# Assertions
# ----------------------------------------------------------------------

def test_blocking_cuts_solve_calls(report):
    """≥ 30% fewer M_factor.solve calls than the per-column loop —
    deterministic: one blocked call replaces `block` vector calls."""
    *_, reduction = report
    assert reduction >= 0.30


def test_lanczos_m_products_constant_per_iteration(report):
    """Cached MV: O(1) M products per Lanczos iteration (the legacy full
    reorthogonalisation recomputed M @ V[:, j] for every settled j)."""
    _, _, counts, _, _ = report
    lz = counts["lanczos"]
    assert lz["m_matvec_calls"] <= 2 * lz["iterations"] + 2


def test_parallel_setup_results_identical(report):
    """The executor must not change the numbers, only the clock."""
    _, solvers, *_ = report
    ser, par = solvers["serial"], solvers["threads-4"]
    for Wa, Wb in zip(ser.deflation.W, par.deflation.W):
        assert np.array_equal(Wa, Wb)
    assert (ser.coarse.E != par.coarse.E).nnz == 0


def test_setup_speedup_on_multicore(report):
    """≥ 2× setup speedup with 4 threads — only meaningful with ≥ 4
    cores; single-core CI boxes record the numbers and skip."""
    *_, speedups, _ = report
    if (os.cpu_count() or 1) < 4:
        pytest.skip(f"needs >= 4 cores for the 2x claim, "
                    f"have {os.cpu_count()} (numbers recorded in JSON)")
    assert speedups["threads-4"] >= 2.0


def test_bench_parallel_deflation_phase(report, benchmark):
    """Kernel timed: the threads-4 setup (factorization + deflation)."""
    cfg = ParallelConfig("threads", workers=4)
    benchmark.pedantic(lambda: _setup_seconds(cfg), rounds=1, iterations=1)
