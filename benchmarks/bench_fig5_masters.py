"""Figure 5: electing the masters — uniform vs non-uniform distribution.

Paper: N = 16, P = 4.  Uniform election puts masters at ranks 0,4,8,12;
the non-uniform sequence p_i = ⌊N − √((p_{i−1}−N)² − N²/P) + 0.5⌋ puts
them at 0,2,5,8 so that each master's share of the *upper triangle* of E
(symmetric coarse operator) is roughly equal.
"""

import numpy as np
import pytest

from common import write_result
from repro.common.asciiplot import table
from repro.core import elect_masters_nonuniform, elect_masters_uniform, split_ranges


def triangle_counts(masters: np.ndarray, N: int) -> list[int]:
    """Upper-triangle rows owned per master (unit ν for clarity)."""
    bounds = np.concatenate([masters, [N]])
    return [int(sum(N - r for r in range(bounds[p], bounds[p + 1])))
            for p in range(len(masters))]


@pytest.fixture(scope="module")
def election_report():
    rows = []
    for N, P in ((16, 4), (64, 4), (256, 8), (1024, 16)):
        mu = elect_masters_uniform(N, P)
        mn = elect_masters_nonuniform(N, P)
        cu, cn = triangle_counts(mu, N), triangle_counts(mn, N)
        rows.append([f"{N}/{P}", str(mu.tolist() if N <= 64 else "..."),
                     f"{max(cu) / min(cu):.2f}",
                     str(mn.tolist() if N <= 64 else "..."),
                     f"{max(cn) / min(cn):.2f}"])
    txt = table(["N/P", "uniform masters", "imbal.",
                 "non-uniform masters", "imbal."], rows,
                title="FIGURE 5 — master election; imbalance = "
                      "max/min of per-master upper-triangle value counts")
    write_result("fig5_masters", txt)
    return rows


def test_fig5_paper_example(election_report):
    """The exact N=16, P=4 values drawn in the paper's figure 5."""
    assert elect_masters_uniform(16, 4).tolist() == [0, 4, 8, 12]
    assert elect_masters_nonuniform(16, 4).tolist() == [0, 2, 5, 8]


def test_fig5_nonuniform_balances_triangle(election_report):
    for N, P in ((64, 4), (256, 8), (1024, 16)):
        cu = triangle_counts(elect_masters_uniform(N, P), N)
        cn = triangle_counts(elect_masters_nonuniform(N, P), N)
        assert max(cn) / min(cn) < max(cu) / min(cu)
        assert max(cn) / min(cn) < 2.0


def test_fig5_split_ranges_partition_world(election_report):
    for N, P in ((16, 4), (100, 7)):
        ranges = split_ranges(elect_masters_nonuniform(N, P), N)
        assert np.array_equal(np.concatenate(ranges), np.arange(N))


def test_fig5_bench_election(benchmark):
    benchmark(elect_masters_nonuniform, 8192, 64)
