"""Ablation: what goes into the coarse space (ν sweep, GenEO vs
alternatives).

Sweeps the paper's design choices:

* ν (deflation vectors per subdomain, paper: 1-30): more vectors →
  fewer iterations, bigger E;
* coarse space construction: none / Nicolaides constants / a-posteriori
  Ritz / GenEO (eq. 9) — on a *high-contrast* problem only GenEO is
  fully robust;
* overlap width δ.
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.core import CoarseOperator, OneLevelRAS, TwoLevelADEF1, ritz_deflation
from repro.krylov import gmres

N = 16


@pytest.fixture(scope="module")
def problem():
    return diffusion_2d(n=48, degree=2, seed=1)


@pytest.fixture(scope="module")
def nu_sweep(problem):
    mesh, form, _ = problem
    rows = []
    for nev in (1, 2, 4, 8, 16):
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                               nev=nev, seed=0)
        report = solver.solve(tol=1e-8, restart=100, maxiter=300)
        rows.append((nev, solver.coarse_dim, report.iterations,
                     report.converged))
    return rows


@pytest.fixture(scope="module")
def space_comparison(problem):
    mesh, form, _ = problem
    rows = []
    for label, kwargs in (("none (one-level)", dict(levels=1)),
                          ("Nicolaides constants", dict(nev=0)),
                          ("GenEO nev=8", dict(nev=8))):
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                               seed=0, **kwargs)
        report = solver.solve(tol=1e-8, restart=100, maxiter=300)
        rows.append([label, solver.coarse_dim, report.iterations,
                     report.converged])
    # a-posteriori Ritz coarse space (paper's conclusion)
    solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                           levels=1, seed=0)
    dec, ras = solver.decomposition, solver.one_level
    b = solver.problem.rhs()
    space = ritz_deflation(dec, ras, b, n_vectors=24)
    pre = TwoLevelADEF1(ras, CoarseOperator(space))
    res = gmres(solver.problem.matrix(), b, M=pre.apply, tol=1e-8,
                restart=100, maxiter=300)
    rows.append(["a-posteriori Ritz (24 vec)", space.m, res.iterations,
                 res.converged])
    return rows


@pytest.fixture(scope="module")
def delta_sweep(problem):
    mesh, form, _ = problem
    rows = []
    for delta in (1, 2, 3):
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=delta,
                               nev=8, seed=0)
        report = solver.solve(tol=1e-8, restart=100, maxiter=300)
        maxloc = max(s.size for s in solver.decomposition.subdomains)
        rows.append((delta, maxloc, report.iterations, report.converged))
    return rows


@pytest.fixture(scope="module", autouse=True)
def write_tables(nu_sweep, space_comparison, delta_sweep):
    t1 = table(["nu", "dim(E)", "#it", "converged"],
               [list(r) for r in nu_sweep],
               title=f"ABLATION — deflation vectors per subdomain (N={N})")
    t2 = table(["coarse space", "dim", "#it", "converged"],
               space_comparison,
               title="ABLATION — coarse space construction")
    t3 = table(["delta", "max n_i", "#it", "converged"],
               [list(r) for r in delta_sweep],
               title="ABLATION — overlap width")
    write_result("ablation_coarse_space", "\n\n".join((t1, t2, t3)))


def test_more_vectors_fewer_iterations(nu_sweep):
    its = [r[2] for r in nu_sweep]
    assert its[-1] <= its[0]
    assert nu_sweep[-1][3]                     # largest ν converges

def test_dim_e_proportional_to_nu(nu_sweep):
    for nev, dim_e, _, _ in nu_sweep:
        assert dim_e == nev * N


def test_geneo_beats_nicolaides_on_high_contrast(space_comparison):
    by_label = {r[0]: r for r in space_comparison}
    geneo_its = by_label["GenEO nev=8"][2]
    nico_its = by_label["Nicolaides constants"][2]
    one_its = by_label["none (one-level)"][2]
    assert by_label["GenEO nev=8"][3]
    assert geneo_its <= nico_its
    assert geneo_its < one_its


def test_wider_overlap_not_worse(delta_sweep):
    its = [r[2] for r in delta_sweep]
    assert its[-1] <= its[0] + 2


def test_bench_decomposition_build(problem, benchmark):
    """Kernel timed: building the full overlapping decomposition."""
    from repro.dd import Decomposition, Problem
    from repro.partition import partition_mesh
    mesh, form, _ = problem
    prob = Problem(mesh, form, scaling="jacobi")
    part = partition_mesh(mesh, N, seed=0)

    def build():
        return Decomposition(prob, part, delta=1)

    benchmark.pedantic(build, rounds=3, iterations=1)
