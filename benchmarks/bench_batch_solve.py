"""Batched multi-RHS solve: block Krylov session vs looped single solves.

The paper's workloads re-solve one decomposed operator for many right-
hand sides (scaling sweeps, nonlinear/porous-media cases).  The looped
baseline pays per solve: a full Krylov iteration history where every
iteration does N single-vector local solves, one coarse solve and one
distributed matvec.  The :class:`repro.batch.SolveSession` batch path
pays per *block* iteration: one blocked local solve per subdomain
(BLAS-3 columns instead of BLAS-2 vectors), **one** coarse solve for
the whole block and one block matvec — and block GMRES needs fewer
iterations than the worst single column because all columns share the
Krylov information.

This benchmark times both paths on the same set-up solver for a 16-RHS
batch and asserts the ≥ 2× wall-clock speedup; it also runs two
successive recycled solves (:meth:`SolveSession.solve`) and asserts the
harvested-Ritz deflation reduces the second solve's iteration count.
Both numbers land in ``results/BENCH_batch_solve.json`` (the first
entry of the bench trajectory records looped *and* batched timings).

Run directly (CI smoke mode)::

    PYTHONPATH=src python benchmarks/bench_batch_solve.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import write_json, write_result  # noqa: E402

from repro import SchwarzSolver  # noqa: E402
from repro.common.asciiplot import table  # noqa: E402
from repro.fem import channels_and_inclusions  # noqa: E402
from repro.fem.forms import DiffusionForm  # noqa: E402
from repro.mesh import unit_square  # noqa: E402

MIN_SPEEDUP = 2.0
RHS = 16


def build_solver(smoke: bool) -> tuple[SchwarzSolver, float]:
    mesh_n = 20 if smoke else 32
    degree = 2 if smoke else 3
    nsub = 12 if smoke else 16
    nev = 6 if smoke else 8
    mesh = unit_square(mesh_n)
    kappa = channels_and_inclusions(mesh, seed=9)
    form = DiffusionForm(degree=degree, kappa=kappa)
    t0 = time.perf_counter()
    solver = SchwarzSolver(mesh, form, num_subdomains=nsub, delta=1,
                           nev=nev, seed=0, partition_method="rcb")
    return solver, time.perf_counter() - t0


def make_rhs(solver: SchwarzSolver, k: int) -> np.ndarray:
    """The assembled load plus perturbed companions — a multi-load-case
    batch with realistic column-to-column similarity."""
    b = solver.problem.rhs()
    rng = np.random.default_rng(3)
    cols = [b]
    for _ in range(k - 1):
        cols.append(b + 0.1 * np.linalg.norm(b)
                    * rng.standard_normal(b.shape[0]))
    return np.column_stack(cols)


def run(smoke: bool) -> int:
    tol = 1e-8
    solver, setup_s = build_solver(smoke)
    B = make_rhs(solver, RHS)

    # best-of-2 on both paths to keep CI timing noise out of the ratio
    looped_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        looped_iters = []
        for j in range(RHS):
            rep = solver.solve(B[:, j], tol=tol)
            assert rep.converged
            looped_iters.append(rep.iterations)
        looped_s = min(looped_s, time.perf_counter() - t0)

    # batched: one SolveSession block solve
    session = solver.session()
    batched_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        batch = session.solve_many(B, tol=tol)
        batched_s = min(batched_s, time.perf_counter() - t0)
    assert batch.converged
    speedup = looped_s / batched_s

    # recycling: two successive solves, Ritz harvest in between
    session2 = solver.session(recycle_dim=8)
    b = solver.problem.rhs()
    first = session2.solve(b, tol=tol)
    second = session2.solve(1.01 * b, tol=tol)

    rows = [
        ["dofs", solver.problem.space.num_dofs],
        ["subdomains", solver.decomposition.num_subdomains],
        ["coarse dim", solver.coarse_dim],
        ["right-hand sides", RHS],
        ["setup once", f"{setup_s:.3f} s"],
        ["looped 16 solves", f"{looped_s:.3f} s"],
        ["looped iterations", f"{min(looped_iters)}–{max(looped_iters)}"],
        ["batched solve_many", f"{batched_s:.3f} s"],
        ["block iterations", batch.iterations],
        ["speedup", f"{speedup:.2f}x (need >= {MIN_SPEEDUP:.1f}x)"],
        ["recycle: 1st solve", f"{first.iterations} it"],
        ["recycle: 2nd solve", f"{second.iterations} it "
                               f"(coarse dim {session2.coarse_dim})"],
    ]
    write_result("BENCH_batch_solve",
                 table(["quantity", "value"], rows,
                       title="batched multi-RHS solve vs looped baseline"))
    write_json("BENCH_batch_solve", {
        "rhs": RHS,
        "tol": tol,
        "smoke": smoke,
        "setup_seconds": setup_s,
        "looped_seconds": looped_s,
        "looped_iterations": looped_iters,
        "batched_seconds": batched_s,
        "block_iterations": int(batch.iterations),
        "column_iterations": [int(v) for v in batch.column_iterations],
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "recycle": {
            "first_iterations": int(first.iterations),
            "second_iterations": int(second.iterations),
            "coarse_dim_base": int(solver.coarse_dim),
            "coarse_dim_recycled": int(session2.coarse_dim),
        },
    })

    failures = []
    if speedup < MIN_SPEEDUP:
        failures.append(f"batched speedup {speedup:.2f}x below the "
                        f"{MIN_SPEEDUP:.1f}x floor")
    if second.iterations >= first.iterations:
        failures.append(
            f"recycling did not reduce iterations "
            f"({first.iterations} -> {second.iterations})")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="small problem for CI")
    args = ap.parse_args()
    return run(args.smoke)


if __name__ == "__main__":
    sys.exit(main())
