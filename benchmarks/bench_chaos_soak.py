"""Chaos soak: survival rate, checkpoint overhead, time-to-recover.

At the paper's scales (N = 256-8192 subdomains on Curie) the mean time
between node failures drops below a solve's wall clock, so fault
tolerance has to be demonstrated statistically, not anecdotally.  This
benchmark gates three claims about the fault-tolerant SPMD driver
(:func:`repro.core.spmd_ft.solve_spmd_ft`):

* **survival** — a seeded randomized campaign (kill / drop / delay /
  corrupt / drop-storm faults, rank- and time-pinned) over >= 50 smoke
  solves reaches at least a 95 % survival rate, and every survivor
  converged to tolerance;
* **checkpoint overhead** — the diskless neighbor checkpointing
  (``checkpoint_every=1``) costs at most 10 % of the fault-free solve
  time relative to running with checkpointing off;
* **transient absorption** — message drops below the retry budget
  complete with zero ``RankFailure`` raised and zero communicator
  repairs: the sender-side retry path absorbs them transparently.

Per-failure time-to-recover (communicator repair + state restore) is
recorded in the JSON payload alongside the campaign's fault totals.
A bounded flight-recorder dump of the campaign's last spans/events is
written next to the text artefact for CI upload.

Run directly (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_chaos_soak.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS, write_result, write_tracked_json  # noqa: E402
from repro.common.asciiplot import table  # noqa: E402
from repro.core.spmd_ft import solve_spmd_ft  # noqa: E402
from repro.mpi.meter import Meter  # noqa: E402
from repro.obs import Recorder  # noqa: E402
from repro.resilience import (  # noqa: E402
    ChaosConfig, FaultPlan, FaultSpec, RetryPolicy, build_problem,
    run_campaign)

SURVIVAL_FLOOR = 0.95
OVERHEAD_CEILING = 0.10


def measure_checkpoint_overhead(cfg: ChaosConfig, repeats: int) -> dict:
    """Median fault-free solve time with checkpointing on vs off.

    Medians over *repeats* runs each; the overhead is clamped at 0 (on a
    noisy machine "on" can measure faster than "off").
    """
    dec, space, b = build_problem(cfg)
    times = {0: [], 1: []}
    iters = {}
    ticks = 0
    for r in range(repeats):
        for every in (1, 0):           # interleave to decorrelate noise
            t0 = time.perf_counter()
            rep = solve_spmd_ft(
                dec, space, b, num_masters=cfg.num_masters, tol=cfg.tol,
                restart=cfg.restart, maxiter=cfg.maxiter,
                two_level=cfg.two_level, spares=0, checkpoint_every=every)
            times[every].append(time.perf_counter() - t0)
            iters[every] = rep.iterations
            assert rep.converged, \
                f"fault-free solve (checkpoint_every={every}) diverged"
            if every == 1:
                ticks = rep.checkpoint_ticks
    t_off = float(np.median(times[0]))
    t_on = float(np.median(times[1]))
    overhead = max(0.0, (t_on - t_off) / t_off)
    assert iters[0] == iters[1], (
        f"checkpointing changed the iteration count: "
        f"off={iters[0]}, on={iters[1]}")
    return {"t_off_s": t_off, "t_on_s": t_on, "overhead": overhead,
            "checkpoint_ticks": ticks, "repeats": repeats,
            "iterations": iters[1]}


def measure_transients(cfg: ChaosConfig, ndrops: int) -> dict:
    """Drops below the retry budget must be invisible: no RankFailure,
    no repair, bitwise-same answer as the fault-free run."""
    dec, space, b = build_problem(cfg)
    retry = RetryPolicy(max_retries=3, backoff=1e-4, max_backoff=2e-3)
    rng = np.random.default_rng(cfg.seed)
    # non-consecutive nth values on distinct ranks: each drop is a lone
    # transient, recovered by the first resend
    specs = [FaultSpec(kind="drop", op="send",
                       rank=int(r), nth=int(10 + 37 * i))
             for i, r in enumerate(
                 rng.choice(cfg.nranks, size=ndrops, replace=False))]
    plan = FaultPlan(faults=specs, seed=cfg.seed, timeout=cfg.timeout,
                     retry=retry)
    ref = solve_spmd_ft(dec, space, b, num_masters=cfg.num_masters,
                        tol=cfg.tol, restart=cfg.restart,
                        maxiter=cfg.maxiter, two_level=cfg.two_level,
                        spares=0, checkpoint_every=1)
    meter = Meter(dec.num_subdomains)
    rep = solve_spmd_ft(dec, space, b, num_masters=cfg.num_masters,
                        tol=cfg.tol, restart=cfg.restart,
                        maxiter=cfg.maxiter, two_level=cfg.two_level,
                        spares=1, checkpoint_every=1, faults=plan,
                        meter=meter)
    assert rep.converged, "transient-drop solve diverged"
    assert not rep.recoveries, (
        f"transient drops escalated to {len(rep.recoveries)} repair(s)")
    assert meter.repairs == 0 and meter.rank_deaths == 0
    assert meter.faults_by_kind().get("drop", 0) == ndrops
    assert meter.retries_recovered == ndrops, (
        f"expected {ndrops} recovered retries, got "
        f"{meter.retries_recovered}")
    assert meter.retries_exhausted == 0
    assert np.allclose(rep.x, ref.x), \
        "transient drops changed the solution"
    return {"drops": ndrops, "retries": meter.total_retries(),
            "retries_recovered": meter.retries_recovered,
            "iterations": rep.iterations}


def run(smoke: bool) -> dict:
    cfg = ChaosConfig(
        solves=50 if smoke else 120,
        nranks=6, seed=2013, spares=2, checkpoint_every=1,
        timeout=5.0, mesh_n=12 if smoke else 16)
    recorder = Recorder(ring=256)

    t0 = time.perf_counter()
    report = run_campaign(cfg, recorder=recorder)
    campaign_s = time.perf_counter() - t0
    d = report.to_dict()
    ttr = report.time_to_recover()

    failed = [r for r in report.records if not r["survived"]]
    for r in failed:
        print(f"  solve {r['solve']}: FAILED "
              f"({r['error'] or 'did not converge'}) "
              f"faults={[f['kind'] for f in r['planned_faults']]}")
    assert d["survival_rate"] >= SURVIVAL_FLOOR, (
        f"survival {d['survival_rate']:.1%} below the "
        f"{SURVIVAL_FLOOR:.0%} floor ({len(failed)} failed solves)")
    # survivors must be *converged* survivors, not merely "returned"
    for r in report.records:
        if r["survived"]:
            assert r["converged"], \
                f"solve {r['solve']} survived without converging"

    overhead = measure_checkpoint_overhead(cfg, repeats=5)
    assert overhead["overhead"] <= OVERHEAD_CEILING, (
        f"checkpoint overhead {overhead['overhead']:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%} (on={overhead['t_on_s'] * 1e3:.1f}ms, "
        f"off={overhead['t_off_s'] * 1e3:.1f}ms)")

    transients = measure_transients(cfg, ndrops=3)

    rows = [
        ["solves", d["solves"], ""],
        ["survived", d["survived"], f"{d['survival_rate']:.1%}"],
        ["faulted solves", d["faulted_solves"], ""],
        ["repairs", d["repairs"], ""],
        ["faults injected",
         sum(d["fault_totals"].values()),
         " ".join(f"{k}={v}"
                  for k, v in sorted(d["fault_totals"].items()))],
        ["TTR mean", f"{np.mean(ttr) * 1e3:.2f} ms" if ttr else "-",
         f"max {np.max(ttr) * 1e3:.2f} ms" if ttr else ""],
        ["ckpt overhead", f"{overhead['overhead']:.1%}",
         f"on={overhead['t_on_s'] * 1e3:.0f}ms "
         f"off={overhead['t_off_s'] * 1e3:.0f}ms"],
        ["transient drops", transients["drops"],
         f"{transients['retries_recovered']} recovered, 0 repairs"],
        ["campaign wall", f"{campaign_s:.1f} s", ""],
    ]
    txt = table(["metric", "value", "detail"], rows,
                title=f"CHAOS SOAK ({cfg.solves} solves x {cfg.nranks} "
                      f"ranks, seed {cfg.seed})")
    summary = (f"survival {d['survival_rate']:.1%} "
               f"(floor {SURVIVAL_FLOOR:.0%}), checkpoint overhead "
               f"{overhead['overhead']:.1%} (ceiling "
               f"{OVERHEAD_CEILING:.0%}), {d['repairs']} repairs over "
               f"{d['faulted_solves']} faulted solves")
    print(summary)

    payload = {
        "smoke": smoke,
        "config": {"solves": cfg.solves, "nranks": cfg.nranks,
                   "seed": cfg.seed, "spares": cfg.spares,
                   "checkpoint_every": cfg.checkpoint_every,
                   "mesh_n": cfg.mesh_n,
                   "rates": {"kill": cfg.kill_rate,
                             "drop": cfg.drop_rate,
                             "delay": cfg.delay_rate,
                             "corrupt": cfg.corrupt_rate,
                             "storm": cfg.storm_rate}},
        "survival": {"floor": SURVIVAL_FLOOR,
                     "solves": d["solves"],
                     "survived": d["survived"],
                     "rate": d["survival_rate"],
                     "faulted_solves": d["faulted_solves"],
                     "repairs": d["repairs"],
                     "fault_totals": d["fault_totals"]},
        "time_to_recover": d["time_to_recover"],
        "checkpoint_overhead": {**overhead,
                                "ceiling": OVERHEAD_CEILING},
        "transients": transients,
        "summary": summary,
    }
    write_result("chaos_soak", txt + "\n" + summary)
    write_tracked_json("BENCH_chaos_soak", payload)

    RESULTS.mkdir(exist_ok=True)
    flight = RESULTS / "chaos_flight.json"
    flight.write_text(json.dumps(recorder.flight_dump(), indent=2)
                      + "\n")
    print(f"[flight-recorder dump written to {flight}]")
    return payload


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (50 solves on a 12x12 mesh)")
    args = ap.parse_args(argv)
    run(args.smoke)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
