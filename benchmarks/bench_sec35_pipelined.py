"""§3.5: communication-avoiding multilevel preconditioners.

Paper claim: each iteration of the fused p1-GMRES performs a coarse
correction *without a single additional global communication or
synchronisation* — only one Iallreduce between the masters, overlapped
with the coarse solve.  Classical GMRES needs two blocking global
reductions per iteration on top of the correction's transfers.

Verified here at message level on the simulated MPI, with per-variant
counts of blocking global synchronisations and overlappable reductions.
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.core.spmd import solve_spmd
from repro.krylov import gmres, p1_gmres, s_step_gmres
from repro.mpi import Meter

N = 8
NEV = 8


@pytest.fixture(scope="module")
def sync_comparison():
    mesh, form, _ = diffusion_2d(n=40, degree=2, seed=5)
    solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                           nev=NEV, seed=0)
    b = solver.problem.rhs()
    dec, space = solver.decomposition, solver.deflation

    out = {}
    for label, method in (("classical GMRES", "gmres"),
                          ("fused p1-GMRES", "fused-p1")):
        meter = Meter(N)
        _, its, res, _ = solve_spmd(dec, space, b, num_masters=2,
                                    method=method, tol=1e-8, maxiter=120,
                                    meter=meter)
        out[label] = (its, res[-1], meter.summary(),
                      meter.total_collectives("iallreduce"))

    # sequential variants for the overlappable-reduction accounting
    A = solver.problem.matrix()
    r_seq = gmres(A, b, M=solver.preconditioner.apply, tol=1e-8,
                  restart=40, maxiter=120)
    r_p1 = p1_gmres(A, b, M=solver.preconditioner.apply, tol=1e-8,
                    restart=40, maxiter=120)
    r_ss = s_step_gmres(A, b, M=solver.preconditioner.apply, s=8,
                        tol=1e-8, maxiter=240)

    rows = []
    for label, (its, res, summ, nia) in out.items():
        rows.append([label, its, f"{res:.1e}",
                     summ["max_global_syncs"], nia, summ["messages"]])
    rows.append(["sequential GMRES (sync model)", r_seq.iterations, "-",
                 r_seq.global_syncs, 0, "-"])
    rows.append(["sequential p1-GMRES (sync model)", r_p1.iterations, "-",
                 r_p1.global_syncs, r_p1.overlapped_reductions, "-"])
    rows.append(["sequential s-step GMRES(8) (refs [9,10])",
                 r_ss.iterations, "-", r_ss.global_syncs, 0, "-"])
    txt = table(["variant", "#it", "residual", "blocking global syncs",
                 "overlapped (I)allreduce", "p2p msgs"], rows,
                title=f"§3.5 — synchronisation accounting "
                      f"(N={N}, 2 masters, two-level A-DEF1)")
    write_result("sec35_pipelined", txt)
    return out, r_seq, r_p1


def test_sec35_fused_eliminates_blocking_syncs(sync_comparison):
    out, *_ = sync_comparison
    its_g, _, summ_g, _ = out["classical GMRES"]
    its_f, res_f, summ_f, n_iallreduce = out["fused p1-GMRES"]
    # classical: ≥ 2 blocking reductions per iteration
    assert summ_g["max_global_syncs"] >= 2 * its_g
    # fused: a constant handful (setup + initial/final norms), NOT per-it
    assert summ_f["max_global_syncs"] <= 10
    # ... and one overlapped Iallreduce per masterComm rank per iteration
    assert n_iallreduce >= its_f
    assert res_f <= 1e-7


def test_sec35_same_krylov_convergence(sync_comparison):
    """'Both pipelined GMRES are performing approximately the same as
    the reference GMRES' (paper §3.5)."""
    out, r_seq, r_p1 = sync_comparison
    its_g = out["classical GMRES"][0]
    its_f = out["fused p1-GMRES"][0]
    assert abs(its_g - its_f) <= 4
    assert abs(r_seq.iterations - r_p1.iterations) <= 4


def test_sec35_bench_fused_iteration(sync_comparison, benchmark):
    """Kernel timed: the sequential p1-GMRES pipeline body."""
    mesh, form, _ = diffusion_2d(n=32, degree=2, seed=5)
    solver = SchwarzSolver(mesh, form, num_subdomains=4, delta=1,
                           nev=4, seed=0)
    A = solver.problem.matrix()
    b = solver.problem.rhs()

    def run():
        return p1_gmres(A, b, M=solver.preconditioner.apply, tol=1e-6,
                        restart=40, maxiter=60)

    benchmark.pedantic(run, rounds=3, iterations=1)
