"""Figure 1: GMRES convergence, "basic" vs "advanced" preconditioning.

Paper: 16 subdomains, heterogeneous problem, relative residual 10⁻⁸.
The basic (one-level) method is oblivious to the heterogeneities and
does not reach 10⁻⁸ within ~120 iterations; the advanced (GenEO A-DEF1)
method converges in a few tens of iterations.
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import semilogy


@pytest.fixture(scope="module")
def runs():
    mesh, form, _ = diffusion_2d(n=64, degree=2, seed=1)
    advanced = SchwarzSolver(mesh, form, num_subdomains=16, delta=1,
                             nev=12, seed=0, scaling=None)
    r_adv = advanced.solve(tol=1e-8, restart=300, maxiter=300)
    basic = SchwarzSolver(mesh, form, num_subdomains=16, delta=1,
                          levels=1, seed=0, scaling=None)
    r_bas = basic.solve(tol=1e-8, restart=300, maxiter=300)

    fig = semilogy({
        '"Basic" preconditioning (one-level RAS)': r_bas.residuals,
        '"Advanced" preconditioning (A-DEF1 + GenEO)': r_adv.residuals,
    }, ylabel="relative residual")
    write_result(
        "fig1_convergence",
        "FIGURE 1 — GMRES on 16 subdomains, heterogeneous diffusion "
        f"(contrast 3e6), tol 1e-8\n"
        f"advanced: {r_adv.iterations} its (converged={r_adv.converged}); "
        f"basic: {r_bas.iterations} its (converged={r_bas.converged})\n"
        + fig)
    return advanced, r_adv, basic, r_bas


def test_fig1_convergence_shape(runs):
    """The paper's headline: advanced converges far faster than basic."""
    advanced, r_adv, basic, r_bas = runs
    assert r_adv.converged
    assert r_adv.iterations <= 60
    # the basic method needs several times more iterations (it stalls on
    # the paper's problem; at laptop scale it limps)
    assert (not r_bas.converged) or r_bas.iterations > 2 * r_adv.iterations


def test_fig1_bench_adef1_apply(runs, benchmark):
    """Kernel timed: one A-DEF1 application (the per-iteration cost)."""
    advanced, r_adv, *_ = runs
    u = np.asarray(advanced.problem.rhs())
    benchmark(advanced.preconditioner.apply, u)
    benchmark.extra_info["iterations_advanced"] = r_adv.iterations
