"""Figure 8: strong scaling on heterogeneous elasticity.

Paper: fixed global systems (2.14·10⁹ dof 2D-P3, 294·10⁶ dof 3D-P2),
N = 1024 → 8192; columns factorization / deflation / solution / #it /
total.  Superlinear 3D speedup (≈10× on 8× the processes) because local
factorization + eigensolve cost grows superlinearly with the local size.

Here: fixed laptop-sized meshes, N = 4 → 32.  The *measured* columns are
the max per-subdomain local costs (the SPMD wall-clock); the solution
column adds modelled communication.  The fitted local-cost exponents are
then used to extrapolate a paper-scale table (N = 1024 → 8192).
"""

import numpy as np
import pytest

from common import elasticity_2d, elasticity_3d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.perfmodel import StrongScalingModel, measure_row, speedup

NS = (2, 4, 8, 16)
NEV = 12


def run_case(builder, label, degree_info, **kw):
    mesh, form, clamp = builder(**kw)
    rows = []
    for N in NS:
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                               nev=NEV, dirichlet=clamp, seed=0)
        rows.append(measure_row(solver, tol=1e-6, restart=40, maxiter=400))
    model = StrongScalingModel.fit(rows, nu=NEV)
    paper_rows = [model.predict(N) for N in (1024, 2048, 4096, 8192)]
    sp = speedup(rows)

    body = [[r.N, f"{r.factorization:.3f}", f"{r.deflation:.3f}",
             f"{r.solution:.3f}", r.iterations, f"{r.total:.3f}",
             f"{s:.2f}"] for r, s in zip(rows, sp)]
    txt = table(["N", "fact (s)", "defl (s)", "solve (s)", "#it",
                 "total (s)", "speedup"],
                body, title=f"FIGURE 8 ({label}, {degree_info}, "
                            f"{rows[0].dofs} dof) — measured")
    ptxt = table(
        ["N", "fact (s)", "defl (s)", "solve (s)", "#it", "total (s)"],
        [[r.N, f"{r.factorization:.4f}", f"{r.deflation:.4f}",
          f"{r.solution:.4f}", r.iterations, f"{r.total:.4f}"]
         for r in paper_rows],
        title=f"extrapolated to the paper's N (fitted local-cost "
              f"exponents: fact n^{model.factorization.b:.2f}, "
              f"defl n^{model.deflation.b:.2f})")
    return rows, model, txt + "\n\n" + ptxt


@pytest.fixture(scope="module")
def strong_runs():
    rows3, model3, txt3 = run_case(elasticity_3d, "3D elasticity",
                                   "P2, ~83 nnz/row", n=8)
    rows2, model2, txt2 = run_case(elasticity_2d, "2D elasticity",
                                   "P3, ~33 nnz/row", n=12)
    write_result("fig8_strong_scaling", txt3 + "\n\n" + txt2)
    return rows3, model3, rows2, model2


def test_fig8_iterations_scalable(strong_runs):
    """The GenEO claim: #it independent of N (paper: 20-28 across 8×)."""
    rows3, _, rows2, _ = strong_runs
    for rows in (rows3, rows2):
        its = [r.iterations for r in rows]
        assert max(its) <= 2.5 * min(its) + 5


def test_fig8_local_phases_shrink(strong_runs):
    """Strong scaling: the dominant local phases (factorization +
    deflation) shrink as subdomains get smaller."""
    rows3, _, rows2, _ = strong_runs
    for rows in (rows3, rows2):
        first = rows[0].factorization + rows[0].deflation
        last = rows[-1].factorization + rows[-1].deflation
        assert last < first / 2


def test_fig8_3d_superlinear_local_costs(strong_runs):
    """The paper's superlinear-speedup mechanism: 3D local factorization
    cost grows superlinearly with the local problem size.

    The timing fit wobbles on a shared single core (~0.85-1.1 across
    runs; keep a loose floor), so the mechanism itself is asserted
    deterministically through factor *fill*: nnz(LU)/dof of the largest
    local matrix strictly decreases as subdomains shrink — smaller local
    problems do superlinearly less factorization work."""
    _, model3, _, _ = strong_runs
    assert model3.factorization.b > 0.7

    from repro.solvers import factorize
    mesh, form, clamp = elasticity_3d(n=8)
    fills = []
    for N in (2, 16):
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                               nev=2, dirichlet=clamp, seed=0)
        big = max(solver.decomposition.subdomains, key=lambda s: s.size)
        fact = factorize(big.A_dir, "superlu")
        fills.append(fact.nnz_factor / big.size)
    assert fills[1] < fills[0]          # fill/dof drops with local size


def test_fig8_bench_local_factorization(strong_runs, benchmark):
    """Kernel timed: one local Dirichlet-matrix factorization."""
    from repro.solvers import factorize
    mesh, form, clamp = elasticity_3d(n=6)
    solver = SchwarzSolver(mesh, form, num_subdomains=8, delta=1, nev=2,
                           dirichlet=clamp, seed=0)
    A = solver.decomposition.subdomains[0].A_dir
    benchmark(factorize, A, "superlu")
