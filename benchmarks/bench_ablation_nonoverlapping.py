"""Ablation: the framework applied to non-overlapping methods (§3.1).

The paper claims its coarse-operator framework carries over to
substructuring, where E's block pattern is denser (distance-2
connectivity).  This bench runs the Schur-complement solver with
Neumann–Neumann preconditioning and three coarse spaces on the
high-contrast diffusion problem, and measures the block-density claim.
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro.common.asciiplot import table
from repro.dd import Decomposition, Problem
from repro.partition import partition_mesh
from repro.substructuring import SchurComplementSolver

N = 8


@pytest.fixture(scope="module")
def schur_runs():
    mesh, form, _ = diffusion_2d(n=24, degree=2, seed=2)
    prob = Problem(mesh, form)
    part = partition_mesh(mesh, N, seed=1)
    rows = []
    out = {}
    for coarse, kw in (("none", {}), ("constants", {}),
                       ("geneo", {"nev": 8})):
        s = SchurComplementSolver(prob, part, coarse=coarse, **kw)
        x, its = s.solve(tol=1e-8, maxiter=400)
        dim = s.deflation.E.shape[0] if s.deflation is not None else 0
        rows.append([coarse, dim, its])
        out[coarse] = (s, its)

    s_const = out["constants"][0]
    density = s_const.coarse_pattern_density()
    dec = Decomposition(prob, part, delta=1)
    overl = sum(len(sub.neighbors) + 1 for sub in dec.subdomains) / N ** 2
    txt = table(["coarse space", "dim(E)", "interface #it"], rows,
                title=f"ABLATION — non-overlapping Schur + Neumann-"
                      f"Neumann (N={N}, high-contrast diffusion)")
    txt += (f"\n\nE block density: non-overlapping {density:.2f} vs "
            f"overlapping {overl:.2f} (paper §3.1: denser pattern, "
            f"handled by the same framework)")
    write_result("ablation_nonoverlapping", txt)
    return out, density, overl


def test_coarse_levels_help_or_match(schur_runs):
    """With the balanced (BNN) composition the coarse levels never hurt
    and the balancing constants help (classical BDD behaviour)."""
    out, _, _ = schur_runs
    assert out["constants"][1] <= out["none"][1]
    assert out["geneo"][1] <= out["none"][1] + 4


def test_nonoverlapping_pattern_denser(schur_runs):
    _, density, overl = schur_runs
    assert density >= overl


def test_bench_schur_build(schur_runs, benchmark):
    mesh, form, _ = diffusion_2d(n=16, degree=2, seed=2)
    prob = Problem(mesh, form)
    part = partition_mesh(mesh, 4, seed=1)

    def build():
        return SchurComplementSolver(prob, part, coarse="geneo", nev=4)

    benchmark.pedantic(build, rounds=3, iterations=1)
