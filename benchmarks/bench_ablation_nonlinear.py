"""Ablation: GenEO coarse-space reuse across nonlinear (Picard) steps.

The paper's conclusion targets nonlinear solid mechanics; the expensive
ingredient of each frozen-coefficient linear solve is the *deflation*
column (local eigensolves).  This bench measures the trade-off between
rebuilding the GenEO space every Picard step, reusing the first step's
vectors (E re-assembled), and freezing the entire first preconditioner.
"""

import numpy as np
import pytest

from common import write_result
from repro.common.asciiplot import table
from repro.mesh import unit_square
from repro.nonlinear import PicardSolver


def kappa_of_u(u_cells, c):
    base = np.where(np.abs(c[:, 1] - 0.5) < 0.08, 1e4, 1.0)
    return base * (1.0 + 100.0 * u_cells ** 2)


@pytest.fixture(scope="module")
def strategies():
    mesh = unit_square(24)
    out = {}
    rows = []
    for strategy in ("rebuild", "reuse", "freeze"):
        solver = PicardSolver(mesh, kappa_of_u, f=10.0,
                              num_subdomains=8, nev=8, coarse=strategy)
        rep = solver.solve(picard_tol=1e-8, max_picard=40)
        out[strategy] = rep
        rows.append([strategy, rep.picard_iterations,
                     rep.total_linear_iterations,
                     rep.timer.counts.get("deflation", 0),
                     f"{rep.timer.seconds('deflation'):.2f}",
                     rep.converged])
    txt = table(["strategy", "Picard steps", "Σ linear its",
                 "GenEO solves", "GenEO time (s)", "converged"], rows,
                title="ABLATION — coarse-space reuse across Picard steps "
                      "(nonlinear heterogeneous diffusion)")
    write_result("ablation_nonlinear", txt)
    return out


def test_all_strategies_converge_to_same_fixed_point(strategies):
    xr = strategies["rebuild"].x
    for s in ("reuse", "freeze"):
        x = strategies[s].x
        assert strategies[s].converged
        assert np.linalg.norm(x - xr) <= 1e-4 * np.linalg.norm(xr)


def test_reuse_pays_one_deflation(strategies):
    assert strategies["reuse"].timer.counts["deflation"] == 1
    assert strategies["rebuild"].timer.counts["deflation"] == \
        strategies["rebuild"].picard_iterations


def test_reuse_linear_iterations_stay_flat(strategies):
    """The reused coarse space keeps working across Picard steps (the
    spectral content drifts slowly): no blow-up of linear iterations."""
    its = strategies["reuse"].linear_iterations
    assert max(its) <= min(its) + 6


def test_bench_picard_step(strategies, benchmark):
    mesh = unit_square(16)
    solver = PicardSolver(mesh, kappa_of_u, f=10.0,
                          num_subdomains=4, nev=4, coarse="reuse")

    def run():
        return solver.solve(picard_tol=1e-6, max_picard=10)

    benchmark.pedantic(run, rounds=3, iterations=1)
