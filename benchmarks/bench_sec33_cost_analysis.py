"""§3.3 cost analysis: the paper's message-count and size formulas,
asserted against the metered traffic of the real SPMD runs.

Claims checked:

* construction of E: each process exchanges exactly one message with
  each neighbour, of size ν × (overlap size with that neighbour);
* each slave sends its master ONE message of |O_i| + ν² + ν·Σ_{j∈O_i} ν_j
  doubles (the slaves allocate **no** indices);
* per correction: one Gather(v) + one Scatter(v) on each splitComm, and
  the eq. (12) exchange has the same sizes as a matvec;
* with uniform ν the collectives use equal counts → O(log N) scaling of
  the modelled cost, vs O(N) for the variable-count variant.
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.core.spmd import assemble_coarse_spmd
from repro.mpi import Meter, run_spmd
from repro.perfmodel import CURIE

N = 12
NEV = 6
P = 3


@pytest.fixture(scope="module")
def assembly_meter():
    mesh, form, _ = diffusion_2d(n=32, degree=2)
    solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                           nev=NEV, seed=0)
    dec, space = solver.decomposition, solver.deflation
    meter = Meter(N)
    run_spmd(N, lambda comm: assemble_coarse_spmd(comm, dec, space, P)
             and None, meter=meter)

    rows = []
    for i, s in enumerate(dec.subdomains):
        stats = meter.stats(i)
        overlap = sum(s.shared[j].size for j in s.neighbors)
        predicted_neighbor_bytes = 8 * NEV * overlap
        rows.append([i, len(s.neighbors), stats.sends, stats.send_bytes,
                     predicted_neighbor_bytes])
    txt = table(["rank", "|O_i|", "msgs sent", "bytes sent",
                 "predicted 8·ν·overlap"], rows,
                title=f"§3.3 — metered assembly traffic "
                      f"(N={N}, P={P}, ν={NEV})")
    write_result("sec33_cost_analysis", txt)
    return solver, meter


def test_sec33_one_message_per_neighbor_plus_master(assembly_meter):
    """During setup rank i sends |O_i| neighbour messages (+1 to its
    master if it is a slave, + masterComm traffic if it is a master)."""
    solver, meter = assembly_meter
    dec = solver.decomposition
    from repro.core import elect_masters_uniform
    masters = set(elect_masters_uniform(N, P).tolist())
    for i, s in enumerate(dec.subdomains):
        sends = meter.stats(i).sends
        if i in masters:
            assert sends >= len(s.neighbors)
        else:
            # |O_i| neighbour sends + 1 packed message to the master
            assert sends == len(s.neighbors) + 1


def test_sec33_slave_message_size_formula(assembly_meter):
    """Eq. (11): slave i ships |O_i| + ν² + ν Σ_{j∈O_i} ν_j doubles."""
    solver, meter = assembly_meter
    dec = solver.decomposition
    from repro.core import elect_masters_uniform
    masters = set(elect_masters_uniform(N, P).tolist())
    for i, s in enumerate(dec.subdomains):
        if i in masters:
            continue
        stats = meter.stats(i)
        overlap_bytes = 8 * NEV * sum(s.shared[j].size
                                      for j in s.neighbors)
        slave_msg = 8 * (len(s.neighbors) + NEV * NEV
                         + NEV * NEV * len(s.neighbors))
        assert stats.send_bytes == overlap_bytes + slave_msg


def test_sec33_no_indices_sent_by_slaves(assembly_meter):
    """The §3.1.1 optimisation: slaves send only double values — their
    byte counts exactly match the value-only formula above (an
    index-carrying protocol would send ≥ 2x more)."""
    solver, meter = assembly_meter
    # covered quantitatively by the previous test; here check the
    # aggregate is far below the index-carrying (natural) protocol
    values_only = meter.total_bytes()
    # natural protocol: per nnz also a row + column int (8 bytes each)
    natural_estimate = values_only * 2
    assert values_only < natural_estimate


def test_sec33_uniform_counts_scale_logarithmically():
    """MPI_Allreduce(ν, MAX) makes fixed-count collectives possible:
    modelled cost O(log N) vs O(N) for Gatherv (paper's remark)."""
    c_fixed = [CURIE.collective("gather", 8 * NEV, n)
               for n in (64, 1024)]
    c_var = [CURIE.collective("gatherv", 8 * NEV, n)
             for n in (64, 1024)]
    assert c_fixed[1] / c_fixed[0] < 3          # ~ log ratio
    assert c_var[1] / c_var[0] > 10             # ~ linear ratio


def test_sec33_bench_exchange(assembly_meter, benchmark):
    """Kernel timed: one neighbour exchange (the matvec's comm pattern,
    sequential replay)."""
    solver, _ = assembly_meter
    dec = solver.decomposition
    x_list = dec.restrict(np.ones(dec.problem.num_free))
    benchmark(dec.exchange_sum, x_list)
