"""Ablation: swappable numerical backends.

The paper treats direct solvers as interchangeable (MUMPS, PaStiX, two
PARDISOs, WSMP behind one interface) and computes eigenvectors with
ARPACK.  This bench swaps this package's equivalents — four local
factorization backends and two eigensolvers — on the same subdomain
matrices, verifying identical numerics and comparing cost profiles.
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.common.timing import Timer
from repro.core import compute_deflation
from repro.solvers import BACKENDS, factorize


@pytest.fixture(scope="module")
def subdomain_matrix():
    mesh, form, _ = diffusion_2d(n=40, degree=2, seed=1)
    solver = SchwarzSolver(mesh, form, num_subdomains=4, nev=2, seed=0)
    sub = solver.decomposition.subdomains[0]
    return solver, sub


@pytest.fixture(scope="module")
def backend_table(subdomain_matrix):
    _, sub = subdomain_matrix
    A = sub.A_dir
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.shape[0])
    rows = []
    sols = {}
    for method in BACKENDS:
        with Timer() as t_f:
            fact = factorize(A, method)
        with Timer() as t_s:
            x = fact.solve(b)
        sols[method] = x
        rows.append([method, A.shape[0], fact.nnz_factor,
                     f"{t_f.elapsed * 1e3:.1f} ms",
                     f"{t_s.elapsed * 1e3:.2f} ms"])
    txt = table(["backend", "n", "nnz(factors)", "factorize", "solve"],
                rows,
                title="ABLATION — local direct-solver backends "
                      "(the paper's MUMPS/PARDISO/PaStiX/WSMP role)")
    write_result("ablation_backends", txt)
    return sols


def test_all_backends_agree(backend_table):
    sols = backend_table
    ref = sols["superlu"]
    for method, x in sols.items():
        assert np.allclose(x, ref, atol=1e-8 * max(abs(ref).max(), 1e-300)), \
            method


def test_eigensolvers_agree(subdomain_matrix):
    """The from-scratch Lanczos (ARPACK role) matches scipy's eigsh on
    the GenEO pencil."""
    _, sub = subdomain_matrix
    r1 = compute_deflation(sub, nev=6, method="lanczos")
    r2 = compute_deflation(sub, nev=6, method="scipy")
    # both solvers stop at a 1e-8 residual; compare eigenvalues with a
    # tolerance matching that stopping criterion (they typically agree
    # to ~1e-8 relative, but marginal convergence can leave ~1e-5)
    scale = np.abs(r2.eigenvalues).max()
    assert np.allclose(r1.eigenvalues, r2.eigenvalues,
                       rtol=1e-4, atol=1e-8 * scale)


def test_solver_end_to_end_backend_swap(subdomain_matrix):
    """The full two-level solve converges identically whichever local
    backend factorises the subdomain matrices."""
    solver, _ = subdomain_matrix
    mesh = solver.problem.mesh
    form = solver.problem.form
    its = {}
    for backend in ("superlu", "band"):
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=4,
                          backend=backend, seed=0)
        r = s.solve(tol=1e-8, maxiter=200)
        assert r.converged
        its[backend] = r.iterations
    assert abs(its["superlu"] - its["band"]) <= 1


def test_bench_band_backend(subdomain_matrix, benchmark):
    _, sub = subdomain_matrix
    benchmark(factorize, sub.A_dir, "band")
