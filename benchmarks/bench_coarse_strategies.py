"""Coarse-solve strategy shoot-out: dense vs sparse vs multilevel.

The scaling wall of §3.4 is the coarse solve: at paper N the dense
distributed Cholesky on the masters serialises in its panel broadcasts.
This benchmark measures all three registered strategies on the same
coarse operators and extends the table to the paper's N with the α–β
cost models (:mod:`repro.perfmodel.coarse_costs`):

* **dense** is measured in its at-scale realisation — the block-row
  :class:`~repro.solvers.distributed.DistributedCholesky` over the
  simulated MPI masterComm, with the panel/substitution bytes metered;
* **sparse** is measured as the sequential solve handle the strategy
  actually builds (the MUMPS-regime masters would divide that work);
* **multilevel** is measured sequentially and reported as its SPMD
  wall-clock estimate — sequential time / P₂ plus the modelled inner
  reductions — the same convention the figure-8/10 harness uses for
  every concurrent phase (``measure_row``: solution = t_seq / N +
  modelled communication).  The raw sequential seconds are kept in the
  JSON;
* outer-iteration parity is checked by solving the full problem at
  tol 1e-8 under every strategy (inexact coarse solves must not cost
  more than a handful of extra outer iterations);
* the measured rows are extended to simulated N ≥ 1024 with the
  per-strategy cost models and per-strategy power-law fits of the
  measured times.

Run directly (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_coarse_strategies.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import diffusion_2d, write_result, write_tracked_json  # noqa: E402
from repro import SchwarzSolver  # noqa: E402
from repro.common.asciiplot import table  # noqa: E402
from repro.core.coarse_strategies import MultilevelCoarseSolve  # noqa: E402
from repro.mpi import Meter, run_spmd  # noqa: E402
from repro.perfmodel import CURIE, fit_power_law, strategy_cost  # noqa: E402
from repro.solvers import factorize  # noqa: E402
from repro.solvers.distributed import DistributedCholesky  # noqa: E402

NEV = 8
STRATEGIES = ("dense", "sparse", "multilevel")
#: modelled scale-out decompositions (the paper's range)
MODEL_NS = (128, 256, 512, 1024, 2048)


def measure_dense_distributed(E, P: int, repeats: int):
    """Factorise + solve E with the at-scale dense realisation: the
    block-row distributed Cholesky over P simulated masters.  Returns
    (t_factorize, t_solve, bytes_factorize, bytes_solve_per_rhs)."""
    dim = E.shape[0]
    Ed = E.toarray()
    row_starts = (np.arange(P + 1) * dim) // P
    rng = np.random.default_rng(0)
    b = rng.standard_normal(dim)
    meter = Meter(P)

    def rank_main(comm):
        p = comm.rank
        r0, r1 = int(row_starts[p]), int(row_starts[p + 1])
        comm.barrier()
        t0 = time.perf_counter()
        dc = DistributedCholesky(comm, row_starts, Ed[r0:r1])
        comm.barrier()
        t1 = time.perf_counter()
        for _ in range(repeats):
            dc.solve(b[r0:r1])
        comm.barrier()
        t2 = time.perf_counter()
        return (t1 - t0, (t2 - t1) / repeats,
                dc.bytes_factorize, dc.bytes_solve / repeats)

    out = run_spmd(P, rank_main, meter=meter)
    t_fact = max(r[0] for r in out)
    t_solve = max(r[1] for r in out)
    bytes_fact = sum(r[2] for r in out)
    bytes_solve = sum(r[3] for r in out)
    return t_fact, t_solve, bytes_fact, bytes_solve


def measure_sequential(build, repeats: int, dim: int):
    """Time build() + repeated solves of the handle it returns."""
    rng = np.random.default_rng(0)
    b = rng.standard_normal(dim)
    t0 = time.perf_counter()
    handle = build()
    t1 = time.perf_counter()
    for _ in range(repeats):
        handle.solve(b)
    t2 = time.perf_counter()
    return handle, t1 - t0, (t2 - t1) / repeats


def run(smoke: bool) -> dict:
    NS = (8, 16, 32) if smoke else (8, 16, 32, 64)
    repeats = 5 if smoke else 20
    mesh, form, clamp = diffusion_2d(n=32 if smoke else 48,
                                     degree=2 if smoke else 3)

    rows = []          # measured table rows
    iters = {}         # strategy -> [outer iterations per N]
    measured = {s: {"N": [], "t_solve": [], "t_fact": [], "bytes": []}
                for s in STRATEGIES}
    for N in NS:
        per_n = {}
        for strat in STRATEGIES:
            kry = "fgmres" if strat == "multilevel" else "gmres"
            solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                                   nev=NEV, dirichlet=clamp, seed=0,
                                   krylov=kry, coarse_strategy=strat)
            report = solver.solve(tol=1e-8, maxiter=400)
            iters.setdefault(strat, []).append(report.iterations)
            coarse = solver.coarse
            E = coarse.E
            dim = E.shape[0]
            P = max(2, N // 8)
            if strat == "dense":
                t_fact, t_solve, b_fact, b_solve = \
                    measure_dense_distributed(E, P, repeats)
            elif strat == "sparse":
                _, t_fact, t_solve = measure_sequential(
                    lambda E=E: factorize(E.tocsc(), "superlu"),
                    repeats, dim)
                b_fact = 0
                b_solve = 2.0 * 8.0 * dim      # gather/scatter plumbing
            else:
                space = solver.deflation
                nbrs = [list(s.neighbors)
                        for s in space.dec.subdomains]
                handle, t_fact, t_seq = measure_sequential(
                    lambda E=E, sp=space, nb=nbrs: MultilevelCoarseSolve(
                        E, sp.offsets, nb), repeats, dim)
                # SPMD wall-clock: the level-2 parts run concurrently
                # (fig. 8/10 convention: sequential time / ranks +
                # modelled communication of the inner iterations)
                parts = handle.num_parts
                t_solve = t_seq / parts + handle.inner_iters * (
                    CURIE.collective("allreduce", 64, parts)
                    + CURIE.p2p(8.0 * NEV, messages=2))
                measured[strat].setdefault("t_seq", []).append(t_seq)
                b_fact = 0
                b_solve = strategy_cost("multilevel", N, NEV).bytes_solve
            per_n[strat] = (t_solve, report.iterations)
            measured[strat]["N"].append(N)
            measured[strat]["t_solve"].append(t_solve)
            measured[strat]["t_fact"].append(t_fact)
            measured[strat]["bytes"].append(b_fact + b_solve)
            modelled = strategy_cost(strat, N, NEV)
            rows.append([strat, N, P, dim, int(E.nnz),
                         int(coarse.nnz_factor()),
                         report.iterations,
                         f"{t_fact * 1e3:.2f}", f"{t_solve * 1e6:.0f}",
                         f"{modelled.t_solve * 1e6:.0f}",
                         f"{(b_fact + b_solve) / 1e3:.1f}"])
        print(f"[N={N}] solve us/iter: " + ", ".join(
            f"{s}={per_n[s][0] * 1e6:.0f}" for s in STRATEGIES))

    txt_measured = table(
        ["strategy", "N", "P", "dim(E)", "nnz(E)", "nnz(fact)", "outer it",
         "t_fact ms", "t_solve us", "model us", "KB moved"],
        rows, title="COARSE STRATEGIES (measured, simulated MPI)")

    # -- scale-out: power-law fits of the measured solves + cost model --
    fits = {s: fit_power_law(measured[s]["N"], measured[s]["t_solve"])
            for s in STRATEGIES}
    model_rows = []
    for N in MODEL_NS:
        for s in STRATEGIES:
            c = strategy_cost(s, N, NEV)
            model_rows.append([s, N, c.P, c.dim,
                               f"{fits[s](N) * 1e3:.2f}",
                               f"{c.t_solve * 1e3:.3f}",
                               f"{c.t_factorize:.3f}",
                               f"{c.bytes_solve / 1e3:.1f}"])
    txt_model = table(
        ["strategy", "N", "P", "dim(E)", "fit ms", "model ms",
         "model fact s", "model KB/solve"],
        model_rows,
        title="COARSE STRATEGIES (weak scale-out to paper N, modelled)")

    largest = NS[-1]
    dense_t = measured["dense"]["t_solve"][-1]
    winners = {s: measured[s]["t_solve"][-1] for s in ("sparse",
                                                       "multilevel")}
    # acceptance: at the largest benched N the multilevel strategy beats
    # the dense distributed solve, with outer iterations within +5
    assert winners["multilevel"] < dense_t, (
        f"multilevel did not beat dense at N={largest}: "
        f"dense={dense_t:.2e}s, multilevel={winners['multilevel']:.2e}s")
    assert min(winners.values()) < dense_t, (
        f"no strategy beat dense at N={largest}: dense={dense_t:.2e}s, "
        f"others={winners}")
    for s in STRATEGIES:
        assert iters[s][-1] <= iters["dense"][-1] + 5, (
            f"{s} outer iterations {iters[s][-1]} exceed dense "
            f"{iters['dense'][-1]} + 5 at N={largest}")
    verdict = min(winners, key=winners.get)
    summary = (f"at N={largest}: dense={dense_t * 1e6:.0f}us, "
               + ", ".join(f"{s}={t * 1e6:.0f}us"
                           for s, t in winners.items())
               + f" -> {verdict} wins; outer iterations "
               + str({s: iters[s][-1] for s in STRATEGIES}))
    print(summary)

    payload = {
        "workload": "diffusion_2d", "nev": NEV, "smoke": smoke,
        "Ns": list(NS), "model_Ns": list(MODEL_NS),
        "measured": measured,
        "iterations": iters,
        "powerlaw_fits": {s: {"a": fits[s].a, "b": fits[s].b}
                          for s in STRATEGIES},
        "modelled": [
            {"strategy": s, "N": N,
             **{k: getattr(strategy_cost(s, N, NEV), k)
                for k in ("P", "dim", "nnz", "nnz_factor", "t_factorize",
                          "t_solve", "bytes_solve")}}
            for N in MODEL_NS for s in STRATEGIES],
        "winner_at_largest_N": verdict,
        "summary": summary,
    }
    write_result("coarse_strategies", txt_measured + "\n\n" + txt_model
                 + "\n\n" + summary)
    write_tracked_json("BENCH_coarse_strategies", payload)
    return payload


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (N up to 32, fewer repeats)")
    args = ap.parse_args(argv)
    run(args.smoke)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
