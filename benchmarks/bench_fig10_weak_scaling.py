"""Figure 10: weak scaling on heterogeneous diffusion.

Paper: constant dofs per subdomain (280 K in 3D-P2, 2.7 M in 2D-P4),
N = 256 → 8192.  Efficiency stays ≈90 % (3D) / ≈96 % (2D) because the
per-subdomain factorization and deflation costs are constant and the
iteration count stays flat (13–20 in 3D, 25–29 in 2D).

Here: each refinement multiplies the cell count by 4 (2D) / 8 (3D) and N
grows by the same factor, keeping dofs/N constant.  Efficiency is
computed with the paper's formula from measured local phases + modelled
communication.
"""

import numpy as np
import pytest

from common import write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import refine_uniform, unit_cube, unit_square
from repro.perfmodel import measure_row, weak_efficiency

NEV = 8


def run_weak(meshes_and_N, degree, label, seed=9):
    rows = []
    maxloc = []
    for mesh, N in meshes_and_N:
        kappa = channels_and_inclusions(mesh, seed=seed)
        form = DiffusionForm(degree=degree, kappa=kappa)
        # geometric partitioning: near-perfect balance, mirroring the
        # paper's "almost no variability in the factorization" remark
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                               nev=NEV, seed=0, partition_method="rcb")
        rows.append(measure_row(solver, tol=1e-6, restart=60, maxiter=400))
        maxloc.append(max(s.size for s in solver.decomposition.subdomains))
    eff = weak_efficiency(rows)
    # at laptop scale the δ=1 overlap shell is a large fraction of each
    # subdomain (paper: 280k-dof subdomains, shell ≈ 3%; here ≈ 50-200%),
    # so we also report efficiency normalised by the *actual* largest
    # local problem each scale has to factorise
    eff_norm = [
        (rows[0].total * m) / (r.total * maxloc[0])
        for r, m in zip(rows, maxloc)]
    body = [[r.N, r.dofs, r.dofs // r.N, m, f"{r.factorization:.3f}",
             f"{r.deflation:.3f}", f"{r.solution:.3f}", r.iterations,
             f"{r.total:.3f}", f"{100 * e:.0f}%", f"{100 * en:.0f}%"]
            for r, e, en, m in zip(rows, eff, eff_norm, maxloc)]
    txt = table(["N", "#dof", "dof/N", "max n_i", "fact (s)", "defl (s)",
                 "solve (s)", "#it", "total (s)", "efficiency",
                 "shell-normalised"], body,
                title=f"FIGURE 10 ({label})")
    return rows, (eff, eff_norm), txt


@pytest.fixture(scope="module")
def weak_runs():
    # the base N is chosen "interior-like" (subdomains with neighbours
    # on all sides) so the overlap-shell fraction matches at every scale
    # — the analogue of the paper starting its sweep at N = 256
    m3 = unit_cube(6)
    meshes_3d = [(m3, 27), (refine_uniform(m3, 1), 216)]
    rows3, eff3, txt3 = run_weak(meshes_3d, 2, "3D diffusion, P2, "
                                               "~27 nnz/row")
    m2 = unit_square(16)
    meshes_2d = [(m2, 16), (refine_uniform(m2, 1), 64),
                 (refine_uniform(m2, 2), 256)]
    rows2, eff2, txt2 = run_weak(meshes_2d, 4, "2D diffusion, P4, "
                                               "~23 nnz/row")
    write_result("fig10_weak_scaling",
                 txt3 + "\n\n" + txt2 +
                 "\n\npaper: eff ≈ 90% (3D), ≈ 96% (2D); "
                 "#it 13-20 (3D), 25-29 (2D), flat across 32x more ranks")
    return rows3, eff3, rows2, eff2


def test_fig10_iterations_flat(weak_runs):
    """Iteration counts must not grow with N (GenEO scalability)."""
    rows3, _, rows2, _ = weak_runs
    for rows in (rows3, rows2):
        its = [r.iterations for r in rows]
        assert max(its) <= 2 * min(its) + 6


def test_fig10_local_phases_constant(weak_runs):
    """Constant work per subdomain: max local factorization + deflation
    stays within a factor ~2.5 across the sweep (paper: flat columns)."""
    rows3, _, rows2, _ = weak_runs
    for rows in (rows3, rows2):
        loc = [r.factorization + r.deflation for r in rows]
        assert max(loc) <= 2.5 * min(loc)


def test_fig10_efficiency_reasonable(weak_runs):
    """Paper reports ≈90-96 % at 280k-2.7M dof/subdomain.  At ~100-500
    dof/subdomain the δ=1 overlap shell dominates the local problem, so
    the raw floor is conservative; the shell-normalised efficiency (per
    actual local dof factorised) must stay high."""
    _, (eff3, norm3), _, (eff2, norm2) = weak_runs
    assert eff2[-1] > 0.5          # 2D shells are thin even at this scale
    assert eff3[-1] > 0.2
    assert norm3[-1] > 0.4
    assert norm2[-1] > 0.45


def test_fig10_bench_local_solve_phase(weak_runs, benchmark):
    """Kernel timed: one RAS application on the largest 2D weak run."""
    mesh = refine_uniform(unit_square(12), 1)
    kappa = channels_and_inclusions(mesh, seed=9)
    solver = SchwarzSolver(mesh, DiffusionForm(degree=4, kappa=kappa),
                           num_subdomains=8, delta=1, nev=NEV, seed=0)
    b = solver.problem.rhs()
    benchmark(solver.one_level.apply, b)
