"""Figure 11: assembling and factorising the coarse operator E.

Paper columns (per N, for the diffusion and elasticity workloads):
P (masters), dim(E), average |O_i|, nnz(E⁻¹), assembly+factorization
time.  Qualitative shape: 3D coarse operators are denser than 2D
(|O_i| ≈ 12-15 vs ≈ 5.5-5.9), nnz(E⁻¹) grows superlinearly with N, and
assembly time creeps up with N.

Here algorithms 1–2 run literally over the simulated MPI (the masters
assemble only values sent by the slaves), traffic is metered, and the
reported time combines modelled communication with a dense-panel
factorization flop model.
"""

import numpy as np
import pytest

from common import diffusion_2d, diffusion_3d, elasticity_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.perfmodel import coarse_operator_report

NS = (8, 16, 32)
NEV = 8


def run_case(builder, label, **kw):
    mesh, form, clamp = builder(**kw)
    reports = []
    neigh = []
    for N in NS:
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                               nev=NEV, dirichlet=clamp, seed=0)
        P = max(1, N // 8)
        reports.append(coarse_operator_report(solver, num_masters=P))
        neigh.append(solver.decomposition.neighbor_counts().mean())
    body = [[r.N, r.P, r.dim_e, f"{r.avg_neighbors:.1f}",
             r.nnz_factor, f"{r.time * 1e3:.2f} ms"] for r in reports]
    txt = table(["N", "P", "dim(E)", "|O_i| (avg)", "nnz(E^-1)", "time"],
                body, title=f"FIGURE 11 ({label})")
    return reports, txt


@pytest.fixture(scope="module")
def coarse_reports():
    rep3, txt3 = run_case(diffusion_3d, "3D diffusion", n=6)
    rep2, txt2 = run_case(diffusion_2d, "2D diffusion", n=32, degree=2)
    repe, txte = run_case(elasticity_2d, "2D elasticity", n=6, degree=2)
    write_result("fig11_coarse_operator",
                 txt3 + "\n\n" + txt2 + "\n\n" + txte +
                 "\n\npaper shape: |O_i| ≈ 12-15 (3D) vs ≈ 5.5-5.9 (2D); "
                 "nnz(E^-1) and time grow with N")
    return rep3, rep2, repe


def test_fig11_dim_e_is_sum_nu(coarse_reports):
    rep3, rep2, _ = coarse_reports
    for reports in (rep3, rep2):
        for r in reports:
            assert r.dim_e == NEV * r.N


def test_fig11_3d_denser_than_2d(coarse_reports):
    """The paper's headline contrast: 3D connectivity |O_i| ≈ 13 vs 2D
    ≈ 5.7 (at laptop scale the gap is smaller but the ordering holds)."""
    rep3, rep2, _ = coarse_reports
    assert rep3[-1].avg_neighbors > rep2[-1].avg_neighbors


def test_fig11_nnz_grows_with_n(coarse_reports):
    for reports in coarse_reports:
        nnz = [r.nnz_factor for r in reports]
        assert nnz[-1] > nnz[0]


def test_fig11_bench_spmd_assembly(coarse_reports, benchmark):
    """Kernel timed: the full SPMD run of algorithms 1-2 (16 ranks,
    2 masters) including the cooperative factorization."""
    from repro.core.spmd import assemble_coarse_spmd
    from repro.mpi import run_spmd

    mesh, form, _ = diffusion_2d(n=32, degree=2)
    solver = SchwarzSolver(mesh, form, num_subdomains=16, delta=1,
                           nev=NEV, seed=0)
    dec, space = solver.decomposition, solver.deflation

    def assemble():
        run_spmd(16, lambda comm: assemble_coarse_spmd(
            comm, dec, space, 2) and None)

    benchmark.pedantic(assemble, rounds=3, iterations=1)
