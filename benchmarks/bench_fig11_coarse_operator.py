"""Figure 11: assembling and factorising the coarse operator E.

Paper columns (per N, for the diffusion and elasticity workloads):
P (masters), dim(E), average |O_i|, nnz(E⁻¹), assembly+factorization
time.  Qualitative shape: 3D coarse operators are denser than 2D
(|O_i| ≈ 12-15 vs ≈ 5.5-5.9), nnz(E⁻¹) grows superlinearly with N, and
assembly time creeps up with N.

Here algorithms 1–2 run literally over the simulated MPI (the masters
assemble only values sent by the slaves), traffic is metered, and the
reported time combines modelled communication with a per-strategy
factorization flop model: the sweep over coarse strategies shows where
the dense masters' Cholesky stops scaling (dim³ panel rounds) while
sparse/multilevel keep going (nnz-bounded fill).
"""

import numpy as np
import pytest

from common import diffusion_2d, diffusion_3d, elasticity_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table
from repro.perfmodel import coarse_operator_report

NS = (8, 16, 32)
NEV = 8
STRATEGIES = ("dense", "sparse", "multilevel")


def run_case(builder, label, strategies=("dense",), **kw):
    mesh, form, clamp = builder(**kw)
    reports = []
    neigh = []
    for N in NS:
        for strat in strategies:
            kry = "fgmres" if strat == "multilevel" else "gmres"
            solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                                   nev=NEV, dirichlet=clamp, seed=0,
                                   krylov=kry, coarse_strategy=strat)
            P = max(1, N // 8)
            reports.append((strat, coarse_operator_report(
                solver, num_masters=P, strategy=strat)))
            neigh.append(solver.decomposition.neighbor_counts().mean())
    body = [[s, r.N, r.P, r.dim_e, f"{r.avg_neighbors:.1f}",
             r.nnz_factor, f"{r.time * 1e3:.2f} ms"]
            for s, r in reports]
    txt = table(["strategy", "N", "P", "dim(E)", "|O_i| (avg)",
                 "nnz(E^-1)", "time"],
                body, title=f"FIGURE 11 ({label})")
    return reports, txt


@pytest.fixture(scope="module")
def coarse_reports():
    rep3, txt3 = run_case(diffusion_3d, "3D diffusion", n=6)
    # the 2D diffusion case sweeps every strategy — the paper's fig. 11
    # extended with the "where dense stops scaling" comparison
    rep2, txt2 = run_case(diffusion_2d, "2D diffusion (strategy sweep)",
                          strategies=STRATEGIES, n=32, degree=2)
    repe, txte = run_case(elasticity_2d, "2D elasticity", n=6, degree=2)
    write_result("fig11_coarse_operator",
                 txt3 + "\n\n" + txt2 + "\n\n" + txte +
                 "\n\npaper shape: |O_i| ≈ 12-15 (3D) vs ≈ 5.5-5.9 (2D); "
                 "nnz(E^-1) and time grow with N; the dense strategy's "
                 "modelled time grows ~dim(E)^3 while sparse/multilevel "
                 "stay nnz-bounded")
    return rep3, rep2, repe


def _only(reports, strategy="dense"):
    return [r for s, r in reports if s == strategy]


def test_fig11_dim_e_is_sum_nu(coarse_reports):
    rep3, rep2, _ = coarse_reports
    for reports in (rep3, rep2):
        for r in _only(reports):
            assert r.dim_e == NEV * r.N


def test_fig11_3d_denser_than_2d(coarse_reports):
    """The paper's headline contrast: 3D connectivity |O_i| ≈ 13 vs 2D
    ≈ 5.7 (at laptop scale the gap is smaller but the ordering holds)."""
    rep3, rep2, _ = coarse_reports
    assert _only(rep3)[-1].avg_neighbors > _only(rep2)[-1].avg_neighbors


def test_fig11_nnz_grows_with_n(coarse_reports):
    for reports in coarse_reports:
        nnz = [r.nnz_factor for r in _only(reports)]
        assert nnz[-1] > nnz[0]


def test_fig11_sweep_covers_all_strategies(coarse_reports):
    _, rep2, _ = coarse_reports
    for s in STRATEGIES:
        assert len(_only(rep2, s)) == len(NS)


def test_fig11_dense_stops_scaling_at_paper_n(coarse_reports):
    """The tentpole contrast: extend the fig-11 factorization models to
    the paper's N — the dense masters' Cholesky (dim³ panel rounds) is
    the slowest strategy by an order of magnitude, while sparse and
    multilevel stay nnz-bounded."""
    from repro.perfmodel import strategy_cost
    costs = {s: strategy_cost(s, 1024, NEV).t_factorize
             for s in STRATEGIES}
    assert costs["dense"] > 5 * costs["sparse"]
    assert costs["dense"] > 5 * costs["multilevel"]


def test_fig11_bench_spmd_assembly(coarse_reports, benchmark):
    """Kernel timed: the full SPMD run of algorithms 1-2 (16 ranks,
    2 masters) including the cooperative factorization."""
    from repro.core.spmd import assemble_coarse_spmd
    from repro.mpi import run_spmd

    mesh, form, _ = diffusion_2d(n=32, degree=2)
    solver = SchwarzSolver(mesh, form, num_subdomains=16, delta=1,
                           nev=NEV, seed=0)
    dec, space = solver.decomposition, solver.deflation

    def assemble():
        run_spmd(16, lambda comm: assemble_coarse_spmd(
            comm, dec, space, 2) and None)

    benchmark.pedantic(assemble, rounds=3, iterations=1)
