"""Benchmark suite configuration: make the shared helpers importable and
collect ``bench_*.py`` files."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
