"""Figures 3–4: block sparsity of the deflation matrix Z and of E.

Paper: 4 subdomains in a chain, O₁ = {2}, O₂ = {1,3}, O₃ = {2,4},
O₄ = {3} (1-indexed); Z is block-column sparse with overlapping rows;
blue diagonal blocks of E need no communication, red off-diagonal blocks
need one peer-to-peer transfer each.
"""

import numpy as np
import pytest

from common import write_result
from repro.common.asciiplot import sparsity
from repro.core import CoarseOperator, DeflationSpace, coarse_blocks, compute_deflation
from repro.dd import Decomposition, Problem
from repro.fem.forms import DiffusionForm
from repro.mesh import interval_chain


@pytest.fixture(scope="module")
def chain_setup():
    mesh = interval_chain(24, width=2)
    part = np.minimum((mesh.cell_centroids()[:, 0] / 6).astype(int), 3)
    prob = Problem(mesh, DiffusionForm(degree=1))
    dec = Decomposition(prob, part, delta=1)
    Ws = [compute_deflation(s, nev=2).W for s in dec.subdomains]
    space = DeflationSpace(dec, Ws)

    figz = sparsity(space.explicit_z(), width=28)
    fige = sparsity(CoarseOperator(space).E, width=28)
    o_sets = {s.index + 1: [j + 1 for j in s.neighbors]
              for s in dec.subdomains}
    write_result(
        "fig34_sparsity",
        f"FIGURES 3-4 — 4-subdomain chain, neighbour sets {o_sets}\n"
        f"(paper: O1={{2}}, O2={{1,3}}, O3={{2,4}}, O4={{3}})\n\n"
        f"Z (n x {space.m}):\n{figz}\n\nE ({space.m} x {space.m}):\n{fige}")
    return dec, space


def test_fig3_chain_neighbour_sets(chain_setup):
    dec, _ = chain_setup
    expected = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
    assert {s.index: s.neighbors for s in dec.subdomains} == expected


def test_fig4_block_pattern_tridiagonal(chain_setup):
    """E's block pattern mirrors the chain connectivity (fig. 4)."""
    _, space = chain_setup
    blocks = coarse_blocks(space)
    assert set(blocks) == {(0, 0), (1, 1), (2, 2), (3, 3),
                           (0, 1), (1, 0), (1, 2), (2, 1),
                           (2, 3), (3, 2)}


def test_fig34_bench_coarse_assembly(chain_setup, benchmark):
    """Kernel timed: block assembly of E (steps 1-3 of §3.1)."""
    _, space = chain_setup
    benchmark(coarse_blocks, space)
