"""Nonsymmetric workloads: one-level vs GenEO vs extended coarse spaces.

The paper's GenEO theory (and the repo's default coarse space) assumes
an SPD operator.  This benchmark measures what happens beyond that
assumption on the two nonsymmetric/indefinite workloads the repo now
assembles — convection–diffusion with SUPG stabilisation and Helmholtz
with absorption — across a Péclet/wavenumber × coefficient-contrast
grid:

* **one-level** (RAS only): iteration counts grow with advection
  strength / wavenumber and with the subdomain count — the baseline
  every coarse space must beat;
* **geneo**: the classical pencil on the *symmetrised* Neumann matrix
  (½(A + Aᵀ), with a warning) — the "symmetrize and hope" baseline;
* **extended**: the Nataf–Parolin-style pencil on the form's SPD
  surrogate (diffusion + streamline term, stiffness-only for
  Helmholtz) with Euclidean rank-revealing orthonormalisation — the
  construction that remains well-posed off the SPD axis.

Acceptance (asserted): at the largest smoke Péclet and wavenumber the
extended coarse space converges in at most half the one-level
iterations.

Run directly (CI runs ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_nonsymmetric.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import write_result, write_tracked_json  # noqa: E402
from repro import SchwarzSolver  # noqa: E402
from repro.common.asciiplot import table  # noqa: E402
from repro.fem import channels_and_inclusions  # noqa: E402
from repro.fem.forms import (  # noqa: E402
    ConvectionDiffusionForm,
    HelmholtzForm,
)
from repro.mesh import unit_square  # noqa: E402

METHODS = ("one-level", "geneo", "extended")
#: fixed advection field; the Péclet axis scales κ down instead of β up,
#: so Pe = |β|h/(2κ̄) with κ̄ the background diffusivity
BETA = np.array([1.0, 0.4])


def _solve(mesh, form, method: str, *, num_subdomains: int, nev: int,
           tol: float, maxiter: int):
    """One solve; returns (iterations, converged, solve_seconds).

    The one-level method is *expected* to stall on the hard rows — the
    gmres driver returns the unconverged result (iterations == maxiter)
    instead of raising, so stalls are countable.
    """
    kw = dict(num_subdomains=num_subdomains, nev=nev, krylov="gmres",
              seed=0)
    if method == "one-level":
        kw["levels"] = 1
    else:
        kw["coarse_space"] = method
    with warnings.catch_warnings():
        # the geneo baseline symmetrises nonsymmetric A_neu with a
        # RuntimeWarning — that is exactly the comparison being run
        warnings.simplefilter("ignore", RuntimeWarning)
        solver = SchwarzSolver(mesh, form, **kw)
        t0 = time.perf_counter()
        report = solver.solve(tol=tol, maxiter=maxiter)
        dt = time.perf_counter() - t0
    return report.iterations, bool(report.converged), dt


def run(smoke: bool) -> dict:
    n = 32 if smoke else 40
    N = 24 if smoke else 32
    nev = 6 if smoke else 8
    maxiter = 400
    tol = 1e-7
    peclets = (2.0, 200.0) if smoke else (2.0, 20.0, 200.0)
    wavenumbers = (5.0, 15.0) if smoke else (5.0, 10.0, 15.0)
    contrasts = (1e1, 1e3) if smoke else (1e1, 1e3, 1e5)
    mesh = unit_square(n)
    h = 1.0 / n
    bmag = float(np.linalg.norm(BETA))

    rows = []
    records = []
    for contrast in contrasts:
        for pe in peclets:
            kbg = bmag * h / (2.0 * pe)
            kappa = channels_and_inclusions(
                mesh, kappa_min=kbg, kappa_max=kbg * contrast, seed=3)
            form = ConvectionDiffusionForm(
                degree=1, kappa=kappa, beta=BETA)
            rec = {"workload": "convdiff", "peclet": pe,
                   "contrast": contrast, "iterations": {},
                   "converged": {}, "seconds": {}}
            for method in METHODS:
                its, ok, dt = _solve(mesh, form, method,
                                     num_subdomains=N, nev=nev,
                                     tol=tol, maxiter=maxiter)
                rec["iterations"][method] = its
                rec["converged"][method] = ok
                rec["seconds"][method] = dt
            records.append(rec)
            rows.append(["convdiff", f"{pe:g}", f"{contrast:.0e}"]
                        + [f"{rec['iterations'][m]}"
                           + ("" if rec["converged"][m] else "*")
                           for m in METHODS])
            print(f"[convdiff pe={pe:g} contrast={contrast:.0e}] " +
                  ", ".join(f"{m}={rec['iterations'][m]}"
                            for m in METHODS))
        kappa = channels_and_inclusions(mesh, kappa_min=1.0,
                                        kappa_max=contrast, seed=3)
        for k in wavenumbers:
            form = HelmholtzForm(degree=1, kappa=kappa, k=k, epsilon=0.3)
            rec = {"workload": "helmholtz", "wavenumber": k,
                   "contrast": contrast, "iterations": {},
                   "converged": {}, "seconds": {}}
            for method in METHODS:
                its, ok, dt = _solve(mesh, form, method,
                                     num_subdomains=N, nev=nev,
                                     tol=tol, maxiter=maxiter)
                rec["iterations"][method] = its
                rec["converged"][method] = ok
                rec["seconds"][method] = dt
            records.append(rec)
            rows.append(["helmholtz", f"k={k:g}", f"{contrast:.0e}"]
                        + [f"{rec['iterations'][m]}"
                           + ("" if rec["converged"][m] else "*")
                           for m in METHODS])
            print(f"[helmholtz k={k:g} contrast={contrast:.0e}] " +
                  ", ".join(f"{m}={rec['iterations'][m]}"
                            for m in METHODS))

    txt = table(["workload", "Pe / k", "contrast"] + list(METHODS),
                rows, title="NONSYMMETRIC WORKLOADS (gmres iterations; "
                            "* = budget exhausted)")

    # -- acceptance: extended beats one-level by >= 2x at the hardest
    # smoke Péclet and wavenumber (any contrast row counts the worst)
    def worst(workload, key, value):
        rs = [r for r in records
              if r["workload"] == workload and r[key] == value]
        one = max(r["iterations"]["one-level"] for r in rs)
        ext = max(r["iterations"]["extended"] for r in rs)
        ext_ok = all(r["converged"]["extended"] for r in rs)
        return one, ext, ext_ok

    one_cd, ext_cd, ok_cd = worst("convdiff", "peclet", peclets[-1])
    one_hh, ext_hh, ok_hh = worst("helmholtz", "wavenumber",
                                  wavenumbers[-1])
    assert ok_cd and ok_hh, (
        "extended coarse space failed to converge on the hardest row: "
        f"convdiff={ok_cd}, helmholtz={ok_hh}")
    assert 2 * ext_cd <= one_cd, (
        f"extended ({ext_cd} it) did not beat one-level ({one_cd} it) "
        f"by 2x at Pe={peclets[-1]:g}")
    assert 2 * ext_hh <= one_hh, (
        f"extended ({ext_hh} it) did not beat one-level ({one_hh} it) "
        f"by 2x at k={wavenumbers[-1]:g}")
    # the extended space should never lose to symmetrize-and-hope
    geneo_losses = [r for r in records
                    if r["iterations"]["extended"]
                    > r["iterations"]["geneo"] + 2]
    summary = (f"largest Pe={peclets[-1]:g}: one-level={one_cd}, "
               f"extended={ext_cd}; largest k={wavenumbers[-1]:g}: "
               f"one-level={one_hh}, extended={ext_hh}; "
               f"extended-vs-geneo losses: {len(geneo_losses)}")
    print(summary)

    payload = {
        "smoke": smoke, "n": n, "num_subdomains": N, "nev": nev,
        "tol": tol, "maxiter": maxiter,
        "peclets": list(peclets), "wavenumbers": list(wavenumbers),
        "contrasts": list(contrasts),
        "methods": list(METHODS),
        "records": records,
        "hardest": {"convdiff": {"one_level": one_cd, "extended": ext_cd},
                    "helmholtz": {"one_level": one_hh,
                                  "extended": ext_hh}},
        "summary": summary,
    }
    write_result("nonsymmetric", txt + "\n\n" + summary)
    write_tracked_json("BENCH_nonsymmetric", payload)
    return payload


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (24x24 mesh, 2x2 grid)")
    args = ap.parse_args(argv)
    run(args.smoke)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
