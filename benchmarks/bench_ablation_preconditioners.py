"""Ablation: A-DEF1 vs A-DEF2 vs BNN vs one-level (paper §2.1).

The paper chooses A-DEF1 because one application needs a single coarse
solve (reused in both terms) while A-DEF2 needs two — "it is best to
compute only 1 correction per iteration for scalability purposes" — at
essentially identical convergence.  This bench measures both claims:
coarse solves per iteration and iteration counts.
"""

import numpy as np
import pytest

from common import diffusion_2d, write_result
from repro import SchwarzSolver
from repro.common.asciiplot import table

N = 12
NEV = 8


@pytest.fixture(scope="module")
def ablation():
    mesh, form, _ = diffusion_2d(n=40, degree=2, seed=3)
    rows = []
    results = {}
    for pre, krylov in (("adef1", "gmres"), ("adef2", "gmres"),
                        ("bnn", "cg"), ("ras", "gmres"), ("asm", "cg")):
        solver = SchwarzSolver(mesh, form, num_subdomains=N, delta=1,
                               nev=NEV, preconditioner=pre, krylov=krylov,
                               seed=0)
        report = solver.solve(tol=1e-8, restart=60, maxiter=400)
        csolves = solver.coarse.solves if solver.coarse is not None else 0
        per_it = csolves / max(report.iterations, 1)
        rows.append([pre.upper(), krylov, report.iterations,
                     report.converged, f"{per_it:.2f}"])
        results[pre] = (report, per_it)
    txt = table(["preconditioner", "krylov", "#it", "converged",
                 "coarse solves / it"], rows,
                title=f"ABLATION — preconditioner variants "
                      f"(N={N}, ν={NEV}, heterogeneous diffusion)")
    write_result("ablation_preconditioners", txt)
    return results


def test_adef1_single_coarse_solve_per_iteration(ablation):
    _, per_it1 = ablation["adef1"]
    _, per_it2 = ablation["adef2"]
    assert per_it1 <= 1.6          # ~1 + restart overheads
    assert per_it2 >= 1.8          # ~2


def test_adef1_adef2_similar_convergence(ablation):
    r1, _ = ablation["adef1"]
    r2, _ = ablation["adef2"]
    assert r1.converged and r2.converged
    assert abs(r1.iterations - r2.iterations) <= 4


def test_two_level_variants_beat_one_level(ablation):
    for two in ("adef1", "adef2", "bnn"):
        r2, _ = ablation[two]
        assert r2.converged
    r_ras, _ = ablation["ras"]
    assert ablation["adef1"][0].iterations < r_ras.iterations


def test_bench_adef1_vs_adef2_apply(ablation, benchmark):
    mesh, form, _ = diffusion_2d(n=32, degree=2, seed=3)
    solver = SchwarzSolver(mesh, form, num_subdomains=8, delta=1,
                           nev=NEV, preconditioner="adef2", seed=0)
    u = solver.problem.rhs()
    benchmark(solver.preconditioner.apply, u)
