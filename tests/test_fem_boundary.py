"""Tests for boundary-facet integration (surface loads)."""

import numpy as np
import pytest

from repro.common.errors import FEMError
from repro.fem import FunctionSpace, assemble_boundary_load
from repro.mesh import rectangle, unit_cube, unit_square


class TestScalarBoundaryLoad:
    def test_perimeter_2d(self):
        V = FunctionSpace(unit_square(5), 2)
        b = assemble_boundary_load(V, 1.0)
        assert b.sum() == pytest.approx(4.0)

    def test_surface_area_3d(self):
        V = FunctionSpace(unit_cube(2), 2)
        b = assemble_boundary_load(V, 1.0)
        assert b.sum() == pytest.approx(6.0)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_degree_independent_total(self, k):
        V = FunctionSpace(unit_square(4), k)
        assert assemble_boundary_load(V, 2.5).sum() == pytest.approx(10.0)

    def test_where_filter_selects_edge(self):
        V = FunctionSpace(unit_square(4), 2)
        b = assemble_boundary_load(V, 1.0,
                                   where=lambda x: x[:, 1] > 1 - 1e-9)
        assert b.sum() == pytest.approx(1.0)
        # entries supported on the top edge only (up to roundoff)
        coords = V.scalar_dof_coordinates
        off_edge = np.abs(coords[:, 1] - 1.0) > 1e-9
        assert np.abs(b[off_edge]).max() < 1e-12

    def test_polynomial_exactness(self):
        """∫ x² over the top edge of the unit square = 1/3."""
        V = FunctionSpace(unit_square(3), 3)
        b = assemble_boundary_load(V, lambda x: x[:, 0] ** 2,
                                   where=lambda x: x[:, 1] > 1 - 1e-9)
        assert b.sum() == pytest.approx(1.0 / 3.0)

    def test_pairs_with_function(self):
        """(g, v) evaluated against an interpolant equals ∫ g v exactly
        for polynomial g·v within quadrature degree."""
        V = FunctionSpace(unit_square(4), 2)
        b = assemble_boundary_load(V, lambda x: x[:, 0],
                                   where=lambda x: x[:, 1] > 1 - 1e-9)
        u = V.interpolate(lambda x: x[:, 0])
        # ∫_top x·x dx = 1/3
        assert b @ u == pytest.approx(1.0 / 3.0)

    def test_empty_selection(self):
        V = FunctionSpace(unit_square(3), 1)
        b = assemble_boundary_load(V, 1.0,
                                   where=lambda x: x[:, 0] > 99.0)
        assert np.all(b == 0)

    def test_rectangle_nonunit(self):
        V = FunctionSpace(rectangle(4, 2, x1=3.0, y1=2.0), 2)
        assert assemble_boundary_load(V, 1.0).sum() == pytest.approx(10.0)


class TestVectorBoundaryLoad:
    def test_constant_traction(self):
        V = FunctionSpace(unit_square(4), 2, ncomp=2)
        b = assemble_boundary_load(V, np.array([0.0, -3.0]),
                                   where=lambda x: x[:, 1] > 1 - 1e-9)
        assert b[0::2].sum() == pytest.approx(0.0)
        assert b[1::2].sum() == pytest.approx(-3.0)

    def test_callable_traction(self):
        V = FunctionSpace(unit_square(4), 1, ncomp=2)
        b = assemble_boundary_load(
            V, lambda x: np.column_stack([x[:, 0], 0 * x[:, 0]]),
            where=lambda x: x[:, 1] > 1 - 1e-9)
        assert b[0::2].sum() == pytest.approx(0.5)

    def test_3d_traction(self):
        V = FunctionSpace(unit_cube(2), 1, ncomp=3)
        b = assemble_boundary_load(V, np.array([0.0, 0.0, -1.0]),
                                   where=lambda x: x[:, 2] > 1 - 1e-9)
        assert b[2::3].sum() == pytest.approx(-1.0)

    def test_bad_traction_shape(self):
        V = FunctionSpace(unit_square(2), 1, ncomp=2)
        with pytest.raises(FEMError):
            assemble_boundary_load(V, np.array([1.0, 2.0, 3.0]))

    def test_bad_callable_shape(self):
        V = FunctionSpace(unit_square(2), 1, ncomp=2)
        with pytest.raises(FEMError):
            assemble_boundary_load(V, lambda x: np.zeros(len(x)))
